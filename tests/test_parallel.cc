// Tests for the rigid parallel jobs extension (src/parallel).

#include "parallel/parallel.h"

#include "workload/assignment.h"

#include <gtest/gtest.h>

namespace fairsched {
namespace {

using par::ParallelEngine;
using par::ParallelInstance;
using par::QueueDiscipline;

ParallelInstance simple() {
  ParallelInstance inst;
  const OrgId a = inst.add_org(2);
  const OrgId c = inst.add_org(2);
  inst.add_job(a, 0, 3, 1);
  inst.add_job(a, 0, 3, 1);
  inst.add_job(c, 1, 4, 2);
  inst.finalize();
  return inst;
}

TEST(Parallel, WidthOneMatchesSequentialSemantics) {
  ParallelInstance inst;
  const OrgId a = inst.add_org(1);
  inst.add_job(a, 0, 3, 1);
  inst.add_job(a, 1, 2, 1);
  inst.finalize();
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(20);
  EXPECT_EQ(e.start_of(a, 0), 0);
  EXPECT_EQ(e.start_of(a, 1), 3);
  EXPECT_EQ(e.work_done(a), 5);
  // psi2: job 1 slots 0..2, job 2 slots 3..4 at t=20.
  const HalfUtil expected =
      2 * ((20 - 0) + (20 - 1) + (20 - 2) + (20 - 3) + (20 - 4));
  EXPECT_EQ(e.psi2(a), expected);
}

TEST(Parallel, WideJobOccupiesWidthMachines) {
  const ParallelInstance inst = simple();
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(30);
  // a's two width-1 jobs start at 0 on two machines; c's width-2 job fits
  // on the remaining two machines at its release.
  EXPECT_EQ(e.start_of(0, 0), 0);
  EXPECT_EQ(e.start_of(0, 1), 0);
  EXPECT_EQ(e.start_of(1, 0), 1);
  EXPECT_EQ(e.work_done(1), 8);  // 4 steps * width 2
  EXPECT_EQ(e.completed(1), 1u);
}

TEST(Parallel, StrictFifoBlocksBehindWideHead) {
  // 4 machines. Wide job (width 4) released at 1 while two width-1 jobs
  // run until t=10; narrow jobs released at 2 that would fit. Strict FIFO
  // makes them wait behind the wide head; backfill runs them.
  ParallelInstance inst;
  const OrgId narrow = inst.add_org(4);
  const OrgId wide = inst.add_org(0);
  inst.add_job(narrow, 0, 10, 1);
  inst.add_job(narrow, 0, 10, 1);
  inst.add_job(wide, 1, 5, 4);
  inst.add_job(narrow, 2, 3, 1);
  inst.finalize();

  ParallelEngine strict(inst, QueueDiscipline::kStrictFifo);
  strict.run(40);
  // Strict: the width-4 job waits until t=10; the narrow job released at 2
  // waits behind it (starts at 15 when the wide job finishes).
  EXPECT_EQ(strict.start_of(wide, 0), 10);
  EXPECT_EQ(strict.start_of(narrow, 2), 15);

  ParallelEngine backfill(inst, QueueDiscipline::kBackfill);
  backfill.run(40);
  // Backfill: the narrow job jumps ahead at its release.
  EXPECT_EQ(backfill.start_of(narrow, 2), 2);
  // The wide job still starts as soon as 4 machines are free.
  EXPECT_EQ(backfill.start_of(wide, 0), 10);

  // Before the drain resolves, backfill is strictly ahead on work.
  ParallelEngine strict12(inst, QueueDiscipline::kStrictFifo);
  strict12.run(12);
  ParallelEngine backfill12(inst, QueueDiscipline::kBackfill);
  backfill12.run(12);
  EXPECT_GT(backfill12.total_work_done(), strict12.total_work_done());
}

TEST(Parallel, FragmentationWastesMoreThanQuarter) {
  // The paper's conjecture: with rigid jobs, greedy-vs-greedy efficiency
  // loss can exceed 25%. Two machines; strict FIFO behind a width-2 job
  // drains one machine while the other finishes a long narrow job.
  ParallelInstance inst;
  const OrgId a = inst.add_org(2);
  const OrgId b = inst.add_org(0);
  inst.add_job(a, 0, 1, 1);   // short narrow
  inst.add_job(a, 0, 20, 1);  // long narrow
  inst.add_job(b, 1, 2, 2);   // wide, arrives second
  inst.add_job(a, 2, 17, 1);  // would backfill
  inst.finalize();

  ParallelEngine strict(inst, QueueDiscipline::kStrictFifo);
  strict.run(22);
  ParallelEngine backfill(inst, QueueDiscipline::kBackfill);
  backfill.run(22);
  const double ratio = strict.utilization() / backfill.utilization();
  EXPECT_LT(ratio, 0.75);
}

TEST(Parallel, PerOrgFifoHonoredUnderBackfill) {
  // An organization's narrow later job cannot overtake its own wide front
  // job even under backfill (FIFO is per organization).
  ParallelInstance inst;
  const OrgId a = inst.add_org(2);
  inst.add_job(a, 0, 5, 2);  // wide front
  inst.add_job(a, 0, 5, 1);  // narrow behind
  inst.add_job(a, 0, 5, 1);
  inst.finalize();
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(30);
  EXPECT_EQ(e.start_of(a, 0), 0);
  EXPECT_EQ(e.start_of(a, 1), 5);
  EXPECT_EQ(e.start_of(a, 2), 5);
}

TEST(Parallel, TotalsAndUtilization) {
  const ParallelInstance inst = simple();
  EXPECT_EQ(inst.total_work(), 3 + 3 + 8);
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(5);
  EXPECT_EQ(e.total_work_done(), 3 + 3 + 8);
  EXPECT_DOUBLE_EQ(e.utilization(), 14.0 / (4.0 * 5.0));
}

TEST(Parallel, InvalidInputsRejected) {
  ParallelInstance inst;
  const OrgId a = inst.add_org(2);
  EXPECT_THROW(inst.add_job(a, -1, 1, 1), std::invalid_argument);
  EXPECT_THROW(inst.add_job(a, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(inst.add_job(a, 0, 1, 0), std::invalid_argument);
  inst.add_job(a, 0, 1, 5);  // wider than platform: caught at engine build
  inst.finalize();
  EXPECT_THROW(ParallelEngine(inst, QueueDiscipline::kBackfill),
               std::invalid_argument);
}

TEST(Parallel, EngineRequiresFinalizedInstance) {
  ParallelInstance inst;
  inst.add_org(1);
  EXPECT_THROW(ParallelEngine(inst, QueueDiscipline::kBackfill),
               std::logic_error);
}

TEST(Parallel, InstanceFromSwfPreservesWidths) {
  SwfTrace trace;
  auto add = [&](std::int64_t id, Time submit, Time rt, std::uint32_t cpus,
                 std::int64_t user) {
    SwfJob j;
    j.job_id = id;
    j.submit = submit;
    j.run_time = rt;
    j.processors = cpus;
    j.user = user;
    trace.jobs.push_back(j);
  };
  add(1, 0, 10, 4, 100);
  add(2, 5, 3, 1, 101);
  add(3, 6, -1, 2, 100);  // dropped: unknown runtime
  add(4, 7, 8, 0, 102);   // dropped: unknown width

  const auto inst = parallel_instance_from_swf(trace, 2, 8, 42);
  EXPECT_EQ(inst.num_orgs(), 2u);
  EXPECT_EQ(inst.total_machines(), 8u);
  std::size_t jobs = 0;
  std::int64_t area = 0;
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    for (const auto& j : inst.jobs_of(u)) {
      ++jobs;
      area += j.processing * static_cast<std::int64_t>(j.width);
    }
  }
  EXPECT_EQ(jobs, 2u);           // jobs 3 and 4 dropped
  EXPECT_EQ(area, 10 * 4 + 3);   // widths preserved
  EXPECT_EQ(inst.total_work(), area);

  // And it runs.
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(50);
  EXPECT_EQ(e.total_work_done(), area);
}

TEST(Parallel, RunTwiceThrows) {
  ParallelInstance inst = simple();
  ParallelEngine e(inst, QueueDiscipline::kBackfill);
  e.run(5);
  EXPECT_THROW(e.run(10), std::logic_error);
}

}  // namespace
}  // namespace fairsched
