// Unit tests for the engine's calendar queue (sim/calendar_queue.h).
//
// The load-bearing property is that the drain sequence equals the
// `event_before` total order — (time, completions-before-releases, org,
// index) — for EVERY insertion order and through every bucket-geometry
// change (grow, shrink, reserve). The engine's byte-identical output
// guarantee rests on this; these tests pin it.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/calendar_queue.h"
#include "util/rng.h"

namespace fairsched {
namespace {

// Random event with the machine field derived from the tie-break key, so
// any two events equal under `event_before`'s four fields are fully equal
// and sequence comparison is well defined.
EngineEvent random_event(Rng& rng, Time max_time, std::uint32_t max_orgs) {
  EngineEvent e;
  e.time = static_cast<Time>(rng.uniform_u64(max_time + 1));
  e.kind = rng.uniform_u64(2) == 0 ? EventKind::kCompletion
                                   : EventKind::kRelease;
  e.org = static_cast<OrgId>(rng.uniform_u64(max_orgs));
  e.index = static_cast<std::uint32_t>(rng.uniform_u64(50));
  e.machine = static_cast<MachineId>(e.org * 64 + e.index % 64);
  return e;
}

std::vector<EngineEvent> sorted_by_event_before(std::vector<EngineEvent> v) {
  std::sort(v.begin(), v.end(),
            [](const EngineEvent& a, const EngineEvent& b) {
              if (event_before(a, b)) return true;
              if (event_before(b, a)) return false;
              // Equal tie-break keys => equal events (machine is derived);
              // any stable completion of the order works.
              return false;
            });
  return v;
}

std::vector<EngineEvent> drain(CalendarQueue& q) {
  std::vector<EngineEvent> out;
  while (!q.empty()) {
    const EngineEvent top = q.top();
    const EngineEvent popped = q.pop();
    EXPECT_EQ(top, popped);  // top() and pop() must agree
    out.push_back(popped);
  }
  return out;
}

TEST(CalendarQueue, DrainOrderIsTheTotalOrderForAnyInsertionOrder) {
  Rng gen(mix_seed(2013, 1));
  std::vector<EngineEvent> events;
  for (int i = 0; i < 500; ++i) events.push_back(random_event(gen, 300, 20));
  const std::vector<EngineEvent> expected = sorted_by_event_before(events);

  for (std::uint64_t shuffle_seed = 0; shuffle_seed < 5; ++shuffle_seed) {
    Rng rng(mix_seed(99, shuffle_seed));
    std::vector<EngineEvent> shuffled = events;
    rng.shuffle(shuffled);
    CalendarQueue q;
    for (const EngineEvent& e : shuffled) q.push(e);
    EXPECT_EQ(q.size(), events.size());
    EXPECT_EQ(drain(q), expected) << "shuffle_seed=" << shuffle_seed;
  }
}

TEST(CalendarQueue, SameTimeTieBreakIsCompletionsThenOrgThenIndex) {
  // All at t=7: expected order is every completion before every release,
  // each group by (org, index) ascending.
  const std::vector<EngineEvent> expected = {
      {7, EventKind::kCompletion, 0, 0, 0},
      {7, EventKind::kCompletion, 0, 1, 1},
      {7, EventKind::kCompletion, 2, 0, 128},
      {7, EventKind::kRelease, 0, 0, 0},
      {7, EventKind::kRelease, 0, 1, 1},
      {7, EventKind::kRelease, 1, 0, 64},
  };
  // Push in reverse and in an interleaved order; the drain must not care.
  CalendarQueue reversed;
  for (auto it = expected.rbegin(); it != expected.rend(); ++it) {
    reversed.push(*it);
  }
  EXPECT_EQ(drain(reversed), expected);

  CalendarQueue interleaved;
  for (std::size_t i : {3, 0, 5, 2, 4, 1}) interleaved.push(expected[i]);
  EXPECT_EQ(drain(interleaved), expected);
}

TEST(CalendarQueue, PushBelowTheLastPoppedTimeStillDrainsInOrder) {
  // The engine only pushes at or after the clock, but the structure keeps
  // its dequeue lower bound valid under out-of-order pushes too.
  CalendarQueue q;
  q.push({10, EventKind::kRelease, 0, 0, kNoMachine});
  EXPECT_EQ(q.pop().time, 10);  // floor is now 10
  q.push({3, EventKind::kRelease, 1, 0, kNoMachine});
  q.push({7, EventKind::kRelease, 2, 0, kNoMachine});
  EXPECT_EQ(q.top().time, 3);
  EXPECT_EQ(q.pop().org, 1);
  EXPECT_EQ(q.pop().org, 2);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, BucketGeometryStaysPowerOfTwoAcrossGrowAndShrink) {
  Rng gen(mix_seed(2013, 2));
  CalendarQueue q;
  const std::size_t initial_buckets = q.num_buckets();
  std::vector<EngineEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back(random_event(gen, 20000, 30));
    q.push(events.back());
    ASSERT_EQ(q.num_buckets() & (q.num_buckets() - 1), 0u);
    ASSERT_EQ(q.bucket_width() & (q.bucket_width() - 1), 0);
  }
  EXPECT_GT(q.num_buckets(), initial_buckets);  // growth happened

  const std::vector<EngineEvent> expected = sorted_by_event_before(events);
  std::vector<EngineEvent> drained;
  while (!q.empty()) {
    drained.push_back(q.pop());
    ASSERT_EQ(q.num_buckets() & (q.num_buckets() - 1), 0u);
  }
  EXPECT_EQ(drained, expected);
  EXPECT_EQ(q.num_buckets(), initial_buckets);  // shrank back when emptied
}

TEST(CalendarQueue, ReservePresizesAndPreservesTheOrder) {
  CalendarQueue q;
  q.reserve(1000, 0, 100000);
  // Bucket count doubles to cover the expected population; the width is
  // the average gap (100 here) rounded up to a power of two.
  EXPECT_GE(q.num_buckets(), 1000u);
  EXPECT_EQ(q.num_buckets() & (q.num_buckets() - 1), 0u);
  EXPECT_GE(q.bucket_width(), 100);
  EXPECT_EQ(q.bucket_width() & (q.bucket_width() - 1), 0);

  Rng gen(mix_seed(2013, 3));
  std::vector<EngineEvent> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(random_event(gen, 100000, 16));
    q.push(events.back());
  }
  // The reserve sized the calendar for this population: no doubling fired.
  EXPECT_EQ(q.num_buckets(), 1024u);
  EXPECT_EQ(drain(q), sorted_by_event_before(events));
}

TEST(CalendarQueue, InterleavedPushPopMatchesAReferenceMin) {
  // Steady-state churn (the engine's actual usage pattern: pop an event,
  // push the completion/successor it causes) against a brute-force
  // reference minimum; also exercises the pooled free list, which must
  // recycle nodes rather than grow without bound.
  Rng rng(mix_seed(2013, 4));
  CalendarQueue q;
  std::vector<EngineEvent> reference;
  Time clock = 0;
  for (int step = 0; step < 4000; ++step) {
    const bool push = reference.empty() || rng.uniform_u64(2) == 0;
    if (push) {
      // Engine-like: push at or after the current clock.
      EngineEvent e = random_event(rng, 50, 8);
      e.time += clock;
      q.push(e);
      reference.push_back(e);
    } else {
      const auto min_it =
          std::min_element(reference.begin(), reference.end(),
                           [](const EngineEvent& a, const EngineEvent& b) {
                             return event_before(a, b);
                           });
      const EngineEvent popped = q.pop();
      ASSERT_EQ(popped, *min_it) << "step=" << step;
      clock = popped.time;
      reference.erase(min_it);
    }
    ASSERT_EQ(q.size(), reference.size());
  }
}

}  // namespace
}  // namespace fairsched
