// Tests for the utility functions (metrics/utility.h), including the
// paper's Figure 2 worked example reproduced number for number.

#include "metrics/utility.h"

#include <gtest/gtest.h>

#include <tuple>

namespace fairsched {
namespace {

// --- closed form vs. brute force -------------------------------------------

using JobCase = std::tuple<Time, Time, Time>;  // start, processing, t

class SpClosedForm : public ::testing::TestWithParam<JobCase> {};

TEST_P(SpClosedForm, MatchesBruteForce) {
  const auto [s, p, t] = GetParam();
  EXPECT_EQ(sp_job_half_utility(s, p, t),
            sp_job_half_utility_bruteforce(s, p, t))
      << "s=" << s << " p=" << p << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpClosedForm,
    ::testing::Values(
        JobCase{0, 1, 1}, JobCase{0, 1, 2}, JobCase{0, 5, 3},
        JobCase{0, 5, 5}, JobCase{0, 5, 6}, JobCase{0, 5, 100},
        JobCase{7, 3, 7}, JobCase{7, 3, 8}, JobCase{7, 3, 9},
        JobCase{7, 3, 10}, JobCase{7, 3, 11}, JobCase{7, 3, 5},
        JobCase{100, 1000, 600}, JobCase{100, 1000, 1100},
        JobCase{100, 1000, 5000}, JobCase{0, 30000, 50000},
        JobCase{49999, 10, 50000}, JobCase{50000, 10, 50000}));

TEST(SpUtility, ZeroBeforeStart) {
  EXPECT_EQ(sp_job_half_utility(10, 5, 10), 0);
  EXPECT_EQ(sp_job_half_utility(10, 5, 3), 0);
}

TEST(SpUtility, OneUnitJobWorthTMinusS) {
  // A unit task started at s is worth (t - s) at time t (2(t-s) half-units).
  EXPECT_EQ(sp_job_half_utility(3, 1, 13), 2 * (13 - 3));
}

TEST(SpUtility, MonotoneInTime) {
  HalfUtil prev = 0;
  for (Time t = 0; t <= 30; ++t) {
    const HalfUtil v = sp_job_half_utility(5, 7, t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// --- Figure 2 ---------------------------------------------------------------
// 9 jobs of O(1) and one job of O(2) (p = 5) on 3 processors, all released
// at 0. Reconstructed placement (consistent with every number in the
// paper's caption):
//   M1: J1(0,3) J5(3,3) J7(6,3) J8(9,3)
//   M2: J2(0,4) J4(4,6) J9(10,4)
//   M3: J3(0,3) J6(3,6) J(2)1(9,5)

struct Fig2 {
  Instance inst;
  Schedule schedule;
};

Fig2 figure2() {
  InstanceBuilder b;
  const OrgId o1 = b.add_org("O1", 2);
  const OrgId o2 = b.add_org("O2", 1);
  const Time p[9] = {3, 4, 3, 6, 3, 6, 3, 3, 4};
  for (Time pi : p) b.add_job(o1, 0, pi);
  b.add_job(o2, 0, 5);
  Fig2 f{std::move(b).build(), Schedule(2)};
  // Placements (machine ids arbitrary for utility purposes).
  const Time starts[9] = {0, 0, 0, 4, 3, 3, 6, 9, 10};
  const MachineId machines[9] = {0, 1, 2, 1, 0, 2, 0, 0, 1};
  for (std::uint32_t i = 0; i < 9; ++i) {
    f.schedule.add({o1, i, starts[i], machines[i]});
  }
  f.schedule.add({o2, 0, 9, 2});
  return f;
}

TEST(Figure2, UtilityAt13Is262) {
  const Fig2 f = figure2();
  EXPECT_EQ(sp_org_half_utility(f.inst, f.schedule, 0, 13), 2 * 262);
}

TEST(Figure2, UtilityAt14Is297) {
  const Fig2 f = figure2();
  EXPECT_EQ(sp_org_half_utility(f.inst, f.schedule, 0, 14), 2 * 297);
}

TEST(Figure2, FlowTimeAt14Is70) {
  // The paper's "flow time equal to 3+4+...+14 = 70" refers to O(1)'s jobs.
  const Fig2 f = figure2();
  EXPECT_EQ(org_flow_time(f.inst, f.schedule, 0, 14), 70);
  // Adding O(2)'s job (completes at 14) gives the system-wide total.
  EXPECT_EQ(total_flow_time(f.inst, f.schedule, 14), 70 + 14);
}

TEST(Figure2, RemovingO2JobSpeedsJ9ByOne) {
  // Without J(2)1, J9 starts at 9 instead of 10: utility +4, flow time -1.
  const Fig2 f = figure2();
  Schedule alt(2);
  for (const Placement& p : f.schedule.placements()) {
    if (p.org == 1) continue;  // drop O2's job
    Placement q = p;
    if (p.org == 0 && p.index == 8) q.start = 9;
    alt.add(q);
  }
  EXPECT_EQ(sp_org_half_utility(f.inst, alt, 0, 14) -
                sp_org_half_utility(f.inst, f.schedule, 0, 14),
            2 * 4);
  EXPECT_EQ(org_flow_time(f.inst, f.schedule, 0, 14) -
                org_flow_time(f.inst, alt, 0, 14),
            1);
}

TEST(Figure2, DelayingJ6ByOneCostsSix) {
  // J6 (p=6) one unit later: utility -6 although flow time changes by -1
  // only — psi_sp accounts for job sizes, flow time does not.
  const Fig2 f = figure2();
  Schedule alt(2);
  for (const Placement& p : f.schedule.placements()) {
    Placement q = p;
    if (p.org == 0 && p.index == 5) q.start = 4;
    alt.add(q);
  }
  EXPECT_EQ(sp_org_half_utility(f.inst, f.schedule, 0, 14) -
                sp_org_half_utility(f.inst, alt, 0, 14),
            2 * 6);
}

TEST(Figure2, DroppingJ9CostsTen) {
  // Not scheduling J9 at all: utility -10 (more tasks = more utility),
  // while flow time would *improve* by 14 — the second anonymity axiom is
  // why flow time cannot serve as the utility.
  const Fig2 f = figure2();
  Schedule alt(2);
  for (const Placement& p : f.schedule.placements()) {
    if (p.org == 0 && p.index == 8) continue;
    alt.add(p);
  }
  EXPECT_EQ(sp_org_half_utility(f.inst, f.schedule, 0, 14) -
                sp_org_half_utility(f.inst, alt, 0, 14),
            2 * 10);
  EXPECT_EQ(total_flow_time(f.inst, f.schedule, 14) -
                total_flow_time(f.inst, alt, 14),
            14);
}

// --- classic objectives ------------------------------------------------------

TEST(ClassicMetrics, FlowTimeCountsOnlyCompleted) {
  const Fig2 f = figure2();
  // At t=12, J9 (completes 14) and J(2)1 (completes 14) are not counted.
  EXPECT_EQ(total_flow_time(f.inst, f.schedule, 12),
            3 + 4 + 3 + 10 + 6 + 9 + 9 + 12);
  EXPECT_EQ(org_flow_time(f.inst, f.schedule, 1, 12), 0);
  EXPECT_EQ(org_flow_time(f.inst, f.schedule, 1, 14), 14);
}

TEST(ClassicMetrics, WaitTime) {
  const Fig2 f = figure2();
  // Sum of starts (releases are all 0) over all 10 jobs.
  EXPECT_EQ(total_wait_time(f.inst, f.schedule, 14),
            0 + 0 + 0 + 4 + 3 + 3 + 6 + 9 + 10 + 9);
}

TEST(ClassicMetrics, Makespan) {
  const Fig2 f = figure2();
  EXPECT_EQ(makespan(f.inst, f.schedule, 14), 14);
  EXPECT_EQ(makespan(f.inst, f.schedule, 13), 12);
}

TEST(ClassicMetrics, Tardiness) {
  const Fig2 f = figure2();
  // Due offset 9: completions beyond release+9 are tardy.
  // Completions: 3,4,3,10,6,9,9,12,14 (O1) and 14 (O2).
  EXPECT_EQ(total_tardiness(f.inst, f.schedule, 14, 9),
            (10 - 9) + (12 - 9) + (14 - 9) + (14 - 9));
}

TEST(ClassicMetrics, CompletedWorkAndUtilization) {
  const Fig2 f = figure2();
  EXPECT_EQ(completed_work(f.inst, f.schedule, 14), 40);
  EXPECT_DOUBLE_EQ(resource_utilization(f.inst, f.schedule, 14),
                   40.0 / (3.0 * 14.0));
  // At t=5: executed units = J1 3 + J2 4 + J3 3 + J4 1 + J5 2 + J6 2 = 15.
  EXPECT_EQ(completed_work(f.inst, f.schedule, 5), 15);
}

TEST(ClassicMetrics, UtilizationEdgeCases) {
  const Fig2 f = figure2();
  EXPECT_DOUBLE_EQ(resource_utilization(f.inst, f.schedule, 0), 0.0);
}

}  // namespace
}  // namespace fairsched
