// Tests for the Shapley value library: the two exact forms agree, the
// axioms hold, and the sampled estimator converges within the Theorem 5.6
// bound.

#include "shapley/shapley.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairsched {
namespace {

// A classic 3-player glove game: player 0 holds a left glove, players 1 and
// 2 hold right gloves; a pair is worth 1.
double glove_game(Coalition c) {
  const bool left = c.contains(0);
  const bool right = c.contains(1) || c.contains(2);
  return left && right ? 1.0 : 0.0;
}

TEST(Shapley, GloveGameKnownValues) {
  const auto phi = shapley_exact(3, glove_game);
  EXPECT_NEAR(phi[0], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 1.0 / 6.0, 1e-12);
}

TEST(Shapley, SubsetAndPermutationFormsAgree) {
  // An asymmetric superadditive-ish game.
  auto v = [](Coalition c) {
    double total = 0.0;
    if (c.contains(0)) total += 3.0;
    if (c.contains(1)) total += 1.0;
    if (c.contains(0) && c.contains(2)) total += 4.0;
    if (c.size() >= 3) total += 2.5;
    return total;
  };
  for (std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
    const auto a = shapley_exact(k, v);
    const auto b = shapley_by_permutations(k, v);
    ASSERT_EQ(a.size(), b.size());
    for (std::uint32_t u = 0; u < k; ++u) {
      EXPECT_NEAR(a[u], b[u], 1e-9) << "k=" << k << " u=" << u;
    }
  }
}

TEST(Shapley, EfficiencyAxiom) {
  auto v = [](Coalition c) {
    return static_cast<double>(c.size() * c.size());
  };
  const auto phi = shapley_exact(5, v);
  EXPECT_NEAR(efficiency_error(5, v, phi), 0.0, 1e-9);
}

TEST(Shapley, SymmetryAxiom) {
  const auto phi = shapley_exact(3, glove_game);
  const auto gap = symmetry_gap(3, glove_game, 1, 2, phi);
  ASSERT_TRUE(gap.has_value());
  EXPECT_NEAR(*gap, 0.0, 1e-12);
  // Players 0 and 1 are not symmetric.
  EXPECT_FALSE(symmetry_gap(3, glove_game, 0, 1, phi).has_value());
}

TEST(Shapley, DummyAxiom) {
  // Player 2 contributes nothing.
  auto v = [](Coalition c) {
    return (c.contains(0) ? 2.0 : 0.0) + (c.contains(1) ? 5.0 : 0.0);
  };
  const auto phi = shapley_exact(3, v);
  const auto err = dummy_error(3, v, 2, phi);
  ASSERT_TRUE(err.has_value());
  EXPECT_NEAR(*err, 0.0, 1e-12);
  EXPECT_FALSE(dummy_error(3, v, 0, phi).has_value());
  EXPECT_NEAR(phi[0], 2.0, 1e-12);
  EXPECT_NEAR(phi[1], 5.0, 1e-12);
}

TEST(Shapley, AdditivityAxiom) {
  auto v1 = [](Coalition c) { return static_cast<double>(c.size()); };
  auto v2 = glove_game;
  auto sum = [&](Coalition c) { return v1(c) + v2(c); };
  const auto p1 = shapley_exact(3, v1);
  const auto p2 = shapley_exact(3, v2);
  const auto ps = shapley_exact(3, sum);
  for (OrgId u = 0; u < 3; ++u) {
    EXPECT_NEAR(ps[u], p1[u] + p2[u], 1e-12);
  }
}

TEST(Shapley, SampledEstimatorConverges) {
  auto v = [](Coalition c) {
    double total = static_cast<double>(c.size());
    if (c.contains(0) && c.contains(3)) total += 6.0;
    return total;
  };
  const auto exact = shapley_exact(4, v);
  const auto est = shapley_sampled(4, v, 20000, 123);
  for (OrgId u = 0; u < 4; ++u) {
    EXPECT_NEAR(est[u], exact[u], 0.1) << "u=" << u;
  }
}

TEST(Shapley, SampledWithinTheoremBound) {
  // Theorem 5.6: with N = rand_sample_bound(k, eps, lambda) samples, each
  // |phi_est - phi| <= (eps / k) * v(grand) with probability lambda. We test
  // one seed (deterministic) and a generous epsilon.
  auto v = [](Coalition c) {
    return c.size() >= 2 ? static_cast<double>(2 * c.size() - 2) : 0.0;
  };
  const std::uint32_t k = 5;
  const double eps = 0.5, lambda = 0.9;
  const std::size_t n = rand_sample_bound(k, eps, lambda);
  EXPECT_GE(n, static_cast<std::size_t>(
                   std::ceil(25.0 / 0.25 * std::log(5.0 / 0.1))));
  const auto exact = shapley_exact(k, v);
  const auto est = shapley_sampled(k, v, n, 777);
  const double budget = eps / k * v(Coalition::grand(k));
  for (OrgId u = 0; u < k; ++u) {
    EXPECT_LE(std::abs(est[u] - exact[u]), budget) << "u=" << u;
  }
}

TEST(Shapley, StratifiedMatchesExactOnSmallGames) {
  auto v = [](Coalition c) {
    double total = static_cast<double>(c.size());
    if (c.contains(1) && c.contains(2)) total += 4.0;
    if (c.size() >= 3) total *= 1.5;
    return total;
  };
  const auto exact = shapley_exact(4, v);
  const auto est = shapley_stratified(4, v, 4000, 99);
  for (OrgId u = 0; u < 4; ++u) {
    EXPECT_NEAR(est[u], exact[u], 0.1) << "u=" << u;
  }
}

TEST(Shapley, StratifiedIsExactForSizeOnlyGames) {
  // When v depends only on |C|, every stratum's marginal is a constant, so
  // stratified sampling has zero variance: one sample per stratum is exact.
  auto v = [](Coalition c) {
    return static_cast<double>(c.size() * c.size() + 3 * c.size());
  };
  const auto exact = shapley_exact(5, v);
  const auto est = shapley_stratified(5, v, 1, 7);
  for (OrgId u = 0; u < 5; ++u) {
    EXPECT_NEAR(est[u], exact[u], 1e-9) << "u=" << u;
  }
}

TEST(Shapley, StratifiedBeatsPlainSamplingAtEqualBudget) {
  // Marginals that vary strongly with coalition size (saturation): the
  // stratified estimator should have lower aggregate error than plain
  // permutation sampling at a comparable evaluation budget, for most seeds.
  auto v = [](Coalition c) {
    // Value saturates at 3 "machines".
    return static_cast<double>(std::min<std::uint32_t>(c.size(), 3) * 10) +
           (c.contains(0) ? 2.0 : 0.0);
  };
  const std::uint32_t k = 5;
  const auto exact = shapley_exact(k, v);
  auto err = [&](const std::vector<double>& phi) {
    double total = 0.0;
    for (OrgId u = 0; u < k; ++u) total += std::abs(phi[u] - exact[u]);
    return total;
  };
  int stratified_wins = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    // Budget: plain uses 40 permutations = 40*k marginal evaluations;
    // stratified with 8 samples/stratum uses k*8 per player = 40*k total.
    const auto plain = shapley_sampled(k, v, 40, 1000 + t);
    const auto strat = shapley_stratified(k, v, 8, 2000 + t);
    if (err(strat) <= err(plain)) ++stratified_wins;
  }
  EXPECT_GE(stratified_wins, trials / 2);
}

TEST(Shapley, StratifiedEfficiencyHoldsInExpectation) {
  auto v = [](Coalition c) { return static_cast<double>(c.mask() % 11); };
  const auto est = shapley_stratified(4, v, 6000, 5);
  double sum = 0.0;
  for (double p : est) sum += p;
  EXPECT_NEAR(sum, v(Coalition::grand(4)), 0.3);
}

TEST(Shapley, StratifiedInvalidArguments) {
  auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW(shapley_stratified(0, v, 10, 1), std::invalid_argument);
  EXPECT_THROW(shapley_stratified(3, v, 0, 1), std::invalid_argument);
}

TEST(Shapley, SampledDeterministicPerSeed) {
  auto v = [](Coalition c) { return static_cast<double>(c.mask() % 7); };
  EXPECT_EQ(shapley_sampled(4, v, 50, 9), shapley_sampled(4, v, 50, 9));
}

TEST(Shapley, SupermodularityChecker) {
  // v(C) = |C|^2 is supermodular; the glove game is not.
  auto convex = [](Coalition c) {
    return static_cast<double>(c.size() * c.size());
  };
  EXPECT_TRUE(is_supermodular(4, convex));
  EXPECT_FALSE(is_supermodular(3, glove_game));
}

TEST(Shapley, InvalidArguments) {
  auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW(shapley_exact(0, v), std::invalid_argument);
  EXPECT_THROW(shapley_sampled(3, v, 0, 1), std::invalid_argument);
  EXPECT_THROW(rand_sample_bound(3, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(rand_sample_bound(3, 0.1, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fairsched
