// The differential serve-vs-batch replay contract (serve/session.h): the
// same event trace fed through the online ServeSession and through the
// batch engine must produce byte-identical decision streams for every
// deterministic policy — including seeded ones (the decision sequence is a
// function of (trace, policy, seed) on both sides) and config-defined
// registry entries. Also pinned here: the corollaries that make the serve
// loop operable (stats-interval invariance, truncated-source prefix
// agreement, record/replay recovery), the trace round-trip, and the strict
// line-numbered protocol diagnostics.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/policy_registry.h"
#include "exp/scenarios.h"
#include "exp/sweep_config.h"
#include "serve/event_source.h"
#include "serve/live_instance.h"
#include "serve/session.h"
#include "sim/engine.h"

namespace fairsched {
namespace {

using exp::PolicyRegistry;
using serve::JobEvent;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServeSession;
using serve::SyntheticEventSource;
using serve::SyntheticServeSpec;
using serve::TraceEventSource;

// A small but adversarial synthetic session: more demand than machines so
// queues form, Zipf skew so some orgs churn while others stay resident.
SyntheticServeSpec test_spec(std::uint64_t seed = 2013) {
  SyntheticServeSpec spec;
  spec.orgs = 40;
  spec.machines_per_org = 1;
  spec.events = 3000;
  spec.arrival_rate = 30.0;  // ~30 * e^{3.5} >> 40 machines: overload
  spec.zipf_s = 1.0;
  spec.seed = seed;
  return spec;
}

std::string spec_to_trace(const SyntheticServeSpec& spec) {
  SyntheticEventSource source(spec);
  std::ostringstream out;
  serve::write_trace_header(out, source.machines());
  while (std::optional<JobEvent> event = source.next()) {
    serve::write_job_line(out, *event);
  }
  out << "end\n";
  return out.str();
}

struct ServeResult {
  std::string decisions;
  std::string recorded;
  ServeReport report;
};

ServeResult run_serve(const std::string& trace, const std::string& policy,
                      std::uint64_t seed, std::uint64_t stats_interval = 0,
                      Time horizon = 0) {
  std::istringstream in(trace);
  TraceEventSource source(in, "test-trace");
  std::ostringstream decisions;
  std::ostringstream recorded;
  std::ostringstream stats;
  ServeOptions options;
  options.horizon = horizon;
  options.stats_interval = stats_interval;
  options.stats = &stats;
  options.decisions = &decisions;
  options.record_trace = &recorded;
  ServeSession session(source.machines(),
                       PolicyRegistry::global().make_policy(policy, seed),
                       options);
  session.run(source);
  return ServeResult{decisions.str(), recorded.str(), session.report()};
}

std::string run_batch(const std::string& trace, const std::string& policy,
                      std::uint64_t seed, Time horizon = 0) {
  std::istringstream in(trace);
  TraceEventSource source(in, "test-trace");
  const Instance inst = serve::materialize_trace(source);
  std::ostringstream decisions;
  const std::unique_ptr<Policy> p =
      PolicyRegistry::global().make_policy(policy, seed);
  serve::replay_batch(inst, *p, horizon, &decisions);
  return decisions.str();
}

// Every policy-shaped kFirstFree registry entry — the policies the serve
// loop supports, resolved with default parameters.
std::vector<std::string> serveable_policies() {
  std::vector<std::string> result;
  PolicyRegistry& registry = PolicyRegistry::global();
  for (const std::string& name : registry.names()) {
    const PolicyRegistry::Definition* definition = registry.find(name);
    if (!definition->policy) continue;
    if (definition->engine_options.machine_pick != MachinePick::kFirstFree) {
      continue;
    }
    result.push_back(name);
  }
  return result;
}

TEST(ServeReplayTest, EveryServeablePolicyReplaysByteIdentically) {
  const std::string trace = spec_to_trace(test_spec());
  const std::vector<std::string> policies = serveable_policies();
  // The in-tree roster; growing it extends this differential suite
  // automatically.
  ASSERT_GE(policies.size(), 6u);
  for (const std::string& policy : policies) {
    const ServeResult serve = run_serve(trace, policy, /*seed=*/7);
    const std::string batch = run_batch(trace, policy, /*seed=*/7);
    ASSERT_FALSE(serve.decisions.empty()) << policy;
    EXPECT_EQ(serve.decisions, batch) << "policy " << policy;
    // Drained session: every arrival was admitted, started, and completed.
    EXPECT_EQ(serve.report.arrivals, 3000u) << policy;
    EXPECT_EQ(serve.report.decisions, 3000u) << policy;
    EXPECT_EQ(serve.report.completions, 3000u) << policy;
    EXPECT_EQ(serve.report.decision_latency.total_count(),
              serve.report.decisions)
        << policy;
  }
}

TEST(ServeReplayTest, ConfigDefinedPoliciesReplayByteIdentically) {
  // Register config-defined entries exactly as `--config` would; the serve
  // loop must drive them like any built-in.
  exp::ScenarioOptions defaults;
  std::istringstream config(
      "policies = servecfgswitch, servecfgmix\n"
      "workload = unit\n"
      "[policy servecfgswitch]\n"
      "switch = fairshare, roundrobin\n"
      "switch-at = 40\n"
      "[policy servecfgmix]\n"
      "mix = fairshare:0.7, fcfs:0.3\n");
  exp::parse_sweep_config(config, "test-serve.cfg", defaults);
  const std::string trace = spec_to_trace(test_spec(11));
  for (const std::string policy : {"servecfgswitch", "servecfgmix"}) {
    const ServeResult serve = run_serve(trace, policy, /*seed=*/3);
    EXPECT_EQ(serve.decisions, run_batch(trace, policy, /*seed=*/3))
        << policy;
  }
}

TEST(ServeReplayTest, SeededPoliciesDivergeAcrossSeedsButReplayEachSeed) {
  const std::string trace = spec_to_trace(test_spec());
  const ServeResult seed_a = run_serve(trace, "random", 1);
  const ServeResult seed_b = run_serve(trace, "random", 2);
  EXPECT_NE(seed_a.decisions, seed_b.decisions);
  EXPECT_EQ(seed_a.decisions, run_batch(trace, "random", 1));
  EXPECT_EQ(seed_b.decisions, run_batch(trace, "random", 2));
}

TEST(ServeReplayTest, StatsIntervalDoesNotPerturbDecisions) {
  const std::string trace = spec_to_trace(test_spec());
  const ServeResult quiet = run_serve(trace, "fairshare", 7, 0);
  const ServeResult chatty = run_serve(trace, "fairshare", 7, 1);
  const ServeResult sparse = run_serve(trace, "fairshare", 7, 500);
  EXPECT_EQ(quiet.decisions, chatty.decisions);
  EXPECT_EQ(quiet.decisions, sparse.decisions);
  EXPECT_EQ(quiet.report.final_time, chatty.report.final_time);
  EXPECT_GT(chatty.report.stats_lines, sparse.report.stats_lines);
}

TEST(ServeReplayTest, HorizonMatchesBatchHorizon) {
  const std::string trace = spec_to_trace(test_spec());
  for (const Time horizon : {Time{1}, Time{17}, Time{50}, Time{100000}}) {
    EXPECT_EQ(run_serve(trace, "fairshare", 7, 0, horizon).decisions,
              run_batch(trace, "fairshare", 7, horizon))
        << "horizon " << horizon;
  }
}

// Restart story, part 1: a source that stops mid-stream (crash, truncated
// log) yields exactly the full run's decisions up to the first missing
// event's time — the online loop never "invents" divergent history, it
// only drains the tail it believes is final.
TEST(ServeReplayTest, TruncatedSourceAgreesOnThePast) {
  const SyntheticServeSpec spec = test_spec();
  SyntheticEventSource full_source(spec);
  std::vector<JobEvent> events;
  while (std::optional<JobEvent> e = full_source.next()) {
    events.push_back(*e);
  }
  const std::size_t cut = events.size() / 2;
  const Time cut_time = events[cut].time;  // first event the crash lost

  std::ostringstream full_text;
  std::ostringstream cut_text;
  serve::write_trace_header(full_text, full_source.machines());
  serve::write_trace_header(cut_text, full_source.machines());
  for (std::size_t i = 0; i < events.size(); ++i) {
    serve::write_job_line(full_text, events[i]);
    if (i < cut) serve::write_job_line(cut_text, events[i]);
  }

  auto decisions_before = [](const std::string& stream, Time t) {
    std::vector<std::string> lines;
    std::istringstream in(stream);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string word;
      Time time = 0;
      fields >> word >> time;
      if (time < t) lines.push_back(line);
    }
    return lines;
  };
  const ServeResult full = run_serve(full_text.str(), "fairshare", 7);
  const ServeResult partial = run_serve(cut_text.str(), "fairshare", 7);
  EXPECT_EQ(decisions_before(partial.decisions, cut_time),
            decisions_before(full.decisions, cut_time));
}

// Restart story, part 2: replaying the session's own recorded event log
// through a fresh session reproduces the decision stream and counters
// exactly — a crashed daemon recovers by replay.
TEST(ServeReplayTest, RecordedTraceReplaysToTheIdenticalSession) {
  const std::string trace = spec_to_trace(test_spec());
  const ServeResult first = run_serve(trace, "currfairshare", 7);
  ASSERT_FALSE(first.recorded.empty());
  const ServeResult second = run_serve(first.recorded, "currfairshare", 7);
  EXPECT_EQ(first.decisions, second.decisions);
  EXPECT_EQ(first.report.arrivals, second.report.arrivals);
  EXPECT_EQ(first.report.decisions, second.report.decisions);
  EXPECT_EQ(first.report.final_time, second.report.final_time);
  EXPECT_EQ(first.recorded, second.recorded);  // recording is idempotent
}

TEST(ServeReplayTest, TraceRoundTripPreservesEveryEvent) {
  const SyntheticServeSpec spec = test_spec(5);
  SyntheticEventSource source(spec);
  std::vector<JobEvent> original;
  std::ostringstream text;
  serve::write_trace_header(text, source.machines());
  while (std::optional<JobEvent> e = source.next()) {
    original.push_back(*e);
    serve::write_job_line(text, *e);
  }
  std::istringstream in(text.str());
  TraceEventSource parsed(in, "round-trip");
  EXPECT_EQ(parsed.machines(), source.machines());
  std::vector<JobEvent> reparsed;
  while (std::optional<JobEvent> e = parsed.next()) {
    reparsed.push_back(*e);
  }
  EXPECT_EQ(reparsed, original);
}

// The strict protocol: every rejection is an std::invalid_argument naming
// the source and the 1-based line, mirroring parse_shard_spec's
// convention (the CLI turns it into "error: ..." + exit 1).
TEST(ServeReplayTest, MalformedTraceLinesReportLineNumbers) {
  auto parse_error = [](const std::string& text) -> std::string {
    std::istringstream in(text);
    try {
      TraceEventSource source(in, "bad-trace");
      while (source.next().has_value()) {
      }
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  auto expect_contains = [&](const std::string& text,
                             const std::string& needle) {
    const std::string what = parse_error(text);
    EXPECT_NE(what.find(needle), std::string::npos)
        << "wanted '" << needle << "' in: " << what;
  };
  expect_contains("org 1\njob 0 0 0\n", "bad-trace line 2");
  expect_contains("org 1\njob 0 0 0\n", "positive integer");
  // Blank and comment lines still count toward the line number.
  expect_contains("org 1\n# fine\n\njob 1 2 3\n", "line 4");
  expect_contains("org 1\njob 1 2 3\n", "organization id < 1");
  expect_contains("job 0 0 1\n", "before any `org`");
  expect_contains("org 1\njob 5 0 1\njob 4 0 1\n", "goes backwards");
  expect_contains("org 1\njob 1 0 1\norg 2\n", "platform is frozen");
  expect_contains("org 1\nfrob 1 2\n", "unknown directive 'frob'");
  expect_contains("org 1\nend\njob 1 0 1\n", "after `end`");
  expect_contains("org 1\njob 1 0\n", "want `job <time> <org> <processing>`");
  expect_contains("", "no organizations");
  expect_contains("org 1\njob 99999999999999999999 0 1\n",
                  "not a nonnegative integer");
}

// LiveInstance is the one sanctioned Instance mutator; its guards are what
// keep the grown instance identical to an InstanceBuilder build.
TEST(ServeReplayTest, LiveInstanceEnforcesBuilderInvariants) {
  serve::LiveInstance live({2, 1});
  EXPECT_EQ(live.num_orgs(), 2u);
  EXPECT_EQ(live.append_job(0, 5, 3), 0u);
  EXPECT_EQ(live.append_job(0, 5, 1), 1u);  // equal releases fine
  EXPECT_EQ(live.append_job(1, 2, 2), 0u);  // other org independent
  EXPECT_THROW(live.append_job(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(live.append_job(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(live.append_job(0, 9, 0), std::invalid_argument);
  EXPECT_EQ(live.num_jobs(), 3u);
  EXPECT_EQ(live.instance().total_work(), 6);
  EXPECT_EQ(live.instance().last_release(), 5);
  EXPECT_THROW(serve::LiveInstance({0, 0}), std::invalid_argument);
}

TEST(ServeReplayTest, InjectReleaseGuardsItsPreconditions) {
  serve::LiveInstance live({1});
  EngineOptions options;
  options.external_releases = true;
  Engine engine(live.instance(), options);
  EXPECT_THROW(engine.inject_release(0), std::logic_error);  // no job yet
  live.append_job(0, 3, 2);
  EXPECT_EQ(engine.inject_release(0), 3);
  EXPECT_EQ(engine.injected(0), 1u);
  EXPECT_THROW(engine.inject_release(0), std::logic_error);  // drained
  engine.advance_to(5);
  // LiveInstance accepts this append (release 4 >= the previous job's 3),
  // but the engine's clock is already at 5: events must be fed before the
  // loop advances past them, so the injection is refused.
  live.append_job(0, 4, 1);
  EXPECT_THROW(engine.inject_release(0), std::logic_error);
  // A non-external engine refuses injection outright.
  Engine batch(live.instance());
  EXPECT_THROW(batch.inject_release(0), std::logic_error);
  // And external mode composes only with kFirstFree.
  EngineOptions random_pick;
  random_pick.external_releases = true;
  random_pick.machine_pick = MachinePick::kRandomFree;
  EXPECT_THROW(Engine(live.instance(), random_pick), std::invalid_argument);
}

}  // namespace
}  // namespace fairsched
