// Exact-equivalence suite for the incremental (push-based) policy ports.
//
// Every in-tree policy used to be a pure select()-scan; the ports in
// sched/ answer the same question from an incrementally maintained mirror
// (sched/org_index.h). The contract is *bit-exact equivalence*, not
// approximation: on any instance, the incremental policy must produce the
// identical decision sequence — and therefore the identical schedule and
// utilities — as the historical scan, under both drivers:
//
//   * attached   — Engine::run delivers the push notifications;
//   * detached   — a manual driver steps advance_to/start_front without
//                  attaching, and the mirror heals through
//                  PolicyView::state_version (IncrementalPolicy::
//                  ensure_synced).
//
// The scan reference policies below are verbatim copies of the historical
// select() loops (first-strict-improvement argmin scans), kept here as the
// executable specification the ports are measured against.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "exp/policy_registry.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace fairsched {
namespace {

// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

// --- scan reference policies (the historical implementations) --------------

class ScanFcfs : public Policy {
 public:
  OrgId select(const PolicyView& view) override {
    OrgId best = kNoOrg;
    Time best_release = 0;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) == 0) continue;
      const Time r = view.front_release(u);
      if (best == kNoOrg || r < best_release) {
        best = u;
        best_release = r;
      }
    }
    return best;
  }
};

class ScanRoundRobin : public Policy {
 public:
  void reset(const PolicyView& /*view*/) override { cursor_ = 0; }
  OrgId select(const PolicyView& view) override {
    const std::uint32_t n = view.num_orgs();
    for (std::uint32_t i = 0; i < n; ++i) {
      const OrgId u = (cursor_ + i) % n;
      if (view.waiting(u) > 0) {
        cursor_ = (u + 1) % n;
        return u;
      }
    }
    return kNoOrg;
  }

 private:
  OrgId cursor_ = 0;
};

class ScanRandom : public Policy {
 public:
  explicit ScanRandom(std::uint64_t seed) : rng_(seed) {}
  OrgId select(const PolicyView& view) override {
    // The historical scan built the ascending candidate vector and drew
    // one index; OrderStatSet::kth must reproduce both the draw and the
    // pick bit-for-bit.
    std::vector<OrgId> candidates;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) > 0) candidates.push_back(u);
    }
    return candidates[static_cast<std::size_t>(
        rng_.uniform_u64(candidates.size()))];
  }

 private:
  Rng rng_;
};

// The fair-share family's class-then-ratio-then-first-wins scan;
// parameterized over the balanced metric exactly as the policies are.
class ScanRatioShare : public Policy {
 public:
  using Metric = double (*)(const PolicyView&, OrgId);
  explicit ScanRatioShare(Metric metric) : metric_(metric) {}

  OrgId select(const PolicyView& view) override {
    OrgId best = kNoOrg;
    double best_ratio = std::numeric_limits<double>::infinity();
    bool best_zero_share = true;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) == 0) continue;
      const double share = view.share(u);
      const bool zero_share = share <= 0.0;
      const double ratio = zero_share ? 0.0 : metric_(view, u) / share;
      if (best == kNoOrg || (best_zero_share && !zero_share) ||
          (best_zero_share == zero_share && ratio < best_ratio)) {
        best = u;
        best_ratio = ratio;
        best_zero_share = zero_share;
      }
    }
    return best;
  }

 private:
  Metric metric_;
};

class ScanDirectContr : public Policy {
 public:
  OrgId select(const PolicyView& view) override {
    // Largest deficit phi~ - psi == smallest psi2 - contrib_psi2.
    OrgId best = kNoOrg;
    HalfUtil best_key = 0;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) == 0) continue;
      const HalfUtil key = view.psi2(u) - view.contrib_psi2(u);
      if (best == kNoOrg || key < best_key) {
        best = u;
        best_key = key;
      }
    }
    return best;
  }
};

std::unique_ptr<Policy> make_scan_reference(const std::string& name,
                                            std::uint64_t seed) {
  if (name == "fcfs") return std::make_unique<ScanFcfs>();
  if (name == "roundrobin") return std::make_unique<ScanRoundRobin>();
  if (name == "random") return std::make_unique<ScanRandom>(seed);
  if (name == "fairshare") {
    return std::make_unique<ScanRatioShare>(
        +[](const PolicyView& view, OrgId u) {
          return static_cast<double>(view.work_done(u));
        });
  }
  if (name == "utfairshare") {
    return std::make_unique<ScanRatioShare>(
        +[](const PolicyView& view, OrgId u) {
          return static_cast<double>(view.psi2(u)) / 2.0;
        });
  }
  if (name == "currfairshare") {
    return std::make_unique<ScanRatioShare>(
        +[](const PolicyView& view, OrgId u) {
          return static_cast<double>(view.running(u));
        });
  }
  if (name == "directcontr") return std::make_unique<ScanDirectContr>();
  ADD_FAILURE() << "no scan reference for " << name;
  return nullptr;
}

// --- drivers ----------------------------------------------------------------

using Decision = std::pair<Time, OrgId>;

struct RunTrace {
  std::vector<Decision> decisions;
  std::vector<HalfUtil> utilities2;
  std::vector<Placement> placements;
};

// Forwards everything to `inner` and records each (time, selection).
class Recorder : public Policy {
 public:
  Recorder(Policy& inner, std::vector<Decision>& out)
      : inner_(inner), out_(out) {}
  void reset(const PolicyView& view) override { inner_.reset(view); }
  OrgId select(const PolicyView& view) override {
    const OrgId u = inner_.select(view);
    out_.emplace_back(view.now(), u);
    return u;
  }
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override {
    inner_.on_start(view, org, index, machine);
  }
  void on_release(const PolicyView& view, OrgId org) override {
    inner_.on_release(view, org);
  }
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override {
    inner_.on_complete(view, org, machine);
  }
  void on_advance(const PolicyView& view, Time dt) override {
    inner_.on_advance(view, dt);
  }

 private:
  Policy& inner_;
  std::vector<Decision>& out_;
};

RunTrace finish(const Engine& engine) {
  RunTrace trace;
  for (OrgId u = 0; u < engine.num_orgs(); ++u) {
    trace.utilities2.push_back(engine.psi2(u));
  }
  trace.placements = engine.schedule().placements();
  return trace;
}

// Engine::run — the policy is attached and receives every notification.
RunTrace run_attached(const Instance& inst, Policy& policy, Time horizon) {
  Engine engine(inst);
  std::vector<Decision> decisions;
  Recorder recorder(policy, decisions);
  engine.run(recorder, horizon);
  RunTrace trace = finish(engine);
  trace.decisions = std::move(decisions);
  return trace;
}

// Manual stepping without attach(): the policy sees no notifications and
// must answer from the view alone. Waking at *every* event (not just
// next_decision_time) also cross-checks the run loop's wake-skipping.
RunTrace run_detached(const Instance& inst, Policy& policy, Time horizon,
                      bool call_reset) {
  Engine engine(inst);
  PolicyView view(engine);
  if (call_reset) policy.reset(view);
  std::vector<Decision> decisions;
  for (;;) {
    while (engine.needs_decision()) {
      const OrgId u = policy.select(view);
      decisions.emplace_back(engine.now(), u);
      engine.start_front(u);
    }
    const Time t = engine.next_event();
    if (t == kTimeInfinity || t >= horizon) break;
    engine.advance_to(t);
  }
  engine.advance_to(horizon);
  RunTrace trace = finish(engine);
  trace.decisions = std::move(decisions);
  return trace;
}

// Random contended instances; some organizations contribute no machines.
Instance random_instance(std::uint64_t seed) {
  Rng rng(mix_seed(seed, 0xE0F1));
  InstanceBuilder b;
  const std::uint32_t k =
      2 + static_cast<std::uint32_t>(rng.uniform_u64(4));
  std::uint32_t total_machines = 0;
  for (std::uint32_t u = 0; u < k; ++u) {
    const std::uint32_t m = static_cast<std::uint32_t>(rng.uniform_u64(3));
    total_machines += m;
    b.add_org("o" + std::to_string(u), m);
  }
  if (total_machines == 0) b.add_org("backbone", 2);
  const std::uint64_t jobs = 20 + rng.uniform_u64(60);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
              static_cast<Time>(rng.uniform_u64(60)),
              1 + static_cast<Time>(rng.uniform_u64(12)));
  }
  return std::move(b).build();
}

using EquivCase = std::tuple<std::string, std::uint64_t>;

std::string case_name(const ::testing::TestParamInfo<EquivCase>& info) {
  return std::get<0>(info.param) + "_s" +
         std::to_string(std::get<1>(info.param));
}

class PolicyEquivalence : public ::testing::TestWithParam<EquivCase> {};

// The tentpole guarantee: the incremental port and the historical scan
// make the identical decisions, hence the identical schedule and exact
// integer utilities.
TEST_P(PolicyEquivalence, IncrementalPortMatchesScanReference) {
  const auto& [name, seed] = GetParam();
  const Instance inst = random_instance(seed);
  const Time horizon = 60 + static_cast<Time>(seed % 5) * 20;

  const auto incremental = registry().make_policy(name, seed);
  const auto scan = make_scan_reference(name, seed);
  const RunTrace a = run_attached(inst, *incremental, horizon);
  const RunTrace b = run_attached(inst, *scan, horizon);

  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.utilities2, b.utilities2);
}

// Driver independence: an attached run and a detached manual stepping loop
// (which also wakes at every event instead of skipping) agree exactly.
TEST_P(PolicyEquivalence, AttachedRunMatchesDetachedStepping) {
  const auto& [name, seed] = GetParam();
  const Instance inst = random_instance(seed);
  const Time horizon = 60 + static_cast<Time>(seed % 5) * 20;

  const auto attached_policy = registry().make_policy(name, seed);
  const auto detached_policy = registry().make_policy(name, seed);
  const RunTrace a = run_attached(inst, *attached_policy, horizon);
  const RunTrace d =
      run_detached(inst, *detached_policy, horizon, /*call_reset=*/true);

  EXPECT_EQ(a.decisions, d.decisions);
  EXPECT_EQ(a.placements, d.placements);
  EXPECT_EQ(a.utilities2, d.utilities2);
}

INSTANTIATE_TEST_SUITE_P(
    Ports, PolicyEquivalence,
    ::testing::Combine(
        ::testing::Values("fcfs", "roundrobin", "random", "fairshare",
                          "utfairshare", "currfairshare", "directcontr"),
        ::testing::Values<std::uint64_t>(1, 2, 3, 4)),
    case_name);

// A mirror must also survive a driver that neither attaches nor resets:
// ensure_synced() has to rebuild everything from the view on first use.
TEST(PolicyEquivalence, DetachedWithoutResetHealsFromTheView) {
  for (const char* name : {"fcfs", "roundrobin", "fairshare"}) {
    const Instance inst = random_instance(7);
    const auto attached_policy = registry().make_policy(name);
    const auto cold_policy = registry().make_policy(name);
    const RunTrace a = run_attached(inst, *attached_policy, 100);
    const RunTrace d =
        run_detached(inst, *cold_policy, 100, /*call_reset=*/false);
    EXPECT_EQ(a.decisions, d.decisions) << name;
    EXPECT_EQ(a.utilities2, d.utilities2) << name;
  }
}

// --- push-lifecycle delivery probe ------------------------------------------

// Counts every notification and checks the documented delivery points
// (sim/policy.h): on_release after the waiting count grew, on_complete
// after the machine freed, on_advance with the positive clock delta.
class CountingPolicy : public Policy {
 public:
  OrgId select(const PolicyView& view) override {
    ++selects;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) > 0) return u;
    }
    return kNoOrg;
  }
  void on_release(const PolicyView& view, OrgId org) override {
    ++releases;
    EXPECT_GT(view.waiting(org), 0u);
  }
  void on_complete(const PolicyView& view, OrgId /*org*/,
                   MachineId /*machine*/) override {
    ++completes;
    EXPECT_GT(view.free_machines(), 0u);
  }
  void on_advance(const PolicyView& /*view*/, Time dt) override {
    EXPECT_GT(dt, 0);
    advanced += dt;
  }
  void on_start(const PolicyView& view, OrgId org, std::uint32_t /*index*/,
                MachineId /*machine*/) override {
    ++starts;
    EXPECT_GT(view.running(org), 0u);
  }

  std::uint64_t selects = 0;
  std::uint64_t releases = 0;
  std::uint64_t completes = 0;
  std::uint64_t starts = 0;
  Time advanced = 0;
};

TEST(PushLifecycle, EveryEventAndStartIsDeliveredExactlyOnce) {
  const Instance inst = random_instance(11);
  const Time horizon = 120;
  Engine engine(inst);
  CountingPolicy policy;
  engine.run(policy, horizon);

  // One notification per processed event, one on_start per decision, and
  // the advance deltas telescope over the whole run.
  EXPECT_EQ(policy.releases + policy.completes, engine.events_processed());
  EXPECT_EQ(policy.starts, engine.decisions_made());
  EXPECT_EQ(policy.selects, policy.starts);
  EXPECT_EQ(policy.advanced, horizon);
  EXPECT_GT(policy.releases, 0u);
  EXPECT_GT(policy.completes, 0u);
}

}  // namespace
}  // namespace fairsched
