// Tests for the discrete-event engine: event ordering, greedy/FIFO
// feasibility of produced schedules, and exactness of the closed-form
// utility accrual against the Eq. 3 closed form evaluated on the final
// schedule.

#include "sim/engine.h"

#include <gtest/gtest.h>

#include "metrics/utility.h"
#include "sched/fcfs.h"
#include "sched/round_robin.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {

Instance small_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 2);
  b.add_job(a, 0, 4);
  b.add_job(a, 2, 3);
  b.add_job(a, 2, 5);
  b.add_job(c, 1, 2);
  b.add_job(c, 1, 6);
  b.add_job(c, 8, 1);
  return std::move(b).build();
}

TEST(Engine, ProducesFeasibleGreedySchedule) {
  const Instance inst = small_instance();
  Engine engine(inst);
  FcfsPolicy policy;
  engine.run(policy, 100);
  EXPECT_EQ(engine.schedule().validate(inst, 100), std::nullopt);
  EXPECT_EQ(engine.schedule().size(), inst.num_jobs());
}

TEST(Engine, AccruedUtilitiesMatchClosedFormOnSchedule) {
  const Instance inst = small_instance();
  for (Time horizon : {3, 5, 8, 11, 14, 50}) {
    Engine engine(inst);
    FcfsPolicy policy;
    engine.run(policy, horizon);
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_EQ(engine.psi2(u),
                sp_org_half_utility(inst, engine.schedule(), u, horizon))
          << "u=" << u << " horizon=" << horizon;
    }
  }
}

TEST(Engine, WorkDoneMatchesCompletedWork) {
  const Instance inst = small_instance();
  for (Time horizon : {4, 9, 40}) {
    Engine engine(inst);
    RoundRobinPolicy policy;
    engine.run(policy, horizon);
    EXPECT_EQ(engine.total_work_done(),
              completed_work(inst, engine.schedule(), horizon));
  }
}

TEST(Engine, ContributionAccountingConserved) {
  // Sum over orgs of contribution work == sum of utility work (every
  // executed unit belongs to exactly one job and one machine), and the same
  // for the psi2-valued aggregates.
  const Instance inst = small_instance();
  Engine engine(inst);
  FcfsPolicy policy;
  engine.run(policy, 25);
  std::int64_t work_u = 0, work_c = 0;
  HalfUtil psi_u = 0, psi_c = 0;
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    work_u += engine.work_done(u);
    work_c += engine.contrib_work(u);
    psi_u += engine.psi2(u);
    psi_c += engine.contrib_psi2(u);
  }
  EXPECT_EQ(work_u, work_c);
  EXPECT_EQ(psi_u, psi_c);
}

TEST(Engine, HorizonTruncatesAccounting) {
  const Instance inst = small_instance();
  Engine early(inst), late(inst);
  FcfsPolicy p1, p2;
  early.run(p1, 6);
  late.run(p2, 60);
  // At the early horizon strictly less work is accounted.
  EXPECT_LT(early.total_work_done(), late.total_work_done());
  EXPECT_EQ(late.total_work_done(), inst.total_work());
}

TEST(Engine, CoalitionRestrictionUsesOnlyMemberResources) {
  const Instance inst = small_instance();
  Engine engine(inst, Coalition::singleton(0));
  FcfsPolicy policy;
  engine.run(policy, 100);
  EXPECT_EQ(engine.total_machines(), 1u);
  // Only org 0's jobs ran.
  EXPECT_EQ(engine.completed(0), 3u);
  EXPECT_EQ(engine.completed(1), 0u);
  EXPECT_EQ(engine.psi2(1), 0);
  // Org 0 alone on one machine: jobs back to back 0-4, 4-7, 7-12.
  EXPECT_EQ(engine.schedule().start_of(0, 0), 0);
  EXPECT_EQ(engine.schedule().start_of(0, 1), 4);
  EXPECT_EQ(engine.schedule().start_of(0, 2), 7);
}

TEST(Engine, PairCoalitionSharesMachines) {
  const Instance inst = small_instance();
  Engine engine(inst, Coalition::grand(2));
  FcfsPolicy policy;
  engine.run(policy, 100);
  EXPECT_EQ(engine.total_machines(), 3u);
  EXPECT_EQ(engine.completed(0) + engine.completed(1), 6u);
}

TEST(Engine, ManualSteppingMatchesRun) {
  const Instance inst = small_instance();
  Engine manual(inst);
  FcfsPolicy policy;
  PolicyView view(manual);
  const Time horizon = 40;
  for (;;) {
    const Time t = manual.next_event();
    if (t == kTimeInfinity || t >= horizon) break;
    manual.advance_to(t);
    while (manual.needs_decision()) {
      manual.start_front(policy.select(view));
    }
  }
  manual.advance_to(horizon);

  Engine driven(inst);
  FcfsPolicy policy2;
  driven.run(policy2, horizon);
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(manual.psi2(u), driven.psi2(u));
  }
  EXPECT_EQ(manual.schedule().placements().size(),
            driven.schedule().placements().size());
}

TEST(Engine, StartFrontPreconditionsEnforced) {
  const Instance inst = small_instance();
  Engine engine(inst);
  // At time 0 nothing has been released for org 1 yet.
  engine.advance_to(0);
  EXPECT_THROW(engine.start_front(1), std::logic_error);
}

TEST(Engine, RandomMachinePickStillFeasible) {
  const Instance inst = small_instance();
  EngineOptions options;
  options.machine_pick = MachinePick::kRandomFree;
  options.seed = 7;
  Engine engine(inst, options);
  FcfsPolicy policy;
  engine.run(policy, 100);
  EXPECT_EQ(engine.schedule().validate(inst, 100), std::nullopt);
}

TEST(Engine, RandomMachinePickDeterministicPerSeed) {
  const Instance inst = small_instance();
  auto run_once = [&](std::uint64_t seed) {
    EngineOptions options;
    options.machine_pick = MachinePick::kRandomFree;
    options.seed = seed;
    Engine engine(inst, options);
    FcfsPolicy policy;
    engine.run(policy, 100);
    std::vector<MachineId> machines;
    for (const Placement& p : engine.schedule().placements()) {
      machines.push_back(p.machine);
    }
    return machines;
  };
  EXPECT_EQ(run_once(3), run_once(3));
}

TEST(Engine, LargerSyntheticWorkloadStaysConsistent) {
  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst = make_synthetic_instance(spec, 4, 4000,
                                                MachineSplit::kZipf, 1.0, 99);
  const Time horizon = 4000;
  Engine engine(inst);
  FcfsPolicy policy;
  engine.run(policy, horizon);
  EXPECT_EQ(engine.schedule().validate(inst, horizon), std::nullopt);
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(engine.psi2(u),
              sp_org_half_utility(inst, engine.schedule(), u, horizon));
  }
  EXPECT_EQ(engine.total_work_done(),
            completed_work(inst, engine.schedule(), horizon));
}

TEST(Engine, NoJobsMeansNoEvents) {
  InstanceBuilder b;
  b.add_org("a", 3);
  const Instance inst = std::move(b).build();
  Engine engine(inst);
  EXPECT_EQ(engine.next_event(), kTimeInfinity);
  FcfsPolicy policy;
  engine.run(policy, 100);
  EXPECT_EQ(engine.total_work_done(), 0);
}

}  // namespace
}  // namespace fairsched
