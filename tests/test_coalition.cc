// Tests for Coalition bitmask helpers and Shapley weights.

#include "core/coalition.h"

#include <gtest/gtest.h>

#include <set>

namespace fairsched {
namespace {

TEST(Coalition, GrandAndEmpty) {
  EXPECT_EQ(Coalition::grand(3).mask(), 0b111u);
  EXPECT_EQ(Coalition::grand(1).mask(), 0b1u);
  EXPECT_TRUE(Coalition::empty().is_empty());
  EXPECT_EQ(Coalition::grand(3).size(), 3u);
}

TEST(Coalition, MembershipOps) {
  Coalition c = Coalition::empty().with(0).with(2);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.without(0).contains(0));
  EXPECT_EQ(c.without(0).size(), 1u);
}

TEST(Coalition, SubsetOf) {
  const Coalition small(0b010), big(0b011);
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(big.subset_of(big));
  EXPECT_TRUE(Coalition::empty().subset_of(small));
}

TEST(Coalition, Members) {
  const Coalition c(0b1011);
  const auto m = c.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[1], 1u);
  EXPECT_EQ(m[2], 3u);
}

TEST(Coalition, SubsetsEnumeration) {
  const Coalition c(0b101);
  const auto subs = c.subsets();
  EXPECT_EQ(subs.size(), 4u);
  std::set<Coalition::Mask> masks;
  for (const auto s : subs) {
    masks.insert(s.mask());
    EXPECT_TRUE(s.subset_of(c));
  }
  EXPECT_EQ(masks, (std::set<Coalition::Mask>{0b000, 0b001, 0b100, 0b101}));
}

TEST(Coalition, SubsetsBySize) {
  const auto by_size = Coalition::grand(4).subsets_by_size();
  ASSERT_EQ(by_size.size(), 5u);
  EXPECT_EQ(by_size[0].size(), 1u);
  EXPECT_EQ(by_size[1].size(), 4u);
  EXPECT_EQ(by_size[2].size(), 6u);
  EXPECT_EQ(by_size[3].size(), 4u);
  EXPECT_EQ(by_size[4].size(), 1u);
}

TEST(Coalition, ForEachSubsetVisitsAllOnce) {
  const Coalition c(0b1101);
  std::set<Coalition::Mask> seen;
  for_each_subset(c, [&](Coalition s) {
    EXPECT_TRUE(seen.insert(s.mask()).second);
  });
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ShapleyWeights, SumsToOneOverOrderings) {
  // sum over s of C(k-1, s-1) * weight(s) == 1 for each player.
  for (std::uint32_t k = 1; k <= 10; ++k) {
    const ShapleyWeights w(k);
    double total = 0.0;
    double binom = 1.0;  // C(k-1, s-1) starting at s=1
    for (std::uint32_t s = 1; s <= k; ++s) {
      total += binom * w.weight(s);
      binom = binom * static_cast<double>(k - s) / static_cast<double>(s);
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "k=" << k;
  }
}

TEST(ShapleyWeights, KnownSmallValues) {
  const ShapleyWeights w3(3);
  EXPECT_NEAR(w3.weight(1), 2.0 / 6.0, 1e-15);  // 0! 2! / 3!
  EXPECT_NEAR(w3.weight(2), 1.0 / 6.0, 1e-15);  // 1! 1! / 3!
  EXPECT_NEAR(w3.weight(3), 2.0 / 6.0, 1e-15);  // 2! 0! / 3!
}

TEST(ShapleyWeights, RejectsOutOfRange) {
  EXPECT_THROW(ShapleyWeights(0), std::invalid_argument);
  EXPECT_THROW(ShapleyWeights(32), std::invalid_argument);
}

}  // namespace
}  // namespace fairsched
