// Tests for the declarative sweep-config front end (exp/sweep_config):
// key = value parsing, axis lines with lo:hi[:step] ranges, precedence over
// command-line defaults, and error reporting with <source>:<line> context.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/scenarios.h"
#include "exp/sweep.h"
#include "exp/sweep_config.h"
#include "strategy/deviation.h"
#include "util/cli.h"

namespace fairsched::exp {
namespace {

SweepSpec parse(const std::string& text,
                const ScenarioOptions& defaults = ScenarioOptions{}) {
  std::istringstream in(text);
  return parse_sweep_config(in, "test.cfg", defaults);
}

// Expects parse(text) to throw std::invalid_argument whose message contains
// every needle (e.g. the "test.cfg:<line>:" prefix and the offending key).
void expect_parse_error(const std::string& text,
                        const std::vector<std::string>& needles) {
  try {
    parse(text);
    FAIL() << "expected std::invalid_argument for:\n" << text;
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "missing '" << needle << "' in: " << message;
    }
  }
}

TEST(SweepConfig, ParsesAFullConfig) {
  const SweepSpec spec = parse(
      "# Fig. 10 over two machine splits, no recompile\n"
      "name = fig10-splits\n"
      "title = custom title\n"
      "note = custom note\n"
      "policies = roundrobin, rand5\n"
      "workload = unit\n"
      "instances = 4\n"
      "duration = 300\n"
      "seed = 99\n"
      "jobs-per-org = 30\n"
      "axis orgs = 2:4\n"
      "axis split = zipf, uniform\n");
  EXPECT_EQ(spec.name, "fig10-splits");
  EXPECT_EQ(spec.title, "custom title");
  EXPECT_EQ(spec.note, "custom note");
  EXPECT_EQ(spec.policies,
            (std::vector<std::string>{"roundrobin", "rand5"}));
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].kind, SweepWorkload::Kind::kUnitJobs);
  EXPECT_EQ(spec.workloads[0].unit_jobs_per_org, 30u);
  EXPECT_EQ(spec.instances, 4u);
  EXPECT_EQ(spec.horizon, 300);
  EXPECT_EQ(spec.seed, 99u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "orgs");
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(spec.axes[1].name, "split");
  EXPECT_EQ(spec.axes[1].values, (std::vector<double>{0, 1}));
  EXPECT_EQ(num_axis_points(spec), 6u);
}

TEST(SweepConfig, CacheKeysControlTheWorkloadCache) {
  // cache-mb sizes the budget; cache = off is the config-file --no-cache.
  EXPECT_EQ(parse("cache-mb = 64\n").cache_bytes,
            std::size_t{64} << 20);
  EXPECT_EQ(parse("cache = off\n").cache_bytes, 0u);
  EXPECT_EQ(parse("cache-mb = 0\n").cache_bytes, 0u);
  // cache = on restores caching after a --no-cache default on the CLI;
  // a positive cache-mb only sizes the budget and must NOT override an
  // explicit --no-cache.
  ScenarioOptions no_cache;
  no_cache.no_cache = true;
  EXPECT_EQ(parse("", no_cache).cache_bytes, 0u);
  EXPECT_EQ(parse("cache-mb = 64\n", no_cache).cache_bytes, 0u);
  EXPECT_EQ(parse("cache = on\n", no_cache).cache_bytes,
            kDefaultCacheBytes);
  EXPECT_EQ(parse("cache = on\ncache-mb = 64\n", no_cache).cache_bytes,
            std::size_t{64} << 20);
  expect_parse_error("cache = sometimes\n",
                     {"test.cfg:1", "cache must be on or off"});
  expect_parse_error("cache-mb = -3\n",
                     {"test.cfg:1", "cache-mb must be non-negative"});
}

TEST(SweepConfig, FileKeysWinOverCommandLineDefaults) {
  ScenarioOptions defaults;
  defaults.instances = 3;
  defaults.orgs = 7;
  defaults.workload = "unit";
  // The file overrides instances but inherits orgs and the workload.
  const SweepSpec spec = parse("instances = 5\npolicies = fcfs\n", defaults);
  EXPECT_EQ(spec.instances, 5u);
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].orgs, 7u);
}

TEST(SweepConfig, BaselineNoneDisablesFairnessMetrics) {
  EXPECT_EQ(parse("policies = fcfs\nbaseline = none\n").baseline, "");
  EXPECT_EQ(parse("policies = fcfs\nbaseline = fairshare\n").baseline,
            "fairshare");
  EXPECT_EQ(parse("policies = fcfs\n").baseline, "ref");
}

TEST(SweepConfig, RangesExpandInclusively) {
  const SweepSpec spec = parse(
      "policies = fcfs\nworkload = unit\n"
      "axis horizon = 100:400:150, 1000\n"
      "axis zipf-s = 0.5:1.5:0.5\n");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{100, 250, 400, 1000}));
  ASSERT_EQ(spec.axes[1].values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[0], 0.5);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[2], 1.5);
}

TEST(SweepConfig, LongFractionalRangeKeepsItsEndpoint) {
  // v += step accumulation would drop the inclusive endpoint here; the
  // expansion must be index-based.
  const SweepSpec spec = parse(
      "policies = fcfs\nworkload = unit\naxis zipf-s = 0:5000:0.1\n");
  ASSERT_EQ(spec.axes[0].values.size(), 50001u);
  EXPECT_DOUBLE_EQ(spec.axes[0].values.back(), 5000.0);
  EXPECT_DOUBLE_EQ(spec.axes[0].values.front(), 0.0);
}

TEST(SweepConfig, ReportsErrorsWithSourceAndLine) {
  expect_parse_error("policies = fcfs\nbogus = 1\n",
                     {"test.cfg:2", "unknown key 'bogus'", "known keys"});
  expect_parse_error("instances = nope\n", {"test.cfg:1", "number"});
  expect_parse_error("instances = 2.5\n", {"test.cfg:1", "integer"});
  expect_parse_error("instances = 0\n", {"test.cfg:1", ">= 1"});
  expect_parse_error("just some words\n", {"test.cfg:1", "key = value"});
  expect_parse_error("axis bogus = 1,2\n",
                     {"test.cfg:1", "unknown sweep axis", "known axes"});
  expect_parse_error("axis orgs =\n", {"test.cfg:1", "no values"});
  expect_parse_error("axis orgs = 4:2\n",
                     {"test.cfg:1", "descending range", "hi < lo"});
  expect_parse_error("axis orgs = 2:4:0\n",
                     {"test.cfg:1", "step must be positive"});
  expect_parse_error("axis orgs = 2:3:4:5\n",
                     {"test.cfg:1", "malformed range"});
  // Empty range fields are typos, not step-1 ranges.
  expect_parse_error("axis orgs = 2::8\n", {"test.cfg:1", "malformed range"});
  expect_parse_error("axis orgs = :8\n", {"test.cfg:1", "malformed range"});
  expect_parse_error("axis orgs = 2:\n", {"test.cfg:1", "malformed range"});
  expect_parse_error("orgs = 4294967297\n", {"test.cfg:1", "2^32-1"});
  expect_parse_error("axis orgs = 2,3\naxis orgs = 4\n",
                     {"test.cfg:2", "duplicate axis"});
  expect_parse_error("split = sideways\n", {"test.cfg:1", "zipf or uniform"});
  expect_parse_error("scale = -2\n", {"test.cfg:1", "positive"});
  // Errors surfaced while building the spec carry the source name.
  expect_parse_error("workload = bogus\n", {"test.cfg", "--workload"});
  expect_parse_error("policies = fcfs,nope\n", {"test.cfg", "nope"});
}

TEST(SweepConfig, DescendingAndNegativeRangesAreHandledExplicitly) {
  // Descending lo:hi is a typo, not an implicit reversal: the error says
  // what happened and what to do instead.
  try {
    parse_axes_spec("horizon=400:100");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("descending range '400:100'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("list the values explicitly"), std::string::npos)
        << what;
  }
  // ...and so is a negative step, even when it would "reach" hi.
  try {
    parse_axes_spec("horizon=400:100:-100");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("step must be positive"),
              std::string::npos);
  }
  // Negative bounds are legal range arithmetic (the axis's own value
  // validation decides whether negatives make sense for its bind).
  const std::vector<SweepAxis> axes = parse_axes_spec("zipf-s=-2:-1:0.5");
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0].values, (std::vector<double>{-2, -1.5, -1}));
  // zipf-s rejects negative values at plan time with the axis named.
  SweepSpec spec;
  spec.name = "negative";
  spec.policies = {"fcfs"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  spec.workloads.push_back(w);
  spec.axes = axes;
  try {
    SweepDriver().run(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zipf-s"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("non-negative"),
              std::string::npos);
  }
}

TEST(SweepConfig, DuplicateAxesAreRejectedWhereverTheyAppear) {
  // In a config file (same axis key twice, aliases included)...
  expect_parse_error("policies = fcfs\naxis horizon = 1000\n"
                     "axis duration = 2000\n",
                     {"test.cfg:3", "duplicate axis 'horizon'"});
  // ...and on the --axes flag, caught by plan validation.
  SweepSpec spec;
  spec.name = "dup";
  spec.policies = {"fcfs"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  spec.workloads.push_back(w);
  spec.axes = parse_axes_spec("orgs=2,3;orgs=4,5");
  try {
    SweepDriver().run(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate axis 'orgs'"),
              std::string::npos);
  }
}

TEST(SweepConfig, ParsesAxesSpecFlag) {
  const std::vector<SweepAxis> axes =
      parse_axes_spec("orgs=2,3 ; half_life = 500:1500:500");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].name, "orgs");
  EXPECT_EQ(axes[0].values, (std::vector<double>{2, 3}));
  EXPECT_EQ(axes[1].name, "half-life");
  EXPECT_EQ(axes[1].values, (std::vector<double>{500, 1000, 1500}));
  EXPECT_TRUE(parse_axes_spec("").empty());
  EXPECT_THROW(parse_axes_spec("orgs"), std::invalid_argument);
  EXPECT_THROW(parse_axes_spec("bogus=1"), std::invalid_argument);
}

TEST(SweepConfig, ParsedConfigRunsEndToEnd) {
  const SweepSpec spec = parse(
      "name = e2e\npolicies = fcfs, roundrobin\nworkload = unit\n"
      "instances = 2\nduration = 100\njobs-per-org = 20\n"
      "axis orgs = 2,3\n");
  std::size_t runs = 0;
  const SweepResult result = SweepDriver().run(
      spec, nullptr, [&runs](const RunRecord&) { ++runs; });
  EXPECT_EQ(result.axis_points, 2u);
  EXPECT_EQ(runs, 2u * 2u * 2u);  // points x instances x policies
  EXPECT_EQ(result.cells.size(), 4u);
}

TEST(SweepConfig, PolicyBlocksDefineUsableEntries) {
  const SweepSpec spec = parse(
      "name = blocks\n"
      "policies = cfgslow, cfgswitch, cfgmix, fairshare\n"
      "workload = unit\n"
      "instances = 2\n"
      "duration = 120\n"
      "jobs-per-org = 25\n"
      "axis cfgswitch-switch-at = 30, 90\n"  // before the block on purpose
      "\n"
      "[policy cfgslow]\n"
      "base = decayfairshare\n"
      "half-life = 25000\n"
      "description = long-memory decay\n"
      "\n"
      "[policy cfgswitch]\n"
      "switch = fairshare, roundrobin\n"
      "switch-at = 60\n"
      "\n"
      "[policy cfgmix]\n"
      "mix = fairshare:0.7, roundrobin:0.3\n");
  EXPECT_EQ(spec.policies,
            (std::vector<std::string>{"cfgslow", "cfgswitch", "cfgmix",
                                      "fairshare"}));
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].name, "cfgswitch-switch-at");
  EXPECT_EQ(spec.axes[0].bind, SweepAxis::Bind::kPolicyParam);
  EXPECT_EQ(spec.axes[0].scope, SweepAxis::Scope::kPolicy);

  PolicyRegistry& registry = PolicyRegistry::global();
  // The derived entry inherits its base's declarations with new defaults.
  EXPECT_DOUBLE_EQ(
      registry.make("cfgslow").params.at("half-life").real_value, 25000.0);
  EXPECT_DOUBLE_EQ(registry.make("cfgslow(half-life=10)")
                       .params.at("half-life")
                       .real_value,
                   10.0);
  EXPECT_EQ(registry.make("cfgswitch").params.at("switch-at").int_value,
            60);

  // ...and the whole sweep runs end-to-end through the driver.
  std::size_t runs = 0;
  const SweepResult result =
      SweepDriver().run(spec, nullptr, [&runs](const RunRecord&) { ++runs; });
  EXPECT_EQ(result.axis_points, 2u);
  EXPECT_EQ(runs, 2u * 2u * 4u);  // points x instances x policies
}

TEST(SweepConfig, SweepSectionReturnsToTopLevelKeys) {
  const SweepSpec spec = parse(
      "policies = cfgret, fcfs\n"
      "workload = unit\n"
      "[policy cfgret]\n"
      "base = decayfairshare\n"
      "[sweep]\n"
      "instances = 7\n");
  EXPECT_EQ(spec.instances, 7u);
  EXPECT_EQ(spec.policies.front(), "cfgret");
}

TEST(SweepConfig, PolicyBlockErrorsCarrySourceContext) {
  // Unknown override key: did-you-mean against the base's declarations.
  expect_parse_error(
      "policies = fcfs\nworkload = unit\n"
      "[policy broken]\nbase = decayfairshare\nhalflife = 3\nhalf-lime = 2\n",
      {"test.cfg:3", "half-lime", "did you mean 'half-life'?"});
  expect_parse_error("policies = fcfs\n[policy x]\nbase = bogus\n",
                     {"test.cfg:2", "unknown policy 'bogus'"});
  expect_parse_error("policies = fcfs\n[policy x]\ndescription = only\n",
                     {"test.cfg:2", "exactly one of"});
  expect_parse_error(
      "policies = fcfs\n[policy x]\nswitch = ref, fairshare\n"
      "switch-at = 5\n",
      {"test.cfg:2", "whole-schedule"});
  expect_parse_error(
      "policies = fcfs\n[policy x]\nswitch = fairshare, roundrobin\n",
      {"test.cfg:2", "switch-at"});
  expect_parse_error(
      "policies = fcfs\n[policy x]\nmix = fairshare, roundrobin\n",
      {"test.cfg:3", ":WEIGHT"});
  expect_parse_error(
      "policies = fcfs\n[policy x]\nbase = fcfs\n[policy x]\nbase = fcfs\n",
      {"test.cfg:4", "duplicate [policy x]"});
  expect_parse_error("policies = fcfs\n[policy fairshare]\nbase = fcfs\n",
                     {"test.cfg:2", "built-in"});
  expect_parse_error("policies = fcfs\n[section]\n",
                     {"test.cfg:2", "unknown section"});
}

TEST(SweepConfig, StrategyBlockBuildsTheDeviationAxes) {
  const SweepSpec spec = parse(
      "policies = fcfs, fairshare\n"
      "workload = unit\n"
      "instances = 2\n"
      "[strategy]\n"
      "deviations = split:2, delay:5\n"
      "deviator-orgs = 0, 1\n");
  ASSERT_TRUE(spec.is_strategy());
  ASSERT_EQ(spec.deviations.size(), 3u);  // honest + the two listed
  EXPECT_EQ(spec.deviations[0].kind,
            strategy::DeviationSpec::Kind::kHonest);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "strategy");
  EXPECT_EQ(spec.axes[0].value_labels,
            (std::vector<std::string>{"honest", "split2", "delay5"}));
  EXPECT_EQ(spec.axes[1].name, "deviator-org");
  EXPECT_EQ(spec.axes[1].values, (std::vector<double>{0, 1}));

  // An empty block plays the full default grid.
  const SweepSpec full = parse(
      "policies = fcfs\nworkload = unit\n[strategy]\n");
  EXPECT_EQ(full.deviations, strategy::default_deviation_grid());

  // Errors carry the config-source context.
  expect_parse_error(
      "policies = fcfs\nworkload = unit\n[strategy]\nbogus-key = 1\n",
      {"test.cfg:4", "bogus-key"});
  expect_parse_error(
      "policies = fcfs\nworkload = unit\n[strategy]\n"
      "deviations = nonsense\n",
      {"test.cfg", "nonsense"});
}

TEST(SweepConfig, SplitAndTrimHandlesWhitespaceAndEmpties) {
  EXPECT_EQ(split_and_trim(" a, b ,,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_and_trim("  ", ',').empty());
  EXPECT_TRUE(split_and_trim("", ',').empty());
  EXPECT_EQ(split_and_trim("x", ';'), (std::vector<std::string>{"x"}));
}

}  // namespace
}  // namespace fairsched::exp
