// Tests for the synthetic workload generators and presets.

#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairsched {
namespace {

TEST(Synthetic, PresetShapesMatchArchives) {
  EXPECT_EQ(preset_lpc_egee().total_machines, 70u);
  EXPECT_EQ(preset_lpc_egee().users, 56u);
  EXPECT_EQ(preset_pik_iplex(1.0).total_machines, 2560u);
  EXPECT_EQ(preset_pik_iplex(1.0).users, 225u);
  EXPECT_EQ(preset_ricc(1.0).total_machines, 8192u);
  EXPECT_EQ(preset_ricc(1.0).users, 176u);
  EXPECT_EQ(preset_sharcnet_whale(1.0).total_machines, 3072u);
  EXPECT_EQ(preset_sharcnet_whale(1.0).users, 154u);
}

TEST(Synthetic, ScalingDividesMachines) {
  EXPECT_EQ(preset_ricc(16.0).total_machines, 512u);
  EXPECT_EQ(preset_pik_iplex(16.0).total_machines, 160u);
  EXPECT_THROW(preset_ricc(0.0), std::invalid_argument);
}

TEST(Synthetic, CalibratedOfferedLoads) {
  // The presets encode the qualitative load ordering the paper's results
  // imply: PIK lightly loaded, RICC overloaded.
  EXPECT_NEAR(preset_lpc_egee().offered_load(), 0.85, 1e-9);
  EXPECT_NEAR(preset_pik_iplex(16.0).offered_load(), 0.45, 1e-9);
  EXPECT_NEAR(preset_ricc(16.0).offered_load(), 1.15, 1e-9);
  EXPECT_NEAR(preset_sharcnet_whale(16.0).offered_load(), 0.85, 1e-9);
  EXPECT_LT(preset_pik_iplex(16.0).offered_load(),
            preset_ricc(16.0).offered_load());
}

TEST(Synthetic, DefaultPresetsCoverAllFour) {
  const auto presets = default_presets(16.0);
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "LPC-EGEE");
  EXPECT_EQ(presets[1].name, "PIK-IPLEX");
  EXPECT_EQ(presets[2].name, "RICC");
  EXPECT_EQ(presets[3].name, "SHARCNET-Whale");
}

TEST(Synthetic, WindowJobsWithinDuration) {
  const SyntheticSpec spec = preset_lpc_egee();
  const SwfTrace trace = generate_window(spec, 20000, 5);
  ASSERT_FALSE(trace.jobs.empty());
  for (const SwfJob& j : trace.jobs) {
    EXPECT_GE(j.submit, 0);
    EXPECT_LT(j.submit, 20000);
    EXPECT_GE(j.run_time, spec.min_job);
    EXPECT_LE(j.run_time, spec.max_job);
    EXPECT_LT(j.user, static_cast<std::int64_t>(spec.users));
  }
}

TEST(Synthetic, WindowSortedBySubmit) {
  const SwfTrace trace = generate_window(preset_lpc_egee(), 10000, 6);
  for (std::size_t i = 1; i < trace.jobs.size(); ++i) {
    EXPECT_LE(trace.jobs[i - 1].submit, trace.jobs[i].submit);
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  const SyntheticSpec spec = preset_lpc_egee();
  const SwfTrace a = generate_window(spec, 5000, 9);
  const SwfTrace b = generate_window(spec, 5000, 9);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit);
    EXPECT_EQ(a.jobs[i].run_time, b.jobs[i].run_time);
    EXPECT_EQ(a.jobs[i].user, b.jobs[i].user);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const SyntheticSpec spec = preset_lpc_egee();
  const SwfTrace a = generate_window(spec, 5000, 1);
  const SwfTrace b = generate_window(spec, 5000, 2);
  // Overwhelmingly likely to differ in size or first submits.
  bool differs = a.jobs.size() != b.jobs.size();
  for (std::size_t i = 0; !differs && i < a.jobs.size(); ++i) {
    differs = a.jobs[i].submit != b.jobs[i].submit ||
              a.jobs[i].run_time != b.jobs[i].run_time;
  }
  EXPECT_TRUE(differs);
}

TEST(Synthetic, OfferedWorkRoughlyMatchesLoad) {
  // Across many seeds the generated work should average near
  // offered_load * machines * duration. Tolerant band: the per-window
  // jitter and duration truncation both move the number.
  const SyntheticSpec spec = preset_lpc_egee();
  const Time duration = 50000;
  double total = 0.0;
  const int windows = 30;
  for (int s = 0; s < windows; ++s) {
    const SwfTrace trace = generate_window(spec, duration, 1000 + s);
    for (const SwfJob& j : trace.jobs) {
      total += static_cast<double>(j.run_time);
    }
  }
  const double mean_work = total / windows;
  const double expected = spec.offered_load() *
                          static_cast<double>(spec.total_machines) *
                          static_cast<double>(duration);
  EXPECT_GT(mean_work, 0.5 * expected);
  EXPECT_LT(mean_work, 1.8 * expected);
}

TEST(Synthetic, BurstinessUsersSubmitInBlocks) {
  // Within one user's stream, the median inter-arrival gap should be far
  // smaller than the mean gap (sessions create clumps).
  const SyntheticSpec spec = preset_lpc_egee();
  const SwfTrace trace = generate_window(spec, 100000, 77);
  std::vector<std::vector<Time>> per_user(spec.users);
  for (const SwfJob& j : trace.jobs) {
    per_user[static_cast<std::size_t>(j.user)].push_back(j.submit);
  }
  double clumped_users = 0, eligible = 0;
  for (auto& submits : per_user) {
    if (submits.size() < 6) continue;
    std::sort(submits.begin(), submits.end());
    std::vector<double> gaps;
    for (std::size_t i = 1; i < submits.size(); ++i) {
      gaps.push_back(static_cast<double>(submits[i] - submits[i - 1]));
    }
    std::sort(gaps.begin(), gaps.end());
    const double median = gaps[gaps.size() / 2];
    double mean = 0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    eligible += 1;
    if (median < 0.25 * mean) clumped_users += 1;
  }
  ASSERT_GT(eligible, 5);
  EXPECT_GT(clumped_users / eligible, 0.7);
}

TEST(Synthetic, MakeInstanceWiring) {
  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst =
      make_synthetic_instance(spec, 5, 10000, MachineSplit::kZipf, 1.0, 123);
  EXPECT_EQ(inst.num_orgs(), 5u);
  EXPECT_EQ(inst.total_machines(), spec.total_machines);
  EXPECT_GT(inst.num_jobs(), 0u);
  for (OrgId u = 0; u < 5; ++u) EXPECT_GE(inst.machines_of(u), 1u);
}

TEST(Synthetic, RejectsBadDuration) {
  EXPECT_THROW(generate_window(preset_lpc_egee(), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fairsched
