// Tests for the thread pool and parallel_for.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fairsched {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(3);
  std::vector<long> partial(100, 0);
  pool.parallel_for(100, [&](std::size_t i) {
    partial[i] = static_cast<long>(i) * static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  // sum i^2 for i=0..99
  EXPECT_EQ(total, 99L * 100L * 199L / 6L);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw std::logic_error("unlucky");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(20, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, FreeFunctionParallelFor) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(sum.load(), 199L * 200L / 2L);
}

}  // namespace
}  // namespace fairsched
