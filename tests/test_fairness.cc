// Tests for the fairness metrics.

#include "metrics/fairness.h"

#include <gtest/gtest.h>

namespace fairsched {
namespace {

TEST(Fairness, ManhattanDistance) {
  EXPECT_EQ(manhattan_half_distance({2, 4, 6}, {2, 4, 6}), 0);
  EXPECT_EQ(manhattan_half_distance({2, 4, 6}, {0, 8, 5}), 2 + 4 + 1);
  EXPECT_EQ(manhattan_half_distance({-4, 2}, {4, -2}), 12);
}

TEST(Fairness, UnfairnessRatio) {
  // Distance of 10 half-units = 5 time units over 20 units of work -> 0.25.
  EXPECT_DOUBLE_EQ(unfairness_ratio({10, 0}, {4, -4}, 20), 0.25);
  EXPECT_DOUBLE_EQ(unfairness_ratio({1, 2}, {1, 2}, 100), 0.0);
}

TEST(Fairness, UnfairnessRatioEmptyWindow) {
  EXPECT_DOUBLE_EQ(unfairness_ratio({5}, {0}, 0), 0.0);
  EXPECT_DOUBLE_EQ(unfairness_ratio({5}, {0}, -3), 0.0);
}

TEST(Fairness, RelativeDistance) {
  EXPECT_DOUBLE_EQ(relative_distance({0, 0}, {5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(relative_distance({5, 5}, {5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(relative_distance({10, 0}, {5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(relative_distance({1, 2}, {0, 0}), 0.0);  // degenerate
}

TEST(Fairness, PerOrgReport) {
  const auto report = per_org_report({10, 6}, {8, 8});
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].org, 0u);
  EXPECT_DOUBLE_EQ(report[0].utility, 5.0);
  EXPECT_DOUBLE_EQ(report[0].reference, 4.0);
  EXPECT_DOUBLE_EQ(report[0].advantage, 1.0);
  EXPECT_DOUBLE_EQ(report[1].advantage, -1.0);
}

}  // namespace
}  // namespace fairsched
