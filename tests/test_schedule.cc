// Tests for Schedule and its feasibility validators.

#include "core/schedule.h"

#include <gtest/gtest.h>

namespace fairsched {
namespace {

Instance simple_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  b.add_job(a, 0, 3);
  b.add_job(a, 0, 2);
  b.add_job(c, 1, 4);
  return std::move(b).build();
}

TEST(Schedule, StartAndCompletionLookups) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 0, 0});
  EXPECT_EQ(s.start_of(0, 0), 0);
  EXPECT_EQ(s.completion_of(inst, 0, 0), 3);
  EXPECT_FALSE(s.start_of(0, 1).has_value());
  EXPECT_FALSE(s.start_of(1, 0).has_value());
  EXPECT_EQ(s.num_started(0), 1u);
}

TEST(Schedule, ValidGreedySchedulePasses) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 0, 0});   // a's first job on machine 0 at t=0
  s.add({0, 1, 0, 1});   // a's second job on machine 1 at t=0
  s.add({1, 0, 2, 1});   // c's job after a's second finishes at 2
  EXPECT_EQ(s.validate(inst, 10), std::nullopt);
}

TEST(Schedule, DetectsMachineOverlap) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 0, 0});
  s.add({0, 1, 2, 0});  // starts at 2 but first job runs until 3
  const auto err = s.check_machine_exclusive(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("machine 0"), std::string::npos);
}

TEST(Schedule, BackToBackOnOneMachineIsFine) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 0, 0});
  s.add({0, 1, 3, 0});  // exactly when the first finishes
  EXPECT_EQ(s.check_machine_exclusive(inst), std::nullopt);
}

TEST(Schedule, DetectsStartBeforeRelease) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({1, 0, 0, 1});  // c's job released at 1, started at 0
  const auto err = s.check_fifo(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("before its release"), std::string::npos);
}

TEST(Schedule, DetectsFifoOrderViolation) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 5, 0});
  s.add({0, 1, 2, 1});  // job 1 starts before job 0
  const auto err = s.check_fifo(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("FIFO order"), std::string::npos);
}

TEST(Schedule, DetectsFifoPrefixGap) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 1, 0, 0});  // job 1 started, job 0 never
  const auto err = s.check_fifo(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("FIFO prefix"), std::string::npos);
}

TEST(Schedule, DetectsNonGreedyIdleness) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  // Machine 1 idles at t=0 although a's second job is released.
  s.add({0, 0, 0, 0});
  s.add({0, 1, 5, 1});
  s.add({1, 0, 1, 0});  // infeasible anyway, but greedy check fires first
  const auto err = s.check_greedy(inst, 10);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("not greedy"), std::string::npos);
}

TEST(Schedule, GreedyCheckIgnoresIdlenessPastHorizon) {
  const Instance inst = simple_instance();
  Schedule s(inst.num_orgs());
  s.add({0, 0, 0, 0});
  s.add({0, 1, 0, 1});
  // c's job never scheduled; machines free from t=4. Horizon 2 hides it.
  EXPECT_EQ(s.check_greedy(inst, 2), std::nullopt);
  EXPECT_NE(s.check_greedy(inst, 10), std::nullopt);
}

TEST(Schedule, EmptyScheduleOfEmptyWorkloadValid) {
  InstanceBuilder b;
  b.add_org("a", 2);
  const Instance inst = std::move(b).build();
  Schedule s(inst.num_orgs());
  EXPECT_EQ(s.validate(inst, 100), std::nullopt);
}

}  // namespace
}  // namespace fairsched
