// Unit tests of util/latency_histogram.h: the bucket geometry (every value
// lands in the bucket whose [lower_bound, upper_bound) span contains it),
// percentile interpolation on known sample sets, and the exactness of
// merge(). The serve stats golden test depends on these percentiles being
// deterministic, so nail them down here.

#include "util/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace fairsched {
namespace {

TEST(LatencyHistogramTest, SmallValuesGetTheirOwnBucket) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const std::uint32_t b = LatencyHistogram::bucket_of(v);
    EXPECT_EQ(b, v);
    EXPECT_EQ(LatencyHistogram::lower_bound(b), v);
    EXPECT_EQ(LatencyHistogram::upper_bound(b), v + 1);
  }
}

TEST(LatencyHistogramTest, BucketSpansContainTheirValues) {
  // Probe across the full range: powers of two and their neighbors are the
  // boundary cases of the top-bit geometry.
  std::vector<std::uint64_t> probes = {0, 1, 15, 16, 17, 31, 32, 100, 255,
                                       256, 1000, 4095, 4096};
  for (int bit = 13; bit < 64; ++bit) {
    const std::uint64_t p = std::uint64_t{1} << bit;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + p / 3);
  }
  for (std::uint64_t v : probes) {
    const std::uint32_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::lower_bound(b), v) << "value " << v;
    EXPECT_GT(LatencyHistogram::upper_bound(b), v) << "value " << v;
  }
  // The one value a half-open span cannot strictly contain: the top
  // bucket's upper bound saturates at the maximum representable value.
  const std::uint32_t top = LatencyHistogram::bucket_of(~std::uint64_t{0});
  EXPECT_LE(LatencyHistogram::lower_bound(top), ~std::uint64_t{0});
  EXPECT_EQ(LatencyHistogram::upper_bound(top), ~std::uint64_t{0});
}

TEST(LatencyHistogramTest, BucketBoundsAreMonotoneAndAdjacent) {
  for (std::uint32_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::upper_bound(b),
              LatencyHistogram::lower_bound(b + 1));
    EXPECT_LE(LatencyHistogram::lower_bound(b),
              LatencyHistogram::lower_bound(b + 1));
  }
}

TEST(LatencyHistogramTest, RelativeErrorBounded) {
  // The defining property: a bucket's width is at most lower/kSubBuckets
  // for every bucket bucket_of can produce, so any percentile answer is
  // within 1/16 of the true sample value.
  for (int bit = 4; bit < 63; ++bit) {
    const std::uint64_t v = (std::uint64_t{1} << bit) + 5;
    const std::uint32_t b = LatencyHistogram::bucket_of(v);
    const std::uint64_t width = LatencyHistogram::upper_bound(b) -
                                LatencyHistogram::lower_bound(b);
    EXPECT_LE(width * LatencyHistogram::kSubBuckets,
              LatencyHistogram::lower_bound(b) + width)
        << "bucket " << b;
  }
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, SingletonIsExact) {
  LatencyHistogram h;
  h.record(10);
  EXPECT_EQ(h.p50(), 10u);
  EXPECT_EQ(h.p99(), 10u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_EQ(h.mean(), 10.0);
}

TEST(LatencyHistogramTest, ExactPercentilesBelowSixteen) {
  // Values below kSubBuckets occupy one-value buckets: percentiles are the
  // exact order statistics at rank ceil(q * n).
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.value_at_quantile(0.0), 1u);   // rank clamps to 1
  EXPECT_EQ(h.value_at_quantile(0.1), 1u);   // ceil(1.0) = 1
  EXPECT_EQ(h.p50(), 5u);                    // ceil(5.0) = 5
  EXPECT_EQ(h.value_at_quantile(0.55), 6u);  // ceil(5.5) = 6
  EXPECT_EQ(h.p95(), 10u);
  EXPECT_EQ(h.value_at_quantile(1.0), 10u);
}

TEST(LatencyHistogramTest, InterpolationStaysWithinObservedRange) {
  // One wide bucket: [4096, 4352). All samples at 4100; no percentile may
  // exceed the observed max (interpolation is clamped to it).
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(4100);
  EXPECT_GE(h.p50(), 4096u);
  EXPECT_LE(h.p50(), 4100u);
  EXPECT_LE(h.p99(), 4100u);
  EXPECT_EQ(h.max(), 4100u);
}

TEST(LatencyHistogramTest, InterpolationIsMonotoneInQuantile) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; v += 7) h.record(v);
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t value = h.value_at_quantile(q);
    EXPECT_GE(value, prev) << "q = " << q;
    prev = value;
  }
  EXPECT_EQ(h.value_at_quantile(1.0), h.max());
}

TEST(LatencyHistogramTest, PercentileWithinBucketResolution) {
  // Uniform samples 1..100000: every percentile answer must be within one
  // bucket width (6.25% relative) of the true order statistic.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double truth = q * 100000;
    const double got = static_cast<double>(h.value_at_quantile(q));
    EXPECT_NEAR(got, truth, truth / 16.0 + 1.0) << "q = " << q;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedStream) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  std::uint64_t v = 1;
  for (int i = 0; i < 1000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // any fixed stream
    const std::uint64_t sample = v >> 40;
    ((i % 3 == 0) ? a : b).record(sample);
    combined.record(sample);
  }
  a.merge(b);
  EXPECT_EQ(a.total_count(), combined.total_count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.max(), combined.max());
  for (std::uint32_t bucket = 0; bucket < LatencyHistogram::kBuckets;
       ++bucket) {
    ASSERT_EQ(a.bucket_count(bucket), combined.bucket_count(bucket));
  }
  for (double q : {0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.value_at_quantile(q), combined.value_at_quantile(q));
  }
}

TEST(LatencyHistogramTest, HugeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  h.record(std::uint64_t{1} << 62);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_GE(h.p99(), std::uint64_t{1} << 62);
}

}  // namespace
}  // namespace fairsched
