// Tests for the statistics accumulators.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairsched {
namespace {

TEST(Stats, EmptyAccumulator) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stdev(), 0.0);
}

TEST(Stats, SingleValue) {
  StatsAccumulator acc;
  acc.add(7.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.5);
  EXPECT_DOUBLE_EQ(acc.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 7.5);
  EXPECT_DOUBLE_EQ(acc.max(), 7.5);
}

TEST(Stats, KnownMeanAndStdev) {
  StatsAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  StatsAccumulator whole, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Stats, StateRoundTripsBitForBit) {
  // Shard artifacts serialize accumulator state and the merge restores
  // it; the round trip must preserve every bit, including the running
  // mean/m2 that no public accessor exposes exactly.
  StatsAccumulator acc;
  for (double x : {0.25, -3.5, 1.0 / 3.0, 7.125, 0.1}) acc.add(x);
  const StatsAccumulator back =
      StatsAccumulator::from_state(acc.state());
  EXPECT_EQ(back.count(), acc.count());
  EXPECT_EQ(back.mean(), acc.mean());
  EXPECT_EQ(back.variance(), acc.variance());
  EXPECT_EQ(back.min(), acc.min());
  EXPECT_EQ(back.max(), acc.max());
  EXPECT_EQ(back.sum(), acc.sum());
  // Continuing to add on the restored copy tracks the original exactly.
  StatsAccumulator original = acc;
  StatsAccumulator restored = back;
  original.add(9.75);
  restored.add(9.75);
  EXPECT_EQ(original.mean(), restored.mean());
  EXPECT_EQ(original.variance(), restored.variance());

  const StatsAccumulator empty;
  EXPECT_EQ(StatsAccumulator::from_state(empty.state()).count(), 0u);
}

TEST(Stats, MergeWithEmpty) {
  StatsAccumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Stats, BatchHelpers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stdev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, Percentiles) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
}

}  // namespace
}  // namespace fairsched
