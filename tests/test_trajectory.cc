// Tests for the trajectory metrics.

#include "metrics/trajectory.h"

#include <gtest/gtest.h>

#include "metrics/utility.h"
#include "exp/policy_registry.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

Instance tiny() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  b.add_job(a, 0, 4);
  b.add_job(c, 0, 4);
  b.add_job(a, 2, 4);
  return std::move(b).build();
}

TEST(Trajectory, MatchesPointwiseClosedForm) {
  const Instance inst = tiny();
  const RunResult r = registry().run(inst, "fcfs", 20, 1);
  const std::vector<Time> times{1, 3, 6, 10, 20};
  const auto traj = utility_trajectory(inst, r.schedule, times);
  ASSERT_EQ(traj.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(traj[i].t, times[i]);
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_EQ(traj[i].psi2[u],
                sp_org_half_utility(inst, r.schedule, u, times[i]));
    }
  }
}

TEST(Trajectory, UtilitiesAreMonotone) {
  const Instance inst = tiny();
  const RunResult r = registry().run(inst, "fcfs", 30, 1);
  const auto traj =
      utility_trajectory(inst, r.schedule, even_sample_times(30, 10));
  for (std::size_t i = 1; i < traj.size(); ++i) {
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_GE(traj[i].psi2[u], traj[i - 1].psi2[u]);
    }
  }
}

TEST(Trajectory, RejectsUnsortedTimes) {
  const Instance inst = tiny();
  const RunResult r = registry().run(inst, "fcfs", 10, 1);
  EXPECT_THROW(utility_trajectory(inst, r.schedule, {5, 3}),
               std::invalid_argument);
}

TEST(Trajectory, EvenSampleTimes) {
  const auto times = even_sample_times(100, 4);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 25);
  EXPECT_EQ(times[1], 50);
  EXPECT_EQ(times[2], 75);
  EXPECT_EQ(times[3], 100);
  EXPECT_THROW(even_sample_times(0, 4), std::invalid_argument);
  EXPECT_THROW(even_sample_times(10, 0), std::invalid_argument);
}

TEST(Trajectory, UnfairnessAgainstSelfIsZero) {
  const Instance inst = tiny();
  const RunResult r = registry().run(inst, "fcfs", 20, 1);
  const auto series = unfairness_trajectory(inst, r.schedule, r.schedule,
                                            even_sample_times(20, 5));
  for (double v : series) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Trajectory, UnfairnessDetectsDivergence) {
  // Round robin vs REF on a lopsided instance: the trajectory should be
  // nonzero somewhere once contention bites.
  InstanceBuilder b;
  const OrgId big = b.add_org("big", 3);
  const OrgId small = b.add_org("small", 1);
  for (int i = 0; i < 30; ++i) {
    b.add_job(big, 0, 5);
    b.add_job(small, 0, 5);
  }
  const Instance inst = std::move(b).build();
  const RunResult ref = registry().run(inst, "ref", 60, 1);
  const RunResult rr =
      registry().run(inst, "roundrobin", 60, 1);
  const auto series = unfairness_trajectory(inst, rr.schedule, ref.schedule,
                                            even_sample_times(60, 6));
  double max_v = 0.0;
  for (double v : series) max_v = std::max(max_v, v);
  EXPECT_GT(max_v, 0.0);
}

TEST(Trajectory, ZeroWorkPrefixGivesZeroRatio) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 50, 5);
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "fcfs", 100, 1);
  const auto series = unfairness_trajectory(inst, r.schedule, r.schedule,
                                            {10, 40, 100});
  for (double v : series) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace fairsched
