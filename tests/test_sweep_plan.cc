// Tests for the sweep planning layer (exp/sweep_plan.h): shard spec
// parsing, plan expansion and identifiers, the family-based shard
// partition, fingerprints, and the plan/spec JSON round trips.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep_plan.h"
#include "util/json.h"

namespace fairsched::exp {
namespace {

SweepSpec plan_sweep() {
  SweepSpec spec;
  spec.name = "plan-test";
  spec.policies = {"decayfairshare", "fairshare", "roundrobin"};
  SweepWorkload unit;
  unit.name = "unit-jobs";
  unit.kind = SweepWorkload::Kind::kUnitJobs;
  unit.orgs = 4;
  unit.unit_jobs_per_org = 30;
  SweepWorkload random;
  random.name = "small-random";
  random.kind = SweepWorkload::Kind::kSmallRandom;
  spec.workloads = {unit, random};
  spec.instances = 3;
  spec.seed = 99;
  spec.horizon = 80;
  spec.baseline = "ref";
  spec.axes.push_back(make_axis("half-life", {20, 500, 100000}));
  spec.axes.push_back(make_axis("orgs", {3, 4}));
  return spec;
}

TEST(ShardSpec, ParsesWellFormedSpecs) {
  EXPECT_EQ(parse_shard_spec(""), (SweepShard{0, 1}));
  EXPECT_EQ(parse_shard_spec("0/3"), (SweepShard{0, 3}));
  EXPECT_EQ(parse_shard_spec("2/3"), (SweepShard{2, 3}));
  EXPECT_EQ(parse_shard_spec("0/1"), (SweepShard{0, 1}));
  EXPECT_TRUE(parse_shard_spec("").whole());
  EXPECT_FALSE(parse_shard_spec("0/2").whole());
}

TEST(ShardSpec, RejectsMalformedSpecsWithClearErrors) {
  auto expect_error = [](const std::string& text,
                         const std::string& needle) {
    try {
      parse_shard_spec(text);
      FAIL() << "expected std::invalid_argument for '" << text << "'";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("malformed shard spec"), std::string::npos)
          << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      // Every message teaches the correct form.
      EXPECT_NE(what.find("INDEX/COUNT"), std::string::npos) << what;
    }
  };
  expect_error("3", "missing '/'");
  expect_error("abc", "missing '/'");
  expect_error("a/b", "not a non-negative integer");
  expect_error("-1/3", "not a non-negative integer");
  expect_error("1.5/3", "not a non-negative integer");
  expect_error("/3", "is empty");
  expect_error("1/", "is empty");
  expect_error("1/2/3", "not a non-negative integer");
  expect_error("0/0", "count must be >= 1");
  expect_error("3/3", "must be < count");
  expect_error("5/2", "must be < count");
}

TEST(SweepPlan, ExpandsDimensionsAndIdentifiers) {
  const SweepSpec spec = plan_sweep();
  const SweepPlan plan = build_sweep_plan(spec);
  EXPECT_EQ(plan.num_points, 6u);
  EXPECT_EQ(plan.num_workloads, 2u);
  EXPECT_EQ(plan.num_policies, 3u);
  EXPECT_EQ(plan.num_tasks, 6u * 2u * 3u);
  EXPECT_EQ(plan.shard_tasks.size(), plan.num_tasks);
  // half-life is policy-scoped: the 6 points collapse into 2 groups (one
  // per orgs value).
  EXPECT_EQ(plan.num_groups, 2u);
  // Identifier round trip: task ids decompose positionally, run ids are
  // the fold positions.
  for (std::size_t t = 0; t < plan.num_tasks; ++t) {
    const std::size_t a = plan.task_point(t);
    const std::size_t w = plan.task_workload(t);
    const std::size_t i = plan.task_instance(t);
    EXPECT_EQ((a * plan.num_workloads + w) * spec.instances + i, t);
    EXPECT_EQ(plan.run_id(t, 0), t * plan.num_policies);
  }
  // decayfairshare varies within each group; the others are shared.
  for (std::size_t g = 0; g < plan.num_groups; ++g) {
    EXPECT_EQ(plan.shared_slot[g * 3 + 0], SweepPlan::kNoSlot);
    EXPECT_NE(plan.shared_slot[g * 3 + 1], SweepPlan::kNoSlot);
    EXPECT_NE(plan.shared_slot[g * 3 + 2], SweepPlan::kNoSlot);
  }
}

TEST(SweepPlan, ShardsPartitionTasksByPrefixFamily) {
  const SweepSpec spec = plan_sweep();
  const SweepPlan whole = build_sweep_plan(spec);
  for (std::size_t count : {2u, 3u, 5u, 7u}) {
    std::set<std::size_t> seen_tasks;
    std::set<std::size_t> seen_cells;
    for (std::size_t index = 0; index < count; ++index) {
      const SweepPlan shard =
          build_sweep_plan(spec, PolicyRegistry::global(), {index, count});
      // Sharding never changes the plan itself, only ownership.
      EXPECT_EQ(shard.fingerprint, whole.fingerprint);
      EXPECT_EQ(shard.num_tasks, whole.num_tasks);
      std::size_t previous = 0;
      bool first = true;
      for (std::size_t task : shard.shard_tasks) {
        // Ascending (the shard's fold order), disjoint across shards,
        // and family-complete: a task's whole family shares its shard.
        if (!first) EXPECT_GT(task, previous);
        first = false;
        previous = task;
        EXPECT_TRUE(seen_tasks.insert(task).second) << task;
        EXPECT_EQ(shard.shard_of_family(shard.family_of_task(task)),
                  index);
      }
      for (std::size_t cell = 0; cell < shard.num_cells(); ++cell) {
        if (shard.owns_cell(cell)) {
          EXPECT_TRUE(seen_cells.insert(cell).second) << cell;
        }
      }
    }
    EXPECT_EQ(seen_tasks.size(), whole.num_tasks) << count;
    EXPECT_EQ(seen_cells.size(), whole.num_cells()) << count;
  }
}

TEST(SweepPlan, FingerprintTracksOutputShapingFieldsOnly) {
  const SweepSpec spec = plan_sweep();
  const std::uint64_t base = build_sweep_plan(spec).fingerprint;
  EXPECT_EQ(build_sweep_plan(spec).fingerprint, base);

  SweepSpec execution_only = spec;
  execution_only.threads = 7;
  execution_only.cache_bytes = 1;
  execution_only.cache_dir = "/tmp/somewhere";
  EXPECT_EQ(build_sweep_plan(execution_only).fingerprint, base);

  SweepSpec reseeded = spec;
  reseeded.seed = 100;
  EXPECT_NE(build_sweep_plan(reseeded).fingerprint, base);

  SweepSpec reshaped = spec;
  reshaped.axes[1].values.push_back(5);
  EXPECT_NE(build_sweep_plan(reshaped).fingerprint, base);

  SweepSpec repoliced = spec;
  repoliced.policies.pop_back();
  EXPECT_NE(build_sweep_plan(repoliced).fingerprint, base);
}

TEST(SweepPlan, PlanJsonIsParseableAndComplete) {
  const SweepSpec spec = plan_sweep();
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), {1, 3});
  std::ostringstream out;
  write_plan_json(out, plan);
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("format").as_string(), "fairsched-sweep-plan");
  EXPECT_EQ(doc.at("tasks").as_uint(), plan.num_tasks);
  EXPECT_EQ(doc.at("runs").as_uint(), plan.num_tasks * plan.num_policies);
  EXPECT_EQ(doc.at("prefix_groups").as_uint(), plan.num_groups);
  EXPECT_EQ(doc.at("shard").at("index").as_uint(), 1u);
  ASSERT_EQ(doc.at("task_list").items().size(), plan.num_tasks);
  // Task entries carry the stable ids and the shard assignment.
  const JsonValue& task0 = doc.at("task_list").items()[0];
  EXPECT_EQ(task0.at("task").as_uint(), 0u);
  EXPECT_EQ(task0.at("first_run").as_uint(), 0u);
  EXPECT_LT(task0.at("shard").as_uint(), 3u);
}

TEST(SweepPlan, SpecSummaryRoundTripsReporterFields) {
  const SweepSpec spec = plan_sweep();
  std::ostringstream out;
  write_spec_summary_json(out, spec, "");
  const SweepSpec back = spec_from_summary_json(parse_json(out.str()));
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.instances, spec.instances);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.horizon, spec.horizon);
  EXPECT_EQ(back.baseline, spec.baseline);
  EXPECT_EQ(back.policies, spec.policies);
  ASSERT_EQ(back.workloads.size(), spec.workloads.size());
  for (std::size_t w = 0; w < back.workloads.size(); ++w) {
    EXPECT_EQ(back.workloads[w].name, spec.workloads[w].name);
  }
  ASSERT_EQ(back.axes.size(), spec.axes.size());
  for (std::size_t j = 0; j < back.axes.size(); ++j) {
    EXPECT_EQ(back.axes[j].name, spec.axes[j].name);
    EXPECT_EQ(back.axes[j].bind, spec.axes[j].bind);
    EXPECT_EQ(back.axes[j].scope, spec.axes[j].scope);
    EXPECT_EQ(back.axes[j].values, spec.axes[j].values);
  }
}

TEST(SweepPlan, ContentKeysSeparateDistinctContent) {
  const SweepSpec spec = plan_sweep();
  const std::string a =
      workload_content_key(spec.workloads[0], spec.horizon, 1);
  EXPECT_EQ(workload_content_key(spec.workloads[0], spec.horizon, 1), a);
  EXPECT_NE(workload_content_key(spec.workloads[0], spec.horizon, 2), a);
  EXPECT_NE(workload_content_key(spec.workloads[1], spec.horizon, 1), a);
  EXPECT_NE(workload_content_key(spec.workloads[0], spec.horizon + 1, 1),
            a);
  const PolicyRegistry& registry = PolicyRegistry::global();
  const PolicySpec rand15 = registry.make("rand15");
  const PolicySpec rand75 = registry.make("rand75");
  EXPECT_NE(registry.content_key(rand15), registry.content_key(rand75));
  EXPECT_EQ(registry.content_key(rand15), registry.content_key(rand15));
  // Equal specs from different spellings share one content key (the
  // cache-sharing contract of the canonical form).
  EXPECT_EQ(registry.content_key(registry.make("rand(samples=15)")),
            registry.content_key(rand15));
}

TEST(SweepPlan, ConfigDefinedPoliciesFingerprintByDefinition) {
  // Two different definitions behind one name must never produce
  // merge-compatible fingerprints: the fingerprint hashes content keys,
  // which embed the whole definition.
  SweepSpec spec = plan_sweep();
  spec.policies = {"fpdemo", "fairshare"};
  ConfigPolicyDef def;
  def.name = "fpdemo";
  def.base = "decayfairshare";
  def.overrides.push_back({"half-life", "111"});
  register_config_policy(PolicyRegistry::global(), def);
  const std::uint64_t first = build_sweep_plan(spec).fingerprint;
  def.overrides.back().second = "222";
  register_config_policy(PolicyRegistry::global(), def);
  const std::uint64_t second = build_sweep_plan(spec).fingerprint;
  EXPECT_NE(first, second);
  // Re-registering the identical definition is idempotent.
  register_config_policy(PolicyRegistry::global(), def);
  EXPECT_EQ(build_sweep_plan(spec).fingerprint, second);
}

}  // namespace
}  // namespace fairsched::exp
