// Tests for the RAND randomized fair scheduler (Fig. 6).

#include "sched/rand_fair.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "sched/ref.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {

Instance unit_instance(std::uint32_t k, std::uint32_t jobs_per_org,
                       std::uint64_t seed) {
  InstanceBuilder b;
  Rng rng(seed);
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o" + std::to_string(u), 1 + static_cast<std::uint32_t>(
                                               rng.uniform_u64(2)));
  }
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
      b.add_job(u, static_cast<Time>(rng.uniform_u64(30)), 1);
    }
  }
  return std::move(b).build();
}

TEST(Rand, ProducesFeasibleGreedySchedule) {
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 4, 1500, MachineSplit::kZipf, 1.0, 51);
  RandScheduler rand(inst, RandOptions{15, 7});
  rand.run(1500);
  EXPECT_EQ(rand.schedule().validate(inst, 1500), std::nullopt);
}

TEST(Rand, UtilitiesMatchClosedForm) {
  const Instance inst = unit_instance(4, 20, 3);
  RandScheduler rand(inst, RandOptions{15, 7});
  rand.run(60);
  const auto psi2 = rand.utilities2();
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(psi2[u], sp_org_half_utility(inst, rand.schedule(), u, 60));
  }
}

TEST(Rand, DeterministicPerSeed) {
  const Instance inst = unit_instance(4, 15, 5);
  RandScheduler a(inst, RandOptions{10, 42});
  RandScheduler b(inst, RandOptions{10, 42});
  a.run(50);
  b.run(50);
  EXPECT_EQ(a.utilities2(), b.utilities2());
}

TEST(Rand, CloseToRefOnUnitJobs) {
  // On unit-size jobs RAND is an FPRAS; with many samples the schedule's
  // utility vector must be close to REF's (relative Manhattan distance).
  const Instance inst = unit_instance(4, 40, 11);
  const Time horizon = 80;
  RefScheduler ref(inst);
  ref.run(horizon);
  RandScheduler rand(inst, RandOptions{200, 13});
  rand.run(horizon);
  const double rel = relative_distance(rand.utilities2(), ref.utilities2());
  EXPECT_LT(rel, 0.05) << "relative distance " << rel;
}

TEST(Rand, MoreSamplesImproveContributionEstimates) {
  // Compare RAND's phi estimates against exact Shapley of the same
  // characteristic function (values of FCFS-scheduled subcoalitions at the
  // horizon) on a unit-job instance.
  const Instance inst = unit_instance(4, 30, 17);
  const Time horizon = 100;

  RandScheduler coarse(inst, RandOptions{5, 23});
  RandScheduler fine(inst, RandOptions{400, 23});
  coarse.run(horizon);
  fine.run(horizon);

  RefScheduler ref(inst);
  ref.run(horizon);
  const auto ref_phi = ref.contributions();
  auto err = [&](const std::vector<double>& phi) {
    double total = 0.0;
    for (std::size_t u = 0; u < phi.size(); ++u) {
      total += std::abs(phi[u] - ref_phi[u]);
    }
    return total;
  };
  EXPECT_LE(err(fine.contributions()), err(coarse.contributions()) + 1e-9);
}

TEST(Rand, DistinctCoalitionsBounded) {
  const Instance inst = unit_instance(4, 5, 29);
  RandScheduler rand(inst, RandOptions{50, 31});
  // At most all 2^4 - 1 nonempty masks plus the empty prefix never gets an
  // engine.
  EXPECT_LE(rand.distinct_coalitions(), 15u);
  EXPECT_GE(rand.distinct_coalitions(), 4u);
}

TEST(Rand, TheoremSampleBoundFormula) {
  // N = ceil(k^2 / eps^2 * ln(k / (1 - lambda)))
  const std::size_t n = rand_theorem_samples(5, 0.1, 0.95);
  EXPECT_EQ(n, static_cast<std::size_t>(
                   std::ceil(25.0 / 0.01 * std::log(5.0 / 0.05))));
}

TEST(Rand, InvalidOptionsThrow) {
  const Instance inst = unit_instance(2, 2, 1);
  EXPECT_THROW(RandScheduler(inst, RandOptions{0, 1}), std::invalid_argument);
}

TEST(Rand, RunTwiceThrows) {
  const Instance inst = unit_instance(2, 2, 1);
  RandScheduler rand(inst, RandOptions{5, 1});
  rand.run(10);
  EXPECT_THROW(rand.run(10), std::logic_error);
}

}  // namespace
}  // namespace fairsched
