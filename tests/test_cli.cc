// Tests for the flag parser.

#include "util/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fairsched {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const Flags flags = make({"--instances=25", "--scale=0.5"});
  EXPECT_EQ(flags.get_int("instances", 0), 25);
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const Flags flags = make({"--duration", "50000"});
  EXPECT_EQ(flags.get_int("duration", 0), 50000);
}

TEST(Cli, BareFlagIsTrue) {
  const Flags flags = make({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Cli, FallbackWhenMissing) {
  const Flags flags = make({});
  EXPECT_EQ(flags.get_int("instances", 42), 42);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("verbose", false));
}

TEST(Cli, Positional) {
  const Flags flags = make({"alpha", "--x=1", "beta"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "alpha");
  EXPECT_EQ(flags.positional()[1], "beta");
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=off"}).get_bool("a", true));
}

TEST(Cli, MalformedNumbersThrow) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--x=zz"}).get_double("x", 0), std::invalid_argument);
  EXPECT_THROW(make({"--b=maybe"}).get_bool("b", false),
               std::invalid_argument);
}

TEST(Cli, EnvFallback) {
  ::setenv("FAIRSCHED_FROM_ENV", "123", 1);
  const Flags flags = make({});
  EXPECT_EQ(flags.get_int("from-env", 0), 123);
  EXPECT_TRUE(flags.has("from-env"));
  ::unsetenv("FAIRSCHED_FROM_ENV");
  EXPECT_FALSE(flags.has("from-env"));
}

TEST(Cli, CommandLineBeatsEnv) {
  ::setenv("FAIRSCHED_N", "1", 1);
  const Flags flags = make({"--n=2"});
  EXPECT_EQ(flags.get_int("n", 0), 2);
  ::unsetenv("FAIRSCHED_N");
}

TEST(Cli, EnvNameMapping) {
  EXPECT_EQ(Flags::env_name("rand-samples"), "FAIRSCHED_RAND_SAMPLES");
}

}  // namespace
}  // namespace fairsched
