// Property tests for the strategy-proof utility psi_sp: the three axioms of
// Section 4 (Theorem 4.1), the flow-time equivalence (Proposition 4.2), and
// the axioms re-checked through the strategy/deviation.h transforms on
// policy-produced schedules of generated windows.

#include <gtest/gtest.h>

#include <tuple>

#include "exp/policy_registry.h"
#include "metrics/utility.h"
#include "strategy/deviation.h"
#include "strategy/game.h"
#include "util/rng.h"

namespace fairsched {
namespace {

// --- Axiom 3: strategy-resistance (merge/split invariance) -----------------
// psi(sigma + {(s, p1)}) + psi(sigma + {(s+p1, p2)}) == psi(sigma + {(s,
// p1+p2)}) — splitting a job into back-to-back pieces (or merging adjacent
// pieces) never changes the utility, at any time t.

using SplitCase = std::tuple<Time, Time, Time, Time>;  // s, p1, p2, t

class StrategyResistance : public ::testing::TestWithParam<SplitCase> {};

TEST_P(StrategyResistance, MergeSplitInvariant) {
  const auto [s, p1, p2, t] = GetParam();
  EXPECT_EQ(sp_job_half_utility(s, p1, t) + sp_job_half_utility(s + p1, p2, t),
            sp_job_half_utility(s, p1 + p2, t))
      << "s=" << s << " p1=" << p1 << " p2=" << p2 << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyResistance,
    ::testing::Combine(::testing::Values<Time>(0, 1, 7, 100),
                       ::testing::Values<Time>(1, 2, 5, 40),
                       ::testing::Values<Time>(1, 3, 17),
                       ::testing::Values<Time>(0, 1, 6, 50, 1000)));

TEST(StrategyResistanceMany, ThreeWaySplit) {
  // Recursive application: splitting into three pieces is also neutral.
  for (Time t : {5, 12, 30, 200}) {
    const HalfUtil whole = sp_job_half_utility(2, 9, t);
    const HalfUtil parts = sp_job_half_utility(2, 3, t) +
                           sp_job_half_utility(5, 4, t) +
                           sp_job_half_utility(9, 2, t);
    EXPECT_EQ(whole, parts) << "t=" << t;
  }
}

// --- Axiom 1: task anonymity in starting times ------------------------------
// Moving a fully executed task of length p one step later costs the same
// for every task and every schedule: exactly p utility units (2p half-units).

using ShiftCase = std::tuple<Time, Time>;  // s, p

class StartTimeAnonymity : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(StartTimeAnonymity, UnitShiftCostsP) {
  const auto [s, p] = GetParam();
  const Time t = s + p + 10;  // both variants fully executed
  EXPECT_EQ(sp_job_half_utility(s, p, t) - sp_job_half_utility(s + 1, p, t),
            2 * p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StartTimeAnonymity,
                         ::testing::Combine(::testing::Values<Time>(0, 3, 11,
                                                                    500),
                                            ::testing::Values<Time>(1, 2, 7,
                                                                    64)));

TEST(StartTimeAnonymity, DelayNeverProfitable) {
  // psi is non-increasing in the start time, for any t (even mid-execution).
  for (Time t : {4, 9, 15, 40}) {
    for (Time p : {1, 3, 8}) {
      HalfUtil prev = sp_job_half_utility(0, p, t);
      for (Time s = 1; s < t + 3; ++s) {
        const HalfUtil cur = sp_job_half_utility(s, p, t);
        EXPECT_LE(cur, prev) << "s=" << s << " p=" << p << " t=" << t;
        prev = cur;
      }
    }
  }
}

// --- Axiom 2: task anonymity in the number of tasks -------------------------
// Completing an additional task always increases the utility, by an amount
// independent of the rest of the schedule (additivity is structural: the
// utility is a sum over jobs).

TEST(TaskCountAnonymity, AdditionalTaskAlwaysHelps) {
  for (Time s : {0, 2, 9}) {
    for (Time p : {1, 4, 11}) {
      for (Time t = s + 1; t <= s + p + 5; ++t) {
        EXPECT_GT(sp_job_half_utility(s, p, t), 0)
            << "s=" << s << " p=" << p << " t=" << t;
      }
    }
  }
}

TEST(TaskCountAnonymity, ArtificiallyInflatingJobsNeverPays) {
  // Claiming a longer job cannot reduce utility (the padding executes and
  // earns); but the extra utility is exactly what the padding work earns —
  // no free lunch versus submitting the real job and another real job.
  for (Time t : {10, 25}) {
    EXPECT_GE(sp_job_half_utility(0, 8, t), sp_job_half_utility(0, 5, t));
    EXPECT_EQ(sp_job_half_utility(0, 8, t),
              sp_job_half_utility(0, 5, t) + sp_job_half_utility(5, 3, t));
  }
}

// --- Proposition 4.2: equivalence with flow time for equal-size jobs --------
// For a fixed set of equal-length jobs all completed by t, psi_sp = const -
// p * flow_time, so maximizing psi_sp is minimizing flow time.

TEST(Prop42, PsiSpIsAffineInFlowTimeForEqualJobs) {
  InstanceBuilder b;
  const OrgId o = b.add_org("o", 2);
  const Time p = 4;
  for (int i = 0; i < 6; ++i) b.add_job(o, i, p);
  const Instance inst = std::move(b).build();

  // Two different feasible-ish placements of the same jobs (machine ids
  // are irrelevant to both metrics).
  auto make_schedule = [&](const std::vector<Time>& starts) {
    Schedule s(1);
    for (std::uint32_t i = 0; i < starts.size(); ++i) {
      s.add({o, i, starts[i], static_cast<MachineId>(i % 2)});
    }
    return s;
  };
  const Schedule s1 = make_schedule({0, 1, 4, 5, 8, 9});
  const Schedule s2 = make_schedule({0, 1, 4, 6, 9, 10});
  const Time t = 40;  // everything completed

  const HalfUtil psi1 = sp_org_half_utility(inst, s1, o, t);
  const HalfUtil psi2 = sp_org_half_utility(inst, s2, o, t);
  const std::int64_t flow1 = total_flow_time(inst, s1, t);
  const std::int64_t flow2 = total_flow_time(inst, s2, t);

  // delta psi = -p * delta flow  (in half-units: -2p * delta flow)
  EXPECT_EQ(psi1 - psi2, -2 * p * (flow1 - flow2));
  EXPECT_GT(psi1, psi2);  // earlier starts: better utility, lower flow
  EXPECT_LT(flow1, flow2);
}

TEST(Prop42, BreaksForUnequalJobs) {
  // With unequal sizes the equivalence fails: flow time favors finishing
  // short jobs first, psi_sp weights by executed work. Swapping a short and
  // a long job on one machine changes the two metrics disproportionally.
  InstanceBuilder b;
  const OrgId o = b.add_org("o", 1);
  b.add_job(o, 0, 1);
  b.add_job(o, 0, 10);
  const Instance inst = std::move(b).build();
  const Time t = 30;

  Schedule short_first(1);
  short_first.add({o, 0, 0, 0});
  short_first.add({o, 1, 1, 0});
  Schedule long_first(1);
  long_first.add({o, 0, 10, 0});
  long_first.add({o, 1, 0, 0});

  // Flow time strongly prefers short-first...
  EXPECT_LT(total_flow_time(inst, short_first, t),
            total_flow_time(inst, long_first, t));
  // ...while psi_sp is indifferent (same multiset of busy slots, work
  // conserved: 11 units executed over [0, 11) either way).
  EXPECT_EQ(sp_org_half_utility(inst, short_first, o, t),
            sp_org_half_utility(inst, long_first, o, t));
}

// --- Theorem 4.1 through the deviation transforms ---------------------------
// The axioms above are statements about sp_job_half_utility in isolation;
// these re-check them through strategy/deviation.h on real schedules: the
// grading depends only on the allocated slots, so re-describing the same
// slots as split or merged jobs cannot move psi_sp, and pushing every slot
// later can only lower it — for every registered policy's schedule on
// generated windows.

namespace {

// A small two-org window with mixed job sizes (seeded, deterministic).
Instance generated_window(std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const OrgId deviator = b.add_org("deviator", 1);
  const OrgId honest = b.add_org("honest", 2);
  Time t = 0;
  for (int i = 0; i < 10; ++i) {
    t += static_cast<Time>(rng.uniform_u64(4));
    b.add_job(deviator, t, 1 + static_cast<Time>(rng.uniform_u64(5)));
    b.add_job(honest, t, 1 + static_cast<Time>(rng.uniform_u64(3)));
  }
  return std::move(b).build();
}

}  // namespace

TEST(Thm41Transforms, SplitOfAllocatedSlotsIsPsiInvariantForEveryPolicy) {
  // Run each policy, then re-describe the deviator's allocated slots as
  // the splitunit instance's unit pieces occupying exactly the same
  // slots: psi_sp must not move by a single half-unit.
  const strategy::DeviationSpec split{strategy::DeviationSpec::Kind::kSplit,
                                      0};
  for (const std::string& policy :
       exp::PolicyRegistry::global().names()) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const Instance inst = generated_window(seed);
      const Time horizon = 80;
      const RunResult run =
          exp::PolicyRegistry::global().run(inst, policy, horizon, seed);
      const Instance pieces = strategy::apply_deviation(inst, 0, split);

      // Job j of the deviator becomes unit pieces [first[j], first[j+1]).
      std::vector<std::uint32_t> first(inst.jobs_of(0).size() + 1, 0);
      for (std::size_t j = 0; j < inst.jobs_of(0).size(); ++j) {
        first[j + 1] = first[j] +
                       static_cast<std::uint32_t>(inst.job(0, j).processing);
      }
      Schedule piecewise(pieces.num_orgs());
      for (const Placement& p : run.schedule.placements()) {
        if (p.org != 0) {
          piecewise.add(p);
          continue;
        }
        const Time size = inst.job(0, p.index).processing;
        for (Time unit = 0; unit < size; ++unit) {
          piecewise.add({0, first[p.index] + static_cast<std::uint32_t>(unit),
                         p.start + unit, p.machine});
        }
      }
      EXPECT_EQ(sp_org_half_utility(inst, run.schedule, 0, horizon),
                sp_org_half_utility(pieces, piecewise, 0, horizon))
          << policy << " seed=" << seed;
    }
  }
}

TEST(Thm41Transforms, MergeOfBackToBackSlotsIsPsiInvariant) {
  // Jobs scheduled back-to-back on one machine graded as merged runs of k
  // over the same busy slots: equal psi_sp for every run length, at every
  // horizon (through apply_deviation_to_jobs, not hand-built merges).
  Rng rng(11);
  InstanceBuilder b;
  const OrgId o = b.add_org("o", 1);
  std::vector<Time> sizes;
  for (int i = 0; i < 9; ++i) {
    sizes.push_back(1 + static_cast<Time>(rng.uniform_u64(6)));
    b.add_job(o, 0, sizes.back());
  }
  const Instance inst = std::move(b).build();
  Schedule sequential(1);
  Time at = 0;
  for (std::uint32_t j = 0; j < sizes.size(); ++j) {
    sequential.add({o, j, at, 0});
    at += sizes[j];
  }
  for (std::int64_t k : {2, 3, 4}) {
    const strategy::DeviationSpec merge{
        strategy::DeviationSpec::Kind::kMerge, k};
    const Instance merged = strategy::apply_deviation(inst, 0, merge);
    // Each merged job covers its run's contiguous slots: starts fall out
    // of the same back-to-back layout.
    Schedule merged_schedule(1);
    Time start = 0;
    for (std::uint32_t j = 0; j < merged.jobs_of(0).size(); ++j) {
      merged_schedule.add({o, j, start, 0});
      start += merged.job(0, j).processing;
    }
    for (Time t : {0, 3, 7, 15, 29, 100}) {
      EXPECT_EQ(sp_org_half_utility(inst, sequential, o, t),
                sp_org_half_utility(merged, merged_schedule, o, t))
          << "k=" << k << " t=" << t;
    }
  }
}

TEST(Thm41Transforms, DelayingEverySlotNeverImprovesPsiForAnyPolicy) {
  // Shift every placement of the deviator d steps later (the slots a
  // delayed release forces at best): psi_sp is non-increasing in d, on
  // every registered policy's schedule.
  for (const std::string& policy :
       exp::PolicyRegistry::global().names()) {
    const Instance inst = generated_window(5);
    const Time horizon = 80;
    const RunResult run =
        exp::PolicyRegistry::global().run(inst, policy, horizon, 5);
    HalfUtil previous = sp_org_half_utility(inst, run.schedule, 0, horizon);
    for (Time d : {1, 2, 5, 20}) {
      Schedule delayed(inst.num_orgs());
      for (const Placement& p : run.schedule.placements()) {
        delayed.add(p.org == 0 ? Placement{p.org, p.index, p.start + d,
                                           p.machine}
                               : p);
      }
      const HalfUtil shifted =
          sp_org_half_utility(inst, delayed, 0, horizon);
      EXPECT_LE(shifted, previous) << policy << " d=" << d;
      previous = shifted;
    }
  }
}

TEST(Thm41Transforms, DelayNeverPaysThroughTheGameOnAverage) {
  // The full game (policy re-runs on the delayed instance) is noisy per
  // window but deterministic per seed: across a window batch the mean
  // delay gain must be non-positive for the share-graded policies.
  using Kind = strategy::DeviationSpec::Kind;
  const std::vector<strategy::DeviationSpec> grid = {{Kind::kHonest, 0},
                                                     {Kind::kDelay, 10}};
  for (const char* policy : {"fcfs", "fairshare", "directcontr"}) {
    double gain = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Instance inst = generated_window(seed);
      const auto outcomes =
          strategy::play_deviation_grid(inst, 0, grid, policy, 80, seed);
      gain += outcomes[1].outcome.deviator_utility -
              outcomes[0].outcome.deviator_utility;
    }
    EXPECT_LE(gain, 0.0) << policy;
  }
}

}  // namespace
}  // namespace fairsched
