// Tests for the src/exp experiment harness: PolicyRegistry resolution,
// SweepDriver determinism across thread counts, and reporter round-trips
// through util/csv.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/scenarios.h"
#include "exp/sweep.h"
#include "util/csv.h"

namespace fairsched::exp {
namespace {

// --- PolicyRegistry ---------------------------------------------------------

TEST(PolicyRegistry, ResolvesFixedNames) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_EQ(registry.make("fcfs").id, AlgorithmId::kFcfs);
  EXPECT_EQ(registry.make("roundrobin").id, AlgorithmId::kRoundRobin);
  EXPECT_EQ(registry.make("fairshare").id, AlgorithmId::kFairShare);
  EXPECT_EQ(registry.make("utfairshare").id, AlgorithmId::kUtFairShare);
  EXPECT_EQ(registry.make("currfairshare").id, AlgorithmId::kCurrFairShare);
  EXPECT_EQ(registry.make("directcontr").id, AlgorithmId::kDirectContr);
  EXPECT_EQ(registry.make("random").id, AlgorithmId::kRandom);
  EXPECT_EQ(registry.make("ref").id, AlgorithmId::kRef);
}

TEST(PolicyRegistry, ResolvesParameterizedNames) {
  PolicyRegistry& registry = PolicyRegistry::global();
  const AlgorithmSpec rand = registry.make("rand75");
  EXPECT_EQ(rand.id, AlgorithmId::kRand);
  EXPECT_EQ(rand.rand_samples, 75u);
  // Bare "rand" uses the paper's default sample count.
  EXPECT_EQ(registry.make("rand").id, AlgorithmId::kRand);
  const AlgorithmSpec decay = registry.make("decayfairshare2500");
  EXPECT_EQ(decay.id, AlgorithmId::kDecayFairShare);
  EXPECT_DOUBLE_EQ(decay.decay_half_life, 2500.0);
}

TEST(PolicyRegistry, IsCaseInsensitive) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_EQ(registry.make("RoundRobin").id, AlgorithmId::kRoundRobin);
  EXPECT_EQ(registry.make("RAND15").rand_samples, 15u);
}

TEST(PolicyRegistry, UnknownNameThrowsWithKnownList) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_FALSE(registry.contains("nope"));
  try {
    registry.make("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("known policies"), std::string::npos);
    EXPECT_NE(message.find("fairshare"), std::string::npos);
  }
  // A parameterized prefix with a non-numeric suffix is not a match.
  EXPECT_FALSE(registry.contains("randx"));
  EXPECT_THROW(registry.make("randx"), std::invalid_argument);
  // Malformed parameter suffixes: contains() and make() must agree.
  EXPECT_FALSE(registry.contains("rand."));
  EXPECT_THROW(registry.make("rand."), std::invalid_argument);
  // rand's sample count is integral: a fractional value must not be
  // silently truncated to its integer prefix.
  EXPECT_FALSE(registry.contains("rand1.5"));
  EXPECT_THROW(registry.make("rand1.5"), std::invalid_argument);
  // decayfairshare's half-life is fractional.
  EXPECT_TRUE(registry.contains("decayfairshare2500.5"));
  EXPECT_DOUBLE_EQ(registry.make("decayfairshare2500.5").decay_half_life,
                   2500.5);
  EXPECT_FALSE(registry.contains("decayfairshare1.2.3"));
  EXPECT_THROW(registry.make("decayfairshare1.2.3"), std::invalid_argument);
  // An out-of-range parameter surfaces as invalid_argument, not
  // std::out_of_range from the underlying stoul.
  EXPECT_TRUE(registry.contains("rand99999999999999999999"));
  EXPECT_THROW(registry.make("rand99999999999999999999"),
               std::invalid_argument);
}

TEST(PolicyRegistry, CanonicalNamesRoundTrip) {
  PolicyRegistry& registry = PolicyRegistry::global();
  for (const char* name :
       {"fcfs", "roundrobin", "random", "directcontr", "fairshare",
        "utfairshare", "currfairshare", "ref", "rand15", "rand75",
        "decayfairshare2000", "decayfairshare1000000",
        "decayfairshare123456.75"}) {
    const AlgorithmSpec spec = registry.make(name);
    const std::string canonical = canonical_policy_name(spec);
    const AlgorithmSpec again = registry.make(canonical);
    EXPECT_EQ(again.id, spec.id) << name;
    EXPECT_EQ(again.rand_samples, spec.rand_samples) << name;
    EXPECT_DOUBLE_EQ(again.decay_half_life, spec.decay_half_life) << name;
  }
}

TEST(PolicyRegistry, ParsesPolicyLists) {
  const std::vector<AlgorithmSpec> specs =
      parse_policy_list("fcfs, roundrobin ,rand5");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].id, AlgorithmId::kFcfs);
  EXPECT_EQ(specs[1].id, AlgorithmId::kRoundRobin);
  EXPECT_EQ(specs[2].rand_samples, 5u);
  EXPECT_THROW(parse_policy_list(""), std::invalid_argument);
  EXPECT_THROW(parse_policy_list("fcfs,bogus"), std::invalid_argument);
}

// --- SweepDriver ------------------------------------------------------------

SweepSpec small_sweep(std::size_t threads) {
  SweepSpec spec;
  spec.name = "test";
  spec.policies = {"roundrobin", "fairshare", "rand5", "random"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  w.orgs = 4;
  w.unit_jobs_per_org = 40;
  spec.workloads.push_back(w);
  spec.instances = 6;
  spec.seed = 42;
  spec.horizon = 120;
  spec.baseline = "ref";
  spec.threads = threads;
  return spec;
}

TEST(SweepDriver, ValidatesSpecUpFront) {
  SweepDriver driver;
  SweepSpec bad = small_sweep(1);
  bad.policies.push_back("bogus");
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.policies.clear();
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.instances = 0;
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.workloads.clear();
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
}

TEST(SweepDriver, RecordsAreCompleteAndOrdered) {
  const SweepSpec spec = small_sweep(2);
  const SweepResult result = SweepDriver().run(spec);
  ASSERT_EQ(result.records.size(), spec.instances * spec.policies.size());
  for (std::size_t i = 0; i < spec.instances; ++i) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const RunRecord& record = result.record(spec, 0, i, p);
      EXPECT_EQ(record.workload, 0u);
      EXPECT_EQ(record.instance, i);
      EXPECT_EQ(record.policy, p);
      EXPECT_GT(record.work_done, 0);
      EXPECT_GE(record.utilization, 0.0);
      EXPECT_LE(record.utilization, 1.0);
    }
  }
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_EQ(result.cells[0].size(), spec.policies.size());
  for (const SweepCell& cell : result.cells[0]) {
    EXPECT_EQ(cell.unfairness.count(), spec.instances);
  }
}

TEST(SweepDriver, SameSeedsGiveIdenticalCsvAcrossThreadCounts) {
  const SweepResult one = SweepDriver().run(small_sweep(1));
  const SweepResult many = SweepDriver().run(small_sweep(8));

  // Metric-by-metric equality must be exact (bitwise), not approximate:
  // aggregation order is fixed regardless of scheduling order.
  ASSERT_EQ(one.records.size(), many.records.size());
  for (std::size_t i = 0; i < one.records.size(); ++i) {
    EXPECT_EQ(one.records[i].seed, many.records[i].seed);
    EXPECT_EQ(one.records[i].unfairness, many.records[i].unfairness);
    EXPECT_EQ(one.records[i].rel_distance, many.records[i].rel_distance);
    EXPECT_EQ(one.records[i].utilization, many.records[i].utilization);
    EXPECT_EQ(one.records[i].work_done, many.records[i].work_done);
  }

  std::ostringstream csv_one, csv_many;
  CsvReporter(csv_one, /*per_run=*/true).report(small_sweep(1), one);
  CsvReporter(csv_many, /*per_run=*/true).report(small_sweep(8), many);
  EXPECT_EQ(csv_one.str(), csv_many.str());
}

TEST(SweepDriver, BaselinelessSweepSkipsFairnessMetrics) {
  SweepSpec spec = small_sweep(2);
  spec.baseline.clear();
  const SweepResult result = SweepDriver().run(spec);
  for (const RunRecord& record : result.records) {
    EXPECT_EQ(record.unfairness, 0.0);
    EXPECT_EQ(record.rel_distance, 0.0);
    EXPECT_GT(record.utilization, 0.0);
  }
}

// --- Reporters --------------------------------------------------------------

TEST(Reporter, CsvRoundTripsThroughUtilCsv) {
  // A workload name with CSV metacharacters must survive escape + parse.
  SweepSpec spec = small_sweep(2);
  spec.name = "round,trip \"sweep\"";
  spec.workloads[0].name = "unit, \"jobs\"\nline2";
  const SweepResult result = SweepDriver().run(spec);

  std::ostringstream out;
  CsvReporter(out, /*per_run=*/true).report(spec, result);

  // Re-join quoted newlines, then parse each record back.
  std::vector<std::string> lines;
  std::string current;
  for (char c : out.str()) {
    if (c == '\n') {
      // Inside an open quote the newline belongs to the cell.
      std::size_t quotes = 0;
      for (char q : current) quotes += q == '"';
      if (quotes % 2 == 1) {
        current += '\n';
        continue;
      }
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  ASSERT_FALSE(lines.empty());

  const std::vector<std::string> header = parse_csv_line(lines[0]);
  ASSERT_EQ(header.size(), 11u);
  EXPECT_EQ(header[0], "sweep");
  EXPECT_EQ(header[4], "unfairness_mean");

  // Aggregate rows: one per (workload, policy), values match the cells.
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    const std::vector<std::string> row = parse_csv_line(lines[1 + p]);
    ASSERT_EQ(row.size(), 11u);
    EXPECT_EQ(row[0], spec.name);
    EXPECT_EQ(row[1], spec.workloads[0].name);
    EXPECT_EQ(row[2], spec.policies[p]);
    EXPECT_EQ(row[3], std::to_string(spec.instances));
    EXPECT_EQ(row[4], CsvReporter::format(result.cells[0][p].unfairness.mean()));
    EXPECT_EQ(row[9],
              CsvReporter::format(result.cells[0][p].utilization.mean()));
  }

  // Per-run section: header + one row per record.
  const std::size_t per_run_header = 1 + spec.policies.size();
  EXPECT_EQ(lines.size(), per_run_header + 1 + result.records.size());
  const std::vector<std::string> run_row =
      parse_csv_line(lines[per_run_header + 1]);
  ASSERT_EQ(run_row.size(), 9u);
  EXPECT_EQ(run_row[0], "run");
  EXPECT_EQ(run_row[1], spec.workloads[0].name);
}

TEST(Reporter, JsonBaselineContainsEveryCell) {
  const SweepSpec spec = small_sweep(2);
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  JsonReporter(out).report(spec, result);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sweep\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"total_wall_ms\""), std::string::npos);
  for (const std::string& policy : spec.policies) {
    EXPECT_NE(json.find("\"policy\": \"" + policy + "\""), std::string::npos)
        << policy;
  }
}

TEST(Reporter, JsonEscapesStringMetacharacters) {
  SweepSpec spec = small_sweep(1);
  spec.name = "quote\" back\\slash";
  spec.workloads[0].name = "line\nbreak\ttab";
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  JsonReporter(out).report(spec, result);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sweep\": \"quote\\\" back\\\\slash\""),
            std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
  // No raw control characters may survive inside the output.
  EXPECT_EQ(json.find("line\nbreak"), std::string::npos);
}

// --- Scenario configs -------------------------------------------------------

TEST(Scenarios, SmokeModeShrinksTheMatrix) {
  ScenarioOptions options;
  options.smoke = true;
  const SweepSpec smoke = make_table_sweep("table1", options);
  ScenarioOptions full;
  const SweepSpec big = make_table_sweep("table1", full);
  EXPECT_LT(smoke.instances, big.instances);
  EXPECT_LT(smoke.horizon, big.horizon);
  EXPECT_EQ(smoke.policies, big.policies);
  EXPECT_EQ(smoke.workloads.size(), big.workloads.size());
  EXPECT_EQ(smoke.workloads.size(), 4u);  // the four archive shapes
}

TEST(Scenarios, Table2IsTheLongHorizonVariant) {
  ScenarioOptions options;
  const SweepSpec t1 = make_table_sweep("table1", options);
  const SweepSpec t2 = make_table_sweep("table2", options);
  EXPECT_EQ(t2.horizon, 10 * t1.horizon);
  EXPECT_THROW(make_table_sweep("table3", options), std::invalid_argument);
}

TEST(Scenarios, CustomSweepResolvesPoliciesAndWorkloads) {
  ScenarioOptions options;
  options.policies = "fcfs,rand5";
  options.workload = "unit";
  const SweepSpec spec = make_custom_sweep(options);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[1], "rand5");
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].kind, SweepWorkload::Kind::kUnitJobs);
  options.workload = "bogus";
  EXPECT_THROW(make_custom_sweep(options), std::invalid_argument);
}

}  // namespace
}  // namespace fairsched::exp
