// Tests for the src/exp experiment harness: PolicyRegistry resolution,
// SweepDriver axis expansion and streaming-fold determinism across thread
// counts, and reporter/sink round-trips through util/csv.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/executor.h"
#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/scenarios.h"
#include "exp/sweep.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"
#include "strategy/game.h"
#include "util/csv.h"

namespace fairsched::exp {
namespace {

// --- PolicyRegistry ---------------------------------------------------------

TEST(PolicyRegistry, ResolvesFixedNames) {
  PolicyRegistry& registry = PolicyRegistry::global();
  for (const char* name :
       {"fcfs", "roundrobin", "fairshare", "utfairshare", "currfairshare",
        "directcontr", "random", "ref"}) {
    const PolicySpec spec = registry.make(name);
    EXPECT_EQ(spec.base, name);
    EXPECT_TRUE(spec.params.empty()) << name;
  }
}

TEST(PolicyRegistry, ResolvesParameterizedNames) {
  PolicyRegistry& registry = PolicyRegistry::global();
  const PolicySpec rand = registry.make("rand75");
  EXPECT_EQ(rand.base, "rand");
  EXPECT_EQ(rand.params.at("samples").int_value, 75);
  // Bare "rand" uses the paper's default sample count.
  EXPECT_EQ(registry.make("rand").params.at("samples").int_value, 15);
  const PolicySpec decay = registry.make("decayfairshare2500");
  EXPECT_EQ(decay.base, "decayfairshare");
  EXPECT_DOUBLE_EQ(decay.params.at("half-life").real_value, 2500.0);
  // The bracket form names any declared parameter and is equivalent.
  EXPECT_EQ(registry.make("rand(samples=75)"), rand);
  EXPECT_EQ(registry.make("decayfairshare(half-life=2500)"), decay);
  EXPECT_EQ(registry.make("decayfairshare(half_life = 2500)"), decay);
}

TEST(PolicyRegistry, IsCaseInsensitive) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_EQ(registry.make("RoundRobin").base, "roundrobin");
  EXPECT_EQ(registry.make("RAND15").params.at("samples").int_value, 15);
}

TEST(PolicyRegistry, UnknownNameThrowsWithKnownList) {
  PolicyRegistry& registry = PolicyRegistry::global();
  EXPECT_FALSE(registry.contains("nope"));
  try {
    registry.make("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("known policies"), std::string::npos);
    EXPECT_NE(message.find("fairshare"), std::string::npos);
  }
  // A parameterized prefix with a non-numeric suffix is not a match.
  EXPECT_FALSE(registry.contains("randx"));
  EXPECT_THROW(registry.make("randx"), std::invalid_argument);
  // Malformed parameter suffixes: contains() and make() must agree.
  EXPECT_FALSE(registry.contains("rand."));
  EXPECT_THROW(registry.make("rand."), std::invalid_argument);
  // rand's sample count is integral: a fractional value must not be
  // silently truncated to its integer prefix.
  EXPECT_FALSE(registry.contains("rand1.5"));
  EXPECT_THROW(registry.make("rand1.5"), std::invalid_argument);
  // decayfairshare's half-life is fractional.
  EXPECT_TRUE(registry.contains("decayfairshare2500.5"));
  EXPECT_DOUBLE_EQ(
      registry.make("decayfairshare2500.5").params.at("half-life")
          .real_value,
      2500.5);
  EXPECT_FALSE(registry.contains("decayfairshare1.2.3"));
  EXPECT_THROW(registry.make("decayfairshare1.2.3"), std::invalid_argument);
  // An out-of-range parameter surfaces as invalid_argument, not
  // std::out_of_range from the underlying conversion.
  EXPECT_TRUE(registry.contains("rand99999999999999999999"));
  EXPECT_THROW(registry.make("rand99999999999999999999"),
               std::invalid_argument);
  // Out-of-declared-range values are rejected with the range named.
  try {
    registry.make("rand0");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(">= 1"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(registry.make("decayfairshare0"), std::invalid_argument);
}

TEST(PolicyRegistry, UnknownBracketParameterSuggestsDeclaredOnes) {
  PolicyRegistry& registry = PolicyRegistry::global();
  try {
    registry.make("rand(samplez=5)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown parameter 'samplez'"),
              std::string::npos);
    EXPECT_NE(message.find("did you mean 'samples'?"), std::string::npos);
    EXPECT_NE(message.find("declared parameters: samples"),
              std::string::npos);
  }
  // A parameter nothing resembles lists the declarations without a guess.
  try {
    registry.make("decayfairshare(zzz=5)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_EQ(message.find("did you mean"), std::string::npos) << message;
    EXPECT_NE(message.find("declared parameters: half-life"),
              std::string::npos);
  }
  EXPECT_THROW(registry.make("rand(samples=5"), std::invalid_argument);
  EXPECT_THROW(registry.make("rand(samples)"), std::invalid_argument);
  EXPECT_THROW(registry.make("rand(samples=5,samples=6)"),
               std::invalid_argument);
}

TEST(PolicyRegistry, CanonicalNamesRoundTrip) {
  PolicyRegistry& registry = PolicyRegistry::global();
  for (const char* name :
       {"fcfs", "roundrobin", "random", "directcontr", "fairshare",
        "utfairshare", "currfairshare", "ref", "rand15", "rand75",
        "decayfairshare2000", "decayfairshare1000000",
        "decayfairshare123456.75"}) {
    const PolicySpec spec = registry.make(name);
    const std::string canonical = canonical_policy_name(spec);
    EXPECT_EQ(canonical, name) << "already-canonical names are stable";
    EXPECT_EQ(registry.make(canonical), spec) << name;
  }
  // The suffix parameter always prints; bracket input canonicalizes to
  // the legacy suffix form.
  EXPECT_EQ(canonical_policy_name(registry.make("rand")), "rand15");
  EXPECT_EQ(canonical_policy_name(registry.make("rand(samples=75)")),
            "rand75");
  EXPECT_EQ(canonical_policy_name(registry.make("decayfairshare")),
            "decayfairshare5000");
}

TEST(PolicyRegistry, ParsesPolicyLists) {
  const std::vector<PolicySpec> specs =
      parse_policy_list("fcfs, roundrobin ,rand5");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].base, "fcfs");
  EXPECT_EQ(specs[1].base, "roundrobin");
  EXPECT_EQ(specs[2].params.at("samples").int_value, 5);
  EXPECT_THROW(parse_policy_list(""), std::invalid_argument);
  EXPECT_THROW(parse_policy_list("fcfs,bogus"), std::invalid_argument);
}

TEST(PolicyRegistry, CatalogDescribesEveryEntry) {
  const auto catalog = PolicyRegistry::global().catalog();
  ASSERT_EQ(catalog.size(), PolicyRegistry::global().names().size());
  bool saw_rand = false;
  for (const auto& [name, description] : catalog) {
    EXPECT_FALSE(description.empty()) << name;
    if (name == "rand[N]") saw_rand = true;
  }
  EXPECT_TRUE(saw_rand) << "parameterized keys carry the [N] suffix";
}

// --- SweepDriver ------------------------------------------------------------

SweepSpec small_sweep(std::size_t threads) {
  SweepSpec spec;
  spec.name = "test";
  spec.policies = {"roundrobin", "fairshare", "rand5", "random"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  w.orgs = 4;
  w.unit_jobs_per_org = 40;
  spec.workloads.push_back(w);
  spec.instances = 6;
  spec.seed = 42;
  spec.horizon = 120;
  spec.baseline = "ref";
  spec.threads = threads;
  return spec;
}

// Runs the sweep and returns (result, streamed records in sink order).
std::pair<SweepResult, std::vector<RunRecord>> run_collecting(
    const SweepSpec& spec) {
  std::vector<RunRecord> records;
  SweepResult result = SweepDriver().run(
      spec, nullptr,
      [&records](const RunRecord& record) { records.push_back(record); });
  return {std::move(result), std::move(records)};
}

TEST(SweepDriver, ValidatesSpecUpFront) {
  SweepDriver driver;
  SweepSpec bad = small_sweep(1);
  bad.policies.push_back("bogus");
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.policies.clear();
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.instances = 0;
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.workloads.clear();
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  // Malformed axes fail before any compute too.
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("orgs", {}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("orgs", {0}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("orgs", {2.5}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("orgs", {2, 3}));
  bad.axes.push_back(make_axis("orgs", {4, 5}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  // Values beyond the bound field's 32-bit range would wrap into a
  // different consortium than the reported label.
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("orgs", {4294967298.0}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
  bad = small_sweep(1);
  bad.axes.push_back(make_axis("jobs-per-org", {1e12}));
  EXPECT_THROW(driver.run(bad), std::invalid_argument);
}

TEST(SweepDriver, StreamsRecordsCompleteAndOrdered) {
  const SweepSpec spec = small_sweep(2);
  const auto [result, records] = run_collecting(spec);
  ASSERT_EQ(records.size(), spec.instances * spec.policies.size());
  for (std::size_t i = 0; i < spec.instances; ++i) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const RunRecord& record = records[i * spec.policies.size() + p];
      EXPECT_EQ(record.axis_point, 0u);
      EXPECT_EQ(record.workload, 0u);
      EXPECT_EQ(record.instance, i);
      EXPECT_EQ(record.policy, p);
      EXPECT_GT(record.work_done, 0);
      EXPECT_GE(record.utilization, 0.0);
      EXPECT_LE(record.utilization, 1.0);
    }
  }
  EXPECT_EQ(result.axis_points, 1u);
  ASSERT_EQ(result.cells.size(), spec.policies.size());
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    EXPECT_EQ(result.cell(spec, 0, 0, p).unfairness.count(), spec.instances);
  }
}

TEST(SweepDriver, SameSeedsGiveIdenticalOutputAcrossThreadCounts) {
  const auto [one, records_one] = run_collecting(small_sweep(1));
  const auto [many, records_many] = run_collecting(small_sweep(8));

  // Metric-by-metric equality must be exact (bitwise), not approximate:
  // the streaming fold order is fixed regardless of scheduling order.
  ASSERT_EQ(records_one.size(), records_many.size());
  for (std::size_t i = 0; i < records_one.size(); ++i) {
    EXPECT_EQ(records_one[i].seed, records_many[i].seed);
    EXPECT_EQ(records_one[i].unfairness, records_many[i].unfairness);
    EXPECT_EQ(records_one[i].rel_distance, records_many[i].rel_distance);
    EXPECT_EQ(records_one[i].utilization, records_many[i].utilization);
    EXPECT_EQ(records_one[i].work_done, records_many[i].work_done);
  }

  std::ostringstream csv_one, csv_many;
  CsvReporter(csv_one).report(small_sweep(1), one);
  CsvReporter(csv_many).report(small_sweep(8), many);
  EXPECT_EQ(csv_one.str(), csv_many.str());
}

TEST(SweepDriver, BaselinelessSweepSkipsFairnessMetrics) {
  SweepSpec spec = small_sweep(2);
  spec.baseline.clear();
  const auto [result, records] = run_collecting(spec);
  for (const RunRecord& record : records) {
    EXPECT_EQ(record.unfairness, 0.0);
    EXPECT_EQ(record.rel_distance, 0.0);
    EXPECT_GT(record.utilization, 0.0);
  }
}

// --- Axes -------------------------------------------------------------------

TEST(SweepAxis, MakeAxisResolvesNamesAndAliases) {
  EXPECT_EQ(make_axis("orgs", {2}).bind, SweepAxis::Bind::kOrgs);
  EXPECT_EQ(make_axis("half_life", {5}).name, "half-life");
  EXPECT_EQ(make_axis("HalfLife", {5}).bind, SweepAxis::Bind::kPolicyParam);
  EXPECT_EQ(make_axis("half-life", {5}).scope, SweepAxis::Scope::kPolicy);
  // Any declared policy parameter is an axis: rand's sample count too.
  EXPECT_EQ(make_axis("samples", {1, 5}).bind,
            SweepAxis::Bind::kPolicyParam);
  EXPECT_TRUE(make_axis("samples", {1, 5}).integral);
  EXPECT_EQ(make_axis("duration", {5}).name, "horizon");
  EXPECT_EQ(make_axis("duration", {5}).bind, SweepAxis::Bind::kHorizon);
  EXPECT_EQ(make_axis("zipf-s", {1}).bind, SweepAxis::Bind::kZipfS);
  EXPECT_EQ(make_axis("jobs-per-org", {4}).bind,
            SweepAxis::Bind::kUnitJobsPerOrg);
  try {
    make_axis("bogus", {1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("known axes"), std::string::npos);
  }
}

TEST(SweepAxis, ValueLabels) {
  EXPECT_EQ(axis_value_label(make_axis("orgs", {}), 7.0), "7");
  EXPECT_EQ(axis_value_label(make_axis("horizon", {}), 400000.0), "400000");
  EXPECT_EQ(axis_value_label(make_axis("split", {}), 0.0), "zipf");
  EXPECT_EQ(axis_value_label(make_axis("split", {}), 1.0), "uniform");
  EXPECT_EQ(axis_value_label(make_axis("zipf-s", {}), 0.5), "0.5");
  EXPECT_EQ(axis_value_label(make_axis("half-life", {}), 2500.0), "2500");
}

TEST(SweepAxis, ExpansionProducesProductOfCells) {
  SweepSpec spec = small_sweep(2);
  spec.axes.push_back(make_axis("orgs", {2, 3, 4}));
  spec.axes.push_back(make_axis("jobs-per-org", {20, 40}));
  EXPECT_EQ(num_axis_points(spec), 6u);

  const auto [result, records] = run_collecting(spec);
  EXPECT_EQ(result.axis_points, 6u);
  ASSERT_EQ(result.cells.size(), 6u * spec.policies.size());
  ASSERT_EQ(records.size(),
            6u * spec.instances * spec.policies.size());
  // Every cell aggregates exactly `instances` runs.
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      EXPECT_EQ(result.cell(spec, a, 0, p).unfairness.count(),
                spec.instances);
    }
  }
  // Streamed order is axis-major; axis 0 varies slowest.
  for (std::size_t r = 0; r < records.size(); ++r) {
    const std::size_t expected_point =
        r / (spec.instances * spec.policies.size());
    EXPECT_EQ(records[r].axis_point, expected_point);
  }
  // Mixed-radix decode recovers the per-axis values.
  EXPECT_EQ(axis_point_values(spec, 0), (std::vector<double>{2, 20}));
  EXPECT_EQ(axis_point_values(spec, 1), (std::vector<double>{2, 40}));
  EXPECT_EQ(axis_point_values(spec, 5), (std::vector<double>{4, 40}));
}

TEST(SweepAxis, AxisSweepDeterministicAcrossThreadCounts) {
  auto make = [](std::size_t threads) {
    SweepSpec spec = small_sweep(threads);
    spec.instances = 4;
    spec.axes.push_back(make_axis("orgs", {2, 3, 5}));
    spec.axes.push_back(make_axis("horizon", {60, 120}));
    return spec;
  };
  const auto [one, records_one] = run_collecting(make(1));
  const auto [many, records_many] = run_collecting(make(8));
  ASSERT_EQ(records_one.size(), records_many.size());
  for (std::size_t i = 0; i < records_one.size(); ++i) {
    EXPECT_EQ(records_one[i].axis_point, records_many[i].axis_point);
    EXPECT_EQ(records_one[i].seed, records_many[i].seed);
    EXPECT_EQ(records_one[i].unfairness, records_many[i].unfairness);
    EXPECT_EQ(records_one[i].utilization, records_many[i].utilization);
    EXPECT_EQ(records_one[i].work_done, records_many[i].work_done);
  }
  std::ostringstream csv_one, csv_many;
  CsvReporter(csv_one).report(make(1), one);
  CsvReporter(csv_many).report(make(8), many);
  EXPECT_EQ(csv_one.str(), csv_many.str());
}

TEST(SweepAxis, HorizonAxisChangesTheRuns) {
  SweepSpec spec = small_sweep(2);
  spec.baseline.clear();
  // Enough jobs that neither horizon drains the queue: completed work must
  // then strictly grow with the horizon.
  spec.workloads[0].unit_jobs_per_org = 200;
  spec.axes.push_back(make_axis("horizon", {30, 60}));
  const auto [result, records] = run_collecting(spec);
  // More horizon, more completed work: the two axis points must differ.
  std::int64_t work0 = 0, work1 = 0;
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    work0 += result.cell(spec, 0, 0, p).work_done;
    work1 += result.cell(spec, 1, 0, p).work_done;
  }
  EXPECT_LT(work0, work1);
}

TEST(SweepAxis, HalfLifeAxisBindsOnlyDecayPolicies) {
  SweepSpec spec = small_sweep(2);
  spec.policies = {"decayfairshare", "fairshare"};
  spec.instances = 3;
  spec.axes.push_back(make_axis("half-life", {20, 100000}));
  const auto [result, records] = run_collecting(spec);
  ASSERT_EQ(records.size(), 2u * spec.instances * 2u);
  // Axis points share instance seeds (paired samples), so a policy the
  // axis does not bind must reproduce bit-identical runs on both points.
  for (std::size_t i = 0; i < spec.instances; ++i) {
    const RunRecord& a0 = records[i * 2 + 1];  // fairshare, first point
    const RunRecord& a1 =
        records[(spec.instances + i) * 2 + 1];  // fairshare, second point
    EXPECT_EQ(a0.seed, a1.seed);
    EXPECT_EQ(a0.unfairness, a1.unfairness);
    EXPECT_EQ(a0.work_done, a1.work_done);
  }
}

// --- Workload/baseline cache ------------------------------------------------

// A sweep where the cache has real sharing to do: a policy-scoped
// half-life axis (all four points share instance + baseline + every
// non-decay policy run) on top of the unit-jobs workload.
SweepSpec decay_sweep(std::size_t threads, std::size_t cache_bytes) {
  SweepSpec spec = small_sweep(threads);
  spec.policies = {"decayfairshare", "fairshare", "roundrobin", "rand5"};
  spec.instances = 3;
  spec.axes.push_back(make_axis("half-life", {20, 60, 500, 100000}));
  spec.cache_bytes = cache_bytes;
  return spec;
}

// Strips the fields the determinism contract deliberately excludes, so the
// comparison below is exact on everything else.
void expect_same_records(const std::vector<RunRecord>& lhs,
                         const std::vector<RunRecord>& rhs) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].axis_point, rhs[i].axis_point);
    EXPECT_EQ(lhs[i].workload, rhs[i].workload);
    EXPECT_EQ(lhs[i].policy, rhs[i].policy);
    EXPECT_EQ(lhs[i].instance, rhs[i].instance);
    EXPECT_EQ(lhs[i].seed, rhs[i].seed);
    EXPECT_EQ(lhs[i].unfairness, rhs[i].unfairness);
    EXPECT_EQ(lhs[i].rel_distance, rhs[i].rel_distance);
    EXPECT_EQ(lhs[i].utilization, rhs[i].utilization);
    EXPECT_EQ(lhs[i].work_done, rhs[i].work_done);
  }
}

TEST(WorkloadCacheSweep, CachedOutputBitIdenticalToUncachedAcrossThreads) {
  const auto [uncached, records_uncached] =
      run_collecting(decay_sweep(1, 0));
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const SweepSpec spec = decay_sweep(threads, kDefaultCacheBytes);
    const auto [cached, records_cached] = run_collecting(spec);
    expect_same_records(records_uncached, records_cached);
    std::ostringstream csv_uncached, csv_cached;
    CsvReporter(csv_uncached).report(spec, uncached);
    CsvReporter(csv_cached).report(spec, cached);
    EXPECT_EQ(csv_uncached.str(), csv_cached.str()) << threads;
    // The streamed per-run CSV (what CI diffs) is identical too.
    std::ostringstream rows_uncached, rows_cached;
    CsvRecordSink sink_uncached(rows_uncached, spec);
    for (const RunRecord& r : records_uncached) sink_uncached.write(r);
    CsvRecordSink sink_cached(rows_cached, spec);
    for (const RunRecord& r : records_cached) sink_cached.write(r);
    EXPECT_EQ(rows_uncached.str(), rows_cached.str()) << threads;
    EXPECT_TRUE(cached.cache_enabled);
    EXPECT_GT(cached.cache.hits, 0u);
    EXPECT_GT(cached.replayed_runs, 0u);
  }
  EXPECT_FALSE(uncached.cache_enabled);
  EXPECT_EQ(uncached.cache.hits + uncached.cache.misses, 0u);
  EXPECT_EQ(uncached.replayed_runs, 0u);
}

TEST(WorkloadCacheSweep, MixedAxesPrefixComputeCounts) {
  // half-life (policy-scoped, 3 values) x orgs (workload-scoped, 2 values):
  // 6 axis points collapse into 2 prefix groups, so per (workload,
  // instance) the prefix is computed twice, not six times.
  SweepSpec spec = small_sweep(4);
  spec.policies = {"decayfairshare", "fairshare", "roundrobin"};
  spec.instances = 3;
  spec.axes.push_back(make_axis("half-life", {20, 60, 100000}));
  spec.axes.push_back(make_axis("orgs", {3, 4}));
  EXPECT_EQ(spec.axes[0].scope, SweepAxis::Scope::kPolicy);
  EXPECT_EQ(spec.axes[1].scope, SweepAxis::Scope::kWorkload);
  const auto [result, records] = run_collecting(spec);

  const std::size_t groups = 2, points = 6;
  EXPECT_EQ(result.prefix_groups, groups);
  // One prefix lookup per task (unit workload: no window sub-cache keys).
  EXPECT_EQ(result.cache.misses, groups * spec.instances);
  EXPECT_EQ(result.cache.hits, (points - groups) * spec.instances);
  EXPECT_EQ(result.cache.evictions, 0u);
  // fairshare + roundrobin replay at every non-computing point of a group;
  // decayfairshare varies within each group and re-runs everywhere.
  EXPECT_EQ(result.replayed_runs, (points - groups) * spec.instances * 2);
  ASSERT_EQ(records.size(), points * spec.instances * spec.policies.size());
  for (const RunRecord& record : records) {
    EXPECT_FALSE(record.policy == 0 && record.replayed);
  }
}

TEST(WorkloadCacheSweep, EvictionUnderTinyBudgetKeepsOutputIdentical) {
  const auto [reference, records_reference] =
      run_collecting(decay_sweep(4, 0));
  SweepSpec tiny = decay_sweep(4, 1);  // 1 byte: nothing can stay resident
  const auto [result, records] = run_collecting(tiny);
  expect_same_records(records_reference, records);
  EXPECT_GT(result.cache.evictions, 0u);
  EXPECT_EQ(result.cache.bytes_in_use, 0u);
}

TEST(WorkloadCacheSweep, SyntheticWindowsShareAcrossConsortiumAxes) {
  // An orgs axis over a synthetic workload: every axis point is its own
  // prefix group (REF really differs), but the generated window depends
  // only on (workload, instance, horizon) and is reused across points.
  SweepSpec spec;
  spec.name = "window-share";
  spec.policies = {"roundrobin", "fairshare"};
  spec.baseline = "ref";
  spec.seed = 7;
  spec.threads = 2;
  spec.horizon = 400;
  spec.instances = 2;
  SweepWorkload w;
  w.name = "lpc";
  w.kind = SweepWorkload::Kind::kSynthetic;
  w.spec = preset_lpc_egee();
  spec.workloads.push_back(std::move(w));
  spec.axes.push_back(make_axis("orgs", {2, 3, 4}));

  const auto [cached, records_cached] = run_collecting(spec);
  EXPECT_EQ(cached.prefix_groups, 3u);
  // Window keys: 1 miss + 2 hits per instance. Prefix keys are single-use
  // (every group has one point) and count as misses.
  EXPECT_EQ(cached.cache.hits, 2 * spec.instances);
  EXPECT_EQ(cached.cache.misses, 4 * spec.instances);
  EXPECT_EQ(cached.replayed_runs, 0u);

  SweepSpec uncached = spec;
  uncached.cache_bytes = 0;
  const auto [reference, records_reference] = run_collecting(uncached);
  expect_same_records(records_reference, records_cached);
}

TEST(WorkloadCacheSweep, PolicyScopedAxisMustBindAPolicy) {
  // A half-life axis over a policy set with no decayfairshare would sweep
  // identical cells; the registry's bound-axes declarations let the driver
  // reject it up front.
  SweepSpec spec = small_sweep(1);
  spec.axes.push_back(make_axis("half-life", {100, 1000}));
  try {
    SweepDriver().run(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("binds no selected policy"),
              std::string::npos);
  }
  spec.policies.push_back("decayfairshare");
  EXPECT_NO_THROW(SweepDriver().run(spec));
  // Registry declarations behind the check:
  EXPECT_NE(PolicyRegistry::global().param_for_axis("decayfairshare",
                                                    "half-life"),
            nullptr);
  EXPECT_EQ(PolicyRegistry::global().param_for_axis("fairshare",
                                                    "half-life"),
            nullptr);
}

TEST(WorkloadCacheSweep, ConfigDefinedPolicyInheritsItsBaseAxes) {
  // A config-defined policy derived from decayfairshare inherits the
  // half-life declaration, so the axis binds it (and the prefix cache
  // re-runs it per point while fairshare replays).
  ConfigPolicyDef def;
  def.name = "shadowdecay";
  def.base = "decayfairshare";
  def.overrides.push_back({"half-life", "1000"});
  register_config_policy(PolicyRegistry::global(), def);
  SweepSpec spec = small_sweep(1);
  spec.policies = {"shadowdecay", "fairshare"};
  spec.instances = 2;
  spec.axes.push_back(make_axis("half-life", {20, 100000}));
  const auto [result, records] = run_collecting(spec);
  EXPECT_EQ(result.prefix_groups, 1u);
  // fairshare replays across the group; shadowdecay re-runs per point.
  EXPECT_EQ(result.replayed_runs, spec.instances);
  // The derived entry is itself parameterized through the open grammar,
  // and its runs match its base's at equal parameter values.
  const PolicySpec derived =
      PolicyRegistry::global().make("shadowdecay(half-life=20)");
  EXPECT_DOUBLE_EQ(derived.params.at("half-life").real_value, 20.0);
}

TEST(WorkloadCacheSweep, WorkloadScopedBindsRejectPolicyScope) {
  // Scope can be widened to kWorkload (opting out of sharing) but a
  // workload-reshaping bind can never be narrowed to kPolicy.
  SweepSpec spec = small_sweep(1);
  SweepAxis axis = make_axis("orgs", {2, 3});
  axis.scope = SweepAxis::Scope::kPolicy;
  spec.axes.push_back(axis);
  EXPECT_THROW(SweepDriver().run(spec), std::invalid_argument);

  // Widening half-life to kWorkload is allowed and simply disables prefix
  // sharing: every axis point becomes its own group.
  SweepSpec widened = small_sweep(1);
  widened.policies = {"decayfairshare", "fairshare"};
  widened.instances = 2;
  SweepAxis half_life = make_axis("half-life", {20, 100000});
  half_life.scope = SweepAxis::Scope::kWorkload;
  widened.axes.push_back(half_life);
  const auto [result, records] = run_collecting(widened);
  EXPECT_EQ(result.prefix_groups, 2u);
  EXPECT_EQ(result.replayed_runs, 0u);
}

// --- Planner/executor split: shards, artifacts, merge -----------------------

// A sweep with several prefix families (2 groups x 2 workloads) so an
// N-way shard partition actually distributes work.
SweepSpec sharded_sweep(std::size_t threads) {
  SweepSpec spec;
  spec.name = "sharded";
  spec.policies = {"decayfairshare", "fairshare", "roundrobin"};
  SweepWorkload unit;
  unit.name = "unit-jobs";
  unit.kind = SweepWorkload::Kind::kUnitJobs;
  unit.orgs = 4;
  unit.unit_jobs_per_org = 30;
  SweepWorkload random;
  random.name = "small-random";
  random.kind = SweepWorkload::Kind::kSmallRandom;
  spec.workloads = {unit, random};
  spec.instances = 2;
  spec.seed = 7;
  spec.horizon = 100;
  spec.baseline = "ref";
  spec.threads = threads;
  spec.axes.push_back(make_axis("half-life", {20, 100000}));
  spec.axes.push_back(make_axis("orgs", {3, 4}));
  return spec;
}

std::string aggregate_csv(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream out;
  CsvReporter(out).report(spec, result);
  return out.str();
}

std::string human_table(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream out;
  TableReporter(out).report(spec, result);
  return out.str();
}

// Executes shard s/N of `spec` and round-trips the result through the
// artifact text format, as a worker process would.
ShardArtifact run_shard(const SweepSpec& spec, std::size_t index,
                        std::size_t count) {
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), {index, count});
  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);
  std::ostringstream artifact;
  write_shard_artifact(artifact, plan, result);
  return parse_shard_artifact(artifact.str(),
                              "shard-" + std::to_string(index));
}

TEST(ShardedSweep, MergedShardsBitIdenticalToWholeRunAtAnyShardCount) {
  const SweepSpec spec = sharded_sweep(2);
  const SweepResult whole = SweepDriver().run(spec);
  const std::string whole_csv = aggregate_csv(spec, whole);
  const std::string whole_table = human_table(spec, whole);

  for (std::size_t count : {2u, 3u, 5u}) {
    std::vector<ShardArtifact> artifacts;
    for (std::size_t s = 0; s < count; ++s) {
      // Vary the thread count per shard: the contract holds regardless.
      SweepSpec shard_spec = spec;
      shard_spec.threads = 1 + s % 3;
      artifacts.push_back(run_shard(shard_spec, s, count));
    }
    const MergedSweep merged = merge_shard_artifacts(std::move(artifacts));
    // Byte-identical statistical output, through the reconstructed spec.
    EXPECT_EQ(aggregate_csv(merged.spec, merged.result), whole_csv)
        << count;
    EXPECT_EQ(human_table(merged.spec, merged.result), whole_table)
        << count;
    EXPECT_EQ(merged.result.shards, count);
    ASSERT_EQ(merged.result.per_shard_cache.size(), count);
    EXPECT_EQ(merged.result.prefix_groups, whole.prefix_groups);
  }
}

TEST(ShardedSweep, MergeMatchesWholeRunWithCacheDisabled) {
  SweepSpec spec = sharded_sweep(2);
  const std::string whole_csv =
      aggregate_csv(spec, SweepDriver().run(spec));
  spec.cache_bytes = 0;  // shards run uncached; output must not move
  std::vector<ShardArtifact> artifacts;
  for (std::size_t s = 0; s < 3; ++s) {
    artifacts.push_back(run_shard(spec, s, 3));
  }
  const MergedSweep merged = merge_shard_artifacts(std::move(artifacts));
  EXPECT_EQ(aggregate_csv(merged.spec, merged.result), whole_csv);
  EXPECT_FALSE(merged.result.cache_enabled);
}

TEST(ShardedSweep, ShardRunsOnlyOwnedCellsAndRecordsCarryRunIds) {
  const SweepSpec spec = sharded_sweep(1);
  // Whole-run records stream exactly in run-id order.
  const auto [whole, whole_records] = run_collecting(spec);
  for (std::size_t r = 0; r < whole_records.size(); ++r) {
    EXPECT_EQ(whole_records[r].run_id, r);
  }

  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), {1, 3});
  ThreadPoolExecutor executor;
  std::vector<RunRecord> records;
  const SweepResult result = executor.execute(
      plan, nullptr,
      [&records](const RunRecord& record) { records.push_back(record); });
  ASSERT_EQ(records.size(),
            plan.shard_tasks.size() * spec.policies.size());
  ASSERT_FALSE(records.empty());
  // The shard's stream is the whole run's restricted to its tasks: same
  // run ids, same values, ascending order.
  std::size_t previous = 0;
  bool first = true;
  for (const RunRecord& record : records) {
    if (!first) EXPECT_GT(record.run_id, previous);
    first = false;
    previous = record.run_id;
    const RunRecord& reference = whole_records[record.run_id];
    EXPECT_EQ(record.axis_point, reference.axis_point);
    EXPECT_EQ(record.unfairness, reference.unfairness);
    EXPECT_EQ(record.work_done, reference.work_done);
  }
  // Unowned cells stay empty; owned ones match the whole run bit-for-bit.
  for (std::size_t cell = 0; cell < result.cells.size(); ++cell) {
    if (plan.owns_cell(cell)) {
      EXPECT_EQ(result.cells[cell].unfairness.count(), spec.instances);
      EXPECT_EQ(result.cells[cell].unfairness.mean(),
                whole.cells[cell].unfairness.mean());
    } else {
      EXPECT_EQ(result.cells[cell].unfairness.count(), 0u);
    }
  }
}

TEST(ShardedSweep, MergeRejectsInconsistentArtifactSets) {
  const SweepSpec spec = sharded_sweep(1);
  std::vector<ShardArtifact> artifacts;
  for (std::size_t s = 0; s < 3; ++s) {
    artifacts.push_back(run_shard(spec, s, 3));
  }
  EXPECT_THROW(merge_shard_artifacts({}), std::invalid_argument);
  // Missing one shard.
  EXPECT_THROW(merge_shard_artifacts({artifacts[0], artifacts[1]}),
               std::invalid_argument);
  // The same shard twice.
  EXPECT_THROW(
      merge_shard_artifacts({artifacts[0], artifacts[1], artifacts[1]}),
      std::invalid_argument);
  // A shard of a different plan (different seed => fingerprint).
  SweepSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_THROW(merge_shard_artifacts(
                   {artifacts[0], artifacts[1], run_shard(other, 2, 3)}),
               std::invalid_argument);
  // The intact set still merges.
  EXPECT_NO_THROW(merge_shard_artifacts(std::move(artifacts)));
}

TEST(ShardedSweep, ArtifactTextRejectsTampering) {
  const SweepSpec spec = sharded_sweep(1);
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), {0, 2});
  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);
  std::ostringstream artifact;
  write_shard_artifact(artifact, plan, result);
  const std::string text = artifact.str();
  EXPECT_NO_THROW(parse_shard_artifact(text, "ok"));
  EXPECT_THROW(parse_shard_artifact(text.substr(0, text.size() / 2),
                                    "truncated"),
               std::invalid_argument);
  EXPECT_THROW(parse_shard_artifact("{}", "empty"), std::invalid_argument);
  std::string wrong_version = text;
  const std::size_t at = wrong_version.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 12, "\"version\": 9");
  try {
    parse_shard_artifact(wrong_version, "vers");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos);
  }
}

// --- Strategy sweeps through the whole engine -------------------------------

// A compact strategy sweep through the real scenario factory: 2 policies,
// a deviator-org axis and a pruned deviation grid on the contended LPC
// window.
SweepSpec strategy_sweep(std::size_t threads) {
  ScenarioOptions options;
  options.smoke = true;
  options.duration = 400;
  options.instances = 2;
  options.deviations = "split:2,merge:2,delay:5,misreport:50";
  options.deviator_orgs = "0,1";
  SweepSpec spec = make_strategy_sweep(options);
  spec.policies = {"fcfs", "fairshare"};
  spec.threads = threads;
  spec.seed = 19;
  return spec;
}

std::string strategy_report(const SweepSpec& spec,
                            const SweepResult& result) {
  std::ostringstream out;
  strategy::print_strategy_report(spec, result, out);
  return out.str();
}

TEST(StrategySweep, SpecCarriesTheDeviationGridAsAnAxis) {
  const SweepSpec spec = strategy_sweep(1);
  ASSERT_TRUE(spec.is_strategy());
  // Honest is always entry 0 — the gain reference every report needs.
  ASSERT_EQ(spec.deviations.size(), 5u);
  EXPECT_EQ(spec.deviations[0].kind,
            strategy::DeviationSpec::Kind::kHonest);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "strategy");
  EXPECT_EQ(spec.axes[0].bind, SweepAxis::Bind::kStrategy);
  EXPECT_EQ(spec.axes[0].scope, SweepAxis::Scope::kStrategy);
  ASSERT_EQ(spec.axes[0].value_labels.size(), 5u);
  EXPECT_EQ(spec.axes[0].value_labels[0], "honest");
  EXPECT_EQ(spec.axes[0].value_labels[1], "split2");
  EXPECT_EQ(spec.axes[1].name, "deviator-org");
  EXPECT_EQ(spec.axes[1].values, (std::vector<double>{0, 1}));
}

TEST(StrategySweep, OutputsBitIdenticalAcrossThreadsAndCache) {
  const auto [one, records_one] = run_collecting(strategy_sweep(1));
  const auto [many, records_many] = run_collecting(strategy_sweep(8));
  ASSERT_EQ(records_one.size(), records_many.size());
  bool any_strategy_signal = false;
  for (std::size_t i = 0; i < records_one.size(); ++i) {
    EXPECT_EQ(records_one[i].deviator_utility,
              records_many[i].deviator_utility);
    EXPECT_EQ(records_one[i].deviator_flow, records_many[i].deviator_flow);
    EXPECT_EQ(records_one[i].honest_utility,
              records_many[i].honest_utility);
    any_strategy_signal |= records_one[i].deviator_utility != 0.0;
  }
  EXPECT_TRUE(any_strategy_signal);
  EXPECT_EQ(aggregate_csv(strategy_sweep(1), one),
            aggregate_csv(strategy_sweep(8), many));
  EXPECT_EQ(strategy_report(strategy_sweep(1), one),
            strategy_report(strategy_sweep(8), many));

  SweepSpec uncached = strategy_sweep(4);
  uncached.cache_bytes = 0;
  EXPECT_EQ(aggregate_csv(uncached, SweepDriver().run(uncached)),
            aggregate_csv(strategy_sweep(1), one));
  // Every deviation of a (workload, instance, deviator) cell shares one
  // honest prefix: the generated window and its REF baseline are computed
  // once, not once per deviation.
  EXPECT_EQ(one.prefix_groups, 1u);
}

TEST(StrategySweep, AggregateCsvCarriesStrategyColumnsOnlyForStrategy) {
  const SweepSpec spec = strategy_sweep(2);
  const std::string csv = aggregate_csv(spec, SweepDriver().run(spec));
  EXPECT_NE(csv.find("deviator_utility_mean"), std::string::npos);
  EXPECT_NE(csv.find("deviator_flow_mean"), std::string::npos);
  EXPECT_NE(csv.find("honest_utility_mean"), std::string::npos);
  const SweepSpec plain = small_sweep(2);
  const std::string plain_csv =
      aggregate_csv(plain, SweepDriver().run(plain));
  EXPECT_EQ(plain_csv.find("deviator_utility_mean"), std::string::npos);
}

TEST(StrategySweep, MergedShardsReproduceReportAndCheckBitForBit) {
  const SweepSpec spec = strategy_sweep(2);
  const SweepResult whole = SweepDriver().run(spec);
  const std::string whole_csv = aggregate_csv(spec, whole);
  const std::string whole_report = strategy_report(spec, whole);
  std::ostringstream whole_check_out;
  const std::size_t whole_check =
      strategy::check_theorem41(spec, whole, 2.0, whole_check_out);

  std::vector<ShardArtifact> artifacts;
  for (std::size_t s = 0; s < 3; ++s) {
    SweepSpec shard_spec = spec;
    shard_spec.threads = 1 + s;
    artifacts.push_back(run_shard(shard_spec, s, 3));
  }
  const MergedSweep merged = merge_shard_artifacts(std::move(artifacts));
  // The deviation grid survives the artifact summary round-trip: the
  // merged spec can drive the same report without the original argv.
  EXPECT_EQ(merged.spec.deviations, spec.deviations);
  ASSERT_EQ(merged.spec.axes.size(), spec.axes.size());
  EXPECT_EQ(merged.spec.axes[0].value_labels,
            spec.axes[0].value_labels);
  EXPECT_EQ(aggregate_csv(merged.spec, merged.result), whole_csv);
  EXPECT_EQ(strategy_report(merged.spec, merged.result), whole_report);
  std::ostringstream merged_check_out;
  EXPECT_EQ(strategy::check_theorem41(merged.spec, merged.result, 2.0,
                                      merged_check_out),
            whole_check);
  EXPECT_EQ(merged_check_out.str(), whole_check_out.str());
}

TEST(StrategySweep, ArtifactRoundTripCarriesStrategyAccumulators) {
  const SweepSpec spec = strategy_sweep(1);
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), {0, 1});
  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);
  std::ostringstream artifact;
  write_shard_artifact(artifact, plan, result);
  const ShardArtifact parsed =
      parse_shard_artifact(artifact.str(), "strategy-shard");
  ASSERT_EQ(parsed.result.cells.size(), result.cells.size());
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    EXPECT_EQ(parsed.result.cells[c].deviator_utility.mean(),
              result.cells[c].deviator_utility.mean());
    EXPECT_EQ(parsed.result.cells[c].deviator_flow.mean(),
              result.cells[c].deviator_flow.mean());
    EXPECT_EQ(parsed.result.cells[c].honest_utility.mean(),
              result.cells[c].honest_utility.mean());
  }
}

TEST(StrategySweep, ValidationCatchesBadStrategySpecs) {
  // A deviator-org beyond the consortium is a spec error, not a crash.
  SweepSpec bad = strategy_sweep(1);
  bad.axes[1].values = {0, 99};
  EXPECT_THROW(SweepDriver().run(bad), std::invalid_argument);
  // A strategy axis needs a deviation grid behind it.
  bad = strategy_sweep(1);
  bad.deviations.clear();
  EXPECT_THROW(SweepDriver().run(bad), std::invalid_argument);
  // Strategy axis values must index the grid.
  bad = strategy_sweep(1);
  bad.axes[0].values = {0, 7};
  EXPECT_THROW(SweepDriver().run(bad), std::invalid_argument);
}

// --- Disk cache tier through the sweep engine -------------------------------

// A private scratch directory per test, cleaned before use.
std::filesystem::path disk_tier_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("fairsched_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DiskCacheSweep, SecondInvocationReplaysPersistedPrefixes) {
  const std::filesystem::path dir = disk_tier_dir("disk_prefix");
  SweepSpec spec = decay_sweep(2, kDefaultCacheBytes);
  spec.cache_dir = dir.string();

  const auto [reference, records_reference] =
      run_collecting(decay_sweep(2, 0));  // uncached ground truth

  const auto [cold, records_cold] = run_collecting(spec);
  EXPECT_GT(cold.cache.disk_writes, 0u);
  EXPECT_EQ(cold.cache.disk_hits, 0u);
  expect_same_records(records_reference, records_cold);

  // A fresh driver run = a fresh process as far as the cache is
  // concerned: everything expensive comes back from disk.
  const auto [warm, records_warm] = run_collecting(spec);
  EXPECT_GT(warm.cache.disk_hits, 0u);
  EXPECT_EQ(warm.cache.disk_misses, 0u);
  expect_same_records(records_reference, records_warm);
  // The baseline and shared runs were not re-simulated: all their runs
  // replay, and no baseline wall time was paid.
  EXPECT_GT(warm.replayed_runs, cold.replayed_runs);
  EXPECT_EQ(warm.baseline_wall_ms, 0.0);

  std::filesystem::remove_all(dir);
}

TEST(DiskCacheSweep, CorruptOrForeignFilesDegradeToRecompute) {
  const std::filesystem::path dir = disk_tier_dir("disk_corrupt");
  SweepSpec spec = decay_sweep(2, kDefaultCacheBytes);
  spec.cache_dir = dir.string();
  const auto [cold, records_cold] = run_collecting(spec);

  // Vandalize every persisted file: truncate one, scramble the rest.
  bool truncated = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!truncated) {
      std::ofstream(entry.path(), std::ios::trunc);
      truncated = true;
    } else {
      std::ofstream out(entry.path(), std::ios::trunc);
      out << "fairsched-cache 1\nsome-other-key\ngarbage\n";
    }
  }
  ASSERT_TRUE(truncated);

  const auto [rerun, records_rerun] = run_collecting(spec);
  EXPECT_EQ(rerun.cache.disk_hits, 0u);
  EXPECT_GT(rerun.cache.disk_misses, 0u);
  expect_same_records(records_cold, records_rerun);

  std::filesystem::remove_all(dir);
}

TEST(DiskCacheSweep, SyntheticWindowsPersistAcrossInvocations) {
  const std::filesystem::path dir = disk_tier_dir("disk_window");
  // The window-sharing sweep from above, now with a disk tier: the second
  // invocation must reload both windows and prefixes.
  SweepSpec spec;
  spec.name = "window-disk";
  spec.policies = {"roundrobin", "fairshare"};
  spec.baseline = "ref";
  spec.seed = 7;
  spec.threads = 2;
  spec.horizon = 400;
  spec.instances = 2;
  SweepWorkload w;
  w.name = "lpc";
  w.kind = SweepWorkload::Kind::kSynthetic;
  w.spec = preset_lpc_egee();
  spec.workloads.push_back(std::move(w));
  spec.axes.push_back(make_axis("orgs", {2, 3}));

  SweepSpec uncached = spec;
  uncached.cache_bytes = 0;
  const auto [reference, records_reference] = run_collecting(uncached);

  spec.cache_dir = dir.string();
  const auto [cold, records_cold] = run_collecting(spec);
  expect_same_records(records_reference, records_cold);
  // Windows (1 per instance) and prefixes (2 groups x 2 instances).
  EXPECT_GE(cold.cache.disk_writes, 2u + 4u);

  const auto [warm, records_warm] = run_collecting(spec);
  expect_same_records(records_reference, records_warm);
  EXPECT_EQ(warm.cache.disk_misses, 0u);
  EXPECT_GE(warm.cache.disk_hits, 2u + 4u);

  std::filesystem::remove_all(dir);
}

// --- Reporters --------------------------------------------------------------

// Re-joins quoted newlines, then splits reporter output into CSV lines.
std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      // Inside an open quote the newline belongs to the cell.
      std::size_t quotes = 0;
      for (char q : current) quotes += q == '"';
      if (quotes % 2 == 1) {
        current += '\n';
        continue;
      }
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  return lines;
}

TEST(Reporter, CsvRoundTripsThroughUtilCsv) {
  // A workload name with CSV metacharacters must survive escape + parse.
  SweepSpec spec = small_sweep(2);
  spec.name = "round,trip \"sweep\"";
  spec.workloads[0].name = "unit, \"jobs\"\nline2";
  const auto [result, records] = run_collecting(spec);

  std::ostringstream out;
  CsvReporter(out).report(spec, result);
  const std::vector<std::string> lines = csv_lines(out.str());
  ASSERT_FALSE(lines.empty());

  const std::vector<std::string> header = parse_csv_line(lines[0]);
  ASSERT_EQ(header.size(), 11u);
  EXPECT_EQ(header[0], "sweep");
  EXPECT_EQ(header[4], "unfairness_mean");

  // Aggregate rows: one per (workload, policy), values match the cells.
  ASSERT_EQ(lines.size(), 1 + spec.policies.size());
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    const std::vector<std::string> row = parse_csv_line(lines[1 + p]);
    ASSERT_EQ(row.size(), 11u);
    EXPECT_EQ(row[0], spec.name);
    EXPECT_EQ(row[1], spec.workloads[0].name);
    EXPECT_EQ(row[2], spec.policies[p]);
    EXPECT_EQ(row[3], std::to_string(spec.instances));
    EXPECT_EQ(row[4],
              CsvReporter::format(result.cell(spec, 0, 0, p)
                                      .unfairness.mean()));
    EXPECT_EQ(row[9],
              CsvReporter::format(result.cell(spec, 0, 0, p)
                                      .utilization.mean()));
  }
}

TEST(Reporter, StreamingSinkCsvRoundTrip) {
  SweepSpec spec = small_sweep(2);
  spec.axes.push_back(make_axis("orgs", {2, 3}));
  std::ostringstream out;
  CsvRecordSink sink(out, spec);
  std::vector<RunRecord> records;
  const SweepResult result =
      SweepDriver().run(spec, nullptr, [&](const RunRecord& record) {
        sink.write(record);
        records.push_back(record);
      });

  const std::vector<std::string> lines = csv_lines(out.str());
  ASSERT_EQ(lines.size(), 1 + records.size());
  const std::vector<std::string> header = parse_csv_line(lines[0]);
  // sweep + 1 axis column + workload, policy, instance, seed, unfairness,
  // rel_distance, utilization, work_done.
  ASSERT_EQ(header.size(), 10u);
  EXPECT_EQ(header[0], "sweep");
  EXPECT_EQ(header[1], "orgs");
  EXPECT_EQ(header[2], "workload");
  for (std::size_t r = 0; r < records.size(); ++r) {
    const std::vector<std::string> row = parse_csv_line(lines[1 + r]);
    ASSERT_EQ(row.size(), 10u);
    EXPECT_EQ(row[0], spec.name);
    EXPECT_EQ(row[1],
              axis_value_label(spec.axes[0],
                               axis_point_values(spec,
                                                 records[r].axis_point)[0]));
    EXPECT_EQ(row[2], spec.workloads[records[r].workload].name);
    EXPECT_EQ(row[3], spec.policies[records[r].policy]);
    EXPECT_EQ(row[4], std::to_string(records[r].instance));
    EXPECT_EQ(row[5], std::to_string(records[r].seed));
    EXPECT_EQ(row[6], CsvReporter::format(records[r].unfairness));
    EXPECT_EQ(row[9], std::to_string(records[r].work_done));
  }
}

TEST(Reporter, CsvAggregateEmitsOneColumnPerAxis) {
  SweepSpec spec = small_sweep(1);
  spec.instances = 2;
  spec.baseline.clear();
  spec.axes.push_back(make_axis("orgs", {2, 3}));
  spec.axes.push_back(make_axis("jobs-per-org", {10, 20}));
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  CsvReporter(out).report(spec, result);
  const std::vector<std::string> lines = csv_lines(out.str());
  const std::vector<std::string> header = parse_csv_line(lines[0]);
  ASSERT_EQ(header.size(), 13u);  // 11 fixed + 2 axis columns
  EXPECT_EQ(header[1], "orgs");
  EXPECT_EQ(header[2], "jobs-per-org");
  ASSERT_EQ(lines.size(), 1 + 4 * spec.policies.size());
  const std::vector<std::string> first = parse_csv_line(lines[1]);
  EXPECT_EQ(first[1], "2");
  EXPECT_EQ(first[2], "10");
  const std::vector<std::string> last = parse_csv_line(lines.back());
  EXPECT_EQ(last[1], "3");
  EXPECT_EQ(last[2], "20");
}

TEST(Reporter, JsonBaselineContainsEveryCell) {
  const SweepSpec spec = small_sweep(2);
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  JsonReporter(out).report(spec, result);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sweep\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"total_wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 24"), std::string::npos);
  for (const std::string& policy : spec.policies) {
    EXPECT_NE(json.find("\"policy\": \"" + policy + "\""), std::string::npos)
        << policy;
  }
}

TEST(Reporter, JsonEscapesStringMetacharacters) {
  SweepSpec spec = small_sweep(1);
  spec.name = "quote\" back\\slash";
  spec.workloads[0].name = "line\nbreak\ttab";
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  JsonReporter(out).report(spec, result);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sweep\": \"quote\\\" back\\\\slash\""),
            std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
  // No raw control characters may survive inside the output.
  EXPECT_EQ(json.find("line\nbreak"), std::string::npos);
}

TEST(Reporter, TableLeadsWithAxisColumns) {
  SweepSpec spec = small_sweep(1);
  spec.instances = 2;
  spec.baseline.clear();
  spec.axes.push_back(make_axis("orgs", {2, 3}));
  const SweepResult result = SweepDriver().run(spec);
  std::ostringstream out;
  TableReporter(out).report(spec, result);
  const std::string table = out.str();
  EXPECT_NE(table.find("orgs"), std::string::npos);
  EXPECT_NE(table.find("Policy"), std::string::npos);
}

// --- Scenario configs -------------------------------------------------------

TEST(Scenarios, SmokeModeShrinksTheMatrix) {
  ScenarioOptions options;
  options.smoke = true;
  const SweepSpec smoke = make_table_sweep("table1", options);
  ScenarioOptions full;
  const SweepSpec big = make_table_sweep("table1", full);
  EXPECT_LT(smoke.instances, big.instances);
  EXPECT_LT(smoke.horizon, big.horizon);
  EXPECT_EQ(smoke.policies, big.policies);
  EXPECT_EQ(smoke.workloads.size(), big.workloads.size());
  EXPECT_EQ(smoke.workloads.size(), 4u);  // the four archive shapes
}

TEST(Scenarios, Table2IsTheLongHorizonVariant) {
  ScenarioOptions options;
  const SweepSpec t1 = make_table_sweep("table1", options);
  const SweepSpec t2 = make_table_sweep("table2", options);
  EXPECT_EQ(t2.horizon, 10 * t1.horizon);
  EXPECT_THROW(make_table_sweep("table3", options), std::invalid_argument);
}

TEST(Scenarios, CustomSweepResolvesPoliciesAndWorkloads) {
  ScenarioOptions options;
  options.policies = "fcfs,rand5";
  options.workload = "unit";
  const SweepSpec spec = make_custom_sweep(options);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[1], "rand5");
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].kind, SweepWorkload::Kind::kUnitJobs);
  options.workload = "bogus";
  EXPECT_THROW(make_custom_sweep(options), std::invalid_argument);
}

TEST(Scenarios, Fig10IsADeclarativeOrgsAxis) {
  ScenarioOptions options;
  const SweepSpec spec = make_fig10_sweep(options);
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].name, "orgs");
  EXPECT_EQ(spec.axes[0].bind, SweepAxis::Bind::kOrgs);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{2, 3, 4, 5, 6, 7}));
  ASSERT_EQ(spec.workloads.size(), 1u);
  // --min-orgs/--max-orgs reshape the axis; smoke shrinks it.
  ScenarioOptions bounded;
  bounded.min_orgs = 3;
  bounded.max_orgs = 5;
  EXPECT_EQ(make_fig10_sweep(bounded).axes[0].values,
            (std::vector<double>{3, 4, 5}));
  bounded.max_orgs = 2;
  EXPECT_THROW(make_fig10_sweep(bounded), std::invalid_argument);
  ScenarioOptions smoke;
  smoke.smoke = true;
  EXPECT_LT(make_fig10_sweep(smoke).axes[0].values.size(),
            spec.axes[0].values.size());
}

TEST(Scenarios, HorizonGrowthIsADeclarativeHorizonAxis) {
  ScenarioOptions options;
  const SweepSpec spec = make_horizon_growth_sweep(options);
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].name, "horizon");
  EXPECT_EQ(spec.axes[0].bind, SweepAxis::Bind::kHorizon);
  EXPECT_EQ(spec.axes[0].values.size(), 6u);
  // --duration would be silently shadowed by the horizon axis; it must be
  // rejected, not dropped.
  options.duration = 999;
  EXPECT_THROW(make_horizon_growth_sweep(options), std::invalid_argument);
  options.duration = 0;
  options.axes = "horizon=100,200";
  EXPECT_EQ(make_horizon_growth_sweep(options).axes[0].values,
            (std::vector<double>{100, 200}));
}

TEST(Scenarios, FairshareDecayIsADeclarativeHalfLifeAxis) {
  ScenarioOptions options;
  const SweepSpec spec = make_fairshare_decay_sweep(options);
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].name, "half-life");
  EXPECT_EQ(spec.axes[0].bind, SweepAxis::Bind::kPolicyParam);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{500, 2500, 10000,
                                                      50000}));
  // decayfairshare is in the policy set for the axis to bind onto.
  bool has_decay = false;
  for (const std::string& policy : spec.policies) {
    if (policy == "decayfairshare") has_decay = true;
  }
  EXPECT_TRUE(has_decay);
}

TEST(Scenarios, SingleAxisPointScenariosRejectAxes) {
  // utilization and rand-convergence post-process per-run data assuming a
  // single axis point; --axes must fail loudly, not corrupt the analysis.
  ScenarioOptions options;
  options.axes = "orgs=2,6";
  EXPECT_THROW(make_utilization_sweep(options), std::invalid_argument);
  EXPECT_THROW(make_rand_convergence_sweep(options), std::invalid_argument);
  options.axes.clear();
  EXPECT_NO_THROW(make_utilization_sweep(options));
  EXPECT_NO_THROW(make_rand_convergence_sweep(options));
}

TEST(Scenarios, StrategySweepPlaysTheDefaultGridOnAContendedPlatform) {
  ScenarioOptions options;
  const SweepSpec spec = make_strategy_sweep(options);
  ASSERT_TRUE(spec.is_strategy());
  // The default grid: honest first, then split/merge/delay/misreport at
  // two magnitudes each.
  EXPECT_EQ(spec.deviations, strategy::default_deviation_grid());
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].name, "strategy");
  EXPECT_EQ(spec.axes[0].values.size(), spec.deviations.size());
  // Both sides of the Thm 4.1 contrast are in the policy set.
  EXPECT_NE(std::find(spec.policies.begin(), spec.policies.end(), "fcfs"),
            spec.policies.end());
  EXPECT_NE(std::find(spec.policies.begin(), spec.policies.end(),
                      "fairshare"),
            spec.policies.end());
  // The platform is scaled down to stay contended: on an underloaded
  // consortium every deviation just soaks idle machines and the contrast
  // drowns.
  ScenarioOptions unscaled;
  unscaled.scale = 1.0;
  EXPECT_LT(spec.workloads[0].spec.total_machines,
            make_strategy_sweep(unscaled).workloads[0].spec.total_machines);

  // --deviations prunes and reorders the grid (honest stays first);
  // malformed entries are rejected.
  ScenarioOptions pruned;
  pruned.deviations = "delay:7,split:3";
  const SweepSpec small = make_strategy_sweep(pruned);
  ASSERT_EQ(small.deviations.size(), 3u);
  EXPECT_EQ(small.deviations[0].kind,
            strategy::DeviationSpec::Kind::kHonest);
  EXPECT_EQ(small.deviations[1].kind,
            strategy::DeviationSpec::Kind::kDelay);
  EXPECT_EQ(small.deviations[1].param, 7);
  pruned.deviations = "bogus";
  EXPECT_THROW(make_strategy_sweep(pruned), std::invalid_argument);
  pruned.deviations = "";
  pruned.deviator_orgs = "1,x";
  EXPECT_THROW(make_strategy_sweep(pruned), std::invalid_argument);
}

TEST(Scenarios, AxesFlagOverridesScenarioDefaults) {
  ScenarioOptions options;
  options.axes = "orgs=2,4;zipf-s=0.5,1.5";
  const SweepSpec spec = make_fig10_sweep(options);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "orgs");
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{2, 4}));
  EXPECT_EQ(spec.axes[1].name, "zipf-s");
}

}  // namespace
}  // namespace fairsched::exp
