// End-to-end integration tests: the full Section 7 experimental pipeline on
// small inputs — generate a synthetic window, run REF as the reference, run
// every evaluated algorithm, compute delta_psi / p_tot, and check the
// qualitative ordering the paper reports.

#include <gtest/gtest.h>

#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "exp/policy_registry.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

struct PipelineResult {
  std::map<std::string, double> ratio;  // algorithm -> delta_psi / p_tot
};

PipelineResult run_pipeline(std::uint64_t seed, Time duration) {
  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst = make_synthetic_instance(spec, 4, duration,
                                                MachineSplit::kZipf, 1.0,
                                                seed);
  const RunResult ref = registry().run(inst, "ref", duration,
                                      seed);
  PipelineResult out;
  for (const char* alg : {"roundrobin", "rand15", "directcontr", "fairshare",
                          "utfairshare", "currfairshare"}) {
    const RunResult r =
        registry().run(inst, alg, duration, seed);
    out.ratio[alg] =
        unfairness_ratio(r.utilities2, ref.utilities2, ref.work_done);
  }
  return out;
}

TEST(Integration, UnfairnessRatiosAreFiniteAndNonNegative) {
  const PipelineResult r = run_pipeline(3, 3000);
  for (const auto& [alg, ratio] : r.ratio) {
    EXPECT_GE(ratio, 0.0) << alg;
    EXPECT_LT(ratio, 1e7) << alg;
  }
}

TEST(Integration, ShapleyAwareAlgorithmsBeatRoundRobinOnAverage) {
  // The paper's core experimental claim, on a small but real pipeline:
  // RAND and DIRECTCONTR track REF's fair utilities much better than
  // ROUNDROBIN does. Averaged over several windows to avoid flakiness.
  StatsAccumulator rr, rand15, direct, fairshare;
  ThreadPool pool;
  std::mutex mu;
  pool.parallel_for(6, [&](std::size_t i) {
    const PipelineResult r = run_pipeline(100 + i, 4000);
    std::lock_guard<std::mutex> lock(mu);
    rr.add(r.ratio.at("roundrobin"));
    rand15.add(r.ratio.at("rand15"));
    direct.add(r.ratio.at("directcontr"));
    fairshare.add(r.ratio.at("fairshare"));
  });
  EXPECT_LT(rand15.mean(), rr.mean());
  EXPECT_LT(direct.mean(), rr.mean());
  EXPECT_LT(fairshare.mean(), rr.mean());
}

TEST(Integration, RefIsItsOwnReference) {
  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst =
      make_synthetic_instance(spec, 3, 2000, MachineSplit::kUniform, 1.0, 9);
  const RunResult ref = registry().run(inst, "ref", 2000, 9);
  EXPECT_DOUBLE_EQ(
      unfairness_ratio(ref.utilities2, ref.utilities2, ref.work_done), 0.0);
}

TEST(Integration, AllAlgorithmsScheduleTheSameWorkUnderLightLoad) {
  // Under light load every greedy algorithm completes everything: the work
  // done by the horizon coincides.
  InstanceBuilder b;
  b.add_org("a", 2);
  b.add_org("c", 2);
  for (int i = 0; i < 8; ++i) {
    b.add_job(0, i * 10, 3);
    b.add_job(1, i * 10 + 1, 3);
  }
  const Instance inst = std::move(b).build();
  const Time horizon = 200;
  std::vector<std::int64_t> work;
  for (const char* alg : {"ref", "rand15", "roundrobin", "fairshare",
                          "directcontr", "currfairshare", "utfairshare"}) {
    work.push_back(
        registry().run(inst, alg, horizon, 1).work_done);
  }
  for (std::size_t i = 1; i < work.size(); ++i) {
    EXPECT_EQ(work[i], work[0]);
  }
  EXPECT_EQ(work[0], inst.total_work());
}

TEST(Integration, LongerHorizonDoesNotReduceUnfairnessGap) {
  // Tables 1 vs 2: the paper observes the unfairness ratio grows with the
  // trace duration. We check the weaker monotone trend for round robin on
  // one seed pair (short vs long window).
  const double short_ratio = run_pipeline(41, 2000).ratio.at("roundrobin");
  const double long_ratio = run_pipeline(41, 8000).ratio.at("roundrobin");
  // Not strictly guaranteed per-seed; allow equality-ish but flag collapse.
  EXPECT_GT(long_ratio, 0.2 * short_ratio);
}

}  // namespace
}  // namespace fairsched
