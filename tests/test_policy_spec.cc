// Tests for PolicySpec canonicalization (sched/policy_spec.h +
// exp/policy_registry.h): parse <-> print round trips, ordering
// insensitivity of the parameter map, the equality => identical cache
// keys / fingerprints contract, and rejection of out-of-range or unknown
// parameters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/policy_registry.h"
#include "exp/sweep_plan.h"

namespace fairsched::exp {
namespace {

PolicyRegistry& registry() { return PolicyRegistry::global(); }

TEST(PolicyParamValue, CanonicalTextIsExactAndMinimal) {
  EXPECT_EQ(PolicyParam::of_int(15).to_string(), "15");
  EXPECT_EQ(PolicyParam::of_int(0).to_string(), "0");
  EXPECT_EQ(PolicyParam::of_real(2000.0).to_string(), "2000");
  EXPECT_EQ(PolicyParam::of_real(2500.5).to_string(), "2500.5");
  EXPECT_EQ(PolicyParam::of_real(0.5).to_string(), "0.5");
  EXPECT_EQ(PolicyParam::of_real(123456.75).to_string(), "123456.75");
  // Shortest form that still round-trips bit-exactly.
  const double awkward = 0.1;
  const std::string text = PolicyParam::of_real(awkward).to_string();
  EXPECT_EQ(std::stod(text), awkward);
  // Ints and reals of the same magnitude are distinct values.
  EXPECT_NE(PolicyParam::of_int(15), PolicyParam::of_real(15.0));
  EXPECT_DOUBLE_EQ(PolicyParam::of_int(15).as_double(), 15.0);
}

TEST(PolicySpecCanonical, ParsePrintRoundTripsEverySpelling) {
  for (const char* name :
       {"fcfs", "ref", "rand15", "rand75", "rand(samples=8)",
        "decayfairshare2000", "decayfairshare123456.75",
        "decayfairshare(half-life=77.25)", "DECAYFAIRSHARE(HALF_LIFE=9)",
        "rand( samples = 33 )"}) {
    const PolicySpec spec = registry().make(name);
    const std::string canonical = registry().canonical_name(spec);
    // canonical(parse(x)) is a fixed point...
    EXPECT_EQ(registry().canonical_name(registry().make(canonical)),
              canonical)
        << name;
    // ...and parses back to the same spec.
    EXPECT_EQ(registry().make(canonical), spec) << name;
  }
  // Canonicalization prefers the legacy suffix spelling.
  EXPECT_EQ(registry().canonical_name(registry().make("rand(samples=8)")),
            "rand8");
  EXPECT_EQ(registry().canonical_name(
                registry().make("decayfairshare(half-life=77.25)")),
            "decayfairshare77.25");
}

TEST(PolicySpecCanonical, ParameterOrderAndSpellingDoNotMatter) {
  // The parameter map is sorted; assignment order and key spelling
  // ('-'/'_'/case) never change the resulting spec.
  ConfigPolicyDef def;
  def.name = "canon2p";
  def.switch_policies = {"fairshare", "roundrobin"};
  def.switch_at = "500";
  register_config_policy(registry(), def);

  const PolicySpec a = registry().make("canon2p(switch-at=700)");
  const PolicySpec b = registry().make("canon2p(SWITCH_AT = 700)");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry().canonical_name(a), registry().canonical_name(b));
  EXPECT_EQ(registry().content_key(a), registry().content_key(b));
  // Default-valued parameters are implied: the bare name is canonical.
  EXPECT_EQ(registry().canonical_name(
                registry().make("canon2p(switch-at=500)")),
            "canon2p");
}

TEST(PolicySpecCanonical, EqualityImpliesIdenticalCacheKeysAndFingerprints) {
  const PolicySpec a = registry().make("rand(samples=15)");
  const PolicySpec b = registry().make("rand15");
  ASSERT_EQ(a, b);
  EXPECT_EQ(registry().content_key(a), registry().content_key(b));

  // Whole-plan fingerprints agree too: the two spellings name one sweep.
  auto plan_for = [&](const std::string& policy) {
    SweepSpec spec;
    spec.name = "canonical-fp";
    spec.policies = {policy, "fairshare"};
    SweepWorkload w;
    w.name = "unit-jobs";
    w.kind = SweepWorkload::Kind::kUnitJobs;
    spec.workloads.push_back(w);
    spec.instances = 2;
    spec.horizon = 50;
    return build_sweep_plan(spec);
  };
  EXPECT_EQ(plan_for("rand(samples=15)").fingerprint,
            plan_for("rand15").fingerprint);
  EXPECT_NE(plan_for("rand(samples=16)").fingerprint,
            plan_for("rand15").fingerprint);
}

TEST(PolicySpecCanonical, DistinctSpecsGetDistinctCanonicalNames) {
  const std::vector<std::string> names = {
      "rand15",     "rand16",
      "rand(samples=17)",
      "decayfairshare2000", "decayfairshare2000.5",
      "fairshare",  "fcfs",
  };
  std::vector<std::string> canonicals;
  for (const std::string& name : names) {
    canonicals.push_back(registry().canonical_name(registry().make(name)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(canonicals[i], canonicals[j]) << names[i] << " vs "
                                              << names[j];
    }
  }
}

TEST(PolicySpecCanonical, RejectsOutOfRangeAndUnknownParameters) {
  // Range violations name the parameter and its accepted range.
  try {
    registry().make("rand(samples=0)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("samples"), std::string::npos);
    EXPECT_NE(message.find(">= 1"), std::string::npos);
  }
  EXPECT_THROW(registry().make("decayfairshare(half-life=0)"),
               std::invalid_argument);
  EXPECT_THROW(registry().make("decayfairshare(half-life=-5)"),
               std::invalid_argument);
  // Integral parameters reject fractional values instead of truncating.
  EXPECT_THROW(registry().make("rand(samples=1.5)"),
               std::invalid_argument);
  // Unknown parameters are rejected with the declared ones listed.
  EXPECT_THROW(registry().make("fairshare(foo=1)"), std::invalid_argument);
  // instantiate() re-validates hand-built specs: a smuggled out-of-range
  // parameter cannot reach a factory.
  PolicySpec smuggled = registry().make("rand15");
  smuggled.params["samples"] = PolicyParam::of_int(0);
  EXPECT_THROW(registry().instantiate(smuggled), std::invalid_argument);
  PolicySpec missing = registry().make("rand15");
  missing.params.clear();
  EXPECT_THROW(registry().instantiate(missing), std::invalid_argument);
}

TEST(PolicySpecCanonical, ConfigDefinedCompositionsRunDeterministically) {
  ConfigPolicyDef mix;
  mix.name = "canonmix";
  mix.mixture = {{"fairshare", 0.5}, {"roundrobin", 0.5}};
  register_config_policy(registry(), mix);

  Instance inst = [] {
    InstanceBuilder b;
    b.add_org("a", 1);
    b.add_org("b", 1);
    for (int i = 0; i < 30; ++i) {
      b.add_job(0, 0, 3);
      b.add_job(1, 0, 3);
    }
    return std::move(b).build();
  }();
  const PolicySpec spec = registry().make("canonmix");
  const RunResult r1 = registry().instantiate(spec)->run(inst, 40, 9);
  const RunResult r2 = registry().instantiate(spec)->run(inst, 40, 9);
  EXPECT_EQ(r1.utilities2, r2.utilities2);
  EXPECT_EQ(r1.work_done, r2.work_done);
  const RunResult other = registry().instantiate(spec)->run(inst, 40, 10);
  EXPECT_GT(r1.work_done, 0);
  // Different seeds may (and here do) draw different mixtures; equality
  // of the whole trajectory is not required, determinism per seed is.
  (void)other;
}

}  // namespace
}  // namespace fairsched::exp
