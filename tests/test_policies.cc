// Behavioural tests for the baseline policies (ROUNDROBIN, the fair-share
// family, DIRECTCONTR, FCFS) and the registry facade.

#include <gtest/gtest.h>

#include "exp/policy_registry.h"
#include "metrics/utility.h"
#include "sim/engine.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

// Two organizations, one machine each, both flooding the system with unit
// jobs from t=0. Any sensible fair algorithm alternates; shares are equal.
Instance contended_unit_instance(std::uint32_t jobs_per_org) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
    b.add_job(a, 0, 1);
    b.add_job(c, 0, 1);
  }
  return std::move(b).build();
}

TEST(RoundRobin, AlternatesUnderContention) {
  const Instance inst = contended_unit_instance(20);
  const RunResult r = registry().run(inst, "roundrobin", 10, 1);
  // In each slot both machines run one job; round robin serves a,c,a,c...
  EXPECT_EQ(r.utilities2[0], r.utilities2[1]);
}

TEST(RoundRobin, SkipsOrgsWithoutWork) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_org("idle", 1);
  b.add_job(a, 0, 2);
  b.add_job(a, 0, 2);
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "roundrobin", 10, 1);
  // Both of a's jobs start immediately on the two machines.
  EXPECT_EQ(r.schedule.start_of(0, 0), 0);
  EXPECT_EQ(r.schedule.start_of(0, 1), 0);
}

TEST(FairShare, ProportionalToMachineShares) {
  // Org a contributes 3 machines, org c 1; both have unlimited unit work.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 3);
  const OrgId c = b.add_org("c", 1);
  for (int i = 0; i < 400; ++i) {
    b.add_job(a, 0, 1);
    b.add_job(c, 0, 1);
  }
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "fairshare", 50, 1);
  // Allocated CPU should track the 3:1 share ratio.
  // Completed unit parts by 50: 4 machines * 50 = 200 total.
  std::int64_t a_work = 0, c_work = 0;
  for (const Placement& p : r.schedule.placements()) {
    if (p.start < 50) (p.org == a ? a_work : c_work) += 1;
  }
  EXPECT_EQ(a_work + c_work, 200);
  // Discretization wiggles the ratio a bit around the 3:1 target.
  EXPECT_NEAR(static_cast<double>(a_work) / static_cast<double>(c_work), 3.0,
              0.35);
}

TEST(CurrFairShare, BalancesRunningJobs) {
  // 2 orgs, 2+2 machines, long jobs: at steady state each org runs two.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 2);
  const OrgId c = b.add_org("c", 2);
  for (int i = 0; i < 10; ++i) {
    b.add_job(a, 0, 100);
    b.add_job(c, 0, 100);
  }
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "currfairshare",
                                    100, 1);
  int a_running = 0, c_running = 0;
  for (const Placement& p : r.schedule.placements()) {
    if (p.start == 0) (p.org == a ? a_running : c_running)++;
  }
  EXPECT_EQ(a_running, 2);
  EXPECT_EQ(c_running, 2);
}

TEST(UtFairShare, EqualSharesEqualUtilities) {
  const Instance inst = contended_unit_instance(100);
  const RunResult r = registry().run(inst, "utfairshare", 60,
                                    1);
  // Perfectly symmetric situation: utilities should match exactly.
  EXPECT_EQ(r.utilities2[0], r.utilities2[1]);
}

TEST(DirectContr, CompensatesTheLender) {
  // Org a owns both machines but has little work; org c owns nothing and
  // floods. DirectContr must prioritize a's own (rare) jobs the moment they
  // arrive, since a's contribution vastly exceeds its utility.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 2);
  const OrgId c = b.add_org("c", 0);
  for (int i = 0; i < 50; ++i) b.add_job(c, 0, 5);
  b.add_job(a, 20, 5);
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "directcontr",
                                    200, 1);
  // a's job starts at the first machine-free moment at/after release 20.
  const auto start = r.schedule.start_of(a, 0);
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(*start, 20);
}

TEST(Fcfs, OrdersByReleaseAcrossOrgs) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 0);
  b.add_job(c, 0, 3);
  b.add_job(a, 1, 3);
  b.add_job(c, 2, 3);
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "fcfs", 100, 1);
  EXPECT_EQ(r.schedule.start_of(c, 0), 0);
  EXPECT_EQ(r.schedule.start_of(a, 0), 3);
  EXPECT_EQ(r.schedule.start_of(c, 1), 6);
}

TEST(Runner, AllPolicyAlgorithmsProduceFeasibleSchedules) {
  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst = make_synthetic_instance(spec, 5, 3000,
                                                MachineSplit::kZipf, 1.0, 21);
  for (const char* name : {"roundrobin", "fairshare", "utfairshare",
                           "currfairshare", "directcontr", "fcfs"}) {
    const RunResult r = registry().run(inst, name, 3000, 5);
    EXPECT_EQ(r.schedule.validate(inst, 3000), std::nullopt) << name;
    // Utilities reported must equal the closed form on the schedule.
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_EQ(r.utilities2[u],
                sp_org_half_utility(inst, r.schedule, u, 3000))
          << name << " u=" << u;
    }
  }
}

TEST(Registry, ParsesTheOneNameGrammar) {
  // The registry owns the one name grammar (exp/policy_registry.h).
  EXPECT_EQ(registry().make("REF").base, "ref");
  EXPECT_EQ(registry().make("rand").params.at("samples").int_value, 15);
  EXPECT_EQ(registry().make("rand75").params.at("samples").int_value, 75);
  EXPECT_EQ(registry().make("Rand15").base, "rand");
  EXPECT_EQ(registry().make("DirectContr").base, "directcontr");
  EXPECT_THROW(registry().make("bogus"), std::invalid_argument);
  EXPECT_THROW(registry().make("rand0"), std::invalid_argument);
}

TEST(Registry, DisplayNames) {
  // The canonical name is the display form, used uniformly for CSV/JSON
  // columns, fingerprints and cache keys.
  EXPECT_EQ(exp::canonical_policy_name(registry().make("rand15")),
            "rand15");
  EXPECT_EQ(exp::canonical_policy_name(registry().make("fairshare")),
            "fairshare");
  EXPECT_EQ(registry().make("rand15").to_string(), "rand(samples=15)");
}

TEST(Registry, MakePolicyRejectsEnsembleAlgorithms) {
  EXPECT_THROW(registry().make_policy("ref"), std::invalid_argument);
  EXPECT_THROW(registry().make_policy("rand"), std::invalid_argument);
}

}  // namespace
}  // namespace fairsched
