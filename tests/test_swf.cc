// Tests for the SWF parser/writer and the trace -> instance mapping.

#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/assignment.h"

namespace fairsched {
namespace {

const char* kSampleSwf =
    "; Version: 2\n"
    "; Computer: test cluster\n"
    "; MaxProcs: 8\n"
    "1  0   -1 30  1 -1 -1 1 30 -1 -1 100 -1 -1 -1 -1 -1 -1\n"
    "2  5   -1 60  2 -1 -1 2 60 -1 -1 101 -1 -1 -1 -1 -1 -1\n"
    "3  5   -1 -1  1 -1 -1 1 -1 -1 -1 100 -1 -1 -1 -1 -1 -1\n"  // unknown rt
    "4  9   -1 10 -1 -1 -1 1 10 -1 -1 102 -1 -1 -1 -1 -1 -1\n"  // unknown cpus
    "5  12  -1 20  1 -1 -1 1 20 -1 -1 100 -1 -1 -1 -1 -1 -1\n";

TEST(Swf, ParsesJobsAndHeader) {
  std::istringstream in(kSampleSwf);
  const SwfTrace trace = parse_swf(in);
  EXPECT_EQ(trace.header.size(), 3u);
  ASSERT_EQ(trace.jobs.size(), 5u);
  EXPECT_EQ(trace.jobs[0].job_id, 1);
  EXPECT_EQ(trace.jobs[0].submit, 0);
  EXPECT_EQ(trace.jobs[0].run_time, 30);
  EXPECT_EQ(trace.jobs[0].processors, 1u);
  EXPECT_EQ(trace.jobs[0].user, 100);
  EXPECT_EQ(trace.jobs[1].processors, 2u);
  EXPECT_EQ(trace.jobs[3].processors, 0u);  // -1 mapped to unknown (0)
}

TEST(Swf, UsersInFirstAppearanceOrder) {
  std::istringstream in(kSampleSwf);
  const SwfTrace trace = parse_swf(in);
  const auto users = trace.users();
  ASSERT_EQ(users.size(), 3u);
  EXPECT_EQ(users[0], 100);
  EXPECT_EQ(users[1], 101);
  EXPECT_EQ(users[2], 102);
}

TEST(Swf, ExpansionToSequential) {
  std::istringstream in(kSampleSwf);
  const SwfTrace trace = parse_swf(in);
  const SwfTrace seq = trace.expanded_to_sequential();
  // Job 1 -> 1 copy, job 2 -> 2 copies, job 3 dropped (unknown runtime),
  // job 4 dropped (unknown processors), job 5 -> 1 copy.
  ASSERT_EQ(seq.jobs.size(), 4u);
  for (const SwfJob& j : seq.jobs) EXPECT_EQ(j.processors, 1u);
  EXPECT_EQ(seq.jobs[1].job_id, 2);
  EXPECT_EQ(seq.jobs[2].job_id, 2);
}

TEST(Swf, RoundTrip) {
  std::istringstream in(kSampleSwf);
  const SwfTrace trace = parse_swf(in);
  std::ostringstream out;
  write_swf(out, trace);
  std::istringstream back(out.str());
  const SwfTrace again = parse_swf(back);
  ASSERT_EQ(again.jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(again.jobs[i].job_id, trace.jobs[i].job_id);
    EXPECT_EQ(again.jobs[i].submit, trace.jobs[i].submit);
    EXPECT_EQ(again.jobs[i].run_time, trace.jobs[i].run_time);
    EXPECT_EQ(again.jobs[i].user, trace.jobs[i].user);
  }
}

TEST(Swf, MalformedLinesRejected) {
  std::istringstream short_line("1 2 3\n");
  EXPECT_THROW(parse_swf(short_line), std::runtime_error);
  std::istringstream garbage(
      "1 0 -1 30 1 -1 -1 1 xx -1 -1 100 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(parse_swf(garbage), std::runtime_error);
  std::istringstream negative_submit(
      "1 -5 -1 30 1 -1 -1 1 30 -1 -1 100 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(parse_swf(negative_submit), std::runtime_error);
}

TEST(Swf, BlankLinesAndCrLf) {
  std::istringstream in(
      "\n; header\r\n"
      "1 0 -1 30 1 -1 -1 1 30 -1 -1 100 -1 -1 -1 -1 -1 -1\r\n\n");
  const SwfTrace trace = parse_swf(in);
  EXPECT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.header.size(), 1u);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(load_swf("/nonexistent/file.swf"), std::runtime_error);
}

TEST(Assignment, SplitMachinesUniform) {
  Rng rng(1);
  const auto counts = split_machines(10, 4, MachineSplit::kUniform, 1.0, rng);
  ASSERT_EQ(counts.size(), 4u);
  std::uint32_t total = 0;
  for (auto c : counts) {
    EXPECT_GE(c, 1u);
    total += c;
  }
  EXPECT_EQ(total, 10u);
}

TEST(Assignment, SplitMachinesZipfIsSkewed) {
  Rng rng(2);
  const auto counts = split_machines(100, 5, MachineSplit::kZipf, 1.0, rng);
  std::uint32_t total = 0, max_count = 0;
  for (auto c : counts) {
    EXPECT_GE(c, 1u);
    total += c;
    max_count = std::max(max_count, c);
  }
  EXPECT_EQ(total, 100u);
  // Head of the Zipf should clearly dominate a uniform 20.
  EXPECT_GE(max_count, 30u);
}

TEST(Assignment, SplitMachinesRequiresOnePerOrg) {
  Rng rng(3);
  EXPECT_THROW(split_machines(3, 4, MachineSplit::kUniform, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(split_machines(5, 0, MachineSplit::kUniform, 1.0, rng),
               std::invalid_argument);
}

TEST(Assignment, AssignUsersBalanced) {
  Rng rng(4);
  const auto owner = assign_users(10, 3, rng);
  ASSERT_EQ(owner.size(), 10u);
  std::vector<int> counts(3, 0);
  for (OrgId u : owner) counts[u]++;
  // Round-robin dealing: sizes 4, 3, 3 in some order.
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 4);
}

TEST(Assignment, InstanceFromSwf) {
  std::istringstream in(kSampleSwf);
  const SwfTrace trace = parse_swf(in);
  const Instance inst =
      instance_from_swf(trace, 2, 8, MachineSplit::kUniform, 1.0, 7);
  EXPECT_EQ(inst.num_orgs(), 2u);
  EXPECT_EQ(inst.total_machines(), 8u);
  // 4 sequential jobs survive the expansion.
  EXPECT_EQ(inst.num_jobs(), 4u);
  // All jobs of one user end up in the same organization.
  // (user 100 had jobs 1 and 5.)
  std::vector<std::size_t> per_org;
  for (OrgId u = 0; u < 2; ++u) per_org.push_back(inst.jobs_of(u).size());
  EXPECT_EQ(per_org[0] + per_org[1], 4u);
}

TEST(Assignment, InstanceFromSwfDeterministic) {
  std::istringstream in1(kSampleSwf), in2(kSampleSwf);
  const SwfTrace t1 = parse_swf(in1), t2 = parse_swf(in2);
  const Instance a =
      instance_from_swf(t1, 3, 9, MachineSplit::kZipf, 1.0, 42);
  const Instance b =
      instance_from_swf(t2, 3, 9, MachineSplit::kZipf, 1.0, 42);
  for (OrgId u = 0; u < 3; ++u) {
    EXPECT_EQ(a.machines_of(u), b.machines_of(u));
    EXPECT_EQ(a.jobs_of(u).size(), b.jobs_of(u).size());
  }
}

}  // namespace
}  // namespace fairsched
