// Edge-case and failure-injection tests across modules: degenerate
// coalitions, zero-share organizations, empty horizons, single-player
// games, and file-level SWF round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "metrics/utility.h"
#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "exp/policy_registry.h"
#include "shapley/shapley.h"
#include "sim/engine.h"
#include "workload/swf.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

TEST(EdgeCases, CoalitionWithMachinesButNoJobs) {
  InstanceBuilder b;
  b.add_org("idle", 3);
  const OrgId busy = b.add_org("busy", 0);
  b.add_job(busy, 0, 5);
  const Instance inst = std::move(b).build();
  // Coalition of just the idle org: machines but nothing to run.
  Engine e(inst, Coalition::singleton(0));
  auto policy = registry().make_policy("fcfs");
  e.run(*policy, 50);
  EXPECT_EQ(e.total_work_done(), 0);
  EXPECT_EQ(e.value2(), 0);
  // Coalition of just the busy org: jobs but no machines — nothing runs,
  // no crash, no events beyond releases.
  Engine e2(inst, Coalition::singleton(1));
  auto policy2 = registry().make_policy("fcfs");
  e2.run(*policy2, 50);
  EXPECT_EQ(e2.total_work_done(), 0);
  EXPECT_EQ(e2.waiting(busy), 1u);
}

TEST(EdgeCases, ZeroShareOrganizationStillServed) {
  // Fair-share ratios degenerate for zero-share orgs; they must still be
  // served when no positive-share org waits (greedy requirement).
  InstanceBuilder b;
  b.add_org("owner", 2);
  const OrgId guest = b.add_org("guest", 0);
  b.add_job(guest, 0, 3);
  b.add_job(guest, 0, 3);
  const Instance inst = std::move(b).build();
  for (const char* alg :
       {"fairshare", "utfairshare", "currfairshare", "decayfairshare100"}) {
    const RunResult r = registry().run(inst, alg, 20, 1);
    EXPECT_EQ(r.schedule.size(), 2u) << alg;
    EXPECT_EQ(r.schedule.start_of(guest, 0), 0) << alg;
  }
}

TEST(EdgeCases, HorizonZeroYieldsNothing) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 0, 5);
  const Instance inst = std::move(b).build();
  for (const char* alg : {"fcfs", "ref", "rand5", "directcontr"}) {
    const RunResult r = registry().run(inst, alg, 0, 1);
    EXPECT_EQ(r.work_done, 0) << alg;
    for (HalfUtil v : r.utilities2) EXPECT_EQ(v, 0) << alg;
  }
}

TEST(EdgeCases, SingleOrganizationEverything) {
  InstanceBuilder b;
  const OrgId solo = b.add_org("solo", 2);
  b.add_job(solo, 0, 4);
  b.add_job(solo, 1, 4);
  b.add_job(solo, 2, 4);
  const Instance inst = std::move(b).build();
  // All algorithms degenerate to the same greedy FIFO schedule.
  std::vector<HalfUtil> reference;
  for (const char* alg : {"ref", "rand5", "directcontr", "fairshare",
                          "roundrobin", "fcfs", "random"}) {
    const RunResult r = registry().run(inst, alg, 30, 7);
    if (reference.empty()) {
      reference = r.utilities2;
    } else {
      EXPECT_EQ(r.utilities2, reference) << alg;
    }
  }
}

TEST(EdgeCases, RandWithSingleSampleStillFeasible) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  for (int i = 0; i < 10; ++i) {
    b.add_job(a, i, 2);
    b.add_job(c, i, 2);
  }
  const Instance inst = std::move(b).build();
  RandScheduler rand(inst, RandOptions{1, 3});
  rand.run(40);
  EXPECT_EQ(rand.schedule().validate(inst, 40), std::nullopt);
}

TEST(EdgeCases, RefWithMaxBoundaryOrgCount) {
  // k = 11 organizations: 2047 coalition engines; tiny workload keeps it
  // fast while exercising the wide-mask paths.
  InstanceBuilder b;
  for (int u = 0; u < 11; ++u) {
    b.add_org("o", 1);
    b.add_job(static_cast<OrgId>(u), 0, 1);
  }
  const Instance inst = std::move(b).build();
  RefScheduler ref(inst);
  ref.run(5);
  EXPECT_EQ(ref.reference_work(), 11);
  EXPECT_EQ(ref.schedule().validate(inst, 5), std::nullopt);
}

TEST(EdgeCases, ShapleySinglePlayerGetsEverything) {
  auto v = [](Coalition c) { return c.is_empty() ? 0.0 : 7.5; };
  const auto phi = shapley_exact(1, v);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 7.5);
  const auto sampled = shapley_sampled(1, v, 5, 1);
  EXPECT_DOUBLE_EQ(sampled[0], 7.5);
  const auto strat = shapley_stratified(1, v, 2, 1);
  EXPECT_DOUBLE_EQ(strat[0], 7.5);
}

TEST(EdgeCases, SwfFileRoundTripOnDisk) {
  SwfTrace trace;
  trace.header.push_back(" file round trip");
  for (int i = 0; i < 5; ++i) {
    SwfJob j;
    j.job_id = i + 1;
    j.submit = i * 7;
    j.run_time = 10 + i;
    j.processors = 1 + static_cast<std::uint32_t>(i % 3);
    j.user = 100 + i % 2;
    trace.jobs.push_back(j);
  }
  const std::string path = ::testing::TempDir() + "/fairsched_roundtrip.swf";
  save_swf(path, trace);
  const SwfTrace loaded = load_swf(path);
  ASSERT_EQ(loaded.jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i].submit, trace.jobs[i].submit);
    EXPECT_EQ(loaded.jobs[i].run_time, trace.jobs[i].run_time);
    EXPECT_EQ(loaded.jobs[i].processors, trace.jobs[i].processors);
    EXPECT_EQ(loaded.jobs[i].user, trace.jobs[i].user);
  }
  std::remove(path.c_str());
  EXPECT_THROW(save_swf("/nonexistent-dir/x.swf", trace),
               std::runtime_error);
}

TEST(EdgeCases, UtilityOfUnstartedJobsIsZero) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 100, 5);
  const Instance inst = std::move(b).build();
  Schedule s(1);
  EXPECT_EQ(sp_org_half_utility(inst, s, a, 50), 0);
  EXPECT_EQ(completed_work(inst, s, 50), 0);
  EXPECT_EQ(total_flow_time(inst, s, 50), 0);
}

TEST(EdgeCases, SimultaneousReleaseBurstExceedsMachines) {
  // 100 jobs at t=0 on 3 machines: the engine must drain in waves and every
  // algorithm must keep the machines saturated (greedy).
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 3);
  for (int i = 0; i < 100; ++i) b.add_job(a, 0, 2);
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "fcfs", 100, 1);
  EXPECT_EQ(r.schedule.validate(inst, 100), std::nullopt);
  EXPECT_EQ(r.work_done, 200);
  // 33 waves of 3 jobs finish by t=66; the 100th job runs [66, 68), so one
  // of its two units is executed by t=67.
  EXPECT_DOUBLE_EQ(resource_utilization(inst, r.schedule, 67),
                   199.0 / (3.0 * 67.0));
}

}  // namespace
}  // namespace fairsched
