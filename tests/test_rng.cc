// Tests for the deterministic RNG and its distributions.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace fairsched {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, MixSeedSpreadsInstanceSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(mix_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(31);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.2));
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, GeometricWithCertainSuccess) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(41);
  const auto p = rng.permutation(50);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, LognormalMedian) {
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(2.0), 0.15 * std::exp(2.0));
}

TEST(Zipf, RanksInRange) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const auto r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(Zipf, Rank1MostFrequent) {
  ZipfSampler zipf(5, 1.2);
  Rng rng(53);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[3]);
  EXPECT_GT(counts[3], counts[5]);
}

}  // namespace
}  // namespace fairsched
