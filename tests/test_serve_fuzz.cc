// Randomized serve-loop fuzzing (run under ASan/UBSan in CI): bursty
// arrival streams — simultaneous timestamps, minimum-length jobs, idle and
// churning organizations, uneven platforms — driven through ServeSession
// and checked against the batch engine plus the session's own invariants:
// no job is lost (arrivals == decisions == completions after a drain),
// decision times are monotone, and the latency histogram counts exactly
// one sample per decision. Also fuzzes LiveInstance against
// InstanceBuilder: growing an instance job-by-job must land on the
// field-identical immutable instance.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/instance.h"
#include "exp/policy_registry.h"
#include "serve/event_source.h"
#include "serve/live_instance.h"
#include "serve/session.h"
#include "util/rng.h"

namespace fairsched {
namespace {

using exp::PolicyRegistry;
using serve::JobEvent;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServeSession;
using serve::TraceEventSource;

struct FuzzTrace {
  std::vector<std::uint32_t> machines;
  std::vector<JobEvent> events;
  std::string text;
};

// A deliberately bursty, lumpy workload: geometric-ish time gaps with a
// heavy atom at zero (simultaneous arrivals), a platform mixing fat and
// single-machine organizations, and jobs down to the minimum length 1.
FuzzTrace make_fuzz_trace(std::uint64_t seed) {
  Rng rng(mix_seed(seed, 0xf0220ULL));
  FuzzTrace trace;
  const std::uint32_t orgs = 1 + rng.uniform_u64(12);
  for (std::uint32_t u = 0; u < orgs; ++u) {
    trace.machines.push_back(
        rng.uniform_u64(4) == 0 ? 1 + rng.uniform_u64(5) : 1);
  }
  const std::uint32_t events = 50 + rng.uniform_u64(400);
  Time t = 0;
  for (std::uint32_t i = 0; i < events; ++i) {
    // 2/3 of events share the previous timestamp.
    if (rng.uniform_u64(3) != 0) {
      t += rng.uniform_u64(4);
    }
    JobEvent event;
    event.time = t;
    event.org = rng.uniform_u64(orgs);
    event.processing = 1 + rng.uniform_u64(rng.uniform_u64(4) == 0 ? 50 : 3);
    trace.events.push_back(event);
  }
  std::ostringstream out;
  serve::write_trace_header(out, trace.machines);
  for (const JobEvent& event : trace.events) {
    serve::write_job_line(out, event);
  }
  trace.text = out.str();
  return trace;
}

ServeReport run_and_check(const FuzzTrace& trace, const std::string& policy,
                          std::uint64_t seed) {
  std::istringstream serve_in(trace.text);
  TraceEventSource serve_source(serve_in, "fuzz");
  std::ostringstream serve_decisions;
  std::ostringstream stats;
  ServeOptions options;
  options.stats = &stats;
  options.stats_interval = 64;
  options.decisions = &serve_decisions;
  ServeSession session(serve_source.machines(),
                       PolicyRegistry::global().make_policy(policy, seed),
                       options);
  session.run(serve_source);
  const ServeReport& report = session.report();

  // Differential: byte-identical to the batch engine over the same trace.
  std::istringstream batch_in(trace.text);
  TraceEventSource batch_source(batch_in, "fuzz");
  const Instance inst = serve::materialize_trace(batch_source);
  std::ostringstream batch_decisions;
  const std::unique_ptr<Policy> batch_policy =
      PolicyRegistry::global().make_policy(policy, seed);
  serve::replay_batch(inst, *batch_policy, 0, &batch_decisions);
  EXPECT_EQ(serve_decisions.str(), batch_decisions.str())
      << "policy " << policy << " seed " << seed;

  // No lost jobs: a drained session started and completed every arrival.
  const std::uint64_t n = trace.events.size();
  EXPECT_EQ(report.arrivals, n);
  EXPECT_EQ(report.decisions, n);
  EXPECT_EQ(report.completions, n);
  EXPECT_EQ(report.engine_events, 2 * n);  // each job: release + completion
  // Exactly one latency sample per decision.
  EXPECT_EQ(report.decision_latency.total_count(), report.decisions);
  EXPECT_GE(report.decision_latency.max(), report.decision_latency.p99());
  // The clock never runs backwards through the decision stream, and no
  // decision precedes its job's release.
  std::istringstream lines(serve_decisions.str());
  std::string word;
  Time prev = 0;
  std::uint64_t parsed = 0;
  while (lines >> word) {
    EXPECT_EQ(word, "decision");
    Time time = 0;
    OrgId org = 0;
    std::uint32_t index = 0;
    MachineId machine = 0;
    lines >> time >> org >> index >> machine;
    EXPECT_GE(time, prev);
    prev = time;
    EXPECT_LT(org, trace.machines.size());
    EXPECT_GE(time, inst.job(org, index).release);
    parsed++;
  }
  EXPECT_EQ(parsed, report.decisions);
  EXPECT_GE(report.final_time, prev);
  EXPECT_GE(report.peak_resident_jobs, 1u);
  EXPECT_LE(report.peak_resident_orgs, trace.machines.size());
  return report;
}

TEST(ServeFuzzTest, RandomStreamsHoldEveryInvariant) {
  const std::vector<std::string> policies = {"fairshare", "fcfs",
                                             "roundrobin", "random"};
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const FuzzTrace trace = make_fuzz_trace(seed);
    run_and_check(trace, policies[seed % policies.size()], seed);
  }
}

TEST(ServeFuzzTest, AllArrivalsSimultaneous) {
  FuzzTrace trace;
  trace.machines = {2, 1, 1};
  for (std::uint32_t i = 0; i < 200; ++i) {
    trace.events.push_back(JobEvent{0, static_cast<OrgId>(i % 3), 1});
  }
  std::ostringstream out;
  serve::write_trace_header(out, trace.machines);
  for (const JobEvent& event : trace.events) {
    serve::write_job_line(out, event);
  }
  trace.text = out.str();
  const ServeReport report = run_and_check(trace, "fairshare", 1);
  // 200 unit jobs at t=0 on 4 machines: the backlog is the whole stream.
  EXPECT_EQ(report.peak_resident_jobs, 200u);
  EXPECT_EQ(report.final_time, 50);
}

TEST(ServeFuzzTest, SingleOrgSingleMachine) {
  FuzzTrace trace;
  trace.machines = {1};
  Time t = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    trace.events.push_back(JobEvent{t, 0, 1 + (i % 7)});
    t += (i % 3);
  }
  std::ostringstream out;
  serve::write_trace_header(out, trace.machines);
  for (const JobEvent& event : trace.events) {
    serve::write_job_line(out, event);
  }
  trace.text = out.str();
  const ServeReport report = run_and_check(trace, "fcfs", 2);
  EXPECT_EQ(report.peak_resident_orgs, 1u);
}

TEST(ServeFuzzTest, LiveInstanceMatchesBuilderFieldForField) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const FuzzTrace trace = make_fuzz_trace(seed);
    serve::LiveInstance live(trace.machines);
    InstanceBuilder builder;
    for (std::size_t u = 0; u < trace.machines.size(); ++u) {
      builder.add_org("org" + std::to_string(u), trace.machines[u]);
    }
    for (const JobEvent& event : trace.events) {
      live.append_job(event.org, event.time, event.processing);
      builder.add_job(event.org, event.time, event.processing);
    }
    const Instance built = std::move(builder).build();
    const Instance& grown = live.instance();
    ASSERT_EQ(grown.num_orgs(), built.num_orgs());
    ASSERT_EQ(grown.num_jobs(), built.num_jobs());
    EXPECT_EQ(grown.total_work(), built.total_work());
    EXPECT_EQ(grown.last_release(), built.last_release());
    EXPECT_EQ(grown.total_machines(), built.total_machines());
    for (OrgId u = 0; u < built.num_orgs(); ++u) {
      ASSERT_EQ(grown.jobs_of(u).size(), built.jobs_of(u).size());
      EXPECT_EQ(grown.machines_of(u), built.machines_of(u));
      for (std::size_t j = 0; j < built.jobs_of(u).size(); ++j) {
        const Job& a = grown.jobs_of(u)[j];
        const Job& b = built.jobs_of(u)[j];
        ASSERT_EQ(a.org, b.org);
        ASSERT_EQ(a.index, b.index);
        ASSERT_EQ(a.release, b.release);
        ASSERT_EQ(a.processing, b.processing);
      }
    }
  }
}

}  // namespace
}  // namespace fairsched
