// Randomized property tests ("fuzz" sweeps): for randomly generated
// instances and every scheduling algorithm, the produced schedule must be a
// feasible greedy schedule and every reported quantity must match the
// closed forms evaluated on that schedule. Parameterized over
// (algorithm, seed) so each combination is its own test case.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "metrics/utility.h"
#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "exp/policy_registry.h"
#include "util/rng.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

Instance random_instance(std::uint64_t seed, std::uint32_t max_orgs,
                         bool unit_jobs) {
  Rng rng(mix_seed(seed, 0xF0CCA));
  InstanceBuilder b;
  const std::uint32_t k =
      2 + static_cast<std::uint32_t>(rng.uniform_u64(max_orgs - 1));
  std::uint32_t total_machines = 0;
  for (std::uint32_t u = 0; u < k; ++u) {
    // Allow machine-less organizations (pure consumers).
    const std::uint32_t m =
        static_cast<std::uint32_t>(rng.uniform_u64(4));
    total_machines += m;
    b.add_org("o" + std::to_string(u), m);
  }
  if (total_machines == 0) b.add_org("backbone", 2);
  const std::size_t jobs = 5 + rng.uniform_u64(60);
  for (std::size_t j = 0; j < jobs; ++j) {
    const OrgId owner = static_cast<OrgId>(rng.uniform_u64(k));
    const Time release = static_cast<Time>(rng.uniform_u64(80));
    const Time p =
        unit_jobs ? 1 : 1 + static_cast<Time>(rng.uniform_u64(25));
    b.add_job(owner, release, p);
  }
  return std::move(b).build();
}

using FuzzCase = std::tuple<std::string, std::uint64_t>;

class AlgorithmFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(AlgorithmFuzz, ScheduleFeasibleAndAccountingExact) {
  const auto& [alg, seed] = GetParam();
  const Instance inst = random_instance(seed, 4, false);
  const Time horizon = 40 + static_cast<Time>(seed % 7) * 25;
  const RunResult r = registry().run(inst, alg, horizon,
                                    seed);
  // Feasibility: machine-exclusive, FIFO, greedy up to the horizon.
  EXPECT_EQ(r.schedule.validate(inst, horizon), std::nullopt)
      << alg << " seed=" << seed;
  // Reported utilities equal the Eq. 3 closed form on the schedule.
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(r.utilities2[u],
              sp_org_half_utility(inst, r.schedule, u, horizon))
        << alg << " seed=" << seed << " u=" << u;
  }
  // Work conservation.
  EXPECT_EQ(r.work_done, completed_work(inst, r.schedule, horizon))
      << alg << " seed=" << seed;
  EXPECT_LE(r.work_done, inst.total_work());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmFuzz,
    ::testing::Combine(
        ::testing::Values("roundrobin", "fairshare", "utfairshare",
                          "currfairshare", "decayfairshare300",
                          "directcontr", "random", "fcfs", "rand7", "ref"),
        ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6)),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// REF-specific deep checks on random instances.
class RefFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefFuzz, EveryCoalitionScheduleMatchesItsRestrictedWorld) {
  const std::uint64_t seed = GetParam();
  const Instance inst = random_instance(seed, 3, false);
  const Time horizon = 120;
  RefScheduler ref(inst);
  ref.run(horizon);
  for (Coalition::Mask mask = 1; mask < (1u << inst.num_orgs()); ++mask) {
    const Engine& e = ref.engine(Coalition(mask));
    EXPECT_EQ(e.schedule().check_machine_exclusive(inst), std::nullopt)
        << "seed=" << seed << " mask=" << mask;
    EXPECT_EQ(e.schedule().check_fifo(inst), std::nullopt)
        << "seed=" << seed << " mask=" << mask;
    // Utilities of non-members must be zero; member utilities match the
    // closed form.
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      if (!Coalition(mask).contains(u)) {
        EXPECT_EQ(e.psi2(u), 0) << "seed=" << seed << " mask=" << mask;
      } else {
        EXPECT_EQ(e.psi2(u),
                  sp_org_half_utility(inst, e.schedule(), u, horizon))
            << "seed=" << seed << " mask=" << mask << " u=" << u;
      }
    }
  }
  // Shapley efficiency of the reported contributions at the horizon.
  const auto phi = ref.contributions();
  double phi_sum = 0.0;
  for (double p : phi) phi_sum += p;
  const double v_grand =
      static_cast<double>(sp_half_value(inst, ref.schedule(), horizon)) / 2.0;
  EXPECT_NEAR(phi_sum, v_grand, 1e-6 * std::max(1.0, std::abs(v_grand)))
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RefFuzz,
                         ::testing::Values<std::uint64_t>(11, 12, 13, 14, 15,
                                                          16, 17, 18));

// RAND on unit jobs: the schedule's utility vector must stay within a
// loose band of REF's across random instances (the FPRAS property).
class RandUnitFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandUnitFuzz, TracksRefOnUnitJobs) {
  const std::uint64_t seed = GetParam();
  const Instance inst = random_instance(seed, 4, true);
  const Time horizon = 100;
  RefScheduler ref(inst);
  ref.run(horizon);
  RandScheduler rand(inst, RandOptions{100, seed});
  rand.run(horizon);
  HalfUtil ref_norm = 0;
  for (HalfUtil v : ref.utilities2()) ref_norm += v;
  if (ref_norm == 0) return;  // degenerate window
  HalfUtil dist = 0;
  const auto a = rand.utilities2();
  const auto b = ref.utilities2();
  for (std::size_t u = 0; u < a.size(); ++u) dist += std::llabs(a[u] - b[u]);
  EXPECT_LT(static_cast<double>(dist) / static_cast<double>(ref_norm), 0.2)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandUnitFuzz,
                         ::testing::Values<std::uint64_t>(21, 22, 23, 24, 25,
                                                          26));

}  // namespace
}  // namespace fairsched
