// Golden byte-for-byte pin of the serve stats JSON (serve/session.h,
// write_report_json). The session runs a fixed synthetic workload under an
// injected deterministic clock, so every field — counters, latency
// percentiles, throughput rates — is reproducible and the serialized
// report must match tests/golden/serve_stats.json exactly. This is what
// keeps the BENCH_serve.json schema stable for scripts/compare_bench.py
// and external dashboards.
//
// To regenerate after an intentional schema change:
//   FAIRSCHED_UPDATE_GOLDEN=1 ./test_serve_golden

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/policy_registry.h"
#include "serve/event_source.h"
#include "serve/session.h"

namespace fairsched {
namespace {

using serve::ServeOptions;
using serve::ServeSession;
using serve::SyntheticEventSource;
using serve::SyntheticServeSpec;

std::string golden_path() {
  return std::string(FAIRSCHED_SOURCE_DIR) + "/tests/golden/serve_stats.json";
}

// A deterministic nanosecond clock: call k advances the fake time by
// (k mod 251) + 1, so decision latencies are diverse but reproducible.
struct FakeClock {
  std::uint64_t now = 0;
  std::uint64_t calls = 0;
  std::uint64_t operator()() {
    calls++;
    now += calls % 251 + 1;
    return now;
  }
};

std::string run_golden_session() {
  SyntheticServeSpec spec;
  spec.orgs = 20;
  spec.machines_per_org = 1;
  spec.events = 500;
  spec.arrival_rate = 8.0;
  spec.zipf_s = 1.0;
  spec.seed = 2013;
  SyntheticEventSource source(spec);

  FakeClock clock;
  std::ostringstream stats;
  ServeOptions options;
  options.stats_interval = 200;
  options.stats = &stats;
  options.clock_ns = [&clock]() { return clock(); };
  ServeSession session(source.machines(),
                       exp::PolicyRegistry::global().make_policy("fairshare"),
                       options);
  session.run(source);

  std::ostringstream out;
  serve::write_report_json(out, session.report(), "fairshare", "synthetic");
  return out.str();
}

TEST(ServeGoldenTest, StatsJsonMatchesGoldenByteForByte) {
  const std::string produced = run_golden_session();
  if (std::getenv("FAIRSCHED_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << produced;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " (regenerate with FAIRSCHED_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(produced, expected.str())
      << "serve stats JSON drifted from the golden file; if the schema "
         "change is intentional, regenerate with FAIRSCHED_UPDATE_GOLDEN=1";
}

TEST(ServeGoldenTest, ReportIsDeterministicAcrossRuns) {
  EXPECT_EQ(run_golden_session(), run_golden_session());
}

}  // namespace
}  // namespace fairsched
