// Tests reproducing the paper's theoretical propositions on concrete
// instances: Prop. 5.4 (greedy-invariant coalition value for unit jobs),
// Prop. 5.5 (non-supermodularity), the Theorem 5.3 inapproximability gadget
// (relative distance between sigma_ord and sigma_rev tends to 1), and the
// Theorem 6.2 / Figure 7 resource-utilization bound.

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "shapley/shapley.h"
#include "sched/fcfs.h"
#include "sched/round_robin.h"
#include "exp/policy_registry.h"
#include "sim/engine.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

// --- Proposition 5.4 --------------------------------------------------------

TEST(Prop54, UnitJobCoalitionValueIsGreedyInvariant) {
  // Random-ish unit-size workload; every greedy algorithm must give every
  // coalition the same value at every time moment.
  InstanceBuilder b;
  b.add_org("a", 1);
  b.add_org("c", 2);
  b.add_org("d", 1);
  const Time releases[] = {0, 0, 0, 1, 1, 2, 2, 2, 3, 5, 5, 8};
  int i = 0;
  for (Time r : releases) {
    b.add_job(static_cast<OrgId>(i % 3), r, 1);
    ++i;
  }
  const Instance inst = std::move(b).build();

  for (Coalition::Mask mask = 1; mask < 8; ++mask) {
    for (Time t : {1, 2, 3, 4, 6, 9, 12}) {
      std::vector<HalfUtil> values;
      for (const char* alg : {"fcfs", "roundrobin", "fairshare",
                              "currfairshare", "directcontr"}) {
        Engine engine(inst, Coalition(mask));
        std::unique_ptr<Policy> policy = registry().make_policy(alg);
        engine.run(*policy, t);
        values.push_back(engine.value2());
      }
      for (std::size_t j = 1; j < values.size(); ++j) {
        EXPECT_EQ(values[j], values[0])
            << "mask=" << mask << " t=" << t << " alg#" << j;
      }
    }
  }
}

TEST(Prop54, FailsForMixedSizes) {
  // Sanity inversion: with mixed job sizes different greedy orders can
  // produce different *coalition values* (different busy patterns). This is
  // exactly why REF must keep recursive fair schedules for subcoalitions
  // and why RAND's simplified schedules are only exact for unit jobs.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  b.add_job(a, 0, 1);
  b.add_job(a, 0, 1);
  b.add_job(c, 0, 2);
  const Instance inst = std::move(b).build();

  auto finish_with_fcfs = [](Engine& engine, Time horizon) {
    FcfsPolicy fcfs;
    PolicyView view(engine);
    for (;;) {
      const Time t = engine.next_event();
      if (t == kTimeInfinity || t >= horizon) break;
      engine.advance_to(t);
      while (engine.needs_decision()) engine.start_front(fcfs.select(view));
    }
    engine.advance_to(horizon);
  };

  // Order 1: both unit jobs of a first; c's 2-job starts at t=1.
  Engine short_first(inst);
  short_first.advance_to(0);
  short_first.start_front(a);
  short_first.start_front(a);
  finish_with_fcfs(short_first, 2);

  // Order 2: c's long job and one unit job at t=0.
  Engine long_first(inst);
  long_first.advance_to(0);
  long_first.start_front(c);
  long_first.start_front(a);
  finish_with_fcfs(long_first, 2);

  // At t=2: short-first executed 3 unit parts, long-first 4.
  EXPECT_EQ(short_first.total_work_done(), 3);
  EXPECT_EQ(long_first.total_work_done(), 4);
  EXPECT_NE(short_first.value2(), long_first.value2());
}

// --- Proposition 5.5 --------------------------------------------------------

TEST(Prop55, SchedulingGameIsNotSupermodular) {
  // The paper's counterexample: a and b own one machine and two unit jobs
  // each (t=0); c owns one machine and nothing. Values at t=2:
  // v({a,c}) = v({b,c}) = 4, v({a,b,c}) = 7, v({c}) = 0.
  InstanceBuilder builder;
  const OrgId a = builder.add_org("a", 1);
  const OrgId bb = builder.add_org("b", 1);
  builder.add_org("c", 1);
  for (int i = 0; i < 2; ++i) {
    builder.add_job(a, 0, 1);
    builder.add_job(bb, 0, 1);
  }
  const Instance inst = std::move(builder).build();

  auto v = [&](Coalition c) -> double {
    if (c.is_empty()) return 0.0;
    Engine engine(inst, c);
    FcfsPolicy fcfs;
    engine.run(fcfs, 2);
    return static_cast<double>(engine.value2()) / 2.0;
  };
  EXPECT_DOUBLE_EQ(v(Coalition(0b101)), 4.0);  // {a, c}
  EXPECT_DOUBLE_EQ(v(Coalition(0b110)), 4.0);  // {b, c}
  EXPECT_DOUBLE_EQ(v(Coalition(0b111)), 7.0);  // {a, b, c}
  EXPECT_DOUBLE_EQ(v(Coalition(0b100)), 0.0);  // {c}
  // v({a,c} u {b,c}) + v({a,c} n {b,c}) < v({a,c}) + v({b,c})
  EXPECT_LT(v(Coalition(0b111)) + v(Coalition(0b100)),
            v(Coalition(0b101)) + v(Coalition(0b110)));
  EXPECT_FALSE(is_supermodular(3, v));
}

// --- Theorem 5.3 gadget ------------------------------------------------------

TEST(Thm53, OrderedVsReversedDistanceApproachesOne) {
  // m organizations, one job each (identical, size p), a single machine.
  // sigma_ord starts them 0, p, 2p, ...; sigma_rev reverses the priority.
  // The relative Manhattan distance between the two utility vectors tends
  // to 1 as m grows — why a (1/2 - eps)-approximation cannot distinguish
  // them (the inapproximability argument).
  auto relative_gap = [](std::uint32_t m) {
    const Time p = 4;
    InstanceBuilder b;
    for (std::uint32_t u = 0; u < m; ++u) {
      b.add_org("o" + std::to_string(u), u == 0 ? 1 : 0);
      b.add_job(u, 0, p);
    }
    const Instance inst = std::move(b).build();
    const Time t = static_cast<Time>(m) * p;  // all complete
    Schedule ord(m), rev(m);
    for (std::uint32_t u = 0; u < m; ++u) {
      ord.add({u, 0, static_cast<Time>(u) * p, 0});
      rev.add({u, 0, static_cast<Time>(m - 1 - u) * p, 0});
    }
    std::vector<HalfUtil> psi_ord = sp_half_utilities(inst, ord, t);
    std::vector<HalfUtil> psi_rev = sp_half_utilities(inst, rev, t);
    return relative_distance(psi_ord, psi_rev);
  };
  const double g4 = relative_gap(4);
  const double g16 = relative_gap(16);
  const double g64 = relative_gap(64);
  EXPECT_LT(g4, g16);
  EXPECT_LT(g16, g64);
  EXPECT_GT(g64, 0.9);
  EXPECT_LE(g64, 1.0 + 1e-12);
}

// --- Theorem 6.2 / Figure 7 --------------------------------------------------

// Fixed-priority policy: always serves the preferred organization first.
class PriorityPolicy final : public Policy {
 public:
  explicit PriorityPolicy(OrgId preferred) : preferred_(preferred) {}
  OrgId select(const PolicyView& view) override {
    if (view.waiting(preferred_) > 0) return preferred_;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) > 0) return u;
    }
    throw std::logic_error("no waiting job");
  }

 private:
  OrgId preferred_;
};

Instance figure7_instance() {
  // 4 machines; O1: four jobs of size 3; O2: two jobs of size 6; all at 0.
  InstanceBuilder b;
  const OrgId o1 = b.add_org("O1", 2);
  const OrgId o2 = b.add_org("O2", 2);
  for (int i = 0; i < 4; ++i) b.add_job(o1, 0, 3);
  for (int i = 0; i < 2; ++i) b.add_job(o2, 0, 6);
  return std::move(b).build();
}

TEST(Thm62, Figure7WorstCaseIsExactlyThreeQuarters) {
  const Instance inst = figure7_instance();
  const Time horizon = 6;

  Engine good(inst);
  PriorityPolicy prefer_long(1);
  good.run(prefer_long, horizon);
  EXPECT_DOUBLE_EQ(resource_utilization(inst, good.schedule(), horizon), 1.0);

  Engine bad(inst);
  PriorityPolicy prefer_short(0);
  bad.run(prefer_short, horizon);
  EXPECT_DOUBLE_EQ(resource_utilization(inst, bad.schedule(), horizon), 0.75);
}

TEST(Thm62, AllGreedyPoliciesWithinThreeQuartersOfEachOther) {
  // Theorem 6.2 implies any two greedy algorithms' utilizations are within
  // a factor 3/4 of each other at any time (each is at least 3/4 of the
  // optimum, which dominates both). Sweep a batch of structured instances.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed * 97 + 1);
    InstanceBuilder b;
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(seed % 3);
    for (std::uint32_t u = 0; u < k; ++u) {
      b.add_org("o" + std::to_string(u),
                1 + static_cast<std::uint32_t>(rng.uniform_u64(2)));
    }
    const std::size_t jobs = 12 + rng.uniform_u64(20);
    for (std::size_t j = 0; j < jobs; ++j) {
      b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
                static_cast<Time>(rng.uniform_u64(20)),
                1 + static_cast<Time>(rng.uniform_u64(12)));
    }
    const Instance inst = std::move(b).build();
    for (Time t : {5, 11, 23, 47}) {
      std::vector<double> utils;
      for (const char* alg :
           {"fcfs", "roundrobin", "fairshare", "currfairshare"}) {
        const RunResult r = registry().run(inst, alg, t, 3);
        utils.push_back(resource_utilization(inst, r.schedule, t));
      }
      // Also the fixed-priority extremes.
      for (OrgId pref = 0; pref < inst.num_orgs(); ++pref) {
        Engine e(inst);
        PriorityPolicy p(pref);
        e.run(p, t);
        utils.push_back(resource_utilization(inst, e.schedule(), t));
      }
      const double lo = *std::min_element(utils.begin(), utils.end());
      const double hi = *std::max_element(utils.begin(), utils.end());
      if (hi > 0) {
        EXPECT_GE(lo / hi, 0.75 - 1e-12)
            << "seed=" << seed << " t=" << t << " lo=" << lo << " hi=" << hi;
      }
    }
  }
}

}  // namespace
}  // namespace fairsched
