// Tests for the strategic-deviation layer (src/strategy): the closed
// deviation family's parsing/validation/transforms, instance rebuilding,
// and the best-response driver's true-size grading.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/instance.h"
#include "metrics/utility.h"
#include "strategy/deviation.h"
#include "strategy/game.h"
#include "util/rng.h"

namespace fairsched::strategy {
namespace {

using Kind = DeviationSpec::Kind;

// --- Labels, parsing, validation --------------------------------------------

TEST(DeviationSpec, LabelsAreCanonical) {
  EXPECT_EQ(deviation_label({Kind::kHonest, 0}), "honest");
  EXPECT_EQ(deviation_label({Kind::kSplit, 0}), "splitunit");
  EXPECT_EQ(deviation_label({Kind::kSplit, 2}), "split2");
  EXPECT_EQ(deviation_label({Kind::kMerge, 3}), "merge3");
  EXPECT_EQ(deviation_label({Kind::kDelay, 20}), "delay20");
  EXPECT_EQ(deviation_label({Kind::kMisreport, 200}), "misreport200");
}

TEST(DeviationSpec, ParseRoundTripsEveryLabel) {
  const std::vector<DeviationSpec> specs = {
      {Kind::kHonest, 0},  {Kind::kSplit, 0},      {Kind::kSplit, 4},
      {Kind::kMerge, 2},   {Kind::kDelay, 100},    {Kind::kMisreport, 50},
      {Kind::kMisreport, 200},
  };
  for (const DeviationSpec& dev : specs) {
    EXPECT_EQ(parse_deviation(deviation_label(dev)), dev);
  }
  // The explicit kind:param form is equivalent.
  EXPECT_EQ(parse_deviation("split:2"), (DeviationSpec{Kind::kSplit, 2}));
  EXPECT_EQ(parse_deviation("misreport:50"),
            (DeviationSpec{Kind::kMisreport, 50}));
}

TEST(DeviationSpec, ParseRejectsMalformedTokens) {
  for (const char* bad : {"", "bogus", "split:x", "honest:1", "merge1",
                          "delay0", "misreport0", "split:-2"}) {
    EXPECT_THROW(parse_deviation(bad), std::invalid_argument) << bad;
  }
  // An empty parameter falls back to the kind's default form.
  EXPECT_EQ(parse_deviation("split:"), (DeviationSpec{Kind::kSplit, 0}));
}

TEST(DeviationSpec, ValidateEnforcesKindRanges) {
  EXPECT_NO_THROW(validate_deviation({Kind::kHonest, 0}));
  EXPECT_THROW(validate_deviation({Kind::kHonest, 1}),
               std::invalid_argument);
  EXPECT_NO_THROW(validate_deviation({Kind::kSplit, 0}));
  EXPECT_THROW(validate_deviation({Kind::kSplit, 1}),
               std::invalid_argument);
  EXPECT_THROW(validate_deviation({Kind::kMerge, 1}),
               std::invalid_argument);
  EXPECT_THROW(validate_deviation({Kind::kDelay, 0}),
               std::invalid_argument);
  EXPECT_THROW(validate_deviation({Kind::kMisreport, 0}),
               std::invalid_argument);
}

TEST(DeviationSpec, DefaultGridStartsHonestAndValidates) {
  const std::vector<DeviationSpec> grid = default_deviation_grid();
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front().kind, Kind::kHonest);
  for (const DeviationSpec& dev : grid) {
    EXPECT_NO_THROW(validate_deviation(dev)) << deviation_label(dev);
  }
  // One honest reference only; every label distinct.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = i + 1; j < grid.size(); ++j) {
      EXPECT_NE(deviation_label(grid[i]), deviation_label(grid[j]));
    }
  }
}

// --- The job-stream transforms ----------------------------------------------

std::vector<Job> some_jobs() {
  return {{0, 0, 0, 7}, {0, 1, 3, 1}, {0, 2, 3, 4}, {0, 3, 10, 6},
          {0, 4, 22, 2}};
}

std::int64_t total_processing(const std::vector<Job>& jobs) {
  return std::accumulate(jobs.begin(), jobs.end(), std::int64_t{0},
                         [](std::int64_t acc, const Job& j) {
                           return acc + j.processing;
                         });
}

TEST(ApplyDeviation, HonestIsIdentity) {
  const std::vector<Job> jobs = some_jobs();
  const std::vector<Job> out =
      apply_deviation_to_jobs(jobs, {Kind::kHonest, 0});
  ASSERT_EQ(out.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(out[i].release, jobs[i].release);
    EXPECT_EQ(out[i].processing, jobs[i].processing);
  }
}

TEST(ApplyDeviation, SplitUnitYieldsUnitPiecesAtSameRelease) {
  const std::vector<Job> jobs = some_jobs();
  const std::vector<Job> out =
      apply_deviation_to_jobs(jobs, {Kind::kSplit, 0});
  EXPECT_EQ(static_cast<std::int64_t>(out.size()), total_processing(jobs));
  EXPECT_EQ(total_processing(out), total_processing(jobs));
  std::size_t at = 0;
  for (const Job& j : jobs) {
    for (Time piece = 0; piece < j.processing; ++piece, ++at) {
      EXPECT_EQ(out[at].release, j.release);
      EXPECT_EQ(out[at].processing, 1);
    }
  }
}

TEST(ApplyDeviation, SplitKMakesEqualAsPossiblePieces) {
  const std::vector<Job> jobs = {{0, 0, 5, 7}};
  const std::vector<Job> out =
      apply_deviation_to_jobs(jobs, {Kind::kSplit, 3});
  // 7 into 3 pieces: sizes {3, 2, 2}, work conserved, same release.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(total_processing(out), 7);
  for (const Job& j : out) {
    EXPECT_EQ(j.release, 5);
    EXPECT_GE(j.processing, 2);
    EXPECT_LE(j.processing, 3);
  }
  // A job shorter than k yields only p unit pieces.
  const std::vector<Job> tiny =
      apply_deviation_to_jobs({{{0, 0, 1, 2}}}, {Kind::kSplit, 5});
  ASSERT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny[0].processing, 1);
  EXPECT_EQ(tiny[1].processing, 1);
}

TEST(ApplyDeviation, MergeRunsOfK) {
  const std::vector<Job> jobs = some_jobs();
  const std::vector<Job> out =
      apply_deviation_to_jobs(jobs, {Kind::kMerge, 2});
  // 5 jobs -> runs {0,1}, {2,3} and a short final run {4} kept as-is.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(total_processing(out), total_processing(jobs));
  EXPECT_EQ(out[0].release, 3);   // max(0, 3)
  EXPECT_EQ(out[0].processing, 8);  // 7 + 1
  EXPECT_EQ(out[1].release, 10);  // max(3, 10)
  EXPECT_EQ(out[1].processing, 10);  // 4 + 6
  EXPECT_EQ(out[2].release, 22);
  EXPECT_EQ(out[2].processing, 2);
}

TEST(ApplyDeviation, DelayShiftsEveryRelease) {
  const std::vector<Job> jobs = some_jobs();
  const std::vector<Job> out =
      apply_deviation_to_jobs(jobs, {Kind::kDelay, 9});
  ASSERT_EQ(out.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(out[i].release, jobs[i].release + 9);
    EXPECT_EQ(out[i].processing, jobs[i].processing);
  }
}

TEST(ApplyDeviation, MisreportScalesDeclaredSizesOnly) {
  const std::vector<Job> jobs = some_jobs();
  const std::vector<Job> under =
      apply_deviation_to_jobs(jobs, {Kind::kMisreport, 50});
  const std::vector<Job> over =
      apply_deviation_to_jobs(jobs, {Kind::kMisreport, 200});
  ASSERT_EQ(under.size(), jobs.size());
  ASSERT_EQ(over.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(under[i].release, jobs[i].release);
    EXPECT_EQ(under[i].processing,
              std::max<Time>(1, jobs[i].processing * 50 / 100));
    EXPECT_EQ(over[i].processing, jobs[i].processing * 2);
  }
}

// --- Instance rebuilding ----------------------------------------------------

Instance two_org_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("deviator", 2);
  const OrgId z = b.add_org("honest", 3);
  b.add_job(a, 0, 4);
  b.add_job(a, 2, 6);
  b.add_job(z, 1, 3);
  b.add_job(z, 5, 5);
  return std::move(b).build();
}

TEST(ApplyDeviationInstance, OnlyTheDeviatorChanges) {
  const Instance honest = two_org_instance();
  const Instance dev = apply_deviation(honest, 0, {Kind::kSplit, 0});
  ASSERT_EQ(dev.num_orgs(), honest.num_orgs());
  EXPECT_EQ(dev.org(0).name, "deviator");
  EXPECT_EQ(dev.org(0).machines, 2u);
  EXPECT_EQ(dev.org(1).machines, 3u);
  EXPECT_EQ(dev.jobs_of(0).size(), 10u);  // 4 + 6 unit pieces
  ASSERT_EQ(dev.jobs_of(1).size(), honest.jobs_of(1).size());
  for (std::size_t i = 0; i < honest.jobs_of(1).size(); ++i) {
    EXPECT_EQ(dev.job(1, i).release, honest.job(1, i).release);
    EXPECT_EQ(dev.job(1, i).processing, honest.job(1, i).processing);
  }
  EXPECT_EQ(dev.total_work(), honest.total_work());
}

TEST(ApplyDeviationInstance, RejectsBadArguments) {
  const Instance honest = two_org_instance();
  EXPECT_THROW(apply_deviation(honest, 2, {Kind::kSplit, 0}),
               std::invalid_argument);
  EXPECT_THROW(apply_deviation(honest, 0, {Kind::kDelay, 0}),
               std::invalid_argument);
}

// --- Best-response grading --------------------------------------------------

TEST(PlayDeviationGrid, HonestEntryIsTheGainReference) {
  const Instance inst = two_org_instance();
  const std::vector<DeviationSpec> grid = {{Kind::kHonest, 0},
                                           {Kind::kDelay, 3}};
  const std::vector<DeviationOutcome> outcomes =
      play_deviation_grid(inst, 0, grid, "fcfs", 60, 1);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].dev.kind, Kind::kHonest);
  EXPECT_GT(outcomes[0].outcome.deviator_utility, 0.0);
  EXPECT_GT(outcomes[0].outcome.deviator_flow, 0.0);
  EXPECT_GT(outcomes[0].outcome.honest_utility, 0.0);
  // Honest deviation == an unmodified run of the policy.
  const RunResult honest_run =
      exp::PolicyRegistry::global().run(inst, "fcfs", 60, 1);
  EXPECT_EQ(outcomes[0].outcome.deviator_utility,
            half_to_double(honest_run.utilities2[0]));
}

TEST(EvaluateDeviation, MisreportCapsUtilityAndDropsUnderDeclared) {
  // One machine, one org, one true job of size 4. Declared size 2 (under-
  // report): the machine frees at start+2, the job never completes, and
  // the deviator earns only min(2, 4) = 2 units of useful work.
  InstanceBuilder hb;
  const OrgId o = hb.add_org("o", 1);
  hb.add_job(o, 0, 4);
  const Instance honest = std::move(hb).build();
  const DeviationSpec dev{Kind::kMisreport, 50};
  const Instance declared = apply_deviation(honest, 0, dev);
  ASSERT_EQ(declared.job(0, 0).processing, 2);

  Schedule schedule(1);
  schedule.add({o, 0, 0, 0});
  const Time horizon = 10;
  std::vector<HalfUtil> utilities2 = {
      sp_job_half_utility(0, declared.job(0, 0).processing, horizon)};
  const StrategyOutcome out = evaluate_deviation(
      honest, declared, 0, dev, schedule, horizon, utilities2);
  EXPECT_EQ(utilities2[0], sp_job_half_utility(0, 2, horizon));
  EXPECT_EQ(out.deviator_utility,
            half_to_double(sp_job_half_utility(0, 2, horizon)));
  EXPECT_EQ(out.deviator_flow, 0.0);  // nothing truly completed

  // Over-declaring (200%) completes at start + true size; the phantom
  // tail earns nothing.
  const DeviationSpec over{Kind::kMisreport, 200};
  const Instance inflated = apply_deviation(honest, 0, over);
  ASSERT_EQ(inflated.job(0, 0).processing, 8);
  std::vector<HalfUtil> u2 = {
      sp_job_half_utility(0, inflated.job(0, 0).processing, horizon)};
  const StrategyOutcome out2 =
      evaluate_deviation(honest, inflated, 0, over, schedule, horizon, u2);
  EXPECT_EQ(u2[0], sp_job_half_utility(0, 4, horizon));
  EXPECT_EQ(out2.deviator_flow, 4.0);  // completes at 0 + 4, released at 0
}

TEST(PlayDeviationGrid, SplitKeepsTrueWorkAcrossTheWholeGrid) {
  // Every non-misreport deviation's declared stream is its true stream:
  // the game never invents or destroys work.
  Rng rng(7);
  InstanceBuilder b;
  const OrgId dev_org = b.add_org("d", 1);
  const OrgId other = b.add_org("h", 1);
  Time t = 0;
  for (int i = 0; i < 12; ++i) {
    t += static_cast<Time>(rng.uniform_u64(5));
    b.add_job(dev_org, t, 1 + static_cast<Time>(rng.uniform_u64(6)));
    b.add_job(other, t, 1 + static_cast<Time>(rng.uniform_u64(4)));
  }
  const Instance honest = std::move(b).build();
  for (const DeviationSpec& dev : default_deviation_grid()) {
    if (dev.kind == Kind::kMisreport) continue;
    const Instance declared =
        dev.kind == Kind::kHonest ? honest
                                  : apply_deviation(honest, 0, dev);
    EXPECT_EQ(declared.total_work(), honest.total_work())
        << deviation_label(dev);
  }
}

}  // namespace
}  // namespace fairsched::strategy
