// Tests for the ASCII table formatter and CSV writer.

#include "util/csv.h"
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fairsched {
namespace {

TEST(Table, BasicLayout) {
  AsciiTable t({"alg", "avg"});
  t.add_row({"RoundRobin", "238"});
  t.add_row({"Rand", "8"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alg "), std::string::npos);
  EXPECT_NE(s.find("| RoundRobin "), std::string::npos);
  EXPECT_NE(s.find("| 238 "), std::string::npos);
  // 2 border lines around header + 1 bottom = at least 3 '+--' lines.
  int plus_lines = 0;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '+') ++plus_lines;
  }
  EXPECT_EQ(plus_lines, 3);
}

TEST(Table, SeparatorRows) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::istringstream in(t.to_string());
  std::string line;
  int plus_lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '+') ++plus_lines;
  }
  EXPECT_EQ(plus_lines, 4);
}

TEST(Table, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(AsciiTable::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::format_double(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::format_double(-0.5, 1), "-0.5");
}

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a,b", "say \"hi\"", "multi\nline"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
}

TEST(Csv, EmptyCells) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"", "x", ""});
  EXPECT_EQ(out.str(), ",x,\n");
}

}  // namespace
}  // namespace fairsched
