// Tests for the extension policies (decaying fair share, random baseline)
// and the SWF window slicing utilities.

#include <gtest/gtest.h>

#include "metrics/utility.h"
#include "sched/decaying_fair_share.h"
#include "exp/policy_registry.h"
#include "sim/engine.h"
#include "workload/window.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

// --- DecayingFairShare -------------------------------------------------------

Instance contended_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  for (int i = 0; i < 200; ++i) {
    b.add_job(a, 0, 2);
    b.add_job(c, 0, 2);
  }
  return std::move(b).build();
}

TEST(DecayFairShare, ParsesWithHalfLife) {
  const PolicySpec spec = registry().make("decayfairshare2500");
  EXPECT_EQ(spec.base, "decayfairshare");
  EXPECT_DOUBLE_EQ(spec.params.at("half-life").real_value, 2500.0);
  EXPECT_EQ(spec.to_string(), "decayfairshare(half-life=2500)");
  EXPECT_THROW(registry().make("decayfairshare0"), std::invalid_argument);
}

TEST(DecayFairShare, ProducesFeasibleSchedule) {
  const Instance inst = contended_instance();
  const RunResult r =
      registry().run(inst, "decayfairshare1000", 100, 1);
  EXPECT_EQ(r.schedule.validate(inst, 100), std::nullopt);
}

TEST(DecayFairShare, SymmetricOrgsBalanced) {
  const Instance inst = contended_instance();
  const RunResult r =
      registry().run(inst, "decayfairshare500", 120, 1);
  // Usage-based rotation gives the tie-break winner systematically earlier
  // slots, so only near-equality can be required (the same is true of the
  // paper's FAIRSHARE).
  const double hi = static_cast<double>(
      std::max(r.utilities2[0], r.utilities2[1]));
  const double lo = static_cast<double>(
      std::min(r.utilities2[0], r.utilities2[1]));
  EXPECT_LT((hi - lo) / hi, 0.05);
}

TEST(DecayFairShare, ForgetsOldUsageUnlikePlainFairShare) {
  // Org a hogs the system early (c absent), then both compete. Plain fair
  // share makes a repay its entire early usage before c-parity; the
  // decaying variant forgives old usage after a few half-lives, letting a
  // reclaim its share sooner.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  for (int i = 0; i < 50; ++i) b.add_job(a, 0, 2);        // early burst
  for (int i = 0; i < 100; ++i) {
    b.add_job(a, 200, 2);                                 // contended phase
    b.add_job(c, 200, 2);
  }
  const Instance inst = std::move(b).build();
  const Time horizon = 320;

  const RunResult plain =
      registry().run(inst, "fairshare", horizon, 1);
  const RunResult decayed =
      registry().run(inst, "decayfairshare20", horizon, 1);

  // Count a's starts in the contended phase.
  auto phase_starts = [&](const RunResult& r) {
    int a_starts = 0;
    for (const Placement& p : r.schedule.placements()) {
      if (p.org == a && p.start >= 200) ++a_starts;
    }
    return a_starts;
  };
  EXPECT_GT(phase_starts(decayed), phase_starts(plain));
}

TEST(DecayFairShare, NoDecayDegeneratesToFairShare) {
  // A disabled half-life must produce exactly plain FAIRSHARE's schedule.
  const Instance inst = contended_instance();
  Engine a(inst), b(inst);
  DecayingFairSharePolicy no_decay(0.0);
  auto fairshare = registry().make_policy("fairshare");
  a.run(no_decay, 150);
  b.run(*fairshare, 150);
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(a.psi2(u), b.psi2(u));
  }
}

// --- Random baseline ---------------------------------------------------------

TEST(RandomBaseline, FeasibleAndDeterministicPerSeed) {
  const Instance inst = contended_instance();
  const RunResult r1 = registry().run(inst, "random", 80, 9);
  const RunResult r2 = registry().run(inst, "random", 80, 9);
  EXPECT_EQ(r1.schedule.validate(inst, 80), std::nullopt);
  EXPECT_EQ(r1.utilities2, r2.utilities2);
}

TEST(RandomBaseline, DifferentSeedsCanDiffer) {
  const Instance inst = contended_instance();
  const RunResult r1 = registry().run(inst, "random", 80, 1);
  const RunResult r2 = registry().run(inst, "random", 80, 2);
  // Not guaranteed in principle, overwhelmingly likely with 200 decisions.
  EXPECT_NE(r1.schedule.placements(), r2.schedule.placements());
}

// --- Window slicing ------------------------------------------------------------

SwfTrace long_trace() {
  SwfTrace t;
  for (int i = 0; i < 100; ++i) {
    SwfJob j;
    j.job_id = i + 1;
    j.submit = i * 10;
    j.run_time = 5;
    j.processors = 1;
    j.user = i % 7;
    t.jobs.push_back(j);
  }
  return t;
}

TEST(Window, SliceSelectsAndRebases) {
  const SwfTrace t = long_trace();
  const SwfTrace w = slice_window(t, 200, 100);
  // Jobs with submit in [200, 300): submits 200, 210, ..., 290.
  ASSERT_EQ(w.jobs.size(), 10u);
  EXPECT_EQ(w.jobs.front().submit, 0);
  EXPECT_EQ(w.jobs.back().submit, 90);
  EXPECT_EQ(w.jobs.front().job_id, 21);
}

TEST(Window, SliceBoundsChecked) {
  const SwfTrace t = long_trace();
  EXPECT_THROW(slice_window(t, -1, 10), std::invalid_argument);
  EXPECT_THROW(slice_window(t, 0, 0), std::invalid_argument);
}

TEST(Window, SlicePastEndIsEmpty) {
  const SwfTrace t = long_trace();
  EXPECT_TRUE(slice_window(t, 5000, 100).jobs.empty());
}

TEST(Window, RandomWindowsDeterministicAndSized) {
  const SwfTrace t = long_trace();
  const auto w1 = random_windows(t, 100, 5, 3);
  const auto w2 = random_windows(t, 100, 5, 3);
  ASSERT_EQ(w1.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w1[i].jobs.size(), w2[i].jobs.size());
    for (const SwfJob& j : w1[i].jobs) {
      EXPECT_GE(j.submit, 0);
      EXPECT_LT(j.submit, 100);
    }
  }
}

TEST(Window, ShortTraceWindowsStartAtZero) {
  SwfTrace t;
  SwfJob j;
  j.job_id = 1;
  j.submit = 3;
  j.run_time = 2;
  j.processors = 1;
  j.user = 0;
  t.jobs.push_back(j);
  const auto ws = random_windows(t, 1000, 3, 1);
  for (const auto& w : ws) {
    ASSERT_EQ(w.jobs.size(), 1u);
    EXPECT_EQ(w.jobs[0].submit, 3);
  }
}

}  // namespace
}  // namespace fairsched
