// Tests for the related-machines extension (src/related): correctness of
// the time-stepped simulation, equivalence with the event engine on unit
// speeds, and the breakdown of the 3/4 utilization bound.

#include "related/related.h"

#include <gtest/gtest.h>

#include "sched/fcfs.h"
#include "sim/engine.h"

namespace fairsched {
namespace {

using related::RelatedEngine;
using related::SpeedPick;

Instance small_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 1);
  b.add_job(a, 0, 6);
  b.add_job(a, 2, 3);
  b.add_job(c, 1, 4);
  return std::move(b).build();
}

TEST(Related, UnitSpeedsMatchEventEngine) {
  // With all speeds 1, FirstFree machine picking and the FCFS rule, the
  // time-stepped related engine must replay the event engine exactly:
  // same start times, same utilities at every horizon.
  const Instance inst = small_instance();
  for (Time horizon : {3, 5, 9, 20}) {
    RelatedEngine rel(inst, {1, 1}, SpeedPick::kFirstFree);
    rel.run(related::fcfs_selector(), horizon);

    Engine ev(inst);
    FcfsPolicy fcfs;
    ev.run(fcfs, horizon);

    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_EQ(rel.psi2(u), ev.psi2(u)) << "horizon=" << horizon;
      EXPECT_EQ(rel.work_done(u), ev.work_done(u)) << "horizon=" << horizon;
    }
  }
}

TEST(Related, FastMachineHalvesCompletionTime) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 0, 10);
  const Instance inst = std::move(b).build();
  RelatedEngine rel(inst, {2}, SpeedPick::kFirstFree);
  rel.run(related::fcfs_selector(), 100);
  // 10 units at speed 2: 5 steps, all work done.
  EXPECT_EQ(rel.work_done(a), 10);
  EXPECT_EQ(rel.start_of(a, 0), 0);
  // psi2: units executed 2 per slot over slots 0..4; at t=100 each unit at
  // slot i is worth 2*(100 - i): sum = 2 * (2*(100+99+98+97+96)).
  EXPECT_EQ(rel.psi2(a), 2 * 2 * (100 + 99 + 98 + 97 + 96));
}

TEST(Related, PartialFinalStepCountsOnlyRemainingUnits) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 0, 5);
  const Instance inst = std::move(b).build();
  RelatedEngine rel(inst, {3}, SpeedPick::kFirstFree);
  rel.run(related::fcfs_selector(), 10);
  // Slot 0: 3 units; slot 1: 2 units (machine occupied, partial work).
  EXPECT_EQ(rel.work_done(a), 5);
  // 3 units in slot 0 worth (10-0) each, 2 units in slot 1 worth (10-1).
  EXPECT_EQ(rel.psi2(a), 2 * (3 * 10 + 2 * 9));
}

TEST(Related, SpeedPickPolicies) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 3);
  b.add_job(a, 0, 12);
  const Instance inst = std::move(b).build();

  RelatedEngine fastest(inst, {1, 4, 2}, SpeedPick::kFastestFree);
  fastest.run(related::fcfs_selector(), 100);
  EXPECT_EQ(fastest.work_done(a), 12);

  RelatedEngine slowest(inst, {1, 4, 2}, SpeedPick::kSlowestFree);
  slowest.run(related::fcfs_selector(), 4);
  // Slowest-free places the job on the speed-1 machine: 4 units by t=4.
  EXPECT_EQ(slowest.work_done(a), 4);

  RelatedEngine first(inst, {1, 4, 2}, SpeedPick::kFirstFree);
  first.run(related::fcfs_selector(), 4);
  EXPECT_EQ(first.work_done(a), 4);  // machine 0 has speed 1
}

TEST(Related, GreedyUtilizationBoundBreaksOnRelatedMachines) {
  // The paper's open question (Section 6): with related machines the
  // machine choice matters and the 3/4 bound fails. One fast (speed 8) and
  // one slow (speed 1) machine; a single long job. Slowest-first greedy is
  // 8x slower on the long job, so at the right horizon its utilization
  // ratio against fastest-first drops far below 3/4.
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 2);
  b.add_job(a, 0, 80);
  const Instance inst = std::move(b).build();
  const Time horizon = 12;

  RelatedEngine good(inst, {8, 1}, SpeedPick::kFastestFree);
  good.run(related::fcfs_selector(), horizon);
  RelatedEngine bad(inst, {8, 1}, SpeedPick::kSlowestFree);
  bad.run(related::fcfs_selector(), horizon);

  // Fastest: 80 units done by t=10. Slowest: 12 units by t=12.
  EXPECT_EQ(good.total_work_done(), 80);
  EXPECT_EQ(bad.total_work_done(), 12);
  const double ratio = bad.utilization() / good.utilization();
  EXPECT_LT(ratio, 0.25);  // far below the identical-machine 3/4 bound
}

TEST(Related, GreedySchedulesWaitingJobsImmediately) {
  const Instance inst = small_instance();
  RelatedEngine rel(inst, {1, 1}, SpeedPick::kFirstFree);
  rel.run(related::fcfs_selector(), 30);
  // a's first job at 0; c's at 1 on the second machine; a's second job
  // waits until a machine frees (c finishes at 5).
  EXPECT_EQ(rel.start_of(0, 0), 0);
  EXPECT_EQ(rel.start_of(1, 0), 1);
  EXPECT_EQ(rel.start_of(0, 1), 5);
}

TEST(Related, SelectorsRoundRobinAndPriority) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  const OrgId c = b.add_org("c", 0);
  for (int i = 0; i < 3; ++i) {
    b.add_job(a, 0, 2);
    b.add_job(c, 0, 2);
  }
  const Instance inst = std::move(b).build();

  RelatedEngine rr(inst, {1}, SpeedPick::kFirstFree);
  rr.run(related::round_robin_selector(), 20);
  // Alternating a, c, a, c, a, c on the single machine.
  EXPECT_EQ(rr.start_of(a, 0), 0);
  EXPECT_EQ(rr.start_of(c, 0), 2);
  EXPECT_EQ(rr.start_of(a, 1), 4);

  RelatedEngine prio(inst, {1}, SpeedPick::kFirstFree);
  prio.run(related::priority_selector(c), 20);
  EXPECT_EQ(prio.start_of(c, 0), 0);
  EXPECT_EQ(prio.start_of(c, 1), 2);
  EXPECT_EQ(prio.start_of(c, 2), 4);
  EXPECT_EQ(prio.start_of(a, 0), 6);
}

TEST(Related, IdleGapFastForwardKeepsPsiExact) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 0, 2);
  b.add_job(a, 1000, 2);
  const Instance inst = std::move(b).build();
  RelatedEngine rel(inst, {1}, SpeedPick::kFirstFree);
  rel.run(related::fcfs_selector(), 2000);
  // First job: slots 0,1. Second: slots 1000,1001.
  const HalfUtil expected = 2 * ((2000 - 0) + (2000 - 1) + (2000 - 1000) +
                                 (2000 - 1001));
  EXPECT_EQ(rel.psi2(a), expected);
}

TEST(Related, RandomInstancesMatchEventEngineAtUnitSpeeds) {
  // Property sweep: on arbitrary workloads with all speeds 1, the
  // time-stepped related engine and the event-driven engine are the same
  // machine (same schedule, exact same utilities).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    InstanceBuilder b;
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(seed % 3);
    std::uint32_t machines = 0;
    for (std::uint32_t u = 0; u < k; ++u) {
      const std::uint32_t m =
          1 + static_cast<std::uint32_t>(rng.uniform_u64(2));
      machines += m;
      b.add_org("o", m);
    }
    const std::size_t jobs = 8 + rng.uniform_u64(25);
    for (std::size_t j = 0; j < jobs; ++j) {
      b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
                static_cast<Time>(rng.uniform_u64(30)),
                1 + static_cast<Time>(rng.uniform_u64(12)));
    }
    const Instance inst = std::move(b).build();
    const Time horizon = 20 + static_cast<Time>(rng.uniform_u64(60));

    RelatedEngine rel(inst, std::vector<std::uint32_t>(machines, 1),
                      SpeedPick::kFirstFree);
    rel.run(related::fcfs_selector(), horizon);
    Engine ev(inst);
    FcfsPolicy fcfs;
    ev.run(fcfs, horizon);
    for (OrgId u = 0; u < inst.num_orgs(); ++u) {
      EXPECT_EQ(rel.psi2(u), ev.psi2(u)) << "seed=" << seed << " u=" << u;
      EXPECT_EQ(rel.work_done(u), ev.work_done(u))
          << "seed=" << seed << " u=" << u;
    }
  }
}

TEST(Related, InvalidConstruction) {
  const Instance inst = small_instance();
  EXPECT_THROW(RelatedEngine(inst, {1}, SpeedPick::kFirstFree),
               std::invalid_argument);
  EXPECT_THROW(RelatedEngine(inst, {1, 0}, SpeedPick::kFirstFree),
               std::invalid_argument);
}

TEST(Related, RunTwiceThrows) {
  const Instance inst = small_instance();
  RelatedEngine rel(inst, {1, 1}, SpeedPick::kFirstFree);
  rel.run(related::fcfs_selector(), 5);
  EXPECT_THROW(rel.run(related::fcfs_selector(), 10), std::logic_error);
}

}  // namespace
}  // namespace fairsched
