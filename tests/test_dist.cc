// Tests for the distributed dispatch layer (src/dist): the wire
// protocol's round trips and version handshake (v1 one-shot and v2
// session frames, including truncation/skew fuzzing of the incremental
// frame scanner), run_worker_process against real subprocesses, and —
// through a seeded FlakyTransport that drops, delays and corrupts
// artifacts — the dispatcher's convergence guarantee: every failure
// schedule that leaves any worker alive folds to the byte-identical
// merged result of a single-host whole run, and a corrupt artifact is
// quarantined, never folded. Speculative straggler re-execution is
// driven through latched transports (benign duplicate-loss keeps the
// bytes; a divergent duplicate quarantines both artifacts and aborts),
// and PersistentTransport runs end-to-end against the real fairsched_exp
// binary (FAIRSCHED_EXP_BINARY). Also pins the `dispatch --dry-run`
// assignment plan to tests/golden/dispatch_dry_run.json (regenerate with
// FAIRSCHED_UPDATE_GOLDEN=1).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/dispatch_log.h"
#include "dist/dispatcher.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/executor.h"
#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/scenarios.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"
#include "util/cli.h"

namespace fairsched::dist {
namespace {

using exp::build_sweep_plan;
using exp::CsvReporter;
using exp::MergedSweep;
using exp::PolicyRegistry;
using exp::SweepPlan;
using exp::SweepResult;
using exp::SweepShard;
using exp::SweepSpec;
using exp::SweepWorkload;
using exp::ThreadPoolExecutor;

// --- protocol ---------------------------------------------------------------

DispatchRequest sample_request() {
  DispatchRequest request;
  request.fingerprint = 0x0123456789abcdefull;
  request.shard = 2;
  request.shard_count = 5;
  request.threads = 3;
  request.args = {"custom", "--policies=fairshare, roundrobin",
                  "--workload=unit-jobs", "--seed=7"};
  request.config_name = "sweep.config";
  request.config_content = "[sweep]\nname = x\n# with\nblank\n\nlines\n";
  return request;
}

TEST(DispatchProtocol, RequestRoundTripsArgsWithSpacesAndConfigBytes) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const DispatchRequest back = read_dispatch_request(wire);
  EXPECT_EQ(back.fingerprint, request.fingerprint);
  EXPECT_EQ(back.shard, request.shard);
  EXPECT_EQ(back.shard_count, request.shard_count);
  EXPECT_EQ(back.threads, request.threads);
  EXPECT_EQ(back.args, request.args);
  EXPECT_EQ(back.config_name, request.config_name);
  EXPECT_EQ(back.config_content, request.config_content);
}

TEST(DispatchProtocol, RequestWithoutConfigRoundTrips) {
  DispatchRequest request = sample_request();
  request.config_name.clear();
  request.config_content.clear();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const DispatchRequest back = read_dispatch_request(wire);
  EXPECT_EQ(back.args, request.args);
  EXPECT_TRUE(back.config_name.empty());
  EXPECT_TRUE(back.config_content.empty());
}

TEST(DispatchProtocol, RequestRejectsNewlinesInArgs) {
  DispatchRequest request = sample_request();
  request.args.push_back("evil\narg");
  std::stringstream wire;
  EXPECT_THROW(write_dispatch_request(wire, request),
               std::invalid_argument);
}

TEST(DispatchProtocol, VersionSkewNamesBothVersions) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  std::string text = wire.str();
  // Rewrite the handshake's version number to a future one.
  const std::string handshake = "fairsched-dispatch-request " +
                                std::to_string(kDispatchProtocolVersion);
  ASSERT_EQ(text.find(handshake), 0u) << text;
  text.replace(0, handshake.size(), "fairsched-dispatch-request 999");
  std::istringstream skewed(text);
  try {
    read_dispatch_request(skewed);
    FAIL() << "expected a version-skew error";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v999"), std::string::npos) << what;
    EXPECT_NE(
        what.find("v" + std::to_string(kDispatchProtocolVersion)),
        std::string::npos)
        << what;
    EXPECT_NE(what.find("matching fairsched_exp builds"),
              std::string::npos)
        << what;
  }
}

TEST(DispatchProtocol, TruncatedRequestNamesWhatWasExpected) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const std::string text = wire.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  try {
    read_dispatch_request(truncated);
    FAIL() << "expected a truncation error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stream ended"),
              std::string::npos)
        << e.what();
  }
}

TEST(DispatchProtocol, ArtifactFrameRoundTripsAnyBytes) {
  const std::string payload = "{\"cells\": [1, 2]}\nline two\n";
  std::ostringstream wire;
  write_artifact_frame(wire, 3, 7, payload);
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.shard, 3u);
  EXPECT_EQ(frame.shard_count, 7u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(DispatchProtocol, ArtifactParserSkipsBannerNoiseBeforeTheFrame) {
  // Real ssh configurations print MOTD banners on stdout; the frame
  // parser must find the magic line wherever it starts.
  std::ostringstream wire;
  wire << "Welcome to hostA!\nLast login: yesterday\n";
  write_artifact_frame(wire, 0, 2, "payload-bytes");
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.shard, 0u);
  EXPECT_EQ(frame.payload, "payload-bytes");
}

TEST(DispatchProtocol, GarbageWithoutAFrameNamesTheSource) {
  try {
    parse_artifact_frame("no frame here at all\n", "worker `w3`");
    FAIL() << "expected a parse error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("worker `w3`"),
              std::string::npos)
        << e.what();
  }
}

// --- protocol v2: session frames --------------------------------------------

TEST(SessionProtocol, HelloRoundTripsTheWorkerThreadCount) {
  std::stringstream wire;
  write_session_hello(wire, SessionHello{7});
  EXPECT_EQ(read_session_hello(wire).threads, 7u);
}

TEST(SessionProtocol, HelloRejectsVersionSkewAndGarbage) {
  std::istringstream skewed("fairsched-session-hello 999\nthreads 4\nend\n");
  EXPECT_THROW(read_session_hello(skewed), std::invalid_argument);
  std::istringstream garbage("not a hello\n");
  EXPECT_THROW(read_session_hello(garbage), std::invalid_argument);
}

TEST(SessionProtocol, GoodbyeThenEofEndASessionCleanly) {
  std::stringstream wire;
  write_session_goodbye(wire);
  DispatchRequest request;
  EXPECT_EQ(read_session_command(wire, &request), SessionCommand::kGoodbye);
  EXPECT_EQ(read_session_command(wire, &request), SessionCommand::kEof);
}

TEST(SessionProtocol, RequestFramesKeepTheV1FormatOnSessions) {
  // The v1-fallback seam: session request frames are byte-for-byte v1
  // dispatch requests, so a skewed v1 worker still parses the first one.
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  DispatchRequest back;
  EXPECT_EQ(read_session_command(wire, &back), SessionCommand::kRequest);
  EXPECT_EQ(back.fingerprint, request.fingerprint);
  EXPECT_EQ(back.shard, request.shard);
  EXPECT_EQ(back.args, request.args);
  EXPECT_EQ(back.config_content, request.config_content);
}

TEST(SessionProtocol, SessionArtifactFrameRoundTripsTheStatFooter) {
  const std::string payload = "{\"cells\": [1]}\nend\nnot a frame end\n";
  std::ostringstream wire;
  write_session_artifact_frame(wire, 1, 4, payload,
                               {{"cache_hits", 30}, {"replayed", 0}});
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.version, kSessionProtocolVersion);
  EXPECT_EQ(frame.shard, 1u);
  EXPECT_EQ(frame.shard_count, 4u);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_EQ(frame.stats.size(), 2u);
  EXPECT_EQ(frame.stats[0].first, "cache_hits");
  EXPECT_EQ(frame.stats[0].second, 30u);
  EXPECT_EQ(frame.stats[1].first, "replayed");
  EXPECT_EQ(frame.stats[1].second, 0u);
}

TEST(SessionProtocol, V1ArtifactFramesParseWithEmptyStats) {
  std::ostringstream wire;
  write_artifact_frame(wire, 0, 2, "payload");
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.version, kDispatchProtocolVersion);
  EXPECT_TRUE(frame.stats.empty());
}

TEST(SessionProtocol, StatNamesMustBeSingleTokens) {
  std::ostringstream wire;
  EXPECT_THROW(
      write_session_artifact_frame(wire, 0, 1, "p", {{"two words", 1}}),
      std::invalid_argument);
}

TEST(SessionProtocol, ScannerDelimitsFramesAtExactByteBoundaries) {
  // A hello followed by two artifact frames; the second payload embeds
  // `end` lines and a fake handshake, which the by-size payload skip
  // must never mistake for framing. Feeding every prefix length checks
  // the scanner never claims a frame early and completes it on exactly
  // the frame's last byte.
  std::ostringstream hello_s;
  write_session_hello(hello_s, SessionHello{3});
  std::ostringstream art1_s;
  write_session_artifact_frame(art1_s, 0, 2, "plain", {{"cache_hits", 1}});
  std::ostringstream art2_s;
  write_session_artifact_frame(
      art2_s, 1, 2, "end\nfairsched-session-hello 2\npayload 3\nend\n", {});
  const std::string hello = hello_s.str();
  const std::string all = hello + art1_s.str() + art2_s.str();
  const std::size_t b1 = hello.size();
  const std::size_t b2 = b1 + art1_s.str().size();
  const std::size_t b3 = b2 + art2_s.str().size();

  for (std::size_t len = 0; len <= all.size(); ++len) {
    const std::string buffer = all.substr(0, len);
    std::size_t extent = 0;
    EXPECT_EQ(scan_session_frame(buffer, 0, &extent), len >= b1)
        << "prefix " << len;
    if (len >= b1) {
      EXPECT_EQ(extent, b1);
      EXPECT_EQ(scan_session_frame(buffer, b1, &extent), len >= b2)
          << "prefix " << len;
    }
    if (len >= b2) {
      EXPECT_EQ(extent, b2);
      EXPECT_EQ(scan_session_frame(buffer, b2, &extent), len >= b3)
          << "prefix " << len;
    }
    if (len >= b3) {
      EXPECT_EQ(extent, b3);
    }
  }
}

TEST(SessionProtocol, TruncationFuzzNeverMisparsesAFrame) {
  std::ostringstream wire;
  write_session_artifact_frame(wire, 2, 5, "abc\nend\n", {{"replayed", 9}});
  const std::string text = wire.str();
  // Every strict prefix must fail loudly — never return a frame. The
  // newline after the `end` line is cosmetic (getline accepts an
  // unterminated final line), so the fuzz stops one byte short of it.
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_THROW(parse_artifact_frame(text.substr(0, len), "fuzz"),
                 std::invalid_argument)
        << "prefix length " << len;
  }
  EXPECT_EQ(parse_artifact_frame(text, "fuzz").payload, "abc\nend\n");
}

TEST(SessionProtocol, UnknownArtifactVersionFailsNamingIt) {
  std::ostringstream wire;
  write_artifact_frame(wire, 0, 1, "p");
  std::string text = wire.str();
  const std::string handshake = "fairsched-shard-artifact 1";
  ASSERT_EQ(text.find(handshake), 0u) << text;
  text.replace(0, handshake.size(), "fairsched-shard-artifact 3");
  try {
    parse_artifact_frame(text, "skew");
    FAIL() << "expected a version-skew error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("v3"), std::string::npos)
        << e.what();
  }
}

// --- run_worker_process -----------------------------------------------------

TEST(RunWorkerProcess, TimeoutKillsTheWorkerAndSaysSo) {
  const auto outcome =
      run_worker_process({"/bin/sh", "-c", "sleep 30"}, sample_request(),
                         std::chrono::milliseconds(200));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kTimeout);
  EXPECT_NE(outcome.detail.find("200ms shard timeout"),
            std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, NonzeroExitIsAFailedAttemptWithTheExitCode) {
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c", "cat > /dev/null; exit 3"}, sample_request(),
      std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("exit code 3"), std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, MissingBinaryFailsWithExitCode127) {
  const auto outcome =
      run_worker_process({"/no/such/fairsched-binary"}, sample_request(),
                         std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("exit code 127"), std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, WorkerClosingStdinEarlyStillDelivers) {
  // A worker may legitimately exit without draining its stdin; the
  // half-written request must not wedge or crash the dispatcher side.
  std::ostringstream frame;
  write_artifact_frame(frame, 2, 5, "ok");
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c",
       "exec 0<&-; printf '" + frame.str() + "'"},
      sample_request(), std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kArtifact)
      << outcome.detail;
  EXPECT_EQ(outcome.payload, "ok");
}

TEST(RunWorkerProcess, FrameForTheWrongShardIsRejected) {
  std::ostringstream frame;
  write_artifact_frame(frame, 1, 5, "ok");  // request asks for shard 2
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c", "cat > /dev/null; printf '" + frame.str() + "'"},
      sample_request(), std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("asked for 2/5"), std::string::npos)
      << outcome.detail;
}

// --- dispatcher with a seeded flaky transport -------------------------------

SweepSpec dist_sweep() {
  SweepSpec spec;
  spec.name = "dist-test";
  spec.policies = {"roundrobin", "fairshare"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  w.orgs = 3;
  w.unit_jobs_per_org = 20;
  spec.workloads.push_back(w);
  spec.instances = 4;
  spec.seed = 42;
  spec.horizon = 60;
  spec.baseline = "ref";
  spec.threads = 1;
  return spec;
}

// The shard artifact a correct worker would return, computed in-process.
std::string compute_artifact(const SweepSpec& spec,
                             const DispatchRequest& request) {
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(),
                       SweepShard{request.shard, request.shard_count});
  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);
  std::ostringstream out;
  exp::write_shard_artifact(out, plan, result);
  return out.str();
}

// What one scripted attempt does before (maybe) producing the artifact.
enum class Fault { kOk, kFail, kTimeout, kCorrupt, kThrow };

// A WorkerTransport that computes real artifacts in-process and injects
// faults from a fixed per-worker script (one entry per attempt, kOk once
// the script is exhausted). Deterministic by construction: no clocks, no
// randomness — the schedule IS the seed.
class FlakyTransport final : public WorkerTransport {
 public:
  FlakyTransport(std::string name, SweepSpec spec,
                 std::vector<Fault> script)
      : name_(std::move(name)),
        spec_(std::move(spec)),
        script_(std::move(script)) {}

  const std::string& name() const override { return name_; }

  std::size_t attempts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return attempt_;
  }

  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override {
    Fault fault = Fault::kOk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (attempt_ < script_.size()) fault = script_[attempt_];
      ++attempt_;
    }
    switch (fault) {
      case Fault::kFail:
        return Outcome{Outcome::Status::kFailed, "",
                       name_ + ": injected failure"};
      case Fault::kTimeout:
        return Outcome{Outcome::Status::kTimeout, "",
                       name_ + ": injected timeout after " +
                           std::to_string(timeout.count()) + "ms"};
      case Fault::kCorrupt:
        // A truncated artifact: parses as neither JSON nor a frame.
        return Outcome{Outcome::Status::kArtifact,
                       compute_artifact(spec_, request).substr(0, 40),
                       ""};
      case Fault::kThrow:
        throw std::runtime_error(name_ + ": transport broke");
      case Fault::kOk:
        break;
    }
    return Outcome{Outcome::Status::kArtifact,
                   compute_artifact(spec_, request), ""};
  }

 private:
  std::string name_;
  SweepSpec spec_;
  std::vector<Fault> script_;
  mutable std::mutex mu_;
  std::size_t attempt_ = 0;
};

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("fairsched-dist-test-" + tag + "-" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string csv_of(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream out;
  CsvReporter csv(out);
  csv.report(spec, result);
  return out.str();
}

std::string whole_run_csv(const SweepSpec& spec) {
  const SweepPlan plan = build_sweep_plan(spec);
  ThreadPoolExecutor executor;
  return csv_of(spec, executor.execute(plan));
}

// Runs a dispatch over the given per-worker fault scripts and returns
// the merged result's CSV (asserting convergence on the way).
std::string dispatch_csv(const SweepSpec& spec, std::size_t shard_count,
                         std::vector<std::vector<Fault>> scripts,
                         const std::string& tag,
                         DispatchOptions* options_out = nullptr,
                         DispatchStats* stats_out = nullptr,
                         std::string* log_out = nullptr) {
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  for (std::size_t w = 0; w < scripts.size(); ++w) {
    workers.push_back(std::make_unique<FlakyTransport>(
        "flaky#" + std::to_string(w), spec, std::move(scripts[w])));
  }
  TempDir dir(tag);
  DispatchOptions options;
  options.shard_count = shard_count;
  options.max_attempts = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.backoff_cap = std::chrono::milliseconds(2);
  options.artifact_dir = dir.path.string();
  if (options_out) options = *options_out;
  if (options_out) options.artifact_dir = dir.path.string();

  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"unused-by-flaky-transport"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, request);
  if (stats_out) *stats_out = dispatcher.stats();
  if (log_out) *log_out = log_stream.str();
  return csv_of(merged.spec, merged.result);
}

TEST(Dispatcher, CleanRunMatchesTheWholeRunByteForByte) {
  const SweepSpec spec = dist_sweep();
  const std::string whole = whole_run_csv(spec);
  EXPECT_EQ(dispatch_csv(spec, 4, {{}, {}, {}}, "clean"), whole);
  // Any shard count folds to the same bytes.
  EXPECT_EQ(dispatch_csv(spec, 1, {{}}, "clean1"), whole);
  EXPECT_EQ(dispatch_csv(spec, 6, {{}, {}}, "clean6"), whole);
}

TEST(Dispatcher, EveryFailureScheduleConvergesToIdenticalBytes) {
  const SweepSpec spec = dist_sweep();
  const std::string whole = whole_run_csv(spec);
  const std::vector<std::vector<std::vector<Fault>>> schedules = {
      // one flaky worker, one healthy
      {{Fault::kFail, Fault::kFail}, {}},
      // a timeout and a failure landing on different workers
      {{Fault::kTimeout}, {Fault::kFail, Fault::kTimeout}},
      // corrupt artifacts force quarantines before converging
      {{Fault::kCorrupt}, {Fault::kCorrupt, Fault::kFail}},
      // one worker's transport dies entirely; the other absorbs its work
      {{Fault::kThrow}, {Fault::kFail}},
      // everything bad once, everywhere
      {{Fault::kCorrupt, Fault::kTimeout},
       {Fault::kFail, Fault::kCorrupt},
       {Fault::kTimeout}},
  };
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    DispatchStats stats;
    EXPECT_EQ(dispatch_csv(spec, 5, schedules[i],
                           "schedule" + std::to_string(i), nullptr,
                           &stats),
              whole)
        << "failure schedule " << i;
    EXPECT_GT(stats.failed_attempts, 0u) << "failure schedule " << i;
  }
}

TEST(Dispatcher, CorruptArtifactsAreQuarantinedNeverFolded) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec,
      std::vector<Fault>{Fault::kCorrupt, Fault::kCorrupt}));
  TempDir dir("quarantine");
  DispatchOptions options;
  options.shard_count = 2;
  options.max_attempts = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(dispatcher.stats().quarantined, 2u);
  // The corrupt payloads are preserved next to the artifacts for
  // post-mortems, under names the merge scan will never pick up.
  std::size_t quarantine_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".quarantined-") != std::string::npos) {
      ++quarantine_files;
    }
  }
  EXPECT_EQ(quarantine_files, 2u);
  EXPECT_NE(log_stream.str().find("\"event\":\"quarantine\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, ExhaustedAttemptsGiveUpWithAClearError) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec,
      std::vector<Fault>(10, Fault::kFail)));
  TempDir dir("giveup");
  DispatchOptions options;
  options.shard_count = 1;
  options.max_attempts = 3;
  options.backoff = std::chrono::milliseconds(1);
  options.max_worker_failures = 10;  // the shard gives up first
  options.artifact_dir = dir.path.string();
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  try {
    dispatcher.run(plan, request);
    FAIL() << "expected the dispatch to give up";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dispatch failed"),
              std::string::npos)
        << e.what();
  }
  EXPECT_NE(log_stream.str().find("\"event\":\"give-up\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, AllWorkersRetiringAbortsInsteadOfHanging) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec, std::vector<Fault>{Fault::kThrow}));
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#1", spec, std::vector<Fault>{Fault::kThrow}));
  TempDir dir("retire");
  DispatchOptions options;
  options.shard_count = 3;
  options.max_attempts = 10;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options);
  EXPECT_THROW(dispatcher.run(plan, request), std::runtime_error);
  EXPECT_EQ(dispatcher.stats().retired_workers, 2u);
}

TEST(Dispatcher, ResumeRerunsOnlyMissingOrCorruptShards) {
  const SweepSpec spec = dist_sweep();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};

  TempDir dir("resume");
  DispatchOptions options;
  options.shard_count = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();

  {
    std::vector<std::unique_ptr<WorkerTransport>> workers;
    workers.push_back(
        std::make_unique<FlakyTransport>("first#0", spec,
                                         std::vector<Fault>{}));
    Dispatcher first(std::move(workers), options);
    first.run(plan, request);
    EXPECT_EQ(first.stats().attempts, 4u);
  }

  // Simulate a killed run: one artifact missing, one corrupted on disk.
  std::filesystem::remove(dir.path / shard_artifact_filename(1, 4));
  {
    std::ofstream corrupt(dir.path / shard_artifact_filename(2, 4),
                          std::ios::trunc);
    corrupt << "{ half-written";
  }

  auto second_transport =
      std::make_unique<FlakyTransport>("second#0", spec,
                                       std::vector<Fault>{});
  FlakyTransport* counter = second_transport.get();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::move(second_transport));
  options.resume = true;
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  Dispatcher second(std::move(workers), options, &log);
  const MergedSweep merged = second.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(counter->attempts(), 2u)
      << "resume must only re-run the missing and the corrupt shard";
  EXPECT_EQ(second.stats().resumed, 2u);
  EXPECT_EQ(second.stats().quarantined, 1u);  // the half-written file
  EXPECT_NE(log_stream.str().find("\"event\":\"resume-reuse\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, ResumeRejectsArtifactsFromADifferentSweep) {
  const SweepSpec spec = dist_sweep();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};

  // A valid artifact — for a *different* sweep (other seed).
  SweepSpec other = spec;
  other.seed = 43;
  DispatchRequest other_request;
  other_request.shard = 0;
  other_request.shard_count = 2;
  const std::string alien = compute_artifact(other, other_request);

  TempDir dir("resume-alien");
  {
    std::ofstream out(dir.path / shard_artifact_filename(0, 2));
    out << alien;
  }
  DispatchOptions options;
  options.shard_count = 2;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  options.resume = true;
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "w#0", spec, std::vector<Fault>{}));
  Dispatcher dispatcher(std::move(workers), options);
  const MergedSweep merged = dispatcher.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(dispatcher.stats().resumed, 0u);
  EXPECT_EQ(dispatcher.stats().quarantined, 1u);
}

// --- speculative straggler re-execution -------------------------------------

// Coordination between the two transports of a speculation test: the
// paced worker's first attempt does not complete until the straggler
// holds a shard (so the queue drains with the straggler still running),
// and the straggler does not return until its duplicate's win cancels
// it. The 60s caps only keep a buggy dispatcher from wedging the suite.
struct SpeculationLatch {
  std::mutex mu;
  std::condition_variable cv;
  bool straggler_claimed = false;
  bool straggler_released = false;
};

// Blocks its (single) attempt until cancel_inflight — the dispatcher
// canceling the losing duplicate — then returns its artifact: tampered,
// when asked, to break the determinism digest.
class StragglerTransport final : public WorkerTransport {
 public:
  StragglerTransport(std::string name, SweepSpec spec,
                     SpeculationLatch* latch, bool tamper)
      : name_(std::move(name)),
        spec_(std::move(spec)),
        latch_(latch),
        tamper_(tamper) {}

  const std::string& name() const override { return name_; }

  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds) override {
    std::string payload = compute_artifact(spec_, request);
    std::unique_lock<std::mutex> lock(latch_->mu);
    latch_->straggler_claimed = true;
    latch_->cv.notify_all();
    latch_->cv.wait_for(lock, std::chrono::seconds(60),
                        [&] { return latch_->straggler_released; });
    if (tamper_) {
      // Bump the first work_done value: still a valid artifact for the
      // right plan and shard, but a different determinism digest.
      const std::string key = "\"work_done\": ";
      const std::size_t pos = payload.find(key);
      EXPECT_NE(pos, std::string::npos) << payload.substr(0, 200);
      char& digit = payload[pos + key.size()];
      digit = digit == '9' ? '8' : digit + 1;
    }
    return Outcome{Outcome::Status::kArtifact, payload, ""};
  }

  void cancel_inflight() override {
    std::lock_guard<std::mutex> lock(latch_->mu);
    latch_->straggler_released = true;
    latch_->cv.notify_all();
  }

 private:
  std::string name_;
  SweepSpec spec_;
  SpeculationLatch* latch_;
  bool tamper_;
};

// Computes real artifacts, but its first return waits for the straggler
// to hold a shard — so the claim race can never leave the straggler
// without one.
class PacedTransport final : public WorkerTransport {
 public:
  PacedTransport(std::string name, SweepSpec spec, SpeculationLatch* latch)
      : name_(std::move(name)), spec_(std::move(spec)), latch_(latch) {}

  const std::string& name() const override { return name_; }

  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds) override {
    std::string payload = compute_artifact(spec_, request);
    std::unique_lock<std::mutex> lock(latch_->mu);
    latch_->cv.wait_for(lock, std::chrono::seconds(60),
                        [&] { return latch_->straggler_claimed; });
    return Outcome{Outcome::Status::kArtifact, std::move(payload), ""};
  }

 private:
  std::string name_;
  SweepSpec spec_;
  SpeculationLatch* latch_;
};

struct SpeculationRun {
  DispatchStats stats;
  std::string log;
  std::string csv;    // empty when the dispatch aborted
  std::string error;  // the abort reason when it did
  std::vector<std::string> quarantine_files;
};

SpeculationRun run_speculative_dispatch(bool tamper, const std::string& tag) {
  // The orgs axis spreads cells over several families, so *both* shards
  // own cells — whichever one the straggler ends up duplicating has
  // digest-covered payload bytes for the tamper to touch.
  SweepSpec spec = dist_sweep();
  spec.axes.push_back(exp::make_axis("orgs", {3, 4, 5}));
  SpeculationLatch latch;
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(
      std::make_unique<PacedTransport>("paced#0", spec, &latch));
  workers.push_back(std::make_unique<StragglerTransport>(
      "straggler#1", spec, &latch, tamper));
  TempDir dir(tag);
  DispatchOptions options;
  options.shard_count = 2;
  options.max_attempts = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  options.speculate = true;
  // A tiny factor fires the duplicate as soon as the queue drains.
  options.speculate_factor = 1e-3;
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"unused-by-latched-transports"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  SpeculationRun run;
  try {
    const MergedSweep merged = dispatcher.run(plan, request);
    run.csv = csv_of(merged.spec, merged.result);
  } catch (const std::runtime_error& e) {
    run.error = e.what();
  }
  run.stats = dispatcher.stats();
  run.log = log_stream.str();
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".quarantined-") != std::string::npos) {
      run.quarantine_files.push_back(name);
    }
  }
  std::sort(run.quarantine_files.begin(), run.quarantine_files.end());
  return run;
}

TEST(Speculation, DuplicateLossKeepsBytesIdenticalToTheWholeRun) {
  const SpeculationRun run = run_speculative_dispatch(false, "spec-loss");
  SweepSpec spec = dist_sweep();
  spec.axes.push_back(exp::make_axis("orgs", {3, 4, 5}));
  EXPECT_EQ(run.error, "");
  EXPECT_EQ(run.csv, whole_run_csv(spec));
  EXPECT_EQ(run.stats.speculative, 1u);
  EXPECT_EQ(run.stats.duplicate_losses, 1u);
  EXPECT_EQ(run.stats.quarantined, 0u);
  EXPECT_TRUE(run.quarantine_files.empty());
  EXPECT_NE(run.log.find("\"event\":\"speculate\""), std::string::npos)
      << run.log;
  EXPECT_NE(run.log.find("\"event\":\"duplicate-loss\""), std::string::npos)
      << run.log;
}

TEST(Speculation, DivergentDuplicateQuarantinesBothArtifactsAndAborts) {
  const SpeculationRun run =
      run_speculative_dispatch(true, "spec-mismatch");
  EXPECT_NE(run.error.find("nondeterministic"), std::string::npos)
      << run.error;
  EXPECT_NE(run.error.find("determinism digest"), std::string::npos)
      << run.error;
  EXPECT_EQ(run.stats.speculative, 1u);
  EXPECT_EQ(run.stats.quarantined, 2u);
  ASSERT_EQ(run.quarantine_files.size(), 2u) << run.log;
  EXPECT_NE(run.quarantine_files[0].find(".quarantined-divergent"),
            std::string::npos)
      << run.quarantine_files[0];
  EXPECT_NE(run.quarantine_files[1].find(".quarantined-duplicate"),
            std::string::npos)
      << run.quarantine_files[1];
  EXPECT_NE(run.log.find("\"event\":\"duplicate-mismatch\""),
            std::string::npos)
      << run.log;
}

// --- PersistentTransport against the real binary -----------------------------

// The dispatch request whose args rebuild the sweep inside the worker
// binary, plus the matching locally built spec. Mirrors
// serve_dispatch_request's rebuild path (same Flags -> options -> spec
// pipeline), so the fingerprints agree by construction.
struct E2eSweep {
  SweepSpec spec;
  DispatchRequest request;
};

E2eSweep e2e_sweep() {
  const std::vector<std::string> args = {
      "custom",          "--policies=roundrobin,fairshare",
      "--workload=unit", "--orgs=3",
      "--jobs-per-org=20", "--instances=4",
      "--seed=42",         "--duration=60"};
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  const exp::ScenarioOptions options =
      exp::scenario_options_from_flags(flags);
  E2eSweep e2e;
  e2e.spec = exp::make_scenario_sweep("custom", options);
  e2e.spec.threads = 1;
  e2e.request.fingerprint = build_sweep_plan(e2e.spec).fingerprint;
  e2e.request.threads = 1;
  e2e.request.args = args;
  return e2e;
}

TEST(PersistentSession, ServesEveryShardOverOneWarmSession) {
  const E2eSweep e2e = e2e_sweep();
  const SweepPlan plan = build_sweep_plan(e2e.spec);
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  auto transport = std::make_unique<PersistentTransport>(
      "session#0",
      std::vector<std::string>{FAIRSCHED_EXP_BINARY, "shard-worker",
                               "--session"},
      std::vector<std::string>{FAIRSCHED_EXP_BINARY, "shard-worker"}, &log);
  const PersistentTransport* session = transport.get();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::move(transport));
  TempDir dir("session-e2e");
  DispatchOptions options;
  options.shard_count = 3;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, e2e.request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(e2e.spec));
  const PersistentTransport::SessionStats stats = session->session_stats();
  EXPECT_EQ(stats.opens, 1u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_EQ(stats.fallback, 0u);
  EXPECT_FALSE(stats.v1_peer);
  EXPECT_GT(session->hello_threads(), 0u);
  EXPECT_NE(session->summary().find("3 shard(s) over 1 session(s)"),
            std::string::npos)
      << session->summary();
  EXPECT_NE(log_stream.str().find("\"event\":\"session-reuse\""),
            std::string::npos)
      << log_stream.str();
}

TEST(PersistentSession, V1PeerFallsBackToSpawnPerAttempt) {
  const E2eSweep e2e = e2e_sweep();
  const SweepPlan plan = build_sweep_plan(e2e.spec);
  // A "skewed" peer: the same binary in one-shot v1 mode answers the
  // first request with a v1 artifact and no hello.
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  auto transport = std::make_unique<PersistentTransport>(
      "skewed#0",
      std::vector<std::string>{FAIRSCHED_EXP_BINARY, "shard-worker"},
      std::vector<std::string>{FAIRSCHED_EXP_BINARY, "shard-worker"}, &log);
  const PersistentTransport* session = transport.get();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::move(transport));
  TempDir dir("session-v1-fallback");
  DispatchOptions options;
  options.shard_count = 2;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, e2e.request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(e2e.spec));
  const PersistentTransport::SessionStats stats = session->session_stats();
  EXPECT_TRUE(stats.v1_peer);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.fallback, 2u);
  EXPECT_NE(session->summary().find("v1 peer"), std::string::npos)
      << session->summary();
  EXPECT_NE(log_stream.str().find("\"event\":\"session-v1-fallback\""),
            std::string::npos)
      << log_stream.str();
}

TEST(PersistentSession, TimeoutTearsDownAndRespawnsTheSession) {
  PersistentTransport transport("hang#0", {"/bin/sh", "-c", "sleep 30"},
                                {"/bin/true"});
  auto outcome =
      transport.run_shard(sample_request(), std::chrono::milliseconds(200));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kTimeout);
  EXPECT_NE(outcome.detail.find("session killed"), std::string::npos)
      << outcome.detail;
  EXPECT_EQ(transport.session_stats().opens, 1u);
  // The next attempt opens a fresh session instead of reusing the corpse.
  outcome =
      transport.run_shard(sample_request(), std::chrono::milliseconds(200));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kTimeout);
  EXPECT_EQ(transport.session_stats().opens, 2u);
}

TEST(PersistentSession, MidStreamDisconnectFailsTheAttemptOnly) {
  // The peer dies after a valid hello, mid-conversation: the attempt
  // fails with a session diagnostic; the hello was still recorded.
  PersistentTransport transport(
      "drop#0",
      {"/bin/sh", "-c",
       "printf 'fairsched-session-hello 2\\nthreads 4\\nend\\n'"},
      {"/bin/true"});
  const auto outcome =
      transport.run_shard(sample_request(), std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("session ended before an artifact frame"),
            std::string::npos)
      << outcome.detail;
  EXPECT_EQ(transport.hello_threads(), 4u);
  EXPECT_EQ(transport.session_stats().opens, 1u);
}

// --- dry-run golden ---------------------------------------------------------

TEST(DispatchDryRun, AssignmentPlanMatchesTheGoldenFile) {
  SweepSpec spec = dist_sweep();
  spec.axes.push_back(exp::make_axis("orgs", {3, 4, 5}));
  const SweepPlan plan = build_sweep_plan(spec);
  std::ostringstream out;
  write_dispatch_plan_json(out, plan, 4,
                           {"local#0", "local#1", "ssh:hostA#2"});

  const std::string path = std::string(FAIRSCHED_SOURCE_DIR) +
                           "/tests/golden/dispatch_dry_run.json";
  if (std::getenv("FAIRSCHED_UPDATE_GOLDEN")) {
    std::ofstream golden(path, std::ios::trunc | std::ios::binary);
    golden << out.str();
    GTEST_SKIP() << "updated " << path;
  }
  std::ifstream golden(path, std::ios::binary);
  ASSERT_TRUE(golden) << "missing golden file " << path
                      << " (regenerate with FAIRSCHED_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str())
      << "dispatch --dry-run output drifted; regenerate with "
         "FAIRSCHED_UPDATE_GOLDEN=1 if the change is intentional";
}

}  // namespace
}  // namespace fairsched::dist
