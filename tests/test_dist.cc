// Tests for the distributed dispatch layer (src/dist): the wire
// protocol's round trips and version handshake, run_worker_process
// against real subprocesses, and — through a seeded FlakyTransport that
// drops, delays and corrupts artifacts — the dispatcher's convergence
// guarantee: every failure schedule that leaves any worker alive folds
// to the byte-identical merged result of a single-host whole run, and a
// corrupt artifact is quarantined, never folded. Also pins the
// `dispatch --dry-run` assignment plan to tests/golden/
// dispatch_dry_run.json (regenerate with FAIRSCHED_UPDATE_GOLDEN=1).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/dispatch_log.h"
#include "dist/dispatcher.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/executor.h"
#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"

namespace fairsched::dist {
namespace {

using exp::build_sweep_plan;
using exp::CsvReporter;
using exp::MergedSweep;
using exp::PolicyRegistry;
using exp::SweepPlan;
using exp::SweepResult;
using exp::SweepShard;
using exp::SweepSpec;
using exp::SweepWorkload;
using exp::ThreadPoolExecutor;

// --- protocol ---------------------------------------------------------------

DispatchRequest sample_request() {
  DispatchRequest request;
  request.fingerprint = 0x0123456789abcdefull;
  request.shard = 2;
  request.shard_count = 5;
  request.threads = 3;
  request.args = {"custom", "--policies=fairshare, roundrobin",
                  "--workload=unit-jobs", "--seed=7"};
  request.config_name = "sweep.config";
  request.config_content = "[sweep]\nname = x\n# with\nblank\n\nlines\n";
  return request;
}

TEST(DispatchProtocol, RequestRoundTripsArgsWithSpacesAndConfigBytes) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const DispatchRequest back = read_dispatch_request(wire);
  EXPECT_EQ(back.fingerprint, request.fingerprint);
  EXPECT_EQ(back.shard, request.shard);
  EXPECT_EQ(back.shard_count, request.shard_count);
  EXPECT_EQ(back.threads, request.threads);
  EXPECT_EQ(back.args, request.args);
  EXPECT_EQ(back.config_name, request.config_name);
  EXPECT_EQ(back.config_content, request.config_content);
}

TEST(DispatchProtocol, RequestWithoutConfigRoundTrips) {
  DispatchRequest request = sample_request();
  request.config_name.clear();
  request.config_content.clear();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const DispatchRequest back = read_dispatch_request(wire);
  EXPECT_EQ(back.args, request.args);
  EXPECT_TRUE(back.config_name.empty());
  EXPECT_TRUE(back.config_content.empty());
}

TEST(DispatchProtocol, RequestRejectsNewlinesInArgs) {
  DispatchRequest request = sample_request();
  request.args.push_back("evil\narg");
  std::stringstream wire;
  EXPECT_THROW(write_dispatch_request(wire, request),
               std::invalid_argument);
}

TEST(DispatchProtocol, VersionSkewNamesBothVersions) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  std::string text = wire.str();
  // Rewrite the handshake's version number to a future one.
  const std::string handshake = "fairsched-dispatch-request " +
                                std::to_string(kDispatchProtocolVersion);
  ASSERT_EQ(text.find(handshake), 0u) << text;
  text.replace(0, handshake.size(), "fairsched-dispatch-request 999");
  std::istringstream skewed(text);
  try {
    read_dispatch_request(skewed);
    FAIL() << "expected a version-skew error";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v999"), std::string::npos) << what;
    EXPECT_NE(
        what.find("v" + std::to_string(kDispatchProtocolVersion)),
        std::string::npos)
        << what;
    EXPECT_NE(what.find("matching fairsched_exp builds"),
              std::string::npos)
        << what;
  }
}

TEST(DispatchProtocol, TruncatedRequestNamesWhatWasExpected) {
  const DispatchRequest request = sample_request();
  std::stringstream wire;
  write_dispatch_request(wire, request);
  const std::string text = wire.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  try {
    read_dispatch_request(truncated);
    FAIL() << "expected a truncation error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stream ended"),
              std::string::npos)
        << e.what();
  }
}

TEST(DispatchProtocol, ArtifactFrameRoundTripsAnyBytes) {
  const std::string payload = "{\"cells\": [1, 2]}\nline two\n";
  std::ostringstream wire;
  write_artifact_frame(wire, 3, 7, payload);
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.shard, 3u);
  EXPECT_EQ(frame.shard_count, 7u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(DispatchProtocol, ArtifactParserSkipsBannerNoiseBeforeTheFrame) {
  // Real ssh configurations print MOTD banners on stdout; the frame
  // parser must find the magic line wherever it starts.
  std::ostringstream wire;
  wire << "Welcome to hostA!\nLast login: yesterday\n";
  write_artifact_frame(wire, 0, 2, "payload-bytes");
  const ArtifactFrame frame = parse_artifact_frame(wire.str(), "test");
  EXPECT_EQ(frame.shard, 0u);
  EXPECT_EQ(frame.payload, "payload-bytes");
}

TEST(DispatchProtocol, GarbageWithoutAFrameNamesTheSource) {
  try {
    parse_artifact_frame("no frame here at all\n", "worker `w3`");
    FAIL() << "expected a parse error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("worker `w3`"),
              std::string::npos)
        << e.what();
  }
}

// --- run_worker_process -----------------------------------------------------

TEST(RunWorkerProcess, TimeoutKillsTheWorkerAndSaysSo) {
  const auto outcome =
      run_worker_process({"/bin/sh", "-c", "sleep 30"}, sample_request(),
                         std::chrono::milliseconds(200));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kTimeout);
  EXPECT_NE(outcome.detail.find("200ms shard timeout"),
            std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, NonzeroExitIsAFailedAttemptWithTheExitCode) {
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c", "cat > /dev/null; exit 3"}, sample_request(),
      std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("exit code 3"), std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, MissingBinaryFailsWithExitCode127) {
  const auto outcome =
      run_worker_process({"/no/such/fairsched-binary"}, sample_request(),
                         std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("exit code 127"), std::string::npos)
      << outcome.detail;
}

TEST(RunWorkerProcess, WorkerClosingStdinEarlyStillDelivers) {
  // A worker may legitimately exit without draining its stdin; the
  // half-written request must not wedge or crash the dispatcher side.
  std::ostringstream frame;
  write_artifact_frame(frame, 2, 5, "ok");
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c",
       "exec 0<&-; printf '" + frame.str() + "'"},
      sample_request(), std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kArtifact)
      << outcome.detail;
  EXPECT_EQ(outcome.payload, "ok");
}

TEST(RunWorkerProcess, FrameForTheWrongShardIsRejected) {
  std::ostringstream frame;
  write_artifact_frame(frame, 1, 5, "ok");  // request asks for shard 2
  const auto outcome = run_worker_process(
      {"/bin/sh", "-c", "cat > /dev/null; printf '" + frame.str() + "'"},
      sample_request(), std::chrono::milliseconds(0));
  EXPECT_EQ(outcome.status, WorkerTransport::Outcome::Status::kFailed);
  EXPECT_NE(outcome.detail.find("asked for 2/5"), std::string::npos)
      << outcome.detail;
}

// --- dispatcher with a seeded flaky transport -------------------------------

SweepSpec dist_sweep() {
  SweepSpec spec;
  spec.name = "dist-test";
  spec.policies = {"roundrobin", "fairshare"};
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  w.orgs = 3;
  w.unit_jobs_per_org = 20;
  spec.workloads.push_back(w);
  spec.instances = 4;
  spec.seed = 42;
  spec.horizon = 60;
  spec.baseline = "ref";
  spec.threads = 1;
  return spec;
}

// The shard artifact a correct worker would return, computed in-process.
std::string compute_artifact(const SweepSpec& spec,
                             const DispatchRequest& request) {
  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(),
                       SweepShard{request.shard, request.shard_count});
  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);
  std::ostringstream out;
  exp::write_shard_artifact(out, plan, result);
  return out.str();
}

// What one scripted attempt does before (maybe) producing the artifact.
enum class Fault { kOk, kFail, kTimeout, kCorrupt, kThrow };

// A WorkerTransport that computes real artifacts in-process and injects
// faults from a fixed per-worker script (one entry per attempt, kOk once
// the script is exhausted). Deterministic by construction: no clocks, no
// randomness — the schedule IS the seed.
class FlakyTransport final : public WorkerTransport {
 public:
  FlakyTransport(std::string name, SweepSpec spec,
                 std::vector<Fault> script)
      : name_(std::move(name)),
        spec_(std::move(spec)),
        script_(std::move(script)) {}

  const std::string& name() const override { return name_; }

  std::size_t attempts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return attempt_;
  }

  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override {
    Fault fault = Fault::kOk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (attempt_ < script_.size()) fault = script_[attempt_];
      ++attempt_;
    }
    switch (fault) {
      case Fault::kFail:
        return Outcome{Outcome::Status::kFailed, "",
                       name_ + ": injected failure"};
      case Fault::kTimeout:
        return Outcome{Outcome::Status::kTimeout, "",
                       name_ + ": injected timeout after " +
                           std::to_string(timeout.count()) + "ms"};
      case Fault::kCorrupt:
        // A truncated artifact: parses as neither JSON nor a frame.
        return Outcome{Outcome::Status::kArtifact,
                       compute_artifact(spec_, request).substr(0, 40),
                       ""};
      case Fault::kThrow:
        throw std::runtime_error(name_ + ": transport broke");
      case Fault::kOk:
        break;
    }
    return Outcome{Outcome::Status::kArtifact,
                   compute_artifact(spec_, request), ""};
  }

 private:
  std::string name_;
  SweepSpec spec_;
  std::vector<Fault> script_;
  mutable std::mutex mu_;
  std::size_t attempt_ = 0;
};

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("fairsched-dist-test-" + tag + "-" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string csv_of(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream out;
  CsvReporter csv(out);
  csv.report(spec, result);
  return out.str();
}

std::string whole_run_csv(const SweepSpec& spec) {
  const SweepPlan plan = build_sweep_plan(spec);
  ThreadPoolExecutor executor;
  return csv_of(spec, executor.execute(plan));
}

// Runs a dispatch over the given per-worker fault scripts and returns
// the merged result's CSV (asserting convergence on the way).
std::string dispatch_csv(const SweepSpec& spec, std::size_t shard_count,
                         std::vector<std::vector<Fault>> scripts,
                         const std::string& tag,
                         DispatchOptions* options_out = nullptr,
                         DispatchStats* stats_out = nullptr,
                         std::string* log_out = nullptr) {
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  for (std::size_t w = 0; w < scripts.size(); ++w) {
    workers.push_back(std::make_unique<FlakyTransport>(
        "flaky#" + std::to_string(w), spec, std::move(scripts[w])));
  }
  TempDir dir(tag);
  DispatchOptions options;
  options.shard_count = shard_count;
  options.max_attempts = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.backoff_cap = std::chrono::milliseconds(2);
  options.artifact_dir = dir.path.string();
  if (options_out) options = *options_out;
  if (options_out) options.artifact_dir = dir.path.string();

  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"unused-by-flaky-transport"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, request);
  if (stats_out) *stats_out = dispatcher.stats();
  if (log_out) *log_out = log_stream.str();
  return csv_of(merged.spec, merged.result);
}

TEST(Dispatcher, CleanRunMatchesTheWholeRunByteForByte) {
  const SweepSpec spec = dist_sweep();
  const std::string whole = whole_run_csv(spec);
  EXPECT_EQ(dispatch_csv(spec, 4, {{}, {}, {}}, "clean"), whole);
  // Any shard count folds to the same bytes.
  EXPECT_EQ(dispatch_csv(spec, 1, {{}}, "clean1"), whole);
  EXPECT_EQ(dispatch_csv(spec, 6, {{}, {}}, "clean6"), whole);
}

TEST(Dispatcher, EveryFailureScheduleConvergesToIdenticalBytes) {
  const SweepSpec spec = dist_sweep();
  const std::string whole = whole_run_csv(spec);
  const std::vector<std::vector<std::vector<Fault>>> schedules = {
      // one flaky worker, one healthy
      {{Fault::kFail, Fault::kFail}, {}},
      // a timeout and a failure landing on different workers
      {{Fault::kTimeout}, {Fault::kFail, Fault::kTimeout}},
      // corrupt artifacts force quarantines before converging
      {{Fault::kCorrupt}, {Fault::kCorrupt, Fault::kFail}},
      // one worker's transport dies entirely; the other absorbs its work
      {{Fault::kThrow}, {Fault::kFail}},
      // everything bad once, everywhere
      {{Fault::kCorrupt, Fault::kTimeout},
       {Fault::kFail, Fault::kCorrupt},
       {Fault::kTimeout}},
  };
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    DispatchStats stats;
    EXPECT_EQ(dispatch_csv(spec, 5, schedules[i],
                           "schedule" + std::to_string(i), nullptr,
                           &stats),
              whole)
        << "failure schedule " << i;
    EXPECT_GT(stats.failed_attempts, 0u) << "failure schedule " << i;
  }
}

TEST(Dispatcher, CorruptArtifactsAreQuarantinedNeverFolded) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec,
      std::vector<Fault>{Fault::kCorrupt, Fault::kCorrupt}));
  TempDir dir("quarantine");
  DispatchOptions options;
  options.shard_count = 2;
  options.max_attempts = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  const MergedSweep merged = dispatcher.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(dispatcher.stats().quarantined, 2u);
  // The corrupt payloads are preserved next to the artifacts for
  // post-mortems, under names the merge scan will never pick up.
  std::size_t quarantine_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".quarantined-") != std::string::npos) {
      ++quarantine_files;
    }
  }
  EXPECT_EQ(quarantine_files, 2u);
  EXPECT_NE(log_stream.str().find("\"event\":\"quarantine\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, ExhaustedAttemptsGiveUpWithAClearError) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec,
      std::vector<Fault>(10, Fault::kFail)));
  TempDir dir("giveup");
  DispatchOptions options;
  options.shard_count = 1;
  options.max_attempts = 3;
  options.backoff = std::chrono::milliseconds(1);
  options.max_worker_failures = 10;  // the shard gives up first
  options.artifact_dir = dir.path.string();
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options, &log);
  try {
    dispatcher.run(plan, request);
    FAIL() << "expected the dispatch to give up";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dispatch failed"),
              std::string::npos)
        << e.what();
  }
  EXPECT_NE(log_stream.str().find("\"event\":\"give-up\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, AllWorkersRetiringAbortsInsteadOfHanging) {
  const SweepSpec spec = dist_sweep();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#0", spec, std::vector<Fault>{Fault::kThrow}));
  workers.push_back(std::make_unique<FlakyTransport>(
      "flaky#1", spec, std::vector<Fault>{Fault::kThrow}));
  TempDir dir("retire");
  DispatchOptions options;
  options.shard_count = 3;
  options.max_attempts = 10;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};
  Dispatcher dispatcher(std::move(workers), options);
  EXPECT_THROW(dispatcher.run(plan, request), std::runtime_error);
  EXPECT_EQ(dispatcher.stats().retired_workers, 2u);
}

TEST(Dispatcher, ResumeRerunsOnlyMissingOrCorruptShards) {
  const SweepSpec spec = dist_sweep();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};

  TempDir dir("resume");
  DispatchOptions options;
  options.shard_count = 4;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();

  {
    std::vector<std::unique_ptr<WorkerTransport>> workers;
    workers.push_back(
        std::make_unique<FlakyTransport>("first#0", spec,
                                         std::vector<Fault>{}));
    Dispatcher first(std::move(workers), options);
    first.run(plan, request);
    EXPECT_EQ(first.stats().attempts, 4u);
  }

  // Simulate a killed run: one artifact missing, one corrupted on disk.
  std::filesystem::remove(dir.path / shard_artifact_filename(1, 4));
  {
    std::ofstream corrupt(dir.path / shard_artifact_filename(2, 4),
                          std::ios::trunc);
    corrupt << "{ half-written";
  }

  auto second_transport =
      std::make_unique<FlakyTransport>("second#0", spec,
                                       std::vector<Fault>{});
  FlakyTransport* counter = second_transport.get();
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::move(second_transport));
  options.resume = true;
  std::ostringstream log_stream;
  DispatchLog log(log_stream);
  Dispatcher second(std::move(workers), options, &log);
  const MergedSweep merged = second.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(counter->attempts(), 2u)
      << "resume must only re-run the missing and the corrupt shard";
  EXPECT_EQ(second.stats().resumed, 2u);
  EXPECT_EQ(second.stats().quarantined, 1u);  // the half-written file
  EXPECT_NE(log_stream.str().find("\"event\":\"resume-reuse\""),
            std::string::npos)
      << log_stream.str();
}

TEST(Dispatcher, ResumeRejectsArtifactsFromADifferentSweep) {
  const SweepSpec spec = dist_sweep();
  const SweepPlan plan = build_sweep_plan(spec);
  DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.args = {"x"};

  // A valid artifact — for a *different* sweep (other seed).
  SweepSpec other = spec;
  other.seed = 43;
  DispatchRequest other_request;
  other_request.shard = 0;
  other_request.shard_count = 2;
  const std::string alien = compute_artifact(other, other_request);

  TempDir dir("resume-alien");
  {
    std::ofstream out(dir.path / shard_artifact_filename(0, 2));
    out << alien;
  }
  DispatchOptions options;
  options.shard_count = 2;
  options.backoff = std::chrono::milliseconds(1);
  options.artifact_dir = dir.path.string();
  options.resume = true;
  std::vector<std::unique_ptr<WorkerTransport>> workers;
  workers.push_back(std::make_unique<FlakyTransport>(
      "w#0", spec, std::vector<Fault>{}));
  Dispatcher dispatcher(std::move(workers), options);
  const MergedSweep merged = dispatcher.run(plan, request);
  EXPECT_EQ(csv_of(merged.spec, merged.result), whole_run_csv(spec));
  EXPECT_EQ(dispatcher.stats().resumed, 0u);
  EXPECT_EQ(dispatcher.stats().quarantined, 1u);
}

// --- dry-run golden ---------------------------------------------------------

TEST(DispatchDryRun, AssignmentPlanMatchesTheGoldenFile) {
  SweepSpec spec = dist_sweep();
  spec.axes.push_back(exp::make_axis("orgs", {3, 4, 5}));
  const SweepPlan plan = build_sweep_plan(spec);
  std::ostringstream out;
  write_dispatch_plan_json(out, plan, 4,
                           {"local#0", "local#1", "ssh:hostA#2"});

  const std::string path = std::string(FAIRSCHED_SOURCE_DIR) +
                           "/tests/golden/dispatch_dry_run.json";
  if (std::getenv("FAIRSCHED_UPDATE_GOLDEN")) {
    std::ofstream golden(path, std::ios::trunc | std::ios::binary);
    golden << out.str();
    GTEST_SKIP() << "updated " << path;
  }
  std::ifstream golden(path, std::ios::binary);
  ASSERT_TRUE(golden) << "missing golden file " << path
                      << " (regenerate with FAIRSCHED_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str())
      << "dispatch --dry-run output drifted; regenerate with "
         "FAIRSCHED_UPDATE_GOLDEN=1 if the change is intentional";
}

}  // namespace
}  // namespace fairsched::dist
