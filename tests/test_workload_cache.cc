// Tests for exp/workload_cache: hit/miss/eviction accounting, LRU-by-bytes
// eviction, use-count retirement, the disabled (--no-cache) pass-through,
// single-compute latching under concurrency, exception recovery, and the
// content-keyed disk tier (--cache-dir): persistence across instances,
// header/key validation, decode-failure fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/workload_cache.h"

namespace fairsched::exp {
namespace {

WorkloadCache::Computed make_value(int v, std::size_t bytes) {
  return {std::make_shared<const int>(v), bytes};
}

int as_int(const std::shared_ptr<const void>& p) {
  return *std::static_pointer_cast<const int>(p);
}

TEST(WorkloadCache, HitsAfterFirstComputeAndCountsStats) {
  WorkloadCache cache(1 << 20);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(7, 100);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(computes, 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
  // All three planned uses are consumed: the entry retired and freed its
  // bytes without counting as an eviction.
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.peak_bytes, 100u);
}

TEST(WorkloadCache, ComputedHereReportsWhoRanTheCompute) {
  WorkloadCache cache(1 << 20);
  const auto fn = [&] { return make_value(1, 10); };
  bool computed = false;
  cache.get_or_compute("k", 2, fn, &computed);
  EXPECT_TRUE(computed);
  cache.get_or_compute("k", 2, fn, &computed);
  EXPECT_FALSE(computed);
}

TEST(WorkloadCache, SingleUseKeysAreNotStored) {
  WorkloadCache cache(1 << 20);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(1, 64);
  };
  cache.get_or_compute("once", 1, fn);
  cache.get_or_compute("once", 1, fn);  // a plan would never do this; still a
  EXPECT_EQ(computes, 2);               // fresh compute, not a stale hit
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.peak_bytes, 0u);
}

TEST(WorkloadCache, DisabledCacheComputesInlineWithoutStats) {
  WorkloadCache cache(0);
  EXPECT_FALSE(cache.enabled());
  int computes = 0;
  bool computed = false;
  const auto fn = [&] {
    ++computes;
    return make_value(9, 10);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 5, fn, &computed)), 9);
  EXPECT_TRUE(computed);
  cache.get_or_compute("k", 5, fn);
  EXPECT_EQ(computes, 2);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(WorkloadCache, EvictsLeastRecentlyUsedOverBudget) {
  WorkloadCache cache(250);
  const auto value = [](int v) { return [v] { return make_value(v, 100); }; };
  cache.get_or_compute("a", 10, value(1));
  cache.get_or_compute("b", 10, value(2));
  cache.get_or_compute("a", 10, value(1));  // touch: b is now the LRU entry
  cache.get_or_compute("c", 10, value(3));  // 300 bytes > 250: evicts b
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_in_use, 200u);
  // a and c still hit; b was evicted and recomputes.
  int computes = 0;
  const auto probe = [&] {
    ++computes;
    return make_value(0, 100);
  };
  cache.get_or_compute("a", 10, probe);
  cache.get_or_compute("c", 10, probe);
  EXPECT_EQ(computes, 0);
  cache.get_or_compute("b", 10, probe);
  EXPECT_EQ(computes, 1);
}

TEST(WorkloadCache, EntryLargerThanBudgetIsEvictedImmediately) {
  WorkloadCache cache(50);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(1, 1000);
  };
  // Still returns the value (the caller holds a shared_ptr); the cache just
  // cannot keep it.
  EXPECT_EQ(as_int(cache.get_or_compute("big", 4, fn)), 1);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  cache.get_or_compute("big", 4, fn);
  EXPECT_EQ(computes, 2);
}

TEST(WorkloadCache, RecomputeAfterEvictionStillRetiresOnSchedule) {
  // x is planned for 3 uses. After consuming 2 it is evicted by budget
  // pressure; the 3rd consumer's recompute must recognize it is the last
  // planned use and not re-store the entry with a fresh full use count —
  // a squatter would hold budget until evicted again.
  WorkloadCache cache(150);
  const auto value = [](int v) { return [v] { return make_value(v, 100); }; };
  cache.get_or_compute("x", 3, value(1));  // compute, consumed 1/3
  cache.get_or_compute("x", 3, value(1));  // hit, consumed 2/3
  cache.get_or_compute("y", 5, value(2));  // 200 bytes > 150: evicts x
  ASSERT_EQ(cache.stats().evictions, 1u);
  bool computed = false;
  EXPECT_EQ(as_int(cache.get_or_compute("x", 3, value(3), &computed)), 3);
  EXPECT_TRUE(computed);  // re-miss; and the last use, so not re-stored
  EXPECT_EQ(cache.stats().bytes_in_use, 100u);  // y only
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(WorkloadCache, ConcurrentGettersShareOneCompute) {
  WorkloadCache cache(1 << 20);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> seen(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto value = cache.get_or_compute("shared", kThreads, [&] {
        ++computes;
        // Widen the race window so waiters really latch on the pending
        // entry instead of winning a lucky interleaving.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return make_value(42, 100);
      });
      seen[t] = as_int(value);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  for (int v : seen) EXPECT_EQ(v, 42);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  // kThreads planned uses, kThreads consumers: retired.
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(WorkloadCache, ComputeExceptionClearsThePendingEntry) {
  WorkloadCache cache(1 << 20);
  const auto boom = [&]() -> WorkloadCache::Computed {
    throw std::runtime_error("generator failed");
  };
  EXPECT_THROW(cache.get_or_compute("k", 3, boom), std::runtime_error);
  // The key is free again: the next caller computes instead of deadlocking
  // on a pending entry that will never become ready.
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(5, 10);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 5);
  EXPECT_EQ(computes, 1);
}

// --- Disk tier --------------------------------------------------------------

std::filesystem::path fresh_disk_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("fairsched_cache_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

// An int codec: payload is the decimal value. `decoded` counts decodes.
WorkloadCache::DiskCodec int_codec(const std::string& content_key,
                                   int* decoded = nullptr) {
  WorkloadCache::DiskCodec codec;
  codec.content_key = content_key;
  codec.encode = [](const std::shared_ptr<const void>& value) {
    return std::to_string(as_int(value));
  };
  codec.decode = [decoded](const std::string& payload) {
    if (decoded) ++*decoded;
    return make_value(std::stoi(payload), 10);
  };
  return codec;
}

TEST(WorkloadCacheDisk, PersistsAcrossCacheInstances) {
  const std::filesystem::path dir = fresh_disk_dir("persist");
  const WorkloadCache::DiskCodec codec = int_codec("answer|v1");
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(42, 10);
  };
  {
    WorkloadCache cache(1 << 20, dir.string());
    EXPECT_TRUE(cache.disk_enabled());
    bool computed = false;
    EXPECT_EQ(as_int(cache.get_or_compute("k", 1, fn, &computed, &codec)),
              42);
    EXPECT_TRUE(computed);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.disk_misses, 1u);
    EXPECT_EQ(stats.disk_writes, 1u);
    EXPECT_EQ(stats.disk_hits, 0u);
    // Content-keyed file with the documented name.
    EXPECT_TRUE(std::filesystem::exists(
        dir / WorkloadCache::disk_file_name("answer|v1")));
  }
  {
    // A new cache instance = a new process: the value comes from disk,
    // the compute callback never runs again.
    WorkloadCache cache(1 << 20, dir.string());
    bool computed = true;
    EXPECT_EQ(as_int(cache.get_or_compute("k", 1, fn, &computed, &codec)),
              42);
    EXPECT_FALSE(computed) << "a disk hit is a reuse, not a fresh compute";
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.disk_writes, 0u);
    EXPECT_EQ(computes, 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheDisk, ValidatesHeaderAndKeyBeforeDecoding) {
  const std::filesystem::path dir = fresh_disk_dir("validate");
  int decoded = 0;
  const WorkloadCache::DiskCodec codec = int_codec("key-a", &decoded);
  {
    WorkloadCache cache(1 << 20, dir.string());
    cache.get_or_compute("k", 1, [] { return make_value(1, 10); }, nullptr,
                         &codec);
  }
  const std::filesystem::path file =
      dir / WorkloadCache::disk_file_name("key-a");
  ASSERT_TRUE(std::filesystem::exists(file));

  // A different content key hashing to a different file: plain miss.
  {
    WorkloadCache cache(1 << 20, dir.string());
    const WorkloadCache::DiskCodec other = int_codec("key-b");
    int computes = 0;
    cache.get_or_compute(
        "k", 1,
        [&] {
          ++computes;
          return make_value(2, 10);
        },
        nullptr, &other);
    EXPECT_EQ(computes, 1);
  }
  // A stored key that does not match the lookup's content key (the
  // collision case) is rejected without calling decode.
  {
    std::ofstream out(file, std::ios::trunc);
    out << "fairsched-cache 1\nsome-other-content\n1\n";
  }
  {
    WorkloadCache cache(1 << 20, dir.string());
    int computes = 0;
    cache.get_or_compute(
        "k", 1,
        [&] {
          ++computes;
          return make_value(3, 10);
        },
        nullptr, &codec);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(decoded, 0);
    EXPECT_EQ(cache.stats().disk_misses, 1u);
  }
  // A wrong format version is stale, not decodable.
  {
    std::ofstream out(file, std::ios::trunc);
    out << "fairsched-cache 999\nkey-a\n1\n";
  }
  {
    WorkloadCache cache(1 << 20, dir.string());
    int computes = 0;
    cache.get_or_compute(
        "k", 1,
        [&] {
          ++computes;
          return make_value(4, 10);
        },
        nullptr, &codec);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(decoded, 0);
  }
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheDisk, DecodeFailureFallsBackToCompute) {
  const std::filesystem::path dir = fresh_disk_dir("decode_fail");
  WorkloadCache::DiskCodec codec = int_codec("k");
  codec.decode = [](const std::string&) -> WorkloadCache::Computed {
    throw std::runtime_error("damaged payload");
  };
  {
    WorkloadCache cache(1 << 20, dir.string());
    cache.get_or_compute("k", 1, [] { return make_value(9, 10); }, nullptr,
                         &codec);
  }
  WorkloadCache cache(1 << 20, dir.string());
  int computes = 0;
  EXPECT_EQ(as_int(cache.get_or_compute(
                "k", 1,
                [&] {
                  ++computes;
                  return make_value(9, 10);
                },
                nullptr, &codec)),
            9);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().disk_misses, 1u);
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheDisk, DisabledMemoryTierDisablesDiskToo) {
  const std::filesystem::path dir = fresh_disk_dir("disabled");
  WorkloadCache cache(0, dir.string());
  EXPECT_FALSE(cache.disk_enabled());
  const WorkloadCache::DiskCodec codec = int_codec("k");
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(5, 10);
  };
  cache.get_or_compute("k", 5, fn, nullptr, &codec);
  cache.get_or_compute("k", 5, fn, nullptr, &codec);
  EXPECT_EQ(computes, 2);
  // --no-cache writes nothing anywhere.
  EXPECT_FALSE(std::filesystem::exists(dir) &&
               !std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheDisk, SharedEntriesStoreOnceAndServeManyUses) {
  const std::filesystem::path dir = fresh_disk_dir("shared");
  const WorkloadCache::DiskCodec codec = int_codec("shared-key");
  {
    WorkloadCache cache(1 << 20, dir.string());
    for (int i = 0; i < 3; ++i) {
      cache.get_or_compute("k", 3, [] { return make_value(6, 10); },
                           nullptr, &codec);
    }
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.disk_writes, 1u);
  }
  WorkloadCache cache(1 << 20, dir.string());
  for (int i = 0; i < 3; ++i) {
    cache.get_or_compute(
        "k", 3,
        []() -> WorkloadCache::Computed {
          throw std::logic_error("must come from disk");
        },
        nullptr, &codec);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.hits, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fairsched::exp
