// Tests for exp/workload_cache: hit/miss/eviction accounting, LRU-by-bytes
// eviction, use-count retirement, the disabled (--no-cache) pass-through,
// single-compute latching under concurrency, and exception recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/workload_cache.h"

namespace fairsched::exp {
namespace {

WorkloadCache::Computed make_value(int v, std::size_t bytes) {
  return {std::make_shared<const int>(v), bytes};
}

int as_int(const std::shared_ptr<const void>& p) {
  return *std::static_pointer_cast<const int>(p);
}

TEST(WorkloadCache, HitsAfterFirstComputeAndCountsStats) {
  WorkloadCache cache(1 << 20);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(7, 100);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 7);
  EXPECT_EQ(computes, 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
  // All three planned uses are consumed: the entry retired and freed its
  // bytes without counting as an eviction.
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.peak_bytes, 100u);
}

TEST(WorkloadCache, ComputedHereReportsWhoRanTheCompute) {
  WorkloadCache cache(1 << 20);
  const auto fn = [&] { return make_value(1, 10); };
  bool computed = false;
  cache.get_or_compute("k", 2, fn, &computed);
  EXPECT_TRUE(computed);
  cache.get_or_compute("k", 2, fn, &computed);
  EXPECT_FALSE(computed);
}

TEST(WorkloadCache, SingleUseKeysAreNotStored) {
  WorkloadCache cache(1 << 20);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(1, 64);
  };
  cache.get_or_compute("once", 1, fn);
  cache.get_or_compute("once", 1, fn);  // a plan would never do this; still a
  EXPECT_EQ(computes, 2);               // fresh compute, not a stale hit
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.peak_bytes, 0u);
}

TEST(WorkloadCache, DisabledCacheComputesInlineWithoutStats) {
  WorkloadCache cache(0);
  EXPECT_FALSE(cache.enabled());
  int computes = 0;
  bool computed = false;
  const auto fn = [&] {
    ++computes;
    return make_value(9, 10);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 5, fn, &computed)), 9);
  EXPECT_TRUE(computed);
  cache.get_or_compute("k", 5, fn);
  EXPECT_EQ(computes, 2);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(WorkloadCache, EvictsLeastRecentlyUsedOverBudget) {
  WorkloadCache cache(250);
  const auto value = [](int v) { return [v] { return make_value(v, 100); }; };
  cache.get_or_compute("a", 10, value(1));
  cache.get_or_compute("b", 10, value(2));
  cache.get_or_compute("a", 10, value(1));  // touch: b is now the LRU entry
  cache.get_or_compute("c", 10, value(3));  // 300 bytes > 250: evicts b
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_in_use, 200u);
  // a and c still hit; b was evicted and recomputes.
  int computes = 0;
  const auto probe = [&] {
    ++computes;
    return make_value(0, 100);
  };
  cache.get_or_compute("a", 10, probe);
  cache.get_or_compute("c", 10, probe);
  EXPECT_EQ(computes, 0);
  cache.get_or_compute("b", 10, probe);
  EXPECT_EQ(computes, 1);
}

TEST(WorkloadCache, EntryLargerThanBudgetIsEvictedImmediately) {
  WorkloadCache cache(50);
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(1, 1000);
  };
  // Still returns the value (the caller holds a shared_ptr); the cache just
  // cannot keep it.
  EXPECT_EQ(as_int(cache.get_or_compute("big", 4, fn)), 1);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  cache.get_or_compute("big", 4, fn);
  EXPECT_EQ(computes, 2);
}

TEST(WorkloadCache, RecomputeAfterEvictionStillRetiresOnSchedule) {
  // x is planned for 3 uses. After consuming 2 it is evicted by budget
  // pressure; the 3rd consumer's recompute must recognize it is the last
  // planned use and not re-store the entry with a fresh full use count —
  // a squatter would hold budget until evicted again.
  WorkloadCache cache(150);
  const auto value = [](int v) { return [v] { return make_value(v, 100); }; };
  cache.get_or_compute("x", 3, value(1));  // compute, consumed 1/3
  cache.get_or_compute("x", 3, value(1));  // hit, consumed 2/3
  cache.get_or_compute("y", 5, value(2));  // 200 bytes > 150: evicts x
  ASSERT_EQ(cache.stats().evictions, 1u);
  bool computed = false;
  EXPECT_EQ(as_int(cache.get_or_compute("x", 3, value(3), &computed)), 3);
  EXPECT_TRUE(computed);  // re-miss; and the last use, so not re-stored
  EXPECT_EQ(cache.stats().bytes_in_use, 100u);  // y only
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(WorkloadCache, ConcurrentGettersShareOneCompute) {
  WorkloadCache cache(1 << 20);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> seen(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto value = cache.get_or_compute("shared", kThreads, [&] {
        ++computes;
        // Widen the race window so waiters really latch on the pending
        // entry instead of winning a lucky interleaving.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return make_value(42, 100);
      });
      seen[t] = as_int(value);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  for (int v : seen) EXPECT_EQ(v, 42);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  // kThreads planned uses, kThreads consumers: retired.
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(WorkloadCache, ComputeExceptionClearsThePendingEntry) {
  WorkloadCache cache(1 << 20);
  const auto boom = [&]() -> WorkloadCache::Computed {
    throw std::runtime_error("generator failed");
  };
  EXPECT_THROW(cache.get_or_compute("k", 3, boom), std::runtime_error);
  // The key is free again: the next caller computes instead of deadlocking
  // on a pending entry that will never become ready.
  int computes = 0;
  const auto fn = [&] {
    ++computes;
    return make_value(5, 10);
  };
  EXPECT_EQ(as_int(cache.get_or_compute("k", 3, fn)), 5);
  EXPECT_EQ(computes, 1);
}

}  // namespace
}  // namespace fairsched::exp
