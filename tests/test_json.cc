// Tests for util/json: the minimal parser behind the merge subcommand and
// shard artifacts, the escaping shared by every JSON writer, and the
// exact-double round trip the artifacts rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "util/json.h"

namespace fairsched {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_json("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_double(), 3.5);
  EXPECT_EQ(parse_json("-42").as_int(), -42);
  EXPECT_EQ(parse_json("18446744073709551615").as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("  -2.5E-1 ").as_double(), -0.25);
}

TEST(Json, ParsesContainers) {
  const JsonValue doc = parse_json(
      "{\"a\": [1, 2, 3], \"b\": {\"nested\": true}, \"c\": \"x\"}");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.at("a").items().size(), 3u);
  EXPECT_EQ(doc.at("a").items()[2].as_int(), 3);
  EXPECT_TRUE(doc.at("b").at("nested").as_bool());
  EXPECT_EQ(doc.at("c").as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
  // Field order is preserved for tooling that cares.
  EXPECT_EQ(doc.fields()[0].first, "a");
  EXPECT_EQ(parse_json("[]").items().size(), 0u);
  EXPECT_EQ(parse_json("{}").fields().size(), 0u);
}

TEST(Json, TypeErrorsNameTheExpectedKind) {
  try {
    parse_json("[1]").as_string();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("expected string"),
              std::string::npos);
  }
  EXPECT_THROW(parse_json("\"x\"").as_double(), std::invalid_argument);
  EXPECT_THROW(parse_json("1.5").as_int(), std::invalid_argument);
  EXPECT_THROW(parse_json("-1").as_uint(), std::invalid_argument);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2",
        "{\"a\": 1,}", "nan", "+1", "01a", "\"\\q\"", "\"\\u12g4\""}) {
    EXPECT_THROW(parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, EscapeAndParseRoundTripStrings) {
  const std::string nasty = "quote\" back\\slash\nnew\tline\x01ctrl";
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  EXPECT_EQ(parse_json(doc).as_string(), nasty);
}

TEST(Json, ExactDoubleRoundTripsBitForBit) {
  for (double v : {0.0, -0.0, 1.0 / 3.0, 1e-300, -1.7976931348623157e308,
                   0.1, 123456789.123456789, 5e-324}) {
    const std::string text = json_exact_double(v);
    const double back = parse_json(text).as_double();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << text;
  }
}

}  // namespace
}  // namespace fairsched
