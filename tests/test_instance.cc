// Tests for Instance / InstanceBuilder.

#include "core/instance.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fairsched {
namespace {

Instance two_org_instance() {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 2);
  const OrgId c = b.add_org("c", 3);
  b.add_job(a, 5, 10);
  b.add_job(a, 0, 3);
  b.add_job(c, 1, 7);
  return std::move(b).build();
}

TEST(Instance, OrgAndMachineCounts) {
  const Instance inst = two_org_instance();
  EXPECT_EQ(inst.num_orgs(), 2u);
  EXPECT_EQ(inst.total_machines(), 5u);
  EXPECT_EQ(inst.machines_of(0), 2u);
  EXPECT_EQ(inst.machines_of(1), 3u);
}

TEST(Instance, MachineOwnership) {
  const Instance inst = two_org_instance();
  EXPECT_EQ(inst.machine_begin(0), 0u);
  EXPECT_EQ(inst.machine_end(0), 2u);
  EXPECT_EQ(inst.machine_begin(1), 2u);
  EXPECT_EQ(inst.machine_end(1), 5u);
  EXPECT_EQ(inst.machine_owner(0), 0u);
  EXPECT_EQ(inst.machine_owner(1), 0u);
  EXPECT_EQ(inst.machine_owner(2), 1u);
  EXPECT_EQ(inst.machine_owner(4), 1u);
}

TEST(Instance, JobsSortedByReleaseWithFifoIndices) {
  const Instance inst = two_org_instance();
  const auto jobs = inst.jobs_of(0);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].release, 0);
  EXPECT_EQ(jobs[0].index, 0u);
  EXPECT_EQ(jobs[0].processing, 3);
  EXPECT_EQ(jobs[1].release, 5);
  EXPECT_EQ(jobs[1].index, 1u);
}

TEST(Instance, StableSortPreservesSubmissionOrderAtEqualRelease) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  b.add_job(a, 3, 100);
  b.add_job(a, 3, 200);
  b.add_job(a, 3, 300);
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.job(0, 0).processing, 100);
  EXPECT_EQ(inst.job(0, 1).processing, 200);
  EXPECT_EQ(inst.job(0, 2).processing, 300);
}

TEST(Instance, Totals) {
  const Instance inst = two_org_instance();
  EXPECT_EQ(inst.num_jobs(), 3u);
  EXPECT_EQ(inst.total_work(), 20);
  EXPECT_EQ(inst.last_release(), 5);
}

TEST(Instance, Shares) {
  const Instance inst = two_org_instance();
  EXPECT_DOUBLE_EQ(inst.share_of(0), 0.4);
  EXPECT_DOUBLE_EQ(inst.share_of(1), 0.6);
}

TEST(Instance, RestrictedTo) {
  const Instance inst = two_org_instance();
  const Instance sub = inst.restricted_to({1});
  EXPECT_EQ(sub.num_orgs(), 1u);
  EXPECT_EQ(sub.total_machines(), 3u);
  EXPECT_EQ(sub.num_jobs(), 1u);
  EXPECT_EQ(sub.job(0, 0).processing, 7);
}

TEST(InstanceBuilder, RejectsBadJobs) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 1);
  EXPECT_THROW(b.add_job(a, -1, 5), std::invalid_argument);
  EXPECT_THROW(b.add_job(a, 0, 0), std::invalid_argument);
  EXPECT_THROW(b.add_job(a, 0, -3), std::invalid_argument);
  EXPECT_THROW(b.add_job(7, 0, 1), std::out_of_range);
}

TEST(InstanceBuilder, RejectsJobsWithoutMachines) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 0);
  b.add_job(a, 0, 1);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(InstanceBuilder, EmptyWorkloadWithMachinesIsFine) {
  InstanceBuilder b;
  b.add_org("a", 4);
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.num_jobs(), 0u);
  EXPECT_EQ(inst.total_machines(), 4u);
}

}  // namespace
}  // namespace fairsched
