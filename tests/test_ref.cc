// Tests for the REF exponential fair scheduler.

#include "sched/ref.h"

#include <gtest/gtest.h>

#include "metrics/utility.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {

Instance symmetric_instance(std::uint32_t k, std::uint32_t jobs_per_org,
                            Time processing) {
  InstanceBuilder b;
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o" + std::to_string(u), 1);
  }
  for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
    for (std::uint32_t u = 0; u < k; ++u) {
      b.add_job(u, 0, processing);
    }
  }
  return std::move(b).build();
}

TEST(Ref, GrandScheduleFeasibleAndGreedy) {
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 4, 2000, MachineSplit::kZipf, 1.0, 31);
  RefScheduler ref(inst);
  ref.run(2000);
  EXPECT_EQ(ref.schedule().validate(inst, 2000), std::nullopt);
}

TEST(Ref, AllSubcoalitionSchedulesFeasible) {
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 3, 800, MachineSplit::kUniform, 1.0, 33);
  RefScheduler ref(inst);
  ref.run(800);
  for (Coalition::Mask mask = 1; mask < (1u << inst.num_orgs()); ++mask) {
    const Engine& e = ref.engine(Coalition(mask));
    // A coalition's schedule must be a feasible greedy schedule of the
    // restricted instance (here we can reuse the full instance: the
    // validators only look at placements that exist, and greediness is
    // checked against the coalition's own machines via the engine's totals).
    EXPECT_EQ(e.schedule().check_machine_exclusive(inst), std::nullopt)
        << "mask=" << mask;
    EXPECT_EQ(e.schedule().check_fifo(inst), std::nullopt) << "mask=" << mask;
  }
}

TEST(Ref, UtilitiesMatchClosedFormOnSchedule) {
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 3, 1000, MachineSplit::kZipf, 1.0, 37);
  RefScheduler ref(inst);
  ref.run(1000);
  const auto psi2 = ref.utilities2();
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    EXPECT_EQ(psi2[u], sp_org_half_utility(inst, ref.schedule(), u, 1000));
  }
}

TEST(Ref, SymmetricOrganizationsGetNearEqualUtilities) {
  // Exact equality is unattainable in the discrete problem (the paper makes
  // this point below Definition 3.1: utilities can only be *close* to the
  // contributions); REF must keep symmetric organizations within a small
  // relative band, and their Shapley contributions must be exactly equal.
  const Instance inst = symmetric_instance(3, 8, 5);
  RefScheduler ref(inst);
  ref.run(200);
  const auto psi2 = ref.utilities2();
  const HalfUtil lo = std::min({psi2[0], psi2[1], psi2[2]});
  const HalfUtil hi = std::max({psi2[0], psi2[1], psi2[2]});
  EXPECT_LT(static_cast<double>(hi - lo), 0.05 * static_cast<double>(hi));
  const auto phi = ref.contributions();
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
  EXPECT_NEAR(phi[1], phi[2], 1e-9);
}

TEST(Ref, ContributionsAreEfficient) {
  // Shapley efficiency: contributions sum to the grand coalition's value.
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 4, 1200, MachineSplit::kZipf, 1.0, 41);
  RefScheduler ref(inst);
  ref.run(1200);
  const auto phi = ref.contributions();
  double phi_sum = 0.0;
  for (double p : phi) phi_sum += p;
  const double v_grand =
      static_cast<double>(sp_half_value(inst, ref.schedule(), 1200)) / 2.0;
  EXPECT_NEAR(phi_sum, v_grand, 1e-6 * std::max(1.0, v_grand));
}

TEST(Ref, LenderOrganizationIsCompensated) {
  // Org 0 owns both machines but rarely submits; orgs 1..2 own nothing and
  // flood. When org 0's job finally arrives, REF must start it immediately:
  // its contribution greatly exceeds its utility.
  InstanceBuilder b;
  const OrgId lender = b.add_org("lender", 2);
  const OrgId f1 = b.add_org("flood1", 0);
  const OrgId f2 = b.add_org("flood2", 0);
  for (int i = 0; i < 40; ++i) {
    b.add_job(f1, 0, 4);
    b.add_job(f2, 0, 4);
  }
  b.add_job(lender, 10, 4);
  const Instance inst = std::move(b).build();
  RefScheduler ref(inst);
  ref.run(300);
  const auto start = ref.schedule().start_of(lender, 0);
  ASSERT_TRUE(start.has_value());
  // Machines free at multiples of 4; release is 10, so the first decision
  // point at/after 10 is 12.
  EXPECT_EQ(*start, 12);
}

TEST(Ref, SingleOrganizationDegeneratesToFifo) {
  InstanceBuilder b;
  const OrgId o = b.add_org("solo", 1);
  b.add_job(o, 0, 3);
  b.add_job(o, 1, 2);
  b.add_job(o, 2, 4);
  const Instance inst = std::move(b).build();
  RefScheduler ref(inst);
  ref.run(100);
  EXPECT_EQ(ref.schedule().start_of(o, 0), 0);
  EXPECT_EQ(ref.schedule().start_of(o, 1), 3);
  EXPECT_EQ(ref.schedule().start_of(o, 2), 5);
}

TEST(Ref, GenericDistanceRuleMatchesSpecializedForSpUtility) {
  // Fig. 1 (generic Distance with psi_sp) and Fig. 3 (specialized argmax of
  // phi - psi) must produce the same schedule.
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 3, 400, MachineSplit::kUniform, 1.0, 43);
  RefScheduler specialized(inst);
  specialized.run(400);

  SpUtilityFn sp;
  RefOptions options;
  options.generic_utility = &sp;
  RefScheduler generic(inst, options);
  generic.run(400);

  EXPECT_EQ(specialized.utilities2(), generic.utilities2());
  EXPECT_EQ(specialized.schedule().placements().size(),
            generic.schedule().placements().size());
  for (const Placement& p : specialized.schedule().placements()) {
    EXPECT_EQ(generic.schedule().start_of(p.org, p.index), p.start);
  }
}

TEST(Ref, GenericRuleSupportsOtherUtilities) {
  // The generic Distance rule (Fig. 1) must run with a non-psi_sp utility
  // and still produce a feasible greedy schedule — the paper's claim that
  // the fair-scheduling construction works "for arbitrary utilities".
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 3, 300, MachineSplit::kUniform, 1.0, 47);
  CompletedWorkUtilityFn throughput;
  RefOptions options;
  options.generic_utility = &throughput;
  RefScheduler ref(inst, options);
  ref.run(300);
  EXPECT_EQ(ref.schedule().validate(inst, 300), std::nullopt);
  EXPECT_EQ(ref.schedule().size(),
            static_cast<std::size_t>(ref.engine(Coalition::grand(3))
                                         .completed(0) +
                                     ref.engine(Coalition::grand(3))
                                         .completed(1) +
                                     ref.engine(Coalition::grand(3))
                                         .completed(2) +
                                     ref.engine(Coalition::grand(3))
                                         .running(0) +
                                     ref.engine(Coalition::grand(3))
                                         .running(1) +
                                     ref.engine(Coalition::grand(3))
                                         .running(2)));
}

TEST(Ref, RunTwiceThrows) {
  const Instance inst = symmetric_instance(2, 2, 1);
  RefScheduler ref(inst);
  ref.run(10);
  EXPECT_THROW(ref.run(10), std::logic_error);
}

TEST(Ref, RejectsTooManyOrgs) {
  InstanceBuilder b;
  for (int u = 0; u < 17; ++u) b.add_org("o", 1);
  const Instance inst = std::move(b).build();
  EXPECT_THROW(RefScheduler{inst}, std::invalid_argument);
}

TEST(Ref, ReferenceWorkCountsCompletedParts) {
  const Instance inst = symmetric_instance(2, 3, 4);
  RefScheduler ref(inst);
  ref.run(9);
  EXPECT_EQ(ref.reference_work(), completed_work(inst, ref.schedule(), 9));
}

}  // namespace
}  // namespace fairsched
