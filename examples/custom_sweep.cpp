// Using the experiment harness (src/exp) programmatically: declare a sweep
// as data — policies x workloads x seeds x named parameter axes — run it on
// the thread pool, and consume the aggregated cells. The fairsched_exp
// binary is a CLI shell over exactly this API; link against the fairsched
// library to embed sweeps in your own tooling.
//
// Build (from the repo root):
//   cmake -B build -S . && cmake --build build -j --target example_custom_sweep
//   ./build/example_custom_sweep

#include <cstdio>
#include <iostream>

#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/sweep.h"
#include "workload/synthetic.h"

int main() {
  using namespace fairsched;
  using namespace fairsched::exp;

  // Policies are registry names, so an experiment definition can live in a
  // config file or a CLI flag. Parameterized names parse their suffix.
  SweepSpec spec;
  spec.name = "example";
  spec.policies = {"fcfs", "roundrobin", "fairshare", "rand15",
                   "decayfairshare2000"};

  // Two workload generators: an archive-shaped synthetic window and the
  // unit-job instances of the FPRAS experiment.
  SweepWorkload archive;
  archive.name = "LPC-EGEE";
  archive.kind = SweepWorkload::Kind::kSynthetic;
  archive.spec = preset_lpc_egee();
  archive.orgs = 5;
  spec.workloads.push_back(archive);

  SweepWorkload unit;
  unit.name = "unit-jobs";
  unit.kind = SweepWorkload::Kind::kUnitJobs;
  unit.orgs = 4;
  unit.unit_jobs_per_org = 50;
  spec.workloads.push_back(unit);

  // A named axis multiplies the sweep by its values — here the number of
  // organizations, as in the paper's Figure 10. Axes bind by name: orgs,
  // horizon, half-life, zipf-s, split, jobs-per-org, random-jobs.
  spec.axes.push_back(make_axis("orgs", {3, 5}));

  spec.instances = 4;      // independent windows per workload
  spec.seed = 7;           // every run derives its seed from (seed, index)
  spec.horizon = 10000;
  spec.baseline = "ref";   // fairness metrics are relative to REF
  spec.threads = 0;        // 0 = hardware concurrency

  // Per-run records are streamed, not retained: the driver's memory is
  // O(cells) however many runs execute. Register a sink to observe them —
  // it fires in a fixed deterministic order whatever the thread count.
  std::size_t runs = 0;
  const SweepResult result = SweepDriver().run(
      spec, nullptr, [&runs](const RunRecord&) { ++runs; });

  // Aggregates are deterministic: the same spec gives bit-identical cells
  // whatever the thread count.
  TableReporter table(std::cout);
  table.report(spec, result);

  std::printf("\nper-cell detail (axis point x workload x policy):\n");
  for (std::size_t a = 0; a < result.axis_points; ++a) {
    const double orgs = axis_point_values(spec, a)[0];
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      for (std::size_t p = 0; p < spec.policies.size(); ++p) {
        const SweepCell& cell = result.cell(spec, a, w, p);
        std::printf(
            "  orgs=%.0f %-18s on %-10s unfairness %.3f  utilization %.2f\n",
            orgs, spec.policies[p].c_str(), spec.workloads[w].name.c_str(),
            cell.unfairness.mean(), cell.utilization.mean());
      }
    }
  }
  std::printf("\ntotal simulated run time: %.0f ms across %zu runs\n",
              result.total_wall_ms, runs);
  return 0;
}
