// Using the experiment harness (src/exp) programmatically: declare a sweep
// as data — policies x workloads x seeds x horizon — run it on the thread
// pool, and consume the aggregated cells. The fairsched_exp binary is a CLI
// shell over exactly this API; link against the fairsched library to embed
// sweeps in your own tooling.
//
// Build (from the repo root):
//   cmake -B build -S . && cmake --build build -j --target example_custom_sweep
//   ./build/example_custom_sweep

#include <cstdio>
#include <iostream>

#include "exp/policy_registry.h"
#include "exp/reporter.h"
#include "exp/sweep.h"
#include "workload/synthetic.h"

int main() {
  using namespace fairsched;
  using namespace fairsched::exp;

  // Policies are registry names, so an experiment definition can live in a
  // config file or a CLI flag. Parameterized names parse their suffix.
  SweepSpec spec;
  spec.name = "example";
  spec.policies = {"fcfs", "roundrobin", "fairshare", "rand15",
                   "decayfairshare2000"};

  // Two workload generators: an archive-shaped synthetic window and the
  // unit-job instances of the FPRAS experiment.
  SweepWorkload archive;
  archive.name = "LPC-EGEE";
  archive.kind = SweepWorkload::Kind::kSynthetic;
  archive.spec = preset_lpc_egee();
  archive.orgs = 5;
  spec.workloads.push_back(archive);

  SweepWorkload unit;
  unit.name = "unit-jobs";
  unit.kind = SweepWorkload::Kind::kUnitJobs;
  unit.orgs = 4;
  unit.unit_jobs_per_org = 50;
  spec.workloads.push_back(unit);

  spec.instances = 4;      // independent windows per workload
  spec.seed = 7;           // every run derives its seed from (seed, index)
  spec.horizon = 10000;
  spec.baseline = "ref";   // fairness metrics are relative to REF
  spec.threads = 0;        // 0 = hardware concurrency

  const SweepResult result = SweepDriver().run(spec);

  // Aggregates are deterministic: the same spec gives bit-identical cells
  // whatever the thread count.
  TableReporter table(std::cout);
  table.report(spec, result);

  std::printf("\nper-cell detail (policy x workload):\n");
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const SweepCell& cell = result.cells[w][p];
      std::printf("  %-18s on %-10s unfairness %.3f  utilization %.2f\n",
                  spec.policies[p].c_str(), spec.workloads[w].name.c_str(),
                  cell.unfairness.mean(), cell.utilization.mean());
    }
  }
  std::printf("\ntotal simulated run time: %.0f ms across %zu runs\n",
              result.total_wall_ms, result.records.size());
  return 0;
}
