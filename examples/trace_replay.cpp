// Trace replay: run a fair scheduler over a real Standard Workload Format
// (SWF) trace from the Parallel Workload Archive — the exact pipeline of
// the paper's Section 7.2 (parallel jobs expanded to sequential copies,
// users distributed uniformly over organizations, Zipf machine split).
//
// Usage: trace_replay [path/to/trace.swf] [--orgs=5] [--machines=70]
//                     [--algorithm=directcontr] [--duration=50000]
//
// Without an argument a small demonstration trace is generated and written
// to /tmp/fairsched_demo.swf first, so the example is runnable offline.

#include <cstdio>

#include "metrics/utility.h"
#include "exp/policy_registry.h"
#include "util/cli.h"
#include "workload/assignment.h"
#include "workload/swf.h"
#include "workload/synthetic.h"

using namespace fairsched;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::uint32_t orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 5));
  std::uint32_t machines =
      static_cast<std::uint32_t>(flags.get_int("machines", 70));
  const Time duration = flags.get_int("duration", 50000);
  const std::string algorithm =
      flags.get_string("algorithm", "directcontr");

  SwfTrace trace;
  if (!flags.positional().empty()) {
    const std::string path = flags.positional().front();
    std::printf("loading SWF trace %s ...\n", path.c_str());
    trace = load_swf(path);
  } else {
    std::printf("no trace given; generating a demo trace ...\n");
    trace = generate_window(preset_lpc_egee(), duration, 11);
    save_swf("/tmp/fairsched_demo.swf", trace);
    std::printf("  wrote /tmp/fairsched_demo.swf (%zu jobs)\n",
                trace.jobs.size());
  }

  std::printf("trace: %zu jobs, %zu users, %zu header lines\n",
              trace.jobs.size(), trace.users().size(), trace.header.size());

  const Instance inst = instance_from_swf(trace, orgs, machines,
                                          MachineSplit::kZipf, 1.0, 42);
  std::printf("mapped onto %u organizations / %u machines, %zu sequential "
              "jobs\n",
              inst.num_orgs(), inst.total_machines(), inst.num_jobs());

  const RunResult r =
      exp::PolicyRegistry::global().run(inst, algorithm, duration, 1);
  std::printf("\n%s over horizon %lld:\n", algorithm.c_str(),
              static_cast<long long>(duration));
  std::printf("  completed work: %lld unit-parts  (utilization %.1f%%)\n",
              static_cast<long long>(r.work_done),
              100.0 * resource_utilization(inst, r.schedule, duration));
  std::printf("  total flow time of completed jobs: %lld\n",
              static_cast<long long>(total_flow_time(inst, r.schedule,
                                                     duration)));
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    std::printf("  %-6s psi_sp=%12.1f  started %u/%zu jobs\n",
                inst.org(u).name.c_str(),
                static_cast<double>(r.utilities2[u]) / 2.0,
                r.schedule.num_started(u), inst.jobs_of(u).size());
  }
  return 0;
}
