// Coalition analysis: the cooperative-game machinery applied directly.
//
// Answers, for each organization of a consortium: what is its Shapley
// contribution, what does it gain (or lose) versus computing alone, and
// would any pair profit from seceding into a sub-coalition? This is the
// stability analysis that motivates the whole paper — organizations join
// (and stay) only if the system treats them at least as well as going it
// alone.
//
// Usage: coalition_analysis [--orgs=4] [--duration=5000] [--seed=5]

#include <cstdio>

#include "metrics/utility.h"
#include "sched/fcfs.h"
#include "sched/ref.h"
#include "shapley/shapley.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/synthetic.h"

using namespace fairsched;

namespace {

// Characteristic function: the value (total psi_sp at the horizon) of the
// coalition's REF-fair schedule. For singletons any greedy schedule gives
// the same value (there is nothing to arbitrate).
double coalition_value(const Instance& inst, Coalition c, Time horizon) {
  if (c.is_empty()) return 0.0;
  Engine engine(inst, c);
  FcfsPolicy fcfs;
  engine.run(fcfs, horizon);
  return static_cast<double>(engine.value2()) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::uint32_t orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 4));
  const Time duration = flags.get_int("duration", 5000);
  const std::uint64_t seed = flags.get_int("seed", 5);

  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), orgs, duration, MachineSplit::kZipf, 1.0, seed);

  std::printf("consortium of %u organizations, %u machines, %zu jobs\n\n",
              inst.num_orgs(), inst.total_machines(), inst.num_jobs());

  // Shapley contributions from the greedy characteristic function.
  auto v = [&](Coalition c) { return coalition_value(inst, c, duration); };
  const std::vector<double> phi = shapley_exact(orgs, v);

  // REF's realized fair utilities for comparison.
  RefScheduler ref(inst);
  ref.run(duration);
  const auto psi2 = ref.utilities2();

  AsciiTable table({"org", "machines", "jobs", "v(alone)", "Shapley phi",
                    "REF psi", "gain vs alone"});
  for (OrgId u = 0; u < orgs; ++u) {
    const double alone = v(Coalition::singleton(u));
    const double psi = static_cast<double>(psi2[u]) / 2.0;
    table.add_row({inst.org(u).name, std::to_string(inst.machines_of(u)),
                   std::to_string(inst.jobs_of(u).size()),
                   AsciiTable::format_double(alone, 0),
                   AsciiTable::format_double(phi[u], 0),
                   AsciiTable::format_double(psi, 0),
                   AsciiTable::format_double(psi - alone, 0)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Pairwise secession check: would {a, b} be better off alone than with
  // their Shapley payoffs inside the grand coalition?
  std::printf("\npairwise secession analysis (positive = pair would gain "
              "by leaving):\n");
  bool any_blocking = false;
  for (OrgId a = 0; a < orgs; ++a) {
    for (OrgId b = a + 1; b < orgs; ++b) {
      const double pair_value =
          v(Coalition::singleton(a).with(b));
      const double inside = phi[a] + phi[b];
      const double gain = pair_value - inside;
      std::printf("  {%s, %s}: %+.0f\n", inst.org(a).name.c_str(),
                  inst.org(b).name.c_str(), gain);
      if (gain > 1e-9) any_blocking = true;
    }
  }
  std::printf(
      "\n%s\n",
      any_blocking
          ? "Some pair could block — the Shapley division is outside the "
            "core for this instance (possible: the scheduling game is not "
            "supermodular, Prop. 5.5)."
          : "No pair profits from seceding: the Shapley division is "
            "pairwise stable on this instance.");
  return 0;
}
