// Strategy-proofness demo (Section 4): an organization tries to game the
// scheduler by re-packaging its workload. Under the strategy-proof utility
// psi_sp the manipulations do not pay; under flow time they would.
//
// Usage: strategyproof_demo

#include <cstdio>

#include "metrics/utility.h"

using namespace fairsched;

namespace {

void show(const char* label, HalfUtil half) {
  std::printf("  %-34s psi_sp = %.1f\n", label,
              static_cast<double>(half) / 2.0);
}

}  // namespace

int main() {
  const Time t = 30;

  std::printf("one job of length 6 starting at time 2, evaluated at t=%lld\n",
              static_cast<long long>(t));
  const HalfUtil whole = sp_job_half_utility(2, 6, t);
  show("honest: one 6-unit job", whole);

  std::printf("\nmanipulation 1: split into back-to-back pieces\n");
  show("2 pieces (3+3)",
       sp_job_half_utility(2, 3, t) + sp_job_half_utility(5, 3, t));
  show("3 pieces (2+2+2)", sp_job_half_utility(2, 2, t) +
                               sp_job_half_utility(4, 2, t) +
                               sp_job_half_utility(6, 2, t));
  show("6 unit pieces", [&] {
    HalfUtil total = 0;
    for (Time i = 0; i < 6; ++i) total += sp_job_half_utility(2 + i, 1, t);
    return total;
  }());
  std::printf("  -> identical: splitting never pays (strategy-resistance).\n");

  std::printf("\nmanipulation 2: delay the job\n");
  for (Time delay : {0, 1, 5, 20}) {
    const HalfUtil delayed = sp_job_half_utility(2 + delay, 6, t);
    std::printf("  delayed by %2lld: psi_sp = %6.1f (%+.1f)\n",
                static_cast<long long>(delay),
                static_cast<double>(delayed) / 2.0,
                static_cast<double>(delayed - whole) / 2.0);
  }
  std::printf("  -> monotone loss: delaying never pays (axiom 1).\n");

  std::printf("\ncontrast: flow time rewards splitting\n");
  // Two schedules of the same 6 units on one machine, graded by flow time:
  // one job completing at 8 (flow 6) vs six unit jobs completing at
  // 3,4,...,8 (flow 1+2+...+6 = 21 total but *mean* flow 3.5 vs 6) —
  // per-job metrics invite re-packaging, which is what Theorem 4.1 rules
  // out for psi_sp.
  std::printf(
      "  one 6-unit job finishing at 8: mean flow 6.0\n"
      "  six unit jobs finishing 3..8:  mean flow 3.5  (looks 'better'!)\n"
      "  psi_sp for both packagings:    %.1f (identical)\n",
      static_cast<double>(whole) / 2.0);
  return 0;
}
