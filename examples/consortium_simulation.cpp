// Consortium simulation: the paper's motivating scenario. Five research
// organizations federate clusters of very different sizes (Zipf split) and
// submit bursty workloads. We compare every scheduling algorithm's fairness
// against the exponential REF reference and show who gets favored by each.
//
// Usage: consortium_simulation [--orgs=5] [--duration=8000] [--seed=7]

#include <cstdio>

#include "exp/policy_registry.h"
#include "metrics/fairness.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/synthetic.h"

using namespace fairsched;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::uint32_t orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 5));
  const Time duration = flags.get_int("duration", 8000);
  const std::uint64_t seed = flags.get_int("seed", 7);

  const SyntheticSpec spec = preset_lpc_egee();
  const Instance inst = make_synthetic_instance(
      spec, orgs, duration, MachineSplit::kZipf, 1.0, seed);

  std::printf("consortium: %u organizations on %u machines, %zu jobs\n",
              inst.num_orgs(), inst.total_machines(), inst.num_jobs());
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    std::printf("  %-6s machines=%3u jobs=%5zu (share %.2f)\n",
                inst.org(u).name.c_str(), inst.machines_of(u),
                inst.jobs_of(u).size(), inst.share_of(u));
  }

  std::printf("\ncomputing the fair reference (REF, 2^%u subcoalitions)...\n",
              inst.num_orgs());
  const RunResult ref =
      exp::PolicyRegistry::global().run(inst, "ref", duration, seed);

  AsciiTable table({"algorithm", "delta_psi/p_tot", "most favored",
                    "most disfavored"});
  for (const char* alg : {"rand15", "directcontr", "fairshare", "utfairshare",
                          "currfairshare", "roundrobin", "fcfs"}) {
    const RunResult r = exp::PolicyRegistry::global().run(inst, alg, duration,
                                      seed);
    const double ratio =
        unfairness_ratio(r.utilities2, ref.utilities2, ref.work_done);
    const auto report = per_org_report(r.utilities2, ref.utilities2);
    const OrgFairnessReport* best = &report[0];
    const OrgFairnessReport* worst = &report[0];
    for (const auto& entry : report) {
      if (entry.advantage > best->advantage) best = &entry;
      if (entry.advantage < worst->advantage) worst = &entry;
    }
    table.add_row(
        {exp::canonical_policy_name(exp::PolicyRegistry::global().make(alg)),
         AsciiTable::format_double(ratio, 2),
         inst.org(best->org).name + " (+" +
             AsciiTable::format_double(best->advantage, 0) + ")",
         inst.org(worst->org).name + " (" +
             AsciiTable::format_double(worst->advantage, 0) + ")"});
  }
  std::printf("\nfairness against REF (lower delta is fairer):\n");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
