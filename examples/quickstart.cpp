// Quickstart: two organizations pool their clusters; we schedule with the
// DIRECTCONTR fair heuristic and inspect utilities, contributions and the
// schedule.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "metrics/utility.h"
#include "exp/policy_registry.h"

using namespace fairsched;

int main() {
  // --- 1. Describe the consortium ------------------------------------------
  // Organization A brings 2 machines and a burst of short jobs;
  // organization B brings 1 machine and a few long jobs.
  InstanceBuilder builder;
  const OrgId a = builder.add_org("alpha", /*machines=*/2);
  const OrgId b = builder.add_org("beta", /*machines=*/1);
  for (int i = 0; i < 6; ++i) builder.add_job(a, /*release=*/i, /*p=*/3);
  for (int i = 0; i < 3; ++i) builder.add_job(b, /*release=*/2 * i, /*p=*/8);
  const Instance inst = std::move(builder).build();

  // --- 2. Run a fair scheduling algorithm ----------------------------------
  const Time horizon = 40;
  const RunResult result =
      exp::PolicyRegistry::global().run(inst, "directcontr", horizon, /*seed=*/1);

  // --- 3. Inspect the outcome ----------------------------------------------
  std::printf("schedule (%zu placements):\n", result.schedule.size());
  for (const Placement& p : result.schedule.placements()) {
    const Job& job = inst.job(p.org, p.index);
    std::printf("  t=%2lld  %-5s job#%u  (p=%lld) on machine %u\n",
                static_cast<long long>(p.start), inst.org(p.org).name.c_str(),
                p.index, static_cast<long long>(job.processing), p.machine);
  }

  std::printf("\nper-organization outcome at t=%lld:\n",
              static_cast<long long>(horizon));
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    std::printf(
        "  %-5s  psi_sp=%8.1f  completed work=%4lld  utilization share=%.2f\n",
        inst.org(u).name.c_str(),
        static_cast<double>(result.utilities2[u]) / 2.0,
        static_cast<long long>(
            completed_work(inst, result.schedule, horizon)),
        inst.share_of(u));
  }

  // The schedule is a feasible greedy schedule by construction; verify.
  if (auto err = result.schedule.validate(inst, horizon)) {
    std::printf("\nvalidation error: %s\n", err->c_str());
    return 1;
  }
  std::printf("\nschedule validated: machine-exclusive, FIFO, greedy.\n");
  return 0;
}
