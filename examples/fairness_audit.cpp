// Fairness audit: the paper proposes the exponential REF algorithm as a
// *benchmark* for judging production schedulers on small consortia
// ("our exponential algorithm forms a benchmark for comparing the fairness
// of other polynomial-time scheduling algorithms").
//
// This example audits a production-style policy (fair share) on a sequence
// of workload windows, reporting the per-window unfairness and which
// organization systematically loses — the signal an operator would use to
// decide whether distributive fair share is good enough for their system.
//
// Usage: fairness_audit [--windows=8] [--orgs=4] [--duration=4000]
//                       [--algorithm=fairshare]

#include <cstdio>
#include <vector>

#include "metrics/fairness.h"
#include "metrics/trajectory.h"
#include "exp/policy_registry.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/synthetic.h"

using namespace fairsched;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t windows =
      static_cast<std::size_t>(flags.get_int("windows", 8));
  const std::uint32_t orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 4));
  const Time duration = flags.get_int("duration", 4000);
  const std::string audited =
      flags.get_string("algorithm", "fairshare");

  std::printf("auditing '%s' against the REF fairness benchmark\n",
              audited.c_str());
  AsciiTable table({"window", "delta_psi/p_tot", "max advantage org",
                    "max deficit org"});
  StatsAccumulator ratios;
  std::vector<double> cumulative_advantage(orgs, 0.0);

  for (std::size_t w = 0; w < windows; ++w) {
    const Instance inst = make_synthetic_instance(
        preset_lpc_egee(), orgs, duration, MachineSplit::kZipf, 1.0,
        1000 + w);
    const RunResult ref =
        exp::PolicyRegistry::global().run(inst, "ref", duration, w);
    const RunResult r =
        exp::PolicyRegistry::global().run(inst, audited, duration, w);
    const double ratio =
        unfairness_ratio(r.utilities2, ref.utilities2, ref.work_done);
    ratios.add(ratio);
    const auto report = per_org_report(r.utilities2, ref.utilities2);
    std::size_t best = 0, worst = 0;
    for (std::size_t u = 0; u < report.size(); ++u) {
      cumulative_advantage[u] += report[u].advantage;
      if (report[u].advantage > report[best].advantage) best = u;
      if (report[u].advantage < report[worst].advantage) worst = u;
    }
    table.add_row({std::to_string(w), AsciiTable::format_double(ratio, 2),
                   inst.org(static_cast<OrgId>(best)).name,
                   inst.org(static_cast<OrgId>(worst)).name});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nmean unfairness: %.2f (stdev %.2f) time units per unit of "
              "work\n",
              ratios.mean(), ratios.stdev());
  std::printf("cumulative advantage vs fair (time-unit-weighted):\n");
  for (std::uint32_t u = 0; u < orgs; ++u) {
    std::printf("  org%u: %+.1f\n", u, cumulative_advantage[u]);
  }
  std::printf(
      "\nReading: persistent positive advantage means the audited policy\n"
      "systematically favors that organization relative to the Shapley-fair\n"
      "division; an operator would tighten shares or switch algorithms.\n");

  // Fairness-debt trajectory over one window: Definition 3.1 demands
  // fairness at *every* moment, not just at the horizon.
  {
    const Instance inst = make_synthetic_instance(
        preset_lpc_egee(), orgs, duration, MachineSplit::kZipf, 1.0, 1000);
    const RunResult ref =
        exp::PolicyRegistry::global().run(inst, "ref", duration, 0);
    const RunResult r =
        exp::PolicyRegistry::global().run(inst, audited, duration, 0);
    const auto times = even_sample_times(duration, 8);
    const auto series =
        unfairness_trajectory(inst, r.schedule, ref.schedule, times);
    std::printf("\nunfairness trajectory over window 0 (delta_psi/p_tot):\n");
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::printf("  t=%6lld: %8.2f\n", static_cast<long long>(times[i]),
                  series[i]);
    }
  }
  return 0;
}
