#include "exp/sweep_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/json.h"
#include "util/rng.h"

namespace fairsched::exp {

namespace {

std::string exact(double v) { return json_exact_double(v); }

// Binds one axis value onto the workload parameters shared by every policy
// of the cell. kHorizon (per-point horizon) and kPolicyParam (per-point
// PolicySpec parameters) do not touch the workload and are bound
// separately.
void apply_axis_value(const SweepAxis& axis, double value, SweepWorkload& w) {
  switch (axis.bind) {
    case SweepAxis::Bind::kOrgs:
      w.orgs = static_cast<std::uint32_t>(value);
      break;
    case SweepAxis::Bind::kZipfS:
      w.zipf_s = value;
      break;
    case SweepAxis::Bind::kSplit:
      w.split = value == 0.0 ? MachineSplit::kZipf : MachineSplit::kUniform;
      break;
    case SweepAxis::Bind::kUnitJobsPerOrg:
      w.unit_jobs_per_org = static_cast<std::uint32_t>(value);
      break;
    case SweepAxis::Bind::kRandomJobs:
      w.random_jobs = static_cast<std::size_t>(value);
      break;
    case SweepAxis::Bind::kHorizon:
    case SweepAxis::Bind::kPolicyParam:
    case SweepAxis::Bind::kStrategy:
    case SweepAxis::Bind::kDeviatorOrg:
    case SweepAxis::Bind::kDeviationParam:
      break;
  }
}

void validate_axis(const SweepSpec& spec, const SweepAxis& axis,
                   const PolicyRegistry& registry) {
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("sweep '" + spec.name + "': axis '" +
                                axis.name + "' " + why);
  };
  if (axis.name.empty()) fail("has no name");
  if (axis.values.empty()) fail("has no values");
  if (axis.scope == SweepAxis::Scope::kPolicy &&
      default_axis_scope(axis.bind) != SweepAxis::Scope::kPolicy) {
    // A policy-scoped axis shares one generated instance across all its
    // values; an axis that reshapes the workload (or horizon) must not,
    // or every non-representative value would simulate the wrong world.
    fail("cannot be policy-scoped: its bind reshapes the workload");
  }
  // Strategy scope and the strategy binds imply each other: a strategy
  // axis shares the honest prefix across its values, which is only sound
  // for binds that transform the declared job stream after the honest
  // instance exists — and those binds must never be grouped any other way.
  if ((axis.scope == SweepAxis::Scope::kStrategy) !=
      (default_axis_scope(axis.bind) == SweepAxis::Scope::kStrategy)) {
    fail(axis.scope == SweepAxis::Scope::kStrategy
             ? "cannot be strategy-scoped: its bind is not a strategy bind"
             : "is a strategy bind and must keep strategy scope");
  }
  for (double v : axis.values) {
    if (axis.integral) {
      // Range-check before the round-trip cast: double -> integer overflow
      // is undefined behavior, and an out-of-range orgs value would
      // otherwise silently simulate a different consortium than the CSV
      // row is labeled with. kOrgs/kUnitJobsPerOrg/kRandomJobs bind onto
      // 32-bit fields; kHorizon and int-typed policy parameters onto
      // 64-bit ones.
      const double limit = axis.bind == SweepAxis::Bind::kHorizon ||
                                   axis.bind ==
                                       SweepAxis::Bind::kPolicyParam
                               ? 9.0e18
                               : 4294967295.0;  // uint32 max
      if (!(v >= 0 && v <= limit) ||
          v != static_cast<double>(static_cast<std::int64_t>(v))) {
        fail("requires integer values in [0, " +
             std::to_string(static_cast<std::int64_t>(limit)) + "], got " +
             std::to_string(v));
      }
    }
    switch (axis.bind) {
      case SweepAxis::Bind::kOrgs:
      case SweepAxis::Bind::kHorizon:
      case SweepAxis::Bind::kUnitJobsPerOrg:
        if (v < 1) fail("values must be >= 1");
        break;
      case SweepAxis::Bind::kZipfS:
        if (!(v >= 0)) fail("values must be non-negative");
        break;
      case SweepAxis::Bind::kSplit:
        if (v != 0.0 && v != 1.0) {
          fail("values must be 0 (zipf) or 1 (uniform)");
        }
        break;
      case SweepAxis::Bind::kRandomJobs:
        if (v < 0) fail("values must be non-negative");
        break;
      case SweepAxis::Bind::kStrategy:
        if (v < 0 || static_cast<std::size_t>(v) >= spec.deviations.size()) {
          fail("value " + std::to_string(static_cast<std::int64_t>(v)) +
               " is outside the deviation grid [0, " +
               std::to_string(spec.deviations.size()) +
               ") (declare deviations via the strategy subcommand or a "
               "[strategy] config block)");
        }
        break;
      case SweepAxis::Bind::kDeviatorOrg:
        if (v < 0) fail("values must be non-negative org indices");
        break;
      case SweepAxis::Bind::kDeviationParam:
        if (v < 0) fail("values must be non-negative");
        break;
      case SweepAxis::Bind::kPolicyParam:
        // Checked against each declaring policy's parameter range, so the
        // error can name both the axis and the declaration it violates.
        for (const std::string& name : spec.policies) {
          const PolicySpec policy = registry.make(name);
          const ParamDecl* decl =
              registry.param_for_axis(policy.base, axis.name);
          if (decl && !decl->in_range(v)) {
            fail("value " + PolicyParam::of_real(v).to_string() +
                 " is out of range for policy '" + name +
                 "' parameter '" + decl->key + "' (must be " +
                 decl->range_text() + ")");
          }
        }
        break;
    }
  }
}

// The canonical string the plan fingerprint hashes: every spec dimension
// that shapes output, nothing that only shapes execution (threads, cache
// budget/dir, title/note). v2 (the open policy API): policies and the
// baseline contribute their registry *content keys* — which embed a
// config-defined policy's whole definition — not just their names, so two
// processes that loaded different definitions of one policy name can
// never produce merge-compatible fingerprints.
std::string fingerprint_content(const SweepPlan& plan) {
  const SweepSpec& spec = plan.spec;
  std::string content =
      "plan|v2|name=" + spec.name +
      "|instances=" + std::to_string(spec.instances) +
      "|seed=" + std::to_string(spec.seed) +
      "|horizon=" + std::to_string(spec.horizon) + "|baseline=" +
      (plan.has_baseline ? plan.registry->content_key(plan.baseline)
                         : std::string("none"));
  for (const PolicySpec& policy : plan.algorithms) {
    content += "|policy=" + plan.registry->content_key(policy);
  }
  for (const SweepWorkload& workload : spec.workloads) {
    content += "|workload=" +
               workload_content_key(workload, spec.horizon, spec.seed);
  }
  for (const SweepAxis& axis : spec.axes) {
    content += "|axis=" + axis.name;
    content += std::string("|scope=") + axis_scope_name(axis.scope);
    for (double v : axis.values) content += "," + exact(v);
  }
  // Appended only for strategy sweeps, so every pre-strategy fingerprint
  // is unchanged. The grid order matters (strategy axis values index it).
  for (const strategy::DeviationSpec& dev : spec.deviations) {
    content += "|deviation=" + deviation_kind_name(dev.kind) + ":" +
               std::to_string(dev.param);
  }
  return content;
}

}  // namespace

SweepShard parse_shard_spec(const std::string& text) {
  if (text.empty()) return {};
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("malformed shard spec '" + text + "': " +
                                why + " (want --shard=INDEX/COUNT, e.g. "
                                "--shard=0/3)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) fail("missing '/'");
  auto parse_part = [&](const std::string& part, const char* what) {
    if (part.empty()) fail(std::string(what) + " is empty");
    for (char c : part) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        fail(std::string(what) + " '" + part +
             "' is not a non-negative integer");
      }
    }
    if (part.size() > 9) fail(std::string(what) + " '" + part + "' is huge");
    return static_cast<std::size_t>(std::stoul(part));
  };
  SweepShard shard;
  shard.index = parse_part(text.substr(0, slash), "shard index");
  shard.count = parse_part(text.substr(slash + 1), "shard count");
  if (shard.count == 0) fail("shard count must be >= 1");
  if (shard.index >= shard.count) {
    fail("shard index " + std::to_string(shard.index) +
         " must be < count " + std::to_string(shard.count));
  }
  return shard;
}

std::string synthetic_content_key(const SyntheticSpec& s) {
  return "syn:" + std::to_string(s.total_machines) + "," +
         std::to_string(s.users) + "," + exact(s.session_rate) + "," +
         exact(s.mean_batch) + "," + exact(s.batch_spacing) + "," +
         exact(s.job_mu) + "," + exact(s.job_sigma) + "," +
         std::to_string(s.min_job) + "," + std::to_string(s.max_job) +
         "," + exact(s.load_jitter_sigma) + "," +
         std::to_string(s.jitter_period) + "," +
         exact(s.user_weight_sigma) + "," + exact(s.user_mu_sigma);
}

std::string workload_content_key(const SweepWorkload& workload, Time horizon,
                                 std::uint64_t seed) {
  std::string key =
      "wl:" + std::to_string(static_cast<int>(workload.kind)) + ":";
  switch (workload.kind) {
    case SweepWorkload::Kind::kSynthetic:
      key += synthetic_content_key(workload.spec) +
             ":orgs=" + std::to_string(workload.orgs) +
             ":split=" + std::to_string(static_cast<int>(workload.split)) +
             ":zipf=" + exact(workload.zipf_s);
      break;
    case SweepWorkload::Kind::kUnitJobs:
      key += "unit:orgs=" + std::to_string(workload.orgs) +
             ":jobs=" + std::to_string(workload.unit_jobs_per_org);
      break;
    case SweepWorkload::Kind::kSmallRandom:
      key += "smallrandom:jobs=" + std::to_string(workload.random_jobs);
      break;
  }
  key += ":horizon=" + std::to_string(horizon) +
         ":seed=" + std::to_string(seed);
  return key;
}

SweepPlan build_sweep_plan(const SweepSpec& spec,
                           const PolicyRegistry& registry, SweepShard shard) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no policies");
  }
  if (spec.workloads.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no workloads");
  }
  if (spec.instances == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "': no instances");
  }
  for (const SweepAxis& axis : spec.axes) {
    validate_axis(spec, axis, registry);
    for (const SweepAxis& other : spec.axes) {
      if (&axis != &other && axis.name == other.name) {
        throw std::invalid_argument("sweep '" + spec.name +
                                    "': duplicate axis '" + axis.name + "'");
      }
    }
  }

  SweepPlan plan;
  plan.spec = spec;
  plan.shard = shard;
  plan.registry = &registry;

  // Resolve every name up front so a typo fails before hours of compute.
  plan.algorithms.reserve(spec.policies.size());
  for (const std::string& name : spec.policies) {
    plan.algorithms.push_back(registry.make(name));
  }
  plan.has_baseline = !spec.baseline.empty();
  if (plan.has_baseline) plan.baseline = registry.make(spec.baseline);

  plan.num_points = num_axis_points(spec);
  plan.num_workloads = spec.workloads.size();
  plan.num_policies = spec.policies.size();
  plan.num_tasks = plan.num_points * plan.num_workloads * spec.instances;

  // Bind every axis point up front: per point the horizon and the policy
  // specs (kPolicyParam axes, routed through the registry's parameter
  // declarations), per (point, workload) the workload parameters. All
  // O(cells), never O(runs).
  plan.horizons.assign(plan.num_points, spec.horizon);
  plan.bound_algorithms.resize(plan.num_points * plan.num_policies);
  plan.bound_workloads.resize(plan.num_points * plan.num_workloads);
  for (std::size_t a = 0; a < plan.num_points; ++a) {
    const std::vector<double> values = axis_point_values(spec, a);
    for (std::size_t p = 0; p < plan.num_policies; ++p) {
      PolicySpec alg = plan.algorithms[p];
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        if (spec.axes[j].bind == SweepAxis::Bind::kPolicyParam) {
          registry.bind_axis_value(alg, spec.axes[j].name, values[j]);
        }
      }
      plan.bound_algorithms[a * plan.num_policies + p] = alg;
    }
    for (std::size_t j = 0; j < spec.axes.size(); ++j) {
      if (spec.axes[j].bind == SweepAxis::Bind::kHorizon) {
        plan.horizons[a] = static_cast<Time>(values[j]);
      }
    }
    for (std::size_t w = 0; w < plan.num_workloads; ++w) {
      SweepWorkload workload = spec.workloads[w];
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        apply_axis_value(spec.axes[j], values[j], workload);
      }
      plan.bound_workloads[a * plan.num_workloads + w] = std::move(workload);
    }
  }

  // Strategy resolution: the effective (deviation, deviator) of every axis
  // point, plus the cross-field checks single-axis validation cannot do.
  {
    bool has_strategy_axis = false;
    bool has_other_strategy_axis = false;
    for (const SweepAxis& axis : spec.axes) {
      has_strategy_axis |= axis.bind == SweepAxis::Bind::kStrategy;
      has_other_strategy_axis |=
          axis.bind == SweepAxis::Bind::kDeviatorOrg ||
          axis.bind == SweepAxis::Bind::kDeviationParam;
    }
    if (has_strategy_axis && spec.deviations.empty()) {
      // Unreachable past validate_axis (an empty grid rejects every id),
      // but the message is the one a bare axis misuse should see.
      throw std::invalid_argument(
          "sweep '" + spec.name + "': a strategy axis needs a deviation "
          "grid (use the strategy subcommand or a [strategy] config block)");
    }
    if (!has_strategy_axis && (spec.is_strategy() ||
                               has_other_strategy_axis)) {
      throw std::invalid_argument(
          "sweep '" + spec.name + "': deviator-org/deviation-param axes "
          "and deviation grids apply only with a strategy axis");
    }
    plan.point_deviations.assign(plan.num_points,
                                 strategy::DeviationSpec{});
    plan.point_deviators.assign(plan.num_points, 0);
    if (spec.is_strategy()) {
      bool has_honest = false;
      for (const strategy::DeviationSpec& dev : spec.deviations) {
        strategy::validate_deviation(dev);
        has_honest |= dev.kind == strategy::DeviationSpec::Kind::kHonest;
      }
      if (!has_honest) {
        throw std::invalid_argument(
            "sweep '" + spec.name + "': the deviation grid needs an "
            "honest entry (the manipulation-gain reference)");
      }
      for (std::size_t a = 0; a < plan.num_points; ++a) {
        plan.point_deviations[a] = sweep_point_deviation(spec, a);
        plan.point_deviators[a] = sweep_point_deviator(spec, a);
      }
      for (std::size_t a = 0; a < plan.num_points; ++a) {
        for (std::size_t w = 0; w < plan.num_workloads; ++w) {
          const SweepWorkload& workload =
              plan.bound_workloads[a * plan.num_workloads + w];
          if (workload.kind == SweepWorkload::Kind::kSmallRandom) {
            // Its org count is drawn per instance, so no deviator index
            // can be validated (or held fixed) across the sweep.
            throw std::invalid_argument(
                "sweep '" + spec.name + "': workload '" + workload.name +
                "' draws a random org count and cannot host a strategy "
                "sweep");
          }
          if (plan.point_deviators[a] >= workload.orgs) {
            throw std::invalid_argument(
                "sweep '" + spec.name + "': deviator org " +
                std::to_string(plan.point_deviators[a]) +
                " is out of range for workload '" + workload.name +
                "' (" + std::to_string(workload.orgs) + " orgs)");
          }
        }
      }
    }
  }

  // Group axis points sharing every workload-scoped axis value: points of
  // a group differ only in policy-scoped values, so for a fixed (workload,
  // instance) they share the generated instance, the baseline run, and the
  // runs of every policy whose bound spec the group does not vary.
  plan.group_of.assign(plan.num_points, 0);
  {
    std::map<std::vector<double>, std::size_t> index;
    for (std::size_t a = 0; a < plan.num_points; ++a) {
      const std::vector<double> values = axis_point_values(spec, a);
      std::vector<double> key;
      key.reserve(values.size());
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        if (spec.axes[j].scope == SweepAxis::Scope::kWorkload) {
          key.push_back(values[j]);
        }
      }
      const auto [it, inserted] =
          index.try_emplace(std::move(key), plan.group_rep.size());
      if (inserted) {
        plan.group_rep.push_back(a);
        plan.group_size.push_back(0);
      }
      plan.group_of[a] = it->second;
      ++plan.group_size[it->second];
    }
  }
  plan.num_groups = plan.group_rep.size();

  // Per (group, policy): slot of the policy's record inside the group's
  // cached prefix, or kNoSlot when the policy's bound spec varies within
  // the group (the policy-dependent suffix, re-run per axis point).
  plan.shared_slot.assign(plan.num_groups * plan.num_policies,
                          SweepPlan::kNoSlot);
  std::vector<char> invariant(plan.num_groups * plan.num_policies, 1);
  for (std::size_t a = 0; a < plan.num_points; ++a) {
    const std::size_t g = plan.group_of[a];
    // A policy run is only group-invariant where the played deviation is
    // too: strategy axes vary the declared job stream within a group (by
    // design — that is what shares the honest prefix), so their points
    // must re-run every policy rather than replay the representative's.
    const bool strategy_invariant =
        plan.point_deviations[a] ==
            plan.point_deviations[plan.group_rep[g]] &&
        plan.point_deviators[a] == plan.point_deviators[plan.group_rep[g]];
    for (std::size_t p = 0; p < plan.num_policies; ++p) {
      invariant[g * plan.num_policies + p] &=
          strategy_invariant &&
          plan.bound_algorithms[a * plan.num_policies + p] ==
              plan.bound_algorithms[plan.group_rep[g] * plan.num_policies +
                                    p];
    }
  }
  // Strategy sweeps share the prefix (instance + honest baseline) across
  // the whole deviation grid but never policy records: the persisted
  // prefix payload does not carry strategy gradings, and a grid with a
  // single repeated deviation is not worth a payload-shape fork.
  if (!spec.is_strategy()) {
    for (std::size_t g = 0; g < plan.num_groups; ++g) {
      std::size_t slot = 0;
      for (std::size_t p = 0; p < plan.num_policies; ++p) {
        if (invariant[g * plan.num_policies + p]) {
          plan.shared_slot[g * plan.num_policies + p] = slot++;
        }
      }
    }
  }

  // A policy-scoped axis must bind some selected policy, or it sweeps
  // every cell into identical copies — a config error worth failing
  // loudly on, not silently cache-deduplicating. Bindings are derived
  // from the registry's parameter declarations: the axis is live exactly
  // when a selected policy's entry declares a parameter bound to it
  // (which is also what bind_axis_value rebinds above — declarations and
  // reality cannot drift apart).
  std::string inert_axes;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.scope != SweepAxis::Scope::kPolicy) continue;
    bool declared = false;
    for (const PolicySpec& policy : plan.algorithms) {
      declared |=
          registry.param_for_axis(policy.base, axis.name) != nullptr;
    }
    if (!declared) {
      if (!inert_axes.empty()) inert_axes += "', '";
      inert_axes += axis.name;
    }
  }
  if (!inert_axes.empty()) {
    throw std::invalid_argument(
        "sweep '" + spec.name + "': axis '" + inert_axes +
        "' binds no selected policy (e.g. half-life needs a "
        "decayfairshare entry); add such a policy or drop the axis");
  }

  // Shard ownership: tasks of the families `shard` owns, ascending (the
  // shard's fold order), plus this shard's planned uses of each synthetic
  // window key — the number of owned (group, workload) families per
  // (workload, horizon), since each one's prefix computes ask for the
  // window once per instance.
  plan.shard_tasks.reserve(shard.whole()
                               ? plan.num_tasks
                               : plan.num_tasks / shard.count + 1);
  for (std::size_t t = 0; t < plan.num_tasks; ++t) {
    if (plan.owns_task(t)) plan.shard_tasks.push_back(t);
  }
  for (std::size_t g = 0; g < plan.num_groups; ++g) {
    for (std::size_t w = 0; w < plan.num_workloads; ++w) {
      if (plan.shard_of_family(g * plan.num_workloads + w) != shard.index) {
        continue;
      }
      ++plan.window_uses[{w, plan.horizons[plan.group_rep[g]]}];
    }
  }

  plan.fingerprint = hash_fnv1a64(fingerprint_content(plan));
  return plan;
}

void write_spec_summary_json(std::ostream& out, const SweepSpec& spec,
                             const std::string& indent) {
  const std::string inner = indent + "  ";
  out << "{\n";
  out << inner << "\"name\": \"" << json_escape(spec.name) << "\",\n";
  out << inner << "\"title\": \"" << json_escape(spec.title) << "\",\n";
  out << inner << "\"note\": \"" << json_escape(spec.note) << "\",\n";
  out << inner << "\"instances\": " << spec.instances << ",\n";
  out << inner << "\"seed\": " << spec.seed << ",\n";
  out << inner << "\"horizon\": " << spec.horizon << ",\n";
  out << inner << "\"baseline\": \"" << json_escape(spec.baseline)
      << "\",\n";
  out << inner << "\"policies\": [";
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    if (p) out << ", ";
    out << '"' << json_escape(spec.policies[p]) << '"';
  }
  out << "],\n";
  out << inner << "\"workloads\": [";
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    if (w) out << ", ";
    out << '"' << json_escape(spec.workloads[w].name) << '"';
  }
  out << "],\n";
  // Additive schema: only strategy sweeps carry a deviation grid, so every
  // pre-strategy artifact byte stays put.
  if (spec.is_strategy()) {
    out << inner << "\"deviations\": [";
    for (std::size_t d = 0; d < spec.deviations.size(); ++d) {
      if (d) out << ", ";
      out << '"' << json_escape(deviation_label(spec.deviations[d])) << '"';
    }
    out << "],\n";
  }
  out << inner << "\"axes\": [";
  for (std::size_t j = 0; j < spec.axes.size(); ++j) {
    const SweepAxis& axis = spec.axes[j];
    if (j) out << ", ";
    // "integral" lets a reader reconstruct labels for a policy-parameter
    // axis its own registry does not know (a config-defined policy's
    // parameter read back by `merge` without the config file).
    out << "{\"name\": \"" << json_escape(axis.name) << "\", \"scope\": \""
        << axis_scope_name(axis.scope) << "\", \"integral\": "
        << (axis.integral ? "true" : "false") << ", \"values\": [";
    for (std::size_t v = 0; v < axis.values.size(); ++v) {
      if (v) out << ", ";
      out << exact(axis.values[v]);
    }
    out << "]";
    if (!axis.value_labels.empty()) {
      out << ", \"labels\": [";
      for (std::size_t v = 0; v < axis.value_labels.size(); ++v) {
        if (v) out << ", ";
        out << '"' << json_escape(axis.value_labels[v]) << '"';
      }
      out << "]";
    }
    out << "}";
  }
  out << "]\n" << indent << "}";
}

SweepSpec spec_from_summary_json(const JsonValue& summary) {
  SweepSpec spec;
  spec.name = summary.at("name").as_string();
  spec.title = summary.at("title").as_string();
  spec.note = summary.at("note").as_string();
  spec.instances = static_cast<std::size_t>(summary.at("instances")
                                                .as_uint());
  spec.seed = summary.at("seed").as_uint();
  spec.horizon = summary.at("horizon").as_int();
  spec.baseline = summary.at("baseline").as_string();
  for (const JsonValue& policy : summary.at("policies").items()) {
    spec.policies.push_back(policy.as_string());
  }
  for (const JsonValue& name : summary.at("workloads").items()) {
    // Only the reporter-visible name survives the artifact round trip;
    // the generator parameters do not, so a reconstructed spec reports a
    // finished sweep but cannot re-run one.
    SweepWorkload workload;
    workload.name = name.as_string();
    spec.workloads.push_back(std::move(workload));
  }
  if (const JsonValue* deviations = summary.find("deviations")) {
    for (const JsonValue& dev : deviations->items()) {
      spec.deviations.push_back(strategy::parse_deviation(dev.as_string()));
    }
  }
  for (const JsonValue& axis_json : summary.at("axes").items()) {
    std::vector<double> values;
    for (const JsonValue& v : axis_json.at("values").items()) {
      values.push_back(v.as_double());
    }
    const std::string name = axis_json.at("name").as_string();
    SweepAxis axis;
    try {
      axis = make_axis(name, values);
    } catch (const std::invalid_argument&) {
      // A policy-parameter axis of a policy this process has not loaded
      // (e.g. `merge` without the defining --config). Reporting needs
      // only the name, values and label form, all of which the summary
      // carries; the axis cannot be re-executed, matching the rest of
      // the reconstructed spec.
      axis.name = name;
      axis.bind = SweepAxis::Bind::kPolicyParam;
      axis.param = name;
      axis.values = std::move(values);
    }
    // The writing process's label form wins over this process's catalog
    // (absent in pre-redesign artifacts, whose axes make_axis resolves).
    if (const JsonValue* integral = axis_json.find("integral")) {
      axis.integral = integral->as_bool();
    }
    if (const JsonValue* labels = axis_json.find("labels")) {
      for (const JsonValue& label : labels->items()) {
        axis.value_labels.push_back(label.as_string());
      }
    }
    const std::string& scope = axis_json.at("scope").as_string();
    if (scope == "workload") {
      axis.scope = SweepAxis::Scope::kWorkload;
    } else if (scope == "policy") {
      axis.scope = SweepAxis::Scope::kPolicy;
    } else if (scope == "strategy") {
      axis.scope = SweepAxis::Scope::kStrategy;
    } else {
      throw std::invalid_argument("bad axis scope '" + scope + "'");
    }
    spec.axes.push_back(std::move(axis));
  }
  return spec;
}

void write_plan_json(std::ostream& out, const SweepPlan& plan,
                     bool include_tasks) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(plan.fingerprint));
  out << "{\n";
  out << "  \"format\": \"fairsched-sweep-plan\",\n";
  // Version 2: the open policy API — fingerprints hash policy *content
  // keys* (registry definitions included), not just policy names.
  out << "  \"version\": 2,\n";
  out << "  \"fingerprint\": \"" << fp << "\",\n";
  out << "  \"shard\": {\"index\": " << plan.shard.index
      << ", \"count\": " << plan.shard.count << "},\n";
  out << "  \"spec\": ";
  write_spec_summary_json(out, plan.spec, "  ");
  out << ",\n";
  out << "  \"axis_points\": " << plan.num_points << ",\n";
  out << "  \"prefix_groups\": " << plan.num_groups << ",\n";
  out << "  \"tasks\": " << plan.num_tasks << ",\n";
  out << "  \"runs\": " << plan.num_tasks * plan.num_policies << ",\n";
  out << "  \"runs_per_task\": " << plan.num_policies << ",\n";
  out << "  \"shard_tasks\": " << plan.shard_tasks.size() << ",\n";
  out << "  \"groups\": [\n";
  for (std::size_t g = 0; g < plan.num_groups; ++g) {
    out << "    {\"group\": " << g
        << ", \"representative_point\": " << plan.group_rep[g]
        << ", \"points\": " << plan.group_size[g] << "}"
        << (g + 1 < plan.num_groups ? ",\n" : "\n");
  }
  out << "  ]";
  if (include_tasks) {
    out << ",\n  \"task_list\": [\n";
    for (std::size_t t = 0; t < plan.num_tasks; ++t) {
      const std::size_t a = plan.task_point(t);
      const std::size_t w = plan.task_workload(t);
      const std::size_t i = plan.task_instance(t);
      const std::size_t family = plan.family_of_task(t);
      out << "    {\"task\": " << t << ", \"point\": " << a
          << ", \"workload\": " << w << ", \"instance\": " << i
          << ", \"seed\": "
          << mix_seed(plan.spec.seed, w * plan.spec.instances + i)
          << ", \"group\": " << plan.group_of[a]
          << ", \"family\": " << family
          << ", \"shard\": " << plan.shard_of_family(family)
          << ", \"first_run\": " << plan.run_id(t, 0) << "}"
          << (t + 1 < plan.num_tasks ? ",\n" : "\n");
    }
    out << "  ]";
  }
  out << "\n}\n";
}

}  // namespace fairsched::exp
