#include "exp/sweep.h"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fairsched::exp {

namespace {

Instance make_unit_instance(std::uint32_t orgs, std::uint32_t jobs_per_org,
                            std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  for (std::uint32_t u = 0; u < orgs; ++u) {
    b.add_org("o" + std::to_string(u),
              1 + static_cast<std::uint32_t>(rng.uniform_u64(2)));
  }
  for (std::uint32_t u = 0; u < orgs; ++u) {
    for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
      b.add_job(u, static_cast<Time>(rng.uniform_u64(50)), 1);
    }
  }
  return std::move(b).build();
}

Instance make_small_random_instance(std::size_t base_jobs,
                                    std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_u64(3));
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o", 1 + static_cast<std::uint32_t>(rng.uniform_u64(3)));
  }
  const std::size_t jobs = base_jobs + rng.uniform_u64(40);
  for (std::size_t j = 0; j < jobs; ++j) {
    b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
              static_cast<Time>(rng.uniform_u64(40)),
              1 + static_cast<Time>(rng.uniform_u64(20)));
  }
  return std::move(b).build();
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Instance make_workload_instance(const SweepWorkload& workload, Time horizon,
                                std::uint64_t seed) {
  switch (workload.kind) {
    case SweepWorkload::Kind::kSynthetic:
      return make_synthetic_instance(workload.spec, workload.orgs, horizon,
                                     workload.split, workload.zipf_s, seed);
    case SweepWorkload::Kind::kUnitJobs:
      return make_unit_instance(workload.orgs, workload.unit_jobs_per_org,
                                seed);
    case SweepWorkload::Kind::kSmallRandom:
      return make_small_random_instance(workload.random_jobs, seed);
  }
  throw std::logic_error("make_workload_instance: unknown workload kind");
}

const RunRecord& SweepResult::record(const SweepSpec& spec,
                                     std::size_t workload,
                                     std::size_t instance,
                                     std::size_t policy) const {
  return records[(workload * spec.instances + instance) *
                     spec.policies.size() +
                 policy];
}

SweepResult SweepDriver::run(const SweepSpec& spec, Progress progress) const {
  if (spec.policies.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no policies");
  }
  if (spec.workloads.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no workloads");
  }
  if (spec.instances == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "': no instances");
  }
  // Resolve every name up front so a typo fails before hours of compute.
  std::vector<AlgorithmSpec> algorithms;
  algorithms.reserve(spec.policies.size());
  for (const std::string& name : spec.policies) {
    algorithms.push_back(registry_.make(name));
  }
  const bool has_baseline = !spec.baseline.empty();
  const AlgorithmSpec baseline =
      has_baseline ? registry_.make(spec.baseline) : AlgorithmSpec{};

  const std::size_t num_policies = spec.policies.size();
  const std::size_t num_tasks = spec.workloads.size() * spec.instances;

  SweepResult result;
  result.records.resize(num_tasks * num_policies);
  std::vector<double> baseline_walls(num_tasks, 0.0);

  std::mutex progress_mu;
  ThreadPool pool(spec.threads);
  // One task per (workload, instance): the window and its baseline are
  // computed once and shared by every policy. Records land at fixed indices,
  // so no lock is needed on the result and aggregation order is independent
  // of scheduling order.
  pool.parallel_for(num_tasks, [&](std::size_t task) {
    const std::size_t w = task / spec.instances;
    const std::size_t i = task % spec.instances;
    const SweepWorkload& workload = spec.workloads[w];
    const std::uint64_t seed = mix_seed(spec.seed, task);

    const Instance inst = make_workload_instance(workload, spec.horizon, seed);

    RunResult ref;
    if (has_baseline) {
      const auto t0 = std::chrono::steady_clock::now();
      ref = run_algorithm(inst, baseline, spec.horizon, seed);
      baseline_walls[task] = elapsed_ms(t0);
    }

    for (std::size_t p = 0; p < num_policies; ++p) {
      const auto t0 = std::chrono::steady_clock::now();
      const RunResult r =
          run_algorithm(inst, algorithms[p], spec.horizon, seed);
      RunRecord& record = result.records[task * num_policies + p];
      record.workload = w;
      record.policy = p;
      record.instance = i;
      record.seed = seed;
      record.wall_ms = elapsed_ms(t0);
      record.work_done = r.work_done;
      record.utilization =
          resource_utilization(inst, r.schedule, spec.horizon);
      if (has_baseline) {
        record.unfairness =
            unfairness_ratio(r.utilities2, ref.utilities2, ref.work_done);
        record.rel_distance = relative_distance(r.utilities2, ref.utilities2);
      }
    }

    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(workload.name + " #" + std::to_string(i));
    }
  });

  // Sequential fold in record order: identical floats for 1 or N threads.
  result.cells.assign(spec.workloads.size(),
                      std::vector<SweepCell>(num_policies));
  for (const RunRecord& record : result.records) {
    SweepCell& cell = result.cells[record.workload][record.policy];
    cell.unfairness.add(record.unfairness);
    cell.rel_distance.add(record.rel_distance);
    cell.utilization.add(record.utilization);
    cell.wall_ms += record.wall_ms;
    result.total_wall_ms += record.wall_ms;
  }
  for (double wall : baseline_walls) {
    result.baseline_wall_ms += wall;
    result.total_wall_ms += wall;
  }
  return result;
}

}  // namespace fairsched::exp
