#include "exp/sweep.h"

#include <cctype>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "exp/executor.h"
#include "exp/sweep_plan.h"
#include "util/cli.h"
#include "util/rng.h"

namespace fairsched::exp {

namespace {

Instance make_unit_instance(std::uint32_t orgs, std::uint32_t jobs_per_org,
                            std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  for (std::uint32_t u = 0; u < orgs; ++u) {
    b.add_org("o" + std::to_string(u),
              1 + static_cast<std::uint32_t>(rng.uniform_u64(2)));
  }
  for (std::uint32_t u = 0; u < orgs; ++u) {
    for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
      b.add_job(u, static_cast<Time>(rng.uniform_u64(50)), 1);
    }
  }
  return std::move(b).build();
}

Instance make_small_random_instance(std::size_t base_jobs,
                                    std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_u64(3));
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o", 1 + static_cast<std::uint32_t>(rng.uniform_u64(3)));
  }
  const std::size_t jobs = base_jobs + rng.uniform_u64(40);
  for (std::size_t j = 0; j < jobs; ++j) {
    b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
              static_cast<Time>(rng.uniform_u64(40)),
              1 + static_cast<Time>(rng.uniform_u64(20)));
  }
  return std::move(b).build();
}

}  // namespace

SweepAxis::Scope default_axis_scope(SweepAxis::Bind bind) {
  switch (bind) {
    case SweepAxis::Bind::kPolicyParam:
      return SweepAxis::Scope::kPolicy;
    case SweepAxis::Bind::kStrategy:
    case SweepAxis::Bind::kDeviatorOrg:
    case SweepAxis::Bind::kDeviationParam:
      return SweepAxis::Scope::kStrategy;
    default:
      return SweepAxis::Scope::kWorkload;
  }
}

const char* axis_scope_name(SweepAxis::Scope scope) {
  switch (scope) {
    case SweepAxis::Scope::kPolicy:
      return "policy";
    case SweepAxis::Scope::kStrategy:
      return "strategy";
    case SweepAxis::Scope::kWorkload:
      return "workload";
  }
  throw std::logic_error("unreachable axis scope");
}

std::string normalize_axis_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool integral_axis_bind(SweepAxis::Bind bind) {
  switch (bind) {
    case SweepAxis::Bind::kOrgs:
    case SweepAxis::Bind::kHorizon:
    case SweepAxis::Bind::kUnitJobsPerOrg:
    case SweepAxis::Bind::kRandomJobs:
    case SweepAxis::Bind::kStrategy:
    case SweepAxis::Bind::kDeviatorOrg:
    case SweepAxis::Bind::kDeviationParam:
      return true;
    default:
      return false;
  }
}

std::vector<AxisInfo> axis_catalog(const PolicyRegistry& registry) {
  std::vector<AxisInfo> catalog = {
      {"orgs", "", SweepAxis::Bind::kOrgs, "", true,
       SweepAxis::Scope::kWorkload, "2:7",
       "number of organizations in the consortium (Fig. 10)"},
      {"horizon", "duration", SweepAxis::Bind::kHorizon, "", true,
       SweepAxis::Scope::kWorkload, "12500:400000:12500",
       "per-point experiment horizon (the Table 1 -> Table 2 dimension)"},
      {"zipf-s", "", SweepAxis::Bind::kZipfS, "", false,
       SweepAxis::Scope::kWorkload, "0.5,1,1.5",
       "Zipf exponent of the machine split"},
      {"split", "", SweepAxis::Bind::kSplit, "", false,
       SweepAxis::Scope::kWorkload, "zipf,uniform",
       "machine split across organizations (0/zipf, 1/uniform)"},
      {"jobs-per-org", "", SweepAxis::Bind::kUnitJobsPerOrg, "", true,
       SweepAxis::Scope::kWorkload, "20:80:20",
       "unit-jobs workload: jobs per organization (Thm 5.6)"},
      {"random-jobs", "", SweepAxis::Bind::kRandomJobs, "", true,
       SweepAxis::Scope::kWorkload, "10,50",
       "small-random workload: base job count (Thm 6.2 probe)"},
      {"strategy", "deviation", SweepAxis::Bind::kStrategy, "", true,
       SweepAxis::Scope::kStrategy, "0:8",
       "deviation grid index played by the deviating org (Thm 4.1); "
       "needs a [strategy] grid or the strategy subcommand"},
      {"deviator-org", "", SweepAxis::Bind::kDeviatorOrg, "", true,
       SweepAxis::Scope::kStrategy, "0:2",
       "which organization deviates from its honest job stream"},
      {"deviation-param", "", SweepAxis::Bind::kDeviationParam, "", true,
       SweepAxis::Scope::kStrategy, "2,4,8",
       "overrides the played deviation's magnitude (honest ignores it)"},
  };
  // One axis per distinct parameter-axis name the registry's entries
  // declare (sorted by name): "half-life", "samples", and whatever
  // config-defined policies add.
  for (const PolicyRegistry::ParamAxis& axis : registry.param_axes()) {
    std::string description = axis.description;
    description += " (rebinds:";
    for (const std::string& policy : axis.policies) {
      description += " " + policy;
    }
    description += ")";
    catalog.push_back({axis.name, "", SweepAxis::Bind::kPolicyParam,
                       axis.name, axis.type == PolicyParam::Type::kInt,
                       SweepAxis::Scope::kPolicy, axis.hint,
                       std::move(description)});
  }
  return catalog;
}

Instance make_workload_instance(const SweepWorkload& workload, Time horizon,
                                std::uint64_t seed) {
  switch (workload.kind) {
    case SweepWorkload::Kind::kSynthetic:
      return make_synthetic_instance(workload.spec, workload.orgs, horizon,
                                     workload.split, workload.zipf_s, seed);
    case SweepWorkload::Kind::kUnitJobs:
      return make_unit_instance(workload.orgs, workload.unit_jobs_per_org,
                                seed);
    case SweepWorkload::Kind::kSmallRandom:
      return make_small_random_instance(workload.random_jobs, seed);
  }
  throw std::logic_error("make_workload_instance: unknown workload kind");
}

SweepAxis make_axis(const std::string& name, std::vector<double> values,
                    const PolicyRegistry& registry) {
  const std::string key = normalize_axis_name(name);
  const std::vector<AxisInfo> catalog = axis_catalog(registry);
  for (const AxisInfo& info : catalog) {
    bool matches = key == normalize_axis_name(info.name);
    for (const std::string& alias : split_and_trim(info.aliases, ',')) {
      matches |= key == normalize_axis_name(alias);
    }
    if (matches) {
      SweepAxis axis;
      axis.name = info.name;
      axis.bind = info.bind;
      axis.param = info.param;
      axis.integral = info.integral;
      axis.scope = default_axis_scope(info.bind);
      axis.values = std::move(values);
      return axis;
    }
  }
  std::string known;
  for (const AxisInfo& info : catalog) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw std::invalid_argument("unknown sweep axis '" + name +
                              "'; known axes: " + known);
}

std::string axis_value_label(const SweepAxis& axis, double value) {
  if (!axis.value_labels.empty()) {
    for (std::size_t i = 0;
         i < axis.values.size() && i < axis.value_labels.size(); ++i) {
      if (axis.values[i] == value) return axis.value_labels[i];
    }
  }
  if (axis.bind == SweepAxis::Bind::kSplit) {
    return value == 0.0 ? "zipf" : "uniform";
  }
  if (axis.integral) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::size_t num_axis_points(const SweepSpec& spec) {
  std::size_t points = 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep '" + spec.name + "': axis '" +
                                  axis.name + "' has no values");
    }
    if (points > std::numeric_limits<std::size_t>::max() /
                     axis.values.size()) {
      throw std::invalid_argument("sweep '" + spec.name +
                                  "': axis cross product overflows");
    }
    points *= axis.values.size();
  }
  return points;
}

std::vector<double> axis_point_values(const SweepSpec& spec,
                                      std::size_t point) {
  std::vector<double> values(spec.axes.size());
  // Mixed radix, axis 0 outermost: peel digits from the innermost axis.
  for (std::size_t j = spec.axes.size(); j-- > 0;) {
    const std::vector<double>& axis_values = spec.axes[j].values;
    values[j] = axis_values[point % axis_values.size()];
    point /= axis_values.size();
  }
  return values;
}

strategy::DeviationSpec sweep_point_deviation(const SweepSpec& spec,
                                              std::size_t point) {
  strategy::DeviationSpec dev;  // honest when no strategy axis applies
  const std::vector<double> values = axis_point_values(spec, point);
  for (std::size_t j = 0; j < spec.axes.size(); ++j) {
    if (spec.axes[j].bind != SweepAxis::Bind::kStrategy) continue;
    const std::size_t id = static_cast<std::size_t>(values[j]);
    if (id >= spec.deviations.size()) {
      throw std::invalid_argument(
          "sweep '" + spec.name + "': strategy axis value " +
          std::to_string(id) + " exceeds the deviation grid (" +
          std::to_string(spec.deviations.size()) + " entries)");
    }
    dev = spec.deviations[id];
  }
  for (std::size_t j = 0; j < spec.axes.size(); ++j) {
    if (spec.axes[j].bind != SweepAxis::Bind::kDeviationParam) continue;
    // Honest has no magnitude: the override leaves it honest, so every
    // deviation-param value shares one honest reference row.
    if (dev.kind != strategy::DeviationSpec::Kind::kHonest) {
      dev.param = static_cast<std::int64_t>(values[j]);
      strategy::validate_deviation(dev);
    }
  }
  return dev;
}

OrgId sweep_point_deviator(const SweepSpec& spec, std::size_t point) {
  const std::vector<double> values = axis_point_values(spec, point);
  for (std::size_t j = 0; j < spec.axes.size(); ++j) {
    if (spec.axes[j].bind == SweepAxis::Bind::kDeviatorOrg) {
      return static_cast<OrgId>(values[j]);
    }
  }
  return 0;
}

const SweepCell& SweepResult::cell(const SweepSpec& spec,
                                   std::size_t axis_point,
                                   std::size_t workload,
                                   std::size_t policy) const {
  return cells[(axis_point * spec.workloads.size() + workload) *
                   spec.policies.size() +
               policy];
}

SweepResult SweepDriver::run(const SweepSpec& spec, Progress progress,
                             RecordSink sink) const {
  // The driver is the whole-run facade over the planner/executor split:
  // build the (unsharded) plan, execute it in process. Sharded and
  // multi-process execution use build_sweep_plan + an Executor directly
  // (exp/sweep_plan.h, exp/executor.h).
  const SweepPlan plan = build_sweep_plan(spec, registry_);
  ThreadPoolExecutor executor;
  return executor.execute(plan, std::move(progress), std::move(sink));
}

}  // namespace fairsched::exp
