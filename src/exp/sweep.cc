#include "exp/sweep.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <stdexcept>

#include <map>
#include <memory>

#include "exp/workload_cache.h"
#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fairsched::exp {

namespace {

Instance make_unit_instance(std::uint32_t orgs, std::uint32_t jobs_per_org,
                            std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  for (std::uint32_t u = 0; u < orgs; ++u) {
    b.add_org("o" + std::to_string(u),
              1 + static_cast<std::uint32_t>(rng.uniform_u64(2)));
  }
  for (std::uint32_t u = 0; u < orgs; ++u) {
    for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
      b.add_job(u, static_cast<Time>(rng.uniform_u64(50)), 1);
    }
  }
  return std::move(b).build();
}

Instance make_small_random_instance(std::size_t base_jobs,
                                    std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_u64(3));
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o", 1 + static_cast<std::uint32_t>(rng.uniform_u64(3)));
  }
  const std::size_t jobs = base_jobs + rng.uniform_u64(40);
  for (std::size_t j = 0; j < jobs; ++j) {
    b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
              static_cast<Time>(rng.uniform_u64(40)),
              1 + static_cast<Time>(rng.uniform_u64(20)));
  }
  return std::move(b).build();
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Every axis spelling the harness understands. The canonical field is the
// display / reporter column name; aliases share a canonical ("duration" ->
// "horizon"), so the error text below dedupes on it.
struct AxisBinding {
  const char* key;        // normalized lookup key
  const char* canonical;  // display / reporter column name
  SweepAxis::Bind bind;
};
constexpr AxisBinding kAxisBindings[] = {
    {"orgs", "orgs", SweepAxis::Bind::kOrgs},
    {"horizon", "horizon", SweepAxis::Bind::kHorizon},
    {"duration", "horizon", SweepAxis::Bind::kHorizon},
    {"halflife", "half-life", SweepAxis::Bind::kHalfLife},
    {"zipfs", "zipf-s", SweepAxis::Bind::kZipfS},
    {"split", "split", SweepAxis::Bind::kSplit},
    {"jobsperorg", "jobs-per-org", SweepAxis::Bind::kUnitJobsPerOrg},
    {"randomjobs", "random-jobs", SweepAxis::Bind::kRandomJobs},
};

bool integral_bind(SweepAxis::Bind bind) {
  switch (bind) {
    case SweepAxis::Bind::kOrgs:
    case SweepAxis::Bind::kHorizon:
    case SweepAxis::Bind::kUnitJobsPerOrg:
    case SweepAxis::Bind::kRandomJobs:
      return true;
    default:
      return false;
  }
}

// Binds one axis value onto the workload parameters shared by every policy
// of the cell. kHorizon (per-point horizon) and kHalfLife (per-point
// AlgorithmSpec) do not touch the workload and are resolved separately by
// the driver.
void apply_axis_value(const SweepAxis& axis, double value, SweepWorkload& w) {
  switch (axis.bind) {
    case SweepAxis::Bind::kOrgs:
      w.orgs = static_cast<std::uint32_t>(value);
      break;
    case SweepAxis::Bind::kZipfS:
      w.zipf_s = value;
      break;
    case SweepAxis::Bind::kSplit:
      w.split = value == 0.0 ? MachineSplit::kZipf : MachineSplit::kUniform;
      break;
    case SweepAxis::Bind::kUnitJobsPerOrg:
      w.unit_jobs_per_org = static_cast<std::uint32_t>(value);
      break;
    case SweepAxis::Bind::kRandomJobs:
      w.random_jobs = static_cast<std::size_t>(value);
      break;
    case SweepAxis::Bind::kHorizon:
    case SweepAxis::Bind::kHalfLife:
      break;
  }
}

void validate_axis(const SweepSpec& spec, const SweepAxis& axis) {
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("sweep '" + spec.name + "': axis '" +
                                axis.name + "' " + why);
  };
  if (axis.name.empty()) fail("has no name");
  if (axis.values.empty()) fail("has no values");
  if (axis.scope == SweepAxis::Scope::kPolicy &&
      default_axis_scope(axis.bind) != SweepAxis::Scope::kPolicy) {
    // A policy-scoped axis shares one generated instance across all its
    // values; an axis that reshapes the workload (or horizon) must not,
    // or every non-representative value would simulate the wrong world.
    fail("cannot be policy-scoped: its bind reshapes the workload");
  }
  for (double v : axis.values) {
    if (integral_bind(axis.bind)) {
      // Range-check before the round-trip cast: double -> integer overflow
      // is undefined behavior, and an out-of-range orgs value would
      // otherwise silently simulate a different consortium than the CSV
      // row is labeled with. kOrgs/kUnitJobsPerOrg/kRandomJobs bind onto
      // 32-bit fields; kHorizon onto Time (int64).
      const double limit = axis.bind == SweepAxis::Bind::kHorizon
                               ? 9.0e18
                               : 4294967295.0;  // uint32 max
      if (!(v >= 0 && v <= limit) ||
          v != static_cast<double>(static_cast<std::int64_t>(v))) {
        fail("requires integer values in [0, " +
             std::to_string(static_cast<std::int64_t>(limit)) + "], got " +
             std::to_string(v));
      }
    }
    switch (axis.bind) {
      case SweepAxis::Bind::kOrgs:
        if (v < 1) fail("values must be >= 1");
        break;
      case SweepAxis::Bind::kHorizon:
      case SweepAxis::Bind::kUnitJobsPerOrg:
        if (v < 1) fail("values must be >= 1");
        break;
      case SweepAxis::Bind::kHalfLife:
        if (!(v > 0)) fail("values must be positive");
        break;
      case SweepAxis::Bind::kZipfS:
        if (!(v >= 0)) fail("values must be non-negative");
        break;
      case SweepAxis::Bind::kSplit:
        if (v != 0.0 && v != 1.0) {
          fail("values must be 0 (zipf) or 1 (uniform)");
        }
        break;
      case SweepAxis::Bind::kRandomJobs:
        if (v < 0) fail("values must be non-negative");
        break;
    }
  }
}

// The policy-independent prefix of one (prefix group, workload, instance)
// cell family: the constructed instance, the baseline reference outcome,
// and the records of every policy run the whole group shares. Stored in
// the WorkloadCache; immutable once published.
struct SweepPrefix {
  Instance instance;
  std::vector<HalfUtil> baseline_utilities2;
  std::int64_t baseline_work_done = 0;
  double baseline_wall_ms = 0.0;  // reported once, by the computing task
  std::vector<RunRecord> shared_records;  // group-invariant policies, p order
};

std::size_t instance_bytes(const Instance& inst) {
  return sizeof(Instance) + inst.num_jobs() * sizeof(Job) +
         inst.total_machines() * sizeof(OrgId) +
         static_cast<std::size_t>(inst.num_orgs()) *
             (sizeof(Organization) + sizeof(std::vector<Job>) +
              sizeof(MachineId) + 32 /* name storage */);
}

std::size_t prefix_bytes(const SweepPrefix& prefix) {
  return sizeof(SweepPrefix) + instance_bytes(prefix.instance) +
         prefix.baseline_utilities2.size() * sizeof(HalfUtil) +
         prefix.shared_records.size() * sizeof(RunRecord);
}

}  // namespace

SweepAxis::Scope default_axis_scope(SweepAxis::Bind bind) {
  return bind == SweepAxis::Bind::kHalfLife ? SweepAxis::Scope::kPolicy
                                            : SweepAxis::Scope::kWorkload;
}

std::string normalize_axis_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Instance make_workload_instance(const SweepWorkload& workload, Time horizon,
                                std::uint64_t seed) {
  switch (workload.kind) {
    case SweepWorkload::Kind::kSynthetic:
      return make_synthetic_instance(workload.spec, workload.orgs, horizon,
                                     workload.split, workload.zipf_s, seed);
    case SweepWorkload::Kind::kUnitJobs:
      return make_unit_instance(workload.orgs, workload.unit_jobs_per_org,
                                seed);
    case SweepWorkload::Kind::kSmallRandom:
      return make_small_random_instance(workload.random_jobs, seed);
  }
  throw std::logic_error("make_workload_instance: unknown workload kind");
}

SweepAxis make_axis(const std::string& name, std::vector<double> values) {
  const std::string key = normalize_axis_name(name);
  for (const AxisBinding& binding : kAxisBindings) {
    if (key == binding.key) {
      SweepAxis axis;
      axis.name = binding.canonical;
      axis.bind = binding.bind;
      axis.scope = default_axis_scope(binding.bind);
      axis.values = std::move(values);
      return axis;
    }
  }
  std::string known;
  for (const AxisBinding& binding : kAxisBindings) {
    if (known.find(binding.canonical) != std::string::npos) continue;
    if (!known.empty()) known += ", ";
    known += binding.canonical;
  }
  throw std::invalid_argument("unknown sweep axis '" + name +
                              "'; known axes: " + known);
}

std::string axis_value_label(const SweepAxis& axis, double value) {
  if (axis.bind == SweepAxis::Bind::kSplit) {
    return value == 0.0 ? "zipf" : "uniform";
  }
  if (integral_bind(axis.bind)) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::size_t num_axis_points(const SweepSpec& spec) {
  std::size_t points = 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep '" + spec.name + "': axis '" +
                                  axis.name + "' has no values");
    }
    if (points > std::numeric_limits<std::size_t>::max() /
                     axis.values.size()) {
      throw std::invalid_argument("sweep '" + spec.name +
                                  "': axis cross product overflows");
    }
    points *= axis.values.size();
  }
  return points;
}

std::vector<double> axis_point_values(const SweepSpec& spec,
                                      std::size_t point) {
  std::vector<double> values(spec.axes.size());
  // Mixed radix, axis 0 outermost: peel digits from the innermost axis.
  for (std::size_t j = spec.axes.size(); j-- > 0;) {
    const std::vector<double>& axis_values = spec.axes[j].values;
    values[j] = axis_values[point % axis_values.size()];
    point /= axis_values.size();
  }
  return values;
}

const SweepCell& SweepResult::cell(const SweepSpec& spec,
                                   std::size_t axis_point,
                                   std::size_t workload,
                                   std::size_t policy) const {
  return cells[(axis_point * spec.workloads.size() + workload) *
                   spec.policies.size() +
               policy];
}

SweepResult SweepDriver::run(const SweepSpec& spec, Progress progress,
                             RecordSink sink) const {
  if (spec.policies.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no policies");
  }
  if (spec.workloads.empty()) {
    throw std::invalid_argument("sweep '" + spec.name + "': no workloads");
  }
  if (spec.instances == 0) {
    throw std::invalid_argument("sweep '" + spec.name + "': no instances");
  }
  for (const SweepAxis& axis : spec.axes) {
    validate_axis(spec, axis);
    for (const SweepAxis& other : spec.axes) {
      if (&axis != &other && axis.name == other.name) {
        throw std::invalid_argument("sweep '" + spec.name +
                                    "': duplicate axis '" + axis.name + "'");
      }
    }
  }
  // Resolve every name up front so a typo fails before hours of compute.
  std::vector<AlgorithmSpec> algorithms;
  algorithms.reserve(spec.policies.size());
  for (const std::string& name : spec.policies) {
    algorithms.push_back(registry_.make(name));
  }
  const bool has_baseline = !spec.baseline.empty();
  const AlgorithmSpec baseline =
      has_baseline ? registry_.make(spec.baseline) : AlgorithmSpec{};

  const auto run_started = std::chrono::steady_clock::now();

  const std::size_t num_points = num_axis_points(spec);
  const std::size_t num_workloads = spec.workloads.size();
  const std::size_t num_policies = spec.policies.size();
  const std::size_t num_tasks = num_points * num_workloads * spec.instances;

  // Bind every axis point up front: per point the horizon and the policy
  // specs (kHalfLife), per (point, workload) the workload parameters. All
  // O(cells), never O(runs).
  std::vector<Time> horizons(num_points, spec.horizon);
  std::vector<AlgorithmSpec> bound_algorithms(num_points *
                                              num_policies);
  std::vector<SweepWorkload> bound_workloads(num_points * num_workloads);
  for (std::size_t a = 0; a < num_points; ++a) {
    const std::vector<double> values = axis_point_values(spec, a);
    for (std::size_t p = 0; p < num_policies; ++p) {
      AlgorithmSpec alg = algorithms[p];
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        if (spec.axes[j].bind == SweepAxis::Bind::kHalfLife &&
            alg.id == AlgorithmId::kDecayFairShare) {
          alg.decay_half_life = values[j];
        }
      }
      bound_algorithms[a * num_policies + p] = alg;
    }
    for (std::size_t j = 0; j < spec.axes.size(); ++j) {
      if (spec.axes[j].bind == SweepAxis::Bind::kHorizon) {
        horizons[a] = static_cast<Time>(values[j]);
      }
    }
    for (std::size_t w = 0; w < num_workloads; ++w) {
      SweepWorkload workload = spec.workloads[w];
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        apply_axis_value(spec.axes[j], values[j], workload);
      }
      bound_workloads[a * num_workloads + w] = std::move(workload);
    }
  }

  // --- Prefix planning ------------------------------------------------------
  // Group axis points sharing every workload-scoped axis value: points of a
  // group differ only in policy-scoped values, so for a fixed (workload,
  // instance) they share the generated instance, the baseline run, and the
  // runs of every policy whose bound spec the group does not vary. Cells of
  // a group map onto one cache shard keyed by (group, workload, instance).
  std::vector<std::size_t> group_of(num_points, 0);
  std::vector<std::size_t> group_rep;   // first axis point of each group
  std::vector<std::size_t> group_size;
  {
    std::map<std::vector<double>, std::size_t> index;
    for (std::size_t a = 0; a < num_points; ++a) {
      const std::vector<double> values = axis_point_values(spec, a);
      std::vector<double> key;
      key.reserve(values.size());
      for (std::size_t j = 0; j < spec.axes.size(); ++j) {
        if (spec.axes[j].scope == SweepAxis::Scope::kWorkload) {
          key.push_back(values[j]);
        }
      }
      const auto [it, inserted] = index.try_emplace(std::move(key),
                                                    group_rep.size());
      if (inserted) {
        group_rep.push_back(a);
        group_size.push_back(0);
      }
      group_of[a] = it->second;
      ++group_size[it->second];
    }
  }
  const std::size_t num_groups = group_rep.size();

  // Per (group, policy): slot of the policy's record inside the group's
  // cached prefix, or kNoSlot when the policy's bound spec varies within
  // the group (the policy-dependent suffix, re-run per axis point).
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<std::size_t> shared_slot(num_groups * num_policies, kNoSlot);
  {
    std::vector<char> invariant(num_groups * num_policies, 1);
    for (std::size_t a = 0; a < num_points; ++a) {
      const std::size_t g = group_of[a];
      for (std::size_t p = 0; p < num_policies; ++p) {
        invariant[g * num_policies + p] &=
            bound_algorithms[a * num_policies + p] ==
            bound_algorithms[group_rep[g] * num_policies + p];
      }
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      std::size_t slot = 0;
      for (std::size_t p = 0; p < num_policies; ++p) {
        if (invariant[g * num_policies + p]) {
          shared_slot[g * num_policies + p] = slot++;
        }
      }
    }

    // A policy-scoped axis must bind some selected policy, or it sweeps
    // every cell into identical copies — a config error worth failing
    // loudly on, not silently cache-deduplicating. Two signals, so the
    // declarative registry metadata cannot veto reality: the axis passes
    // if a selected policy *declares* it (registry bound_axes), or if the
    // bound specs observably vary within a prefix group (the ground truth;
    // covers custom-registered policies that forgot to declare). Variation
    // is attributed group-wide, which is exact while half-life is the only
    // policy-scoped bind.
    std::string inert_axes;
    for (const SweepAxis& axis : spec.axes) {
      if (axis.scope != SweepAxis::Scope::kPolicy) continue;
      bool declared = false;
      for (const std::string& name : spec.policies) {
        for (const std::string& bound : registry_.bound_axes(name)) {
          declared |= normalize_axis_name(bound) ==
                      normalize_axis_name(axis.name);
        }
      }
      if (!declared) {
        if (!inert_axes.empty()) inert_axes += "', '";
        inert_axes += axis.name;
      }
    }
    if (!inert_axes.empty() &&
        std::all_of(invariant.begin(), invariant.end(),
                    [](char inv) { return inv != 0; })) {
      throw std::invalid_argument(
          "sweep '" + spec.name + "': axis '" + inert_axes +
          "' binds no selected policy (e.g. half-life needs a "
          "decayfairshare entry); add such a policy or drop the axis");
    }
  }

  // Synthetic workload windows depend only on (workload, instance, horizon)
  // — not on orgs/split/zipf-s — so groups that differ only in consortium
  // shape share one generated window. Planned uses per horizon value:
  std::map<Time, std::size_t> groups_per_horizon;
  for (std::size_t g = 0; g < num_groups; ++g) {
    ++groups_per_horizon[horizons[group_rep[g]]];
  }

  WorkloadCache cache(spec.cache_bytes);

  SweepResult result;
  result.axis_points = num_points;
  result.cells.assign(num_points * num_workloads * num_policies,
                      SweepCell{});
  result.cache_enabled = cache.enabled();
  result.prefix_groups = num_groups;

  // Streaming ordered fold. Tasks complete in scheduling order, which is
  // thread-count dependent; a bounded reorder window buffers completed
  // tasks until every earlier task has been folded, so the fold (and the
  // sink) always observe the fixed order (axis point, workload, instance,
  // policy) and peak memory stays O(window), not O(runs). A worker that
  // races more than `window` tasks ahead of the fold cursor blocks; the
  // worker holding the cursor task never blocks (its slot is always free),
  // so the sweep cannot deadlock.
  struct TaskOutput {
    bool ready = false;
    std::vector<RunRecord> records;
    double baseline_wall = 0.0;
    std::string progress_label;
  };
  ThreadPool pool(spec.threads);
  const std::size_t window =
      std::min(num_tasks, std::max<std::size_t>(64, 4 * pool.size()));
  std::vector<TaskOutput> slots(window);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t cursor = 0;  // next task index to fold
  std::exception_ptr abort_error;

  auto fold_ready_tasks = [&](std::unique_lock<std::mutex>& lock) {
    bool advanced = false;
    while (cursor < num_tasks && slots[cursor % window].ready) {
      TaskOutput out = std::move(slots[cursor % window]);
      slots[cursor % window] = TaskOutput{};
      ++cursor;
      advanced = true;
      for (const RunRecord& record : out.records) {
        SweepCell& cell = result.cells[(record.axis_point * num_workloads +
                                        record.workload) *
                                           num_policies +
                                       record.policy];
        cell.unfairness.add(record.unfairness);
        cell.rel_distance.add(record.rel_distance);
        cell.utilization.add(record.utilization);
        cell.work_done += record.work_done;
        cell.wall_ms += record.wall_ms;
        result.total_wall_ms += record.wall_ms;
        result.replayed_runs += record.replayed ? 1 : 0;
        if (sink) sink(record);
      }
      result.baseline_wall_ms += out.baseline_wall;
      result.total_wall_ms += out.baseline_wall;
      if (progress) progress(out.progress_label);
    }
    if (advanced) {
      lock.unlock();
      cv.notify_all();
      lock.lock();
    }
  };

  pool.parallel_for(num_tasks, [&](std::size_t task) {
    try {
      const std::size_t a = task / (num_workloads * spec.instances);
      const std::size_t w =
          (task / spec.instances) % num_workloads;
      const std::size_t i = task % spec.instances;
      const std::size_t g = group_of[a];
      const SweepWorkload& workload = bound_workloads[a * num_workloads + w];
      const Time horizon = horizons[a];
      // The seed depends only on (workload, instance), so every axis point
      // reruns the same window population: axis series are paired samples,
      // and axis-free sweeps keep their pre-axis seeding bit-for-bit. It is
      // also what lets axis points of one prefix group share cached work.
      const std::uint64_t seed =
          mix_seed(spec.seed, w * spec.instances + i);

      // One policy execution against a prefix's instance/baseline. Group-
      // invariant policies have equal bound specs at every point of the
      // group, so a record computed here is bit-identical wherever in the
      // group it is replayed (axis_point is patched by the consumer).
      auto run_policy = [&](const SweepPrefix& prefix, std::size_t p) {
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = run_algorithm(
            prefix.instance, bound_algorithms[a * num_policies + p], horizon,
            seed);
        RunRecord record;
        record.axis_point = a;
        record.workload = w;
        record.policy = p;
        record.instance = i;
        record.seed = seed;
        record.wall_ms = elapsed_ms(t0);
        record.work_done = r.work_done;
        record.utilization =
            resource_utilization(prefix.instance, r.schedule, horizon);
        if (has_baseline) {
          record.unfairness =
              unfairness_ratio(r.utilities2, prefix.baseline_utilities2,
                               prefix.baseline_work_done);
          record.rel_distance =
              relative_distance(r.utilities2, prefix.baseline_utilities2);
        }
        return record;
      };

      // The policy-independent prefix: instance (through the shared-window
      // sub-cache for synthetic workloads), baseline run, group-invariant
      // policy runs. Computed by the first task of the prefix group to get
      // here; the cache latches the rest until it is ready.
      auto compute_prefix = [&]() -> WorkloadCache::Computed {
        auto entry = std::make_shared<SweepPrefix>();
        // Route synthetic generation through the shared-window sub-cache
        // only when a second prefix group will ever ask for the window
        // (groups differing in consortium shape but not horizon).
        if (workload.kind == SweepWorkload::Kind::kSynthetic &&
            cache.enabled() && groups_per_horizon.at(horizon) > 1) {
          const std::string window_key =
              "w|" + std::to_string(w) + "|" + std::to_string(i) + "|" +
              std::to_string(horizon);
          const auto window = std::static_pointer_cast<const SwfTrace>(
              cache.get_or_compute(
                  window_key, groups_per_horizon.at(horizon), [&]() {
                    auto trace = std::make_shared<const SwfTrace>(
                        generate_window(workload.spec, horizon, seed));
                    return WorkloadCache::Computed{trace,
                                                   window_bytes(*trace)};
                  }));
          entry->instance = assign_synthetic_window(
              workload.spec, *window, workload.orgs, workload.split,
              workload.zipf_s, seed);
        } else {
          entry->instance = make_workload_instance(workload, horizon, seed);
        }
        if (has_baseline) {
          const auto t0 = std::chrono::steady_clock::now();
          RunResult ref =
              run_algorithm(entry->instance, baseline, horizon, seed);
          entry->baseline_wall_ms = elapsed_ms(t0);
          entry->baseline_utilities2 = std::move(ref.utilities2);
          entry->baseline_work_done = ref.work_done;
        }
        for (std::size_t p = 0; p < num_policies; ++p) {
          if (shared_slot[g * num_policies + p] == kNoSlot) continue;
          entry->shared_records.push_back(run_policy(*entry, p));
        }
        return {entry, prefix_bytes(*entry)};
      };

      bool computed_here = true;
      const std::string prefix_key = "p|" + std::to_string(g) + "|" +
                                     std::to_string(w) + "|" +
                                     std::to_string(i);
      const auto prefix = std::static_pointer_cast<const SweepPrefix>(
          cache.get_or_compute(prefix_key, group_size[g], compute_prefix,
                               &computed_here));

      TaskOutput out;
      out.records.resize(num_policies);
      out.baseline_wall = computed_here ? prefix->baseline_wall_ms : 0.0;
      for (std::size_t p = 0; p < num_policies; ++p) {
        const std::size_t slot = shared_slot[g * num_policies + p];
        if (slot != kNoSlot) {
          RunRecord record = prefix->shared_records[slot];
          record.axis_point = a;  // any group member may have computed it
          if (!computed_here) {
            record.wall_ms = 0.0;  // walls stay with the task that paid them
            record.replayed = true;
          }
          out.records[p] = record;
        } else {
          out.records[p] = run_policy(*prefix, p);
        }
      }
      out.progress_label = workload.name + " #" + std::to_string(i);
      out.ready = true;

      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return abort_error != nullptr || task < cursor + window;
      });
      if (abort_error) std::rethrow_exception(abort_error);
      slots[task % window] = std::move(out);
      fold_ready_tasks(lock);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!abort_error) abort_error = std::current_exception();
      }
      cv.notify_all();
      throw;
    }
  });

  result.cache = cache.stats();
  result.elapsed_ms = elapsed_ms(run_started);
  return result;
}

}  // namespace fairsched::exp
