#pragma once

// Bounded, thread-safe memoization for the sweep engine's policy-independent
// work (exp/sweep.cc). A sweep cell's cost splits into a prefix — workload
// generation, instance construction, the baseline reference run, and any
// policy run that no policy-bound axis varies — and a policy-dependent
// suffix. When several cells share a prefix key (they differ only in
// policy-bound axis values, e.g. the fair-share half-life), the first task
// to reach the key computes the prefix and every other task reuses it.
//
// Entries are type-erased (shared_ptr<const void>): the driver stores both
// whole prefixes and raw synthetic workload windows in one cache so a single
// --cache-mb budget governs everything. Concurrency contract:
//   * one compute per key: concurrent callers of get_or_compute for the same
//     key block until the first caller's compute finishes (per-key latch);
//   * computes run outside the cache lock, so distinct keys never serialize;
//   * eviction is LRU by estimated bytes; entries whose planned uses are
//     exhausted retire immediately (freeing budget without an eviction);
//   * an entry evicted under budget pressure is simply recomputed on the
//     next lookup — results are deterministic functions of the key, so
//     eviction can cost time but never changes output.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fairsched::exp {

// Counters reported in sweep summaries and BENCH_*.json. Hits, misses and
// evictions are deterministic for a fixed sweep plan as long as the budget
// never forces an eviction; under pressure the exact counts may vary with
// scheduling, but the sweep output never does.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  // == number of computes the cache ran
  std::uint64_t evictions = 0;
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes = 0;

  // hits / (hits + misses); 0.0 before the first lookup.
  double hit_rate() const;
};

class WorkloadCache {
 public:
  // What a compute callback returns: the value plus its estimated footprint
  // (charged against the byte budget; the cache adds no overhead estimate).
  struct Computed {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  using ComputeFn = std::function<Computed()>;

  // max_bytes == 0 disables the cache: get_or_compute degenerates to calling
  // `compute` inline — no locking, no stats. This is the --no-cache path,
  // kept inside the class so the driver has a single code path.
  explicit WorkloadCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  WorkloadCache(const WorkloadCache&) = delete;
  WorkloadCache& operator=(const WorkloadCache&) = delete;

  bool enabled() const { return max_bytes_ > 0; }
  std::size_t max_bytes() const { return max_bytes_; }

  // Returns the value for `key`, computing it via `compute` on first touch.
  // `uses` is the total number of get_or_compute calls the caller's plan
  // will make for this key; the entry retires once consumed that often.
  // uses <= 1 short-circuits to an unstored compute (a miss). When
  // `computed_here` is non-null it is set to whether THIS call ran the
  // compute (true) or reused another task's result (false).
  // If `compute` throws, the pending entry is removed, waiters restart, and
  // the exception propagates to this caller.
  std::shared_ptr<const void> get_or_compute(const std::string& key,
                                             std::size_t uses,
                                             const ComputeFn& compute,
                                             bool* computed_here = nullptr);

  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    bool ready = false;
    // Position in lru_ (valid only when ready).
    std::list<std::string>::iterator lru_pos;
  };

  // Both require mu_ held.
  void retire_locked(std::map<std::string, Entry>::iterator it);
  void evict_over_budget_locked();

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::string, Entry> entries_;
  // Uses consumed so far per key. Kept outside Entry so it survives a
  // budget eviction: a recomputed entry must still retire after its
  // *original* planned use count, not squat for a fresh full count.
  // Erased at retirement, so it never outgrows the live key set.
  std::map<std::string, std::size_t> consumed_;
  std::list<std::string> lru_;  // least recently used at the front
  CacheStats stats_;
};

}  // namespace fairsched::exp
