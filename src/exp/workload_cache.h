#pragma once

// Bounded, thread-safe memoization for the sweep engine's policy-independent
// work (exp/sweep.cc). A sweep cell's cost splits into a prefix — workload
// generation, instance construction, the baseline reference run, and any
// policy run that no policy-bound axis varies — and a policy-dependent
// suffix. When several cells share a prefix key (they differ only in
// policy-bound axis values, e.g. the fair-share half-life), the first task
// to reach the key computes the prefix and every other task reuses it.
//
// Entries are type-erased (shared_ptr<const void>): the driver stores both
// whole prefixes and raw synthetic workload windows in one cache so a single
// --cache-mb budget governs everything. Concurrency contract:
//   * one compute per key: concurrent callers of get_or_compute for the same
//     key block until the first caller's compute finishes (per-key latch);
//   * computes run outside the cache lock, so distinct keys never serialize;
//   * eviction is LRU by estimated bytes; entries whose planned uses are
//     exhausted retire immediately (freeing budget without an eviction);
//   * an entry evicted under budget pressure is simply recomputed on the
//     next lookup — results are deterministic functions of the key, so
//     eviction can cost time but never changes output.
//
// Disk tier (--cache-dir): an optional second tier that persists values
// across processes, so repeated CLI invocations and the shards of a
// multi-process sweep (exp/executor.h) share generated windows and REF
// baseline runs. In-memory keys are plan-positional ("p|group|w|i"); disk
// files are *content*-keyed — the caller supplies a canonical string
// naming everything the value is a deterministic function of (workload
// parameters, horizon, seed, policy specs; exp/sweep_plan.h) plus encode/
// decode callbacks, since entries are type-erased. Files are written to a
// temporary name and atomically renamed into place, so concurrent writers
// race benignly (last writer wins, readers never see a torn file), and
// each file stores a format-version header and its full content key,
// which the reader validates before decoding (hash collisions and stale
// formats degrade to a recompute, never to wrong data). Like the memory
// tier, the disk tier is a pure time optimization: a corrupt, missing or
// mismatched file only costs a recompute.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fairsched::exp {

// Counters reported in sweep summaries and BENCH_*.json. Hits, misses and
// evictions are deterministic for a fixed sweep plan as long as the budget
// never forces an eviction; under pressure the exact counts may vary with
// scheduling, but the sweep output never does. disk_hits counts values
// decoded from --cache-dir instead of recomputed; disk_writes counts files
// persisted for future invocations.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  // == number of computes the cache ran
  std::uint64_t evictions = 0;
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;  // disk lookups that fell through
  std::uint64_t disk_writes = 0;

  // hits / (hits + misses); 0.0 before the first lookup.
  double hit_rate() const;

  // Component-wise accumulation, used when folding per-shard stats into
  // the totals a merged sweep reports (peak_bytes sums too: the shards
  // were separate processes, so their peaks were concurrent budgets).
  void accumulate(const CacheStats& other);
};

class WorkloadCache {
 public:
  // What a compute callback returns: the value plus its estimated footprint
  // (charged against the byte budget; the cache adds no overhead estimate).
  struct Computed {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  using ComputeFn = std::function<Computed()>;

  // Serialization hooks for the disk tier. `content_key` is the canonical
  // content identity (stored verbatim in the file and compared on read);
  // `encode` flattens a value to the payload bytes; `decode` rebuilds a
  // value from them and may throw to reject a damaged payload (the cache
  // then recomputes). Lookups pass nullptr to keep an entry memory-only.
  struct DiskCodec {
    std::string content_key;
    std::function<std::string(const std::shared_ptr<const void>&)> encode;
    std::function<Computed(const std::string& payload)> decode;
  };

  // max_bytes == 0 disables the cache: get_or_compute degenerates to calling
  // `compute` inline — no locking, no stats. This is the --no-cache path,
  // kept inside the class so the driver has a single code path. `disk_dir`
  // non-empty enables the disk tier (the directory is created on demand);
  // it requires the memory tier, so --no-cache disables both.
  //
  // `retain` keeps entries past their planned use count (and stores even
  // single-use values): the session-worker mode (exp/executor.h), where
  // one cache outlives many plan executions and a re-served shard must
  // find its prefixes still warm. Entries then leave only through LRU
  // eviction under the byte budget.
  explicit WorkloadCache(std::size_t max_bytes, std::string disk_dir = "",
                         bool retain = false);

  WorkloadCache(const WorkloadCache&) = delete;
  WorkloadCache& operator=(const WorkloadCache&) = delete;

  bool enabled() const { return max_bytes_ > 0; }
  bool disk_enabled() const { return enabled() && !disk_dir_.empty(); }
  std::size_t max_bytes() const { return max_bytes_; }

  // Returns the value for `key`, computing it via `compute` on first touch.
  // `uses` is the total number of get_or_compute calls the caller's plan
  // will make for this key; the entry retires once consumed that often.
  // uses <= 1 short-circuits to an unstored compute (a miss). When
  // `computed_here` is non-null it is set to whether THIS call paid for a
  // fresh compute (true) or reused a result — another task's, or one
  // decoded from the disk tier (false either way: the reuser did not pay
  // the simulation cost). When `codec` is non-null and the disk tier is
  // enabled, a memory miss first consults the content-keyed file, and a
  // fresh compute is persisted for future processes.
  // If `compute` throws, the pending entry is removed, waiters restart, and
  // the exception propagates to this caller.
  std::shared_ptr<const void> get_or_compute(const std::string& key,
                                             std::size_t uses,
                                             const ComputeFn& compute,
                                             bool* computed_here = nullptr,
                                             const DiskCodec* codec =
                                                 nullptr);

  CacheStats stats() const;

  // The file a content key persists to under `dir` (exposed for tests and
  // debugging): fs-<fnv1a64(content_key) in hex>.cache.
  static std::string disk_file_name(const std::string& content_key);

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    bool ready = false;
    // Position in lru_ (valid only when ready).
    std::list<std::string>::iterator lru_pos;
  };

  // Both require mu_ held.
  void retire_locked(std::map<std::string, Entry>::iterator it);
  void evict_over_budget_locked();

  // The compute path of a miss, run outside the lock: disk load if
  // possible, else compute + disk store. Sets *from_disk accordingly.
  Computed produce(const ComputeFn& compute, const DiskCodec* codec,
                   bool* from_disk);
  bool disk_load(const DiskCodec& codec, Computed* out);
  void disk_store(const DiskCodec& codec, const Computed& computed);

  const std::size_t max_bytes_;
  const std::string disk_dir_;
  const bool retain_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::string, Entry> entries_;
  // Uses consumed so far per key. Kept outside Entry so it survives a
  // budget eviction: a recomputed entry must still retire after its
  // *original* planned use count, not squat for a fresh full count.
  // Erased at retirement, so it never outgrows the live key set.
  std::map<std::string, std::size_t> consumed_;
  std::list<std::string> lru_;  // least recently used at the front
  CacheStats stats_;
};

}  // namespace fairsched::exp
