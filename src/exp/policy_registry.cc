#include "exp/policy_registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sched/decaying_fair_share.h"
#include "sched/direct_contr.h"
#include "sched/fair_share.h"
#include "sched/fcfs.h"
#include "sched/random_policy.h"
#include "sched/round_robin.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"

namespace fairsched::exp {

namespace {

std::string to_lower(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

// Parameter keys and axis names share one spelling fold: lower-case with
// '-'/'_' stripped, so "half-life", "half_life" and "HalfLife" match.
// (exp/sweep.h's normalize_axis_name applies the same rule.)
std::string normalize_key(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '-' || c == '_') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// A legacy parameter suffix must look like a plain non-negative number: at
// least one digit, and (only for real-typed parameters) at most one dot.
// Anything else ("rand.", "rand1.5", "decayfairshare1.2.3") is treated as
// an unknown policy name, keeping contains() and make() in agreement.
bool numeric_suffix(const std::string& s, bool fractional) {
  if (s.empty()) return false;
  bool has_digit = false;
  int dots = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c == '.') {
      if (!fractional || ++dots > 1) return false;
    } else {
      return false;
    }
  }
  return has_digit;
}

// Levenshtein distance for the did-you-mean parameter suggestions; the
// catalogs are tiny, so the quadratic table is irrelevant.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

// Workload-scoped axis names (and aliases) owned by exp/sweep.h's
// axis_catalog. A declared parameter may not bind an axis with one of
// these names — the workload axis would silently shadow it. Kept as a
// literal list (axis_catalog itself consults the registry for parameter
// axes, so calling it here would recurse during global() construction).
bool reserved_axis_name(const std::string& normalized) {
  for (const char* reserved : {"orgs", "horizon", "duration", "zipfs",
                               "split", "jobsperorg", "randomjobs"}) {
    if (normalized == reserved) return true;
  }
  return false;
}

PolicyParam parse_param_value(const ParamDecl& decl, const std::string& text,
                              const std::string& context) {
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("parameter '" + decl.key + "' " + why +
                                " in '" + context + "'");
  };
  if (decl.type == PolicyParam::Type::kInt) {
    if (!numeric_suffix(text, /*fractional=*/false)) {
      fail("must be a non-negative integer, got '" + text + "'");
    }
    try {
      return PolicyParam::of_int(std::stoll(text));
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("policy parameter out of range in '" +
                                  context + "'");
    }
  }
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("policy parameter out of range in '" +
                                context + "'");
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || !std::isfinite(value)) {
    // stod accepts "inf"/"nan"; neither is a usable parameter value.
    fail("must be a finite number, got '" + text + "'");
  }
  return PolicyParam::of_real(value);
}

void check_range(const ParamDecl& decl, const PolicyParam& value,
                 const std::string& context) {
  if (!decl.in_range(value.as_double())) {
    throw std::invalid_argument("parameter '" + decl.key + "' must be " +
                                decl.range_text() + " in '" + context +
                                "', got " + value.to_string());
  }
}

const char* type_label(PolicyParam::Type type) {
  return type == PolicyParam::Type::kInt ? "int" : "real";
}

}  // namespace

std::string ParamDecl::range_text() const {
  const bool has_min = min_value != std::numeric_limits<double>::lowest();
  const bool has_max = max_value != std::numeric_limits<double>::max();
  // The bound -> text conversion happens only for bounds that are really
  // declared: casting the double sentinel limits to int64 would be UB.
  auto bound_text = [this](double bound) {
    return type == PolicyParam::Type::kInt
               ? PolicyParam::of_int(static_cast<std::int64_t>(bound))
                     .to_string()
               : PolicyParam::of_real(bound).to_string();
  };
  if (has_min && has_max) {
    return "in " + std::string(min_exclusive ? "(" : "[") +
           bound_text(min_value) + ", " + bound_text(max_value) + "]";
  }
  if (has_min) {
    return (min_exclusive ? "> " : ">= ") + bound_text(min_value);
  }
  if (has_max) return "<= " + bound_text(max_value);
  return "any number";
}

bool ParamDecl::in_range(double v) const {
  if (min_exclusive ? !(v > min_value) : !(v >= min_value)) return false;
  return v <= max_value;
}

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    auto simple = [](PolicyFactory factory, std::string description,
                     EngineOptions options = {}) {
      Definition def;
      def.description = std::move(description);
      def.policy = std::move(factory);
      def.engine_options = options;
      return def;
    };
    r->register_policy(
        "fcfs", simple([](const PolicySpec&, std::uint64_t) {
                  return std::make_unique<FcfsPolicy>();
                },
                "first-come-first-served across all organizations"));
    r->register_policy(
        "roundrobin",
        simple([](const PolicySpec&, std::uint64_t) {
          return std::make_unique<RoundRobinPolicy>();
        },
        "cycle the organizations, one job each (Section 7.1)"));
    r->register_policy(
        "random", simple([](const PolicySpec&, std::uint64_t seed) {
                    return std::make_unique<RandomPolicy>(seed);
                  },
                  "uniformly random waiting organization (extension)"));
    {
      // Fig. 9 considers processors in a random order; the owner of the
      // machine a job lands on receives the contribution credit.
      EngineOptions options;
      options.machine_pick = MachinePick::kRandomFree;
      r->register_policy(
          "directcontr",
          simple([](const PolicySpec&, std::uint64_t) {
            return std::make_unique<DirectContrPolicy>();
          },
          "direct-contribution heuristic (Fig. 9)", options));
    }
    r->register_policy(
        "fairshare", simple([](const PolicySpec&, std::uint64_t) {
                       return std::make_unique<FairSharePolicy>();
                     },
                     "fair share over cumulative usage (Section 7.1)"));
    r->register_policy(
        "utfairshare",
        simple([](const PolicySpec&, std::uint64_t) {
          return std::make_unique<UtFairSharePolicy>();
        },
        "fair share over cumulative utility (Section 7.1)"));
    r->register_policy(
        "currfairshare",
        simple([](const PolicySpec&, std::uint64_t) {
          return std::make_unique<CurrFairSharePolicy>();
        },
        "fair share over instantaneous usage (Section 7.1)"));
    {
      Definition def;
      def.description = "exact exponential fair reference (Fig. 3)";
      def.algorithm = [](const PolicySpec&) {
        return std::make_unique<RefAlgorithm>();
      };
      r->register_policy("ref", std::move(def));
    }
    {
      Definition def;
      def.description =
          "randomized Shapley approximation, N permutation samples "
          "(Fig. 6 / Thm 5.6)";
      ParamDecl samples;
      samples.key = "samples";
      samples.type = PolicyParam::Type::kInt;
      samples.min_value = 1;
      samples.default_value = PolicyParam::of_int(15);
      samples.description = "permutation sample count N (Thm 5.6)";
      samples.axis_hint = "1,5,15,75";
      def.params.push_back(std::move(samples));
      def.suffix_param = 0;
      def.algorithm = [](const PolicySpec& spec) {
        return std::make_unique<RandAlgorithm>(static_cast<std::size_t>(
            spec.params.at("samples").int_value));
      };
      r->register_policy("rand", std::move(def));
    }
    {
      Definition def;
      def.description =
          "fair share over exponentially decayed usage, half-life N "
          "(extension; a half-life axis rebinds N)";
      ParamDecl half_life;
      half_life.key = "half-life";
      half_life.type = PolicyParam::Type::kReal;
      half_life.min_value = 0;
      half_life.min_exclusive = true;
      half_life.default_value = PolicyParam::of_real(5000.0);
      half_life.description = "exponential usage-decay half-life";
      half_life.axis_hint = "500,2500,10000,50000";
      def.params.push_back(std::move(half_life));
      def.suffix_param = 0;
      def.policy = [](const PolicySpec& spec, std::uint64_t) {
        return std::make_unique<DecayingFairSharePolicy>(
            spec.params.at("half-life").real_value);
      };
      r->register_policy("decayfairshare", std::move(def));
    }
    return r;
  }();
  return *registry;
}

void PolicyRegistry::register_policy(const std::string& key,
                                     Definition definition) {
  const std::string lower = to_lower(trim_whitespace(key));
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("register_policy '" + key + "': " + why);
  };
  if (lower.empty()) fail("empty name");
  for (char c : lower) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_') {
      fail("name may only contain letters, digits, '-' and '_'");
    }
  }
  if (std::isdigit(static_cast<unsigned char>(lower.front()))) {
    fail("name may not start with a digit");
  }
  if ((definition.policy == nullptr) == (definition.algorithm == nullptr)) {
    fail("exactly one of policy/algorithm must be set");
  }
  if (definition.suffix_param != kNoSuffix &&
      definition.suffix_param >= definition.params.size()) {
    fail("suffix_param index out of range");
  }
  for (std::size_t i = 0; i < definition.params.size(); ++i) {
    const ParamDecl& decl = definition.params[i];
    if (decl.key.empty()) fail("parameter with empty key");
    check_range(decl, decl.default_value, key + " (default)");
    if (reserved_axis_name(normalize_key(decl.axis_name()))) {
      fail("parameter '" + decl.key + "' binds axis '" + decl.axis_name() +
           "', which is a workload axis name");
    }
    for (std::size_t j = i + 1; j < definition.params.size(); ++j) {
      if (normalize_key(decl.key) ==
          normalize_key(definition.params[j].key)) {
        fail("duplicate parameter '" + decl.key + "'");
      }
    }
  }
  const auto it = entries_.find(lower);
  if (it != entries_.end() && !it->second.config_defined &&
      definition.config_defined) {
    fail("'" + lower + "' is a built-in policy and cannot be redefined");
  }
  entries_[lower] = std::move(definition);
}

const PolicyRegistry::Definition* PolicyRegistry::find(
    const std::string& base) const {
  const auto it = entries_.find(base);
  return it == entries_.end() ? nullptr : &it->second;
}

PolicyRegistry::Resolved PolicyRegistry::resolve(
    const std::string& name) const {
  const std::string lower = to_lower(trim_whitespace(name));
  auto unknown = [&]() -> void {
    std::ostringstream msg;
    msg << "unknown policy '" << name << "'; known policies:";
    for (const std::string& key : names()) msg << ' ' << key;
    throw std::invalid_argument(msg.str());
  };

  Resolved resolved;
  const std::size_t open = lower.find('(');
  if (open != std::string::npos) {
    // Bracket form: base(key=value, ...).
    if (lower.back() != ')') {
      throw std::invalid_argument("malformed policy name '" + name +
                                  "': missing closing ')'");
    }
    resolved.base = trim_whitespace(lower.substr(0, open));
    resolved.definition = find(resolved.base);
    if (!resolved.definition) unknown();
    const std::string args =
        lower.substr(open + 1, lower.size() - open - 2);
    for (const std::string& assignment : split_and_trim(args, ',')) {
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("malformed policy parameter '" +
                                    assignment + "' in '" + name +
                                    "' (want key=value)");
      }
      const std::string raw_key = trim_whitespace(assignment.substr(0, eq));
      const std::string value = trim_whitespace(assignment.substr(eq + 1));
      const ParamDecl* decl = nullptr;
      for (const ParamDecl& candidate : resolved.definition->params) {
        if (normalize_key(candidate.key) == normalize_key(raw_key)) {
          decl = &candidate;
          break;
        }
      }
      if (!decl) {
        // Did-you-mean: the closest declared key, if it is close at all.
        std::ostringstream msg;
        msg << "unknown parameter '" << raw_key << "' for policy '"
            << resolved.base << "'";
        const ParamDecl* best = nullptr;
        std::size_t best_distance = 3;  // suggest only near misses
        for (const ParamDecl& candidate : resolved.definition->params) {
          const std::size_t distance =
              edit_distance(normalize_key(raw_key),
                            normalize_key(candidate.key));
          if (distance < best_distance) {
            best = &candidate;
            best_distance = distance;
          }
        }
        if (best) msg << " (did you mean '" << best->key << "'?)";
        msg << "; declared parameters:";
        if (resolved.definition->params.empty()) msg << " none";
        for (const ParamDecl& candidate : resolved.definition->params) {
          msg << ' ' << candidate.key;
        }
        throw std::invalid_argument(msg.str());
      }
      for (const auto& [existing, unused] : resolved.assignments) {
        if (existing == decl) {
          throw std::invalid_argument("duplicate parameter '" + decl->key +
                                      "' in '" + name + "'");
        }
      }
      resolved.assignments.emplace_back(decl, value);
    }
    return resolved;
  }

  const auto exact = entries_.find(lower);
  if (exact != entries_.end()) {
    resolved.base = lower;
    resolved.definition = &exact->second;
    return resolved;
  }
  // Legacy suffix form: longest key whose remainder is a number —
  // "decayfairshare2000" must match "decayfairshare", not "decay".
  std::size_t best_len = 0;
  for (const auto& [key, definition] : entries_) {
    if (definition.suffix_param == kNoSuffix || key.size() <= best_len) {
      continue;
    }
    const ParamDecl& decl = definition.params[definition.suffix_param];
    if (lower.rfind(key, 0) == 0 &&
        numeric_suffix(lower.substr(key.size()),
                       decl.type == PolicyParam::Type::kReal)) {
      resolved.base = key;
      resolved.definition = &definition;
      resolved.assignments.assign(
          {{&decl, lower.substr(key.size())}});
      best_len = key.size();
    }
  }
  if (!resolved.definition) unknown();
  return resolved;
}

PolicySpec PolicyRegistry::bind_resolved(const Resolved& resolved,
                                         const std::string& original) const {
  PolicySpec spec;
  spec.base = resolved.base;
  for (const ParamDecl& decl : resolved.definition->params) {
    spec.params[decl.key] = decl.default_value;
  }
  for (const auto& [decl, text] : resolved.assignments) {
    const PolicyParam value = parse_param_value(*decl, text, original);
    check_range(*decl, value, original);
    spec.params[decl->key] = value;
  }
  return spec;
}

PolicySpec PolicyRegistry::make(const std::string& name) const {
  return bind_resolved(resolve(name), name);
}

bool PolicyRegistry::contains(const std::string& name) const {
  try {
    resolve(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::unique_ptr<Algorithm> PolicyRegistry::instantiate(
    const PolicySpec& spec) const {
  const Definition* definition = find(spec.base);
  if (!definition) {
    std::ostringstream msg;
    msg << "unknown policy '" << spec.base << "'; known policies:";
    for (const std::string& key : names()) msg << ' ' << key;
    throw std::invalid_argument(msg.str());
  }
  // Specs are plain data; re-validate so hand-built ones cannot smuggle
  // out-of-range parameters past the factories.
  for (const ParamDecl& decl : definition->params) {
    const auto it = spec.params.find(decl.key);
    if (it == spec.params.end()) {
      throw std::invalid_argument("policy '" + spec.base +
                                  "': missing parameter '" + decl.key +
                                  "'");
    }
    check_range(decl, it->second, spec.to_string());
  }
  if (definition->algorithm) return definition->algorithm(spec);
  return std::make_unique<PolicyAlgorithm>(
      [this, spec](std::uint64_t seed) { return make_policy(spec, seed); },
      definition->engine_options);
}

std::unique_ptr<Policy> PolicyRegistry::make_policy(
    const PolicySpec& spec, std::uint64_t seed) const {
  const Definition* definition = find(spec.base);
  if (!definition) {
    throw std::invalid_argument("make_policy: unknown policy '" +
                                spec.base + "'");
  }
  if (!definition->policy) {
    throw std::invalid_argument(
        "make_policy: '" + spec.base +
        "' is a whole-schedule algorithm (REF/RAND-shaped), not an engine "
        "policy");
  }
  return definition->policy(spec, seed);
}

bool PolicyRegistry::policy_shaped(const std::string& base) const {
  const Definition* definition = find(base);
  return definition != nullptr && definition->policy != nullptr;
}

std::string PolicyRegistry::canonical_name(const PolicySpec& spec) const {
  const Definition* definition = find(spec.base);
  if (!definition) {
    throw std::invalid_argument("canonical_name: unknown policy '" +
                                spec.base + "'");
  }
  std::string name = spec.base;
  const ParamDecl* suffix_decl =
      definition->suffix_param == kNoSuffix
          ? nullptr
          : &definition->params[definition->suffix_param];
  bool suffix_printed = false;
  if (suffix_decl) {
    // The suffix parameter always prints ("rand" -> "rand15"), matching
    // the legacy canonical names — unless its exact text does not fit the
    // suffix grammar (e.g. an exponent), in which case it joins the
    // bracket parameters below.
    const std::string text = spec.params.at(suffix_decl->key).to_string();
    if (numeric_suffix(text,
                       suffix_decl->type == PolicyParam::Type::kReal)) {
      name += text;
      suffix_printed = true;
    }
  }
  std::string brackets;
  for (const ParamDecl& decl : definition->params) {
    const PolicyParam& value = spec.params.at(decl.key);
    if (suffix_printed && &decl == suffix_decl) continue;
    if (!suffix_printed && suffix_decl == &decl) {
      // Unprintable suffix value: always emitted, like the suffix form.
    } else if (value == decl.default_value) {
      continue;  // defaults are implied; the map is always complete
    }
    if (!brackets.empty()) brackets += ",";
    brackets += decl.key + "=" + value.to_string();
  }
  if (!brackets.empty()) name += "(" + brackets + ")";
  return name;
}

std::string PolicyRegistry::content_key(const PolicySpec& spec) const {
  const Definition* definition = find(spec.base);
  if (!definition) {
    throw std::invalid_argument("content_key: unknown policy '" +
                                spec.base + "'");
  }
  std::string key = definition->content.empty()
                        ? "builtin:" + spec.base
                        : definition->content;
  for (const auto& [param, value] : spec.params) {
    key += "|" + param + "=" + value.to_string();
  }
  return key;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, definition] : entries_) keys.push_back(key);
  return keys;  // std::map keeps them sorted
}

std::vector<std::pair<std::string, std::string>> PolicyRegistry::catalog()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [key, definition] : entries_) {
    out.emplace_back(definition.suffix_param != kNoSuffix ? key + "[N]"
                                                          : key,
                     definition.description);
  }
  return out;
}

void PolicyRegistry::write_catalog_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"format\": \"fairsched-policy-catalog\",\n";
  out << "  \"version\": 1,\n";
  out << "  \"policies\": [\n";
  bool first_entry = true;
  for (const auto& [key, definition] : entries_) {
    if (!first_entry) out << ",\n";
    first_entry = false;
    out << "    {\"name\": \"" << json_escape(key) << "\",\n";
    out << "     \"description\": \"" << json_escape(definition.description)
        << "\",\n";
    out << "     \"kind\": \""
        << (definition.config_defined ? "config" : "builtin") << "\",\n";
    out << "     \"policy_shaped\": "
        << (definition.policy ? "true" : "false") << ",\n";
    out << "     \"parameters\": [";
    bool first_param = true;
    for (std::size_t i = 0; i < definition.params.size(); ++i) {
      const ParamDecl& decl = definition.params[i];
      if (!first_param) out << ", ";
      first_param = false;
      out << "{\"key\": \"" << json_escape(decl.key) << "\", \"type\": \""
          << type_label(decl.type) << "\", \"default\": "
          << decl.default_value.to_string();
      if (decl.min_value != std::numeric_limits<double>::lowest()) {
        out << ", \"min\": " << json_exact_double(decl.min_value)
            << ", \"min_exclusive\": "
            << (decl.min_exclusive ? "true" : "false");
      }
      if (decl.max_value != std::numeric_limits<double>::max()) {
        out << ", \"max\": " << json_exact_double(decl.max_value);
      }
      out << ", \"suffix\": "
          << (definition.suffix_param == i ? "true" : "false");
      out << ", \"axis\": \"" << json_escape(decl.axis_name()) << "\"";
      out << ", \"description\": \"" << json_escape(decl.description)
          << "\"}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

const ParamDecl* PolicyRegistry::param_for_axis(
    const std::string& base, const std::string& axis) const {
  const Definition* definition = find(to_lower(base));
  if (!definition) return nullptr;
  const std::string normalized = normalize_key(axis);
  for (const ParamDecl& decl : definition->params) {
    if (normalize_key(decl.axis_name()) == normalized) return &decl;
  }
  return nullptr;
}

void PolicyRegistry::bind_axis_value(PolicySpec& spec,
                                     const std::string& axis,
                                     double value) const {
  const ParamDecl* decl = param_for_axis(spec.base, axis);
  if (!decl) return;
  spec.params[decl->key] =
      decl->type == PolicyParam::Type::kInt
          ? PolicyParam::of_int(static_cast<std::int64_t>(value))
          : PolicyParam::of_real(value);
}

std::vector<PolicyRegistry::ParamAxis> PolicyRegistry::param_axes() const {
  std::map<std::string, ParamAxis> axes;  // by normalized name, sorted
  for (const auto& [key, definition] : entries_) {
    for (const ParamDecl& decl : definition.params) {
      ParamAxis& axis = axes[normalize_key(decl.axis_name())];
      if (axis.name.empty()) {
        axis.name = decl.axis_name();
        axis.type = decl.type;
        axis.hint = decl.axis_hint;
        axis.description = decl.description;
      }
      axis.policies.push_back(key);
    }
  }
  std::vector<ParamAxis> out;
  out.reserve(axes.size());
  for (auto& [normalized, axis] : axes) out.push_back(std::move(axis));
  return out;
}

// --- Config-defined policies ------------------------------------------------

void register_config_policy(PolicyRegistry& registry,
                            const ConfigPolicyDef& def) {
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("policy '" + def.name + "': " + why);
  };
  const int shapes = (!def.base.empty() ? 1 : 0) +
                     (!def.switch_policies.empty() ? 1 : 0) +
                     (!def.mixture.empty() ? 1 : 0);
  if (shapes != 1) {
    fail("needs exactly one of 'base = NAME', 'switch = A, B' or "
         "'mix = A:w, B:w'");
  }
  if (def.base.empty() && !def.overrides.empty()) {
    fail("parameter overrides ('" + def.overrides.front().first +
         " = ...') are only valid with 'base = NAME'");
  }
  if (def.switch_policies.empty() && !def.switch_at.empty()) {
    fail("'switch-at' is only valid with 'switch = A, B'");
  }

  PolicyRegistry::Definition definition;
  definition.config_defined = true;
  definition.description = def.description;
  // The registry must outlive the entry (the process-wide global() always
  // does); factories capture it to resolve their building blocks.
  PolicyRegistry* owner = &registry;

  if (!def.base.empty()) {
    // Derived policy: the base's declared parameters with new defaults.
    const PolicySpec base_spec = registry.make(def.base);
    const PolicyRegistry::Definition* base_definition =
        registry.find(base_spec.base);
    definition.params = base_definition->params;
    for (ParamDecl& decl : definition.params) {
      decl.default_value = base_spec.params.at(decl.key);
    }
    for (const auto& [raw_key, raw_value] : def.overrides) {
      ParamDecl* decl = nullptr;
      for (ParamDecl& candidate : definition.params) {
        if (normalize_key(candidate.key) == normalize_key(raw_key)) {
          decl = &candidate;
        }
      }
      if (!decl) {
        // Same did-you-mean shape as the name grammar's bracket form.
        std::string message = "base '" + base_spec.base +
                              "' declares no parameter '" + raw_key + "'";
        const ParamDecl* best = nullptr;
        std::size_t best_distance = 3;
        for (const ParamDecl& candidate : definition.params) {
          const std::size_t distance = edit_distance(
              normalize_key(raw_key), normalize_key(candidate.key));
          if (distance < best_distance) {
            best = &candidate;
            best_distance = distance;
          }
        }
        if (best) message += " (did you mean '" + best->key + "'?)";
        message += "; declared parameters:";
        if (definition.params.empty()) message += " none";
        for (const ParamDecl& candidate : definition.params) {
          message += " " + candidate.key;
        }
        fail(message);
      }
      decl->default_value =
          parse_param_value(*decl, raw_value, def.name + "." + raw_key);
      check_range(*decl, decl->default_value, def.name + "." + raw_key);
    }
    if (definition.description.empty()) {
      definition.description = "config-defined: " +
                               registry.canonical_name(base_spec) +
                               " with overridden defaults";
    }
    definition.content =
        "cfg:" + def.name + "{base=" +
        (base_definition->content.empty() ? "builtin:" + base_spec.base
                                          : base_definition->content) +
        "}";
    const std::string base_key = base_spec.base;
    if (base_definition->policy) {
      definition.engine_options = base_definition->engine_options;
      definition.policy = [owner, base_key](const PolicySpec& spec,
                                            std::uint64_t seed) {
        PolicySpec inner = spec;
        inner.base = base_key;
        return owner->make_policy(inner, seed);
      };
    } else {
      definition.algorithm = [owner, base_key](const PolicySpec& spec) {
        PolicySpec inner = spec;
        inner.base = base_key;
        return owner->instantiate(inner);
      };
    }
  } else if (!def.switch_policies.empty()) {
    if (def.switch_policies.size() != 2) {
      fail("switch needs exactly two policies, got " +
           std::to_string(def.switch_policies.size()));
    }
    if (def.switch_at.empty()) {
      fail("switch needs a 'switch-at = TIME' key");
    }
    std::vector<PolicySpec> parts;
    for (const std::string& part : def.switch_policies) {
      parts.push_back(registry.make(part));
      if (!registry.policy_shaped(parts.back().base)) {
        fail("switch member '" + part +
             "' is a whole-schedule algorithm (REF/RAND); compositions "
             "need engine policies");
      }
    }
    ParamDecl switch_at;
    switch_at.key = "switch-at";
    switch_at.type = PolicyParam::Type::kInt;
    switch_at.min_value = 0;
    switch_at.description =
        "time at which '" + def.name + "' switches from " +
        registry.canonical_name(parts[0]) + " to " +
        registry.canonical_name(parts[1]);
    switch_at.default_value =
        parse_param_value(switch_at, def.switch_at,
                          def.name + ".switch-at");
    check_range(switch_at, switch_at.default_value,
                def.name + ".switch-at");
    // Distinct per-policy axis name: two switch policies in one sweep
    // should be independently sweepable.
    switch_at.axis = def.name + "-switch-at";
    switch_at.axis_hint = switch_at.default_value.to_string();
    definition.params.push_back(std::move(switch_at));
    if (definition.description.empty()) {
      definition.description = "config-defined: " +
                               registry.canonical_name(parts[0]) +
                               " then " +
                               registry.canonical_name(parts[1]) +
                               " from t=switch-at";
    }
    definition.content = "cfg:" + def.name + "{switch=" +
                         registry.content_key(parts[0]) + "->" +
                         registry.content_key(parts[1]) + "}";
    definition.policy = [owner, parts](const PolicySpec& spec,
                                       std::uint64_t seed) {
      return std::make_unique<SwitchPolicy>(
          owner->make_policy(parts[0], mix_seed(seed, 0x5101)),
          owner->make_policy(parts[1], mix_seed(seed, 0x5102)),
          static_cast<Time>(spec.params.at("switch-at").int_value));
    };
  } else {
    std::vector<PolicySpec> parts;
    std::vector<double> weights;
    std::string mix_content;
    for (const auto& [part, weight] : def.mixture) {
      parts.push_back(registry.make(part));
      if (!registry.policy_shaped(parts.back().base)) {
        fail("mix member '" + part +
             "' is a whole-schedule algorithm (REF/RAND); compositions "
             "need engine policies");
      }
      if (!(weight > 0)) {
        fail("mix weight for '" + part + "' must be positive");
      }
      weights.push_back(weight);
      if (!mix_content.empty()) mix_content += ",";
      mix_content += registry.content_key(parts.back()) + ":" +
                     PolicyParam::of_real(weight).to_string();
    }
    if (parts.size() < 2) fail("mix needs at least two policies");
    if (definition.description.empty()) {
      std::string names;
      for (const PolicySpec& part : parts) {
        if (!names.empty()) names += "/";
        names += registry.canonical_name(part);
      }
      definition.description =
          "config-defined: weighted random mixture of " + names;
    }
    definition.content = "cfg:" + def.name + "{mix=" + mix_content + "}";
    definition.policy = [owner, parts, weights](const PolicySpec&,
                                                std::uint64_t seed) {
      std::vector<MixturePolicy::Component> components;
      components.reserve(parts.size());
      for (std::size_t i = 0; i < parts.size(); ++i) {
        components.push_back(MixturePolicy::Component{
            owner->make_policy(parts[i], mix_seed(seed, 0x6d10 + i)),
            weights[i]});
      }
      return std::make_unique<MixturePolicy>(std::move(components),
                                             mix_seed(seed, 0x6d00));
    };
  }

  registry.register_policy(def.name, std::move(definition));
}

std::string canonical_policy_name(const PolicySpec& spec,
                                  const PolicyRegistry& registry) {
  return registry.canonical_name(spec);
}

std::vector<PolicySpec> parse_policy_list(const std::string& csv,
                                          const PolicyRegistry& registry) {
  std::vector<PolicySpec> specs;
  for (const std::string& name : split_and_trim(csv, ',')) {
    specs.push_back(registry.make(name));
  }
  if (specs.empty()) {
    throw std::invalid_argument("empty policy list: '" + csv + "'");
  }
  return specs;
}

}  // namespace fairsched::exp
