#include "exp/policy_registry.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/cli.h"

namespace fairsched::exp {

namespace {

std::string to_lower(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

// A parameter suffix must look like a plain non-negative number: at least
// one digit, and (only for fractional parameters) at most one dot. Anything
// else ("rand.", "rand1.5", "decayfairshare1.2.3") is treated as an unknown
// policy name, keeping contains() and make() in agreement.
bool numeric_suffix(const std::string& s, bool fractional) {
  if (s.empty()) return false;
  bool has_digit = false;
  int dots = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (c == '.') {
      if (!fractional || ++dots > 1) return false;
    } else {
      return false;
    }
  }
  return has_digit;
}

}  // namespace

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    // Every fixed-form algorithm delegates to the runner's parser so the
    // registry and parse_algorithm can never drift apart.
    const std::pair<const char*, const char*> fixed[] = {
        {"fcfs", "first-come-first-served across all organizations"},
        {"roundrobin", "cycle the organizations, one job each (Section 7.1)"},
        {"random", "uniformly random waiting organization (extension)"},
        {"directcontr", "direct-contribution heuristic (Fig. 9)"},
        {"fairshare", "fair share over cumulative usage (Section 7.1)"},
        {"utfairshare", "fair share over cumulative utility (Section 7.1)"},
        {"currfairshare",
         "fair share over instantaneous usage (Section 7.1)"},
        {"ref", "exact exponential fair reference (Fig. 3)"},
    };
    for (const auto& [name, description] : fixed) {
      r->register_policy(
          name, [](const std::string& n) { return parse_algorithm(n); },
          /*parameterized=*/false, /*fractional=*/false, description);
    }
    r->register_policy(
        "rand", [](const std::string& n) { return parse_algorithm(n); },
        /*parameterized=*/true, /*fractional=*/false,
        "randomized Shapley approximation, N permutation samples "
        "(Fig. 6 / Thm 5.6)");
    r->register_policy(
        "decayfairshare",
        [](const std::string& n) { return parse_algorithm(n); },
        /*parameterized=*/true, /*fractional=*/true,
        "fair share over exponentially decayed usage, half-life N "
        "(extension; a half-life axis rebinds N)",
        /*bound_axes=*/{"half-life"});
    return r;
  }();
  return *registry;
}

void PolicyRegistry::register_policy(const std::string& key,
                                     PolicyFactory factory,
                                     bool parameterized, bool fractional,
                                     std::string description,
                                     std::vector<std::string> bound_axes) {
  entries_[to_lower(key)] =
      Entry{std::move(factory), parameterized, fractional,
            std::move(description), std::move(bound_axes)};
}

const PolicyRegistry::Entry* PolicyRegistry::find_entry(
    const std::string& lower) const {
  auto it = entries_.find(lower);
  if (it != entries_.end()) return &it->second;
  // Longest parameterized prefix whose remainder is a number:
  // "decayfairshare2000" must match "decayfairshare", not "decay".
  const Entry* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.parameterized || key.size() <= best_len) continue;
    if (lower.rfind(key, 0) == 0 &&
        numeric_suffix(lower.substr(key.size()), entry.fractional)) {
      best = &entry;
      best_len = key.size();
    }
  }
  return best;
}

AlgorithmSpec PolicyRegistry::make(const std::string& name) const {
  const std::string lower = to_lower(name);
  if (const Entry* entry = find_entry(lower)) {
    try {
      return entry->factory(lower);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("policy parameter out of range in '" +
                                  name + "'");
    }
  }
  std::ostringstream msg;
  msg << "unknown policy '" << name << "'; known policies:";
  for (const std::string& key : names()) msg << ' ' << key;
  throw std::invalid_argument(msg.str());
}

bool PolicyRegistry::contains(const std::string& name) const {
  return find_entry(to_lower(name)) != nullptr;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;  // std::map keeps them sorted
}

std::vector<std::string> PolicyRegistry::bound_axes(
    const std::string& name) const {
  const Entry* entry = find_entry(to_lower(name));
  return entry ? entry->bound_axes : std::vector<std::string>{};
}

std::vector<std::pair<std::string, std::string>> PolicyRegistry::catalog()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.emplace_back(entry.parameterized ? key + "[N]" : key,
                     entry.description);
  }
  return out;
}

std::string canonical_policy_name(const AlgorithmSpec& spec) {
  switch (spec.id) {
    case AlgorithmId::kRef:
      return "ref";
    case AlgorithmId::kRand:
      return "rand" + std::to_string(spec.rand_samples);
    case AlgorithmId::kDirectContr:
      return "directcontr";
    case AlgorithmId::kRoundRobin:
      return "roundrobin";
    case AlgorithmId::kFairShare:
      return "fairshare";
    case AlgorithmId::kUtFairShare:
      return "utfairshare";
    case AlgorithmId::kCurrFairShare:
      return "currfairshare";
    case AlgorithmId::kDecayFairShare: {
      // Plain decimal, trailing zeros trimmed: scientific notation
      // ("1e+06") would not survive the registry's numeric-suffix check.
      // The buffer fits any finite double in %f form (<= ~316 chars); a
      // half-life below the 6-fractional-digit resolution would print as
      // "0" and silently round-trip to an invalid policy, so reject it
      // loudly instead.
      char buf[352];
      std::snprintf(buf, sizeof(buf), "%.6f", spec.decay_half_life);
      std::string digits = buf;
      digits.erase(digits.find_last_not_of('0') + 1);
      if (!digits.empty() && digits.back() == '.') digits.pop_back();
      if (digits == "0") {
        throw std::invalid_argument(
            "canonical_policy_name: decay half-life too small to represent "
            "in a policy name");
      }
      return "decayfairshare" + digits;
    }
    case AlgorithmId::kRandom:
      return "random";
    case AlgorithmId::kFcfs:
      return "fcfs";
  }
  throw std::logic_error("canonical_policy_name: unknown algorithm id");
}

std::vector<AlgorithmSpec> parse_policy_list(const std::string& csv,
                                             const PolicyRegistry& registry) {
  std::vector<AlgorithmSpec> specs;
  for (const std::string& name : split_and_trim(csv, ',')) {
    specs.push_back(registry.make(name));
  }
  if (specs.empty()) {
    throw std::invalid_argument("empty policy list: '" + csv + "'");
  }
  return specs;
}

}  // namespace fairsched::exp
