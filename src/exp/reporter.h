#pragma once

// Pluggable sweep output. A Reporter consumes a finished SweepResult; the
// harness stacks several per run (human table on stdout, machine CSV, JSON
// perf baseline for CI).

#include <ostream>
#include <string>

#include "exp/sweep.h"

namespace fairsched::exp {

class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void report(const SweepSpec& spec, const SweepResult& result) = 0;
};

// Machine-readable aggregates through util/csv, one row per
// (workload, policy) cell. Wall-clock columns are intentionally absent: this
// output is asserted bit-identical across thread counts.
// Columns: sweep, workload, policy, instances, unfairness_mean,
// unfairness_stdev, unfairness_min, unfairness_max, rel_distance_mean,
// utilization_mean, work_done_total.
class CsvReporter final : public Reporter {
 public:
  // per_run additionally emits one row per RunRecord (prefixed "run") for
  // downstream plotting.
  explicit CsvReporter(std::ostream& out, bool per_run = false)
      : out_(out), per_run_(per_run) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

  // Shared numeric formatting (shortest round-trip-stable form).
  static std::string format(double v);

 private:
  std::ostream& out_;
  bool per_run_;
};

// JSON perf baseline (the BENCH_*.json artifacts CI archives): sweep
// configuration, per-cell statistics, and wall-time accounting.
class JsonReporter final : public Reporter {
 public:
  explicit JsonReporter(std::ostream& out) : out_(out) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

 private:
  std::ostream& out_;
};

// Human-readable Tables 1-2 layout: one row per policy, one (Avg, St.dev)
// column pair per workload, via util/table.
class TableReporter final : public Reporter {
 public:
  explicit TableReporter(std::ostream& out) : out_(out) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

 private:
  std::ostream& out_;
};

}  // namespace fairsched::exp
