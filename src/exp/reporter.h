#pragma once

// Pluggable sweep output. A Reporter consumes a finished SweepResult (cell
// aggregates only — per-run records are not retained by the driver); the
// harness stacks several per run (human table on stdout, machine CSV, JSON
// perf baseline for CI). Per-run output goes through CsvRecordSink, which
// streams rows as the driver folds records, in the deterministic order.

#include <ostream>
#include <string>

#include "exp/sweep.h"
#include "util/csv.h"

namespace fairsched::exp {

class Reporter {
 public:
  virtual ~Reporter() = default;
  virtual void report(const SweepSpec& spec, const SweepResult& result) = 0;
};

// Machine-readable aggregates through util/csv, one row per
// (axis point, workload, policy) cell. Wall-clock columns are intentionally
// absent: this output is asserted bit-identical across thread counts.
// Columns: sweep, <one per axis>, workload, policy, instances,
// unfairness_mean, unfairness_stdev, unfairness_min, unfairness_max,
// rel_distance_mean, utilization_mean, work_done_total.
class CsvReporter final : public Reporter {
 public:
  explicit CsvReporter(std::ostream& out) : out_(out) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

  // Shared numeric formatting (shortest round-trip-stable form).
  static std::string format(double v);

 private:
  std::ostream& out_;
};

// Streaming per-run CSV sink for SweepDriver::run: one row per RunRecord,
// written as records are folded (fixed deterministic order, so the file is
// bit-identical across thread counts; wall times are excluded). Memory is
// O(1) — rows are never retained. Columns: sweep, <one per axis>, workload,
// policy, instance, seed, unfairness, rel_distance, utilization, work_done.
class CsvRecordSink {
 public:
  // Writes the header row immediately. `spec` must outlive the sink.
  CsvRecordSink(std::ostream& out, const SweepSpec& spec);

  void write(const RunRecord& record);
  // Adapts to SweepDriver::RecordSink.
  void operator()(const RunRecord& record) { write(record); }

 private:
  CsvWriter csv_;
  const SweepSpec& spec_;
};

// JSON perf baseline (the BENCH_*.json artifacts CI archives): sweep
// configuration, axes, per-cell statistics, wall-time accounting
// (total_wall_ms = summed per-run walls, elapsed_ms = driver wall clock),
// and workload/baseline-cache counters (scripts/compare_bench.py reads
// these for the perf-regression gate).
class JsonReporter final : public Reporter {
 public:
  explicit JsonReporter(std::ostream& out) : out_(out) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

 private:
  std::ostream& out_;
};

// Human-readable Tables 1-2 layout: one row per (axis point, policy) with a
// leading column per axis, one (Avg, St.dev) column pair per workload, via
// util/table.
class TableReporter final : public Reporter {
 public:
  explicit TableReporter(std::ostream& out) : out_(out) {}
  void report(const SweepSpec& spec, const SweepResult& result) override;

 private:
  std::ostream& out_;
};

}  // namespace fairsched::exp
