#pragma once

// The planning layer of the sweep engine.
//
// A SweepPlan is the pure, deterministic expansion of a SweepSpec: every
// axis value bound onto per-point horizons / policy specs / workload
// parameters, the axis points grouped into prefix groups (exp/sweep.h),
// and the task grid laid out with stable global identifiers. Building a
// plan executes nothing — it is cheap, side-effect free, and the same
// bytes on every host — so it can be printed (`fairsched_exp plan`),
// fingerprinted, and partitioned into shards that independent processes
// execute (exp/executor.h) and a later `merge` step folds back together
// (exp/sweep_artifact.h).
//
// Identifiers, all stable under sharding:
//   task id   t = (point * workloads + workload) * instances + instance
//   run id    r = t * policies + policy   (== the fold/stream position)
//   family    f = group_of[point] * workloads + workload
//
// Shards partition the *families*, not the tasks: every task and cell of
// a family lands on shard `family % shard_count`. A family is exactly the
// sharing unit of the workload/baseline cache (all axis points of a prefix
// group for one workload), so sharding never splits a cached prefix across
// processes, and every cell's runs stay within one shard — which is what
// makes merged per-cell aggregates bit-identical to a whole run.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "exp/policy_registry.h"
#include "exp/sweep.h"

namespace fairsched {
class JsonValue;
}

namespace fairsched::exp {

// One shard of a partitioned sweep: this process executes the families
// assigned to `index` out of `count`. The default {0, 1} is a whole run.
struct SweepShard {
  std::size_t index = 0;
  std::size_t count = 1;

  bool whole() const { return count <= 1; }
  friend bool operator==(const SweepShard&, const SweepShard&) = default;
};

// Parses a "--shard=INDEX/COUNT" value ("0/3", "2/3"). An empty string is
// the whole-run default. Throws std::invalid_argument with a descriptive
// message on anything else (missing '/', non-numeric parts, count == 0,
// index >= count).
SweepShard parse_shard_spec(const std::string& text);

struct SweepPlan {
  SweepSpec spec;
  SweepShard shard;

  // The registry the plan's policy names were resolved through; the
  // executor instantiates the bound specs through it. Non-owning — the
  // registry (usually PolicyRegistry::global()) must outlive the plan.
  const PolicyRegistry* registry = &PolicyRegistry::global();

  // Grid dimensions.
  std::size_t num_points = 1;
  std::size_t num_workloads = 0;
  std::size_t num_policies = 0;
  std::size_t num_tasks = 0;  // global: num_points * workloads * instances

  // Axis values bound up front, O(cells):
  std::vector<Time> horizons;                // per axis point
  std::vector<PolicySpec> algorithms;        // per policy, unbound
  std::vector<PolicySpec> bound_algorithms;  // [point * policies + p]
  std::vector<SweepWorkload> bound_workloads;  // [point * workloads + w]
  bool has_baseline = false;
  PolicySpec baseline;

  // Strategy sweeps (spec.is_strategy()): the effective deviation and
  // deviating organization of each axis point, resolved from the strategy
  // axes (sweep_point_deviation / sweep_point_deviator). Sized num_points
  // always; honest / org 0 throughout for non-strategy sweeps.
  std::vector<strategy::DeviationSpec> point_deviations;
  std::vector<OrgId> point_deviators;

  // Prefix groups: axis points sharing every workload-scoped axis value.
  // Strategy axes are strategy-scoped, so every deviation of one cell
  // lands in one group and shares the honest prefix (generated window +
  // baseline run) through the WorkloadCache.
  std::vector<std::size_t> group_of;   // per axis point
  std::vector<std::size_t> group_rep;  // first point of each group
  std::vector<std::size_t> group_size;
  std::size_t num_groups = 1;

  // Per (group, policy): slot of the policy's record inside the group's
  // cached prefix, or kNoSlot when its bound spec varies within the group.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<std::size_t> shared_slot;  // [group * policies + p]

  // The global task ids this shard owns, ascending (== the shard's fold
  // order). A whole-run plan owns every task.
  std::vector<std::size_t> shard_tasks;
  // Planned uses of each synthetic-window cache key within this shard:
  // the number of owned (group, workload) families per (workload, horizon).
  std::map<std::pair<std::size_t, Time>, std::size_t> window_uses;

  // FNV-1a hash over the shard-independent plan content (spec dimensions,
  // bound values, grouping). Two plans merge only if fingerprints match;
  // execution knobs (threads, cache budget) are deliberately excluded
  // because they never change output.
  std::uint64_t fingerprint = 0;

  // Task-id decomposition (inverse of the id formula above).
  std::size_t task_point(std::size_t task) const {
    return task / (num_workloads * spec.instances);
  }
  std::size_t task_workload(std::size_t task) const {
    return (task / spec.instances) % num_workloads;
  }
  std::size_t task_instance(std::size_t task) const {
    return task % spec.instances;
  }
  std::uint64_t run_id(std::size_t task, std::size_t policy) const {
    return static_cast<std::uint64_t>(task) * num_policies + policy;
  }

  std::size_t family_of_task(std::size_t task) const {
    return group_of[task_point(task)] * num_workloads + task_workload(task);
  }
  std::size_t shard_of_family(std::size_t family) const {
    return family % shard.count;
  }
  bool owns_task(std::size_t task) const {
    return shard_of_family(family_of_task(task)) == shard.index;
  }

  std::size_t num_cells() const {
    return num_points * num_workloads * num_policies;
  }
  std::size_t cell_index(std::size_t point, std::size_t workload,
                         std::size_t policy) const {
    return (point * num_workloads + workload) * num_policies + policy;
  }
  // A cell belongs to the shard owning its (group, workload) family.
  bool owns_cell(std::size_t cell) const {
    const std::size_t point = cell / (num_workloads * num_policies);
    const std::size_t workload = (cell / num_policies) % num_workloads;
    return shard_of_family(group_of[point] * num_workloads + workload) ==
           shard.index;
  }
};

// Validates the spec (unknown policies, malformed/duplicate/inert axes,
// empty dimensions — std::invalid_argument, same contract as
// SweepDriver::run) and expands it into a plan for `shard`.
SweepPlan build_sweep_plan(const SweepSpec& spec,
                           const PolicyRegistry& registry =
                               PolicyRegistry::global(),
                           SweepShard shard = {});

// Serializes the plan as JSON: the spec summary, the prefix groups, and —
// when `include_tasks` — one entry per task with its global ids, seed,
// group, family and shard. This is `fairsched_exp plan`'s output.
void write_plan_json(std::ostream& out, const SweepPlan& plan,
                     bool include_tasks = true);

// The reporter-facing subset of a SweepSpec as a JSON object (names,
// dimensions, axes with exact values), embedded in plans and in shard
// partial artifacts so `merge` can rebuild reports without the original
// command line. The round trip preserves everything reporters read; it
// does not preserve workload generator parameters, so a reconstructed
// spec cannot be re-executed.
void write_spec_summary_json(std::ostream& out, const SweepSpec& spec,
                             const std::string& indent);
SweepSpec spec_from_summary_json(const JsonValue& summary);

// Canonical content strings for the disk cache tier (exp/workload_cache.h):
// two invocations (or two shards) wanting the same deterministic value
// derive the same key, whatever their in-plan indices are.
// synthetic_content_key covers every SyntheticSpec generation parameter
// and is the single serializer shared by the workload (prefix) and window
// keys — if the two drifted apart, a new generator field captured by one
// but not the other would let distinct content collide on one key, which
// the disk tier's full-key validation could then no longer catch.
// Policy content keys come from PolicyRegistry::content_key, so a
// config-defined policy's key embeds its whole definition.
std::string synthetic_content_key(const SyntheticSpec& spec);
std::string workload_content_key(const SweepWorkload& workload, Time horizon,
                                 std::uint64_t seed);

}  // namespace fairsched::exp
