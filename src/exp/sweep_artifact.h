#pragma once

// Versioned shard partial-result artifacts, and the merge that folds them.
//
// A sharded sweep execution (exp/executor.h; `fairsched_exp ... --shard=s/N
// --partial-out=FILE`) persists everything the whole-run reports need:
// the spec summary, the plan fingerprint, the shard's cache/wall-time
// accounting, and — the payload — the exact Welford accumulator state of
// every cell the shard owns (util/stats.h). `fairsched_exp merge` (or the
// in-process MultiProcessExecutor) folds N such artifacts back into one
// SweepResult.
//
// The merge determinism contract: because shards partition *prefix
// families* (exp/sweep_plan.h), every cell's runs execute within exactly
// one shard, in the same relative order a whole run would fold them. A
// cell's accumulator state in its artifact is therefore bit-identical to
// the whole run's, and merging reduces to placing each state into its
// slot — so merged CSV output is byte-identical to an unsharded run, at
// any shard count, thread count, or cache configuration. Wall-clock and
// cache counters are aggregated (summed; they are measurements, not part
// of the contract). Doubles round-trip through "%.17g", which is exact
// for IEEE doubles.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep_plan.h"

namespace fairsched::exp {

inline constexpr int kShardArtifactVersion = 1;

// A parsed partial artifact. `result` is full-size (every cell of the
// sweep), with only `owned_cells` populated; the rest stay default.
struct ShardArtifact {
  std::uint64_t fingerprint = 0;
  SweepShard shard;
  SweepSpec spec;  // reporter-facing reconstruction (spec_from_summary_json)
  SweepResult result;
  std::vector<std::size_t> owned_cells;  // ascending cell indices
};

// Writes the partial artifact for `plan.shard`: header, spec summary, the
// shard's accounting, and the owned cells' exact accumulator state.
void write_shard_artifact(std::ostream& out, const SweepPlan& plan,
                          const SweepResult& result);

// Parses an artifact document. `source` names the input in error messages.
// Throws std::invalid_argument on malformed/mis-versioned input.
ShardArtifact parse_shard_artifact(const std::string& text,
                                   const std::string& source);
// Reads and parses `path`; std::invalid_argument when unreadable.
ShardArtifact load_shard_artifact(const std::string& path);

// The whole-run view folded from N partial artifacts.
struct MergedSweep {
  SweepSpec spec;      // reconstructed; reporting-only (cannot re-run)
  SweepResult result;  // cells bit-identical to a whole single-process run
};

// Validates the set (equal fingerprints and shard counts, shard indices
// 0..N-1 exactly once, cells covered exactly once) and folds it. Cache
// stats and wall times are summed into `result.cache` / the wall fields,
// with the per-shard breakdown kept in result.per_shard_cache (indexed by
// shard); result.elapsed_ms is the max over shards (they ran
// concurrently). Throws std::invalid_argument on any inconsistency.
MergedSweep merge_shard_artifacts(std::vector<ShardArtifact> shards);

// Digest of everything the determinism contract covers: the plan
// fingerprint, the shard identity, and each owned cell's exact
// accumulator states and work_done. Volatile accounting (wall clocks,
// cache counters, replay counts) is excluded, so two independent
// executions of the same shard — a straggler and its speculative
// duplicate — must digest equal; a difference falsifies the contract and
// aborts the dispatch (dist/dispatcher.h).
std::uint64_t artifact_determinism_digest(const ShardArtifact& artifact);

}  // namespace fairsched::exp
