#pragma once

// Declarative experiment sweeps.
//
// A sweep is data: (policy set) x (workload generators) x (seeds) x a cross
// product of named parameter axes (number of organizations, horizon,
// fair-share half-life, ...). Execution is layered (docs/ARCHITECTURE.md):
// exp/sweep_plan.h expands a spec into a pure, serializable, shardable
// SweepPlan; exp/executor.h runs a plan in-process (thread pool) or across
// worker subprocesses; exp/sweep_artifact.h merges shard partials. The
// SweepDriver below is the whole-run facade over those layers: it shards
// independent (axis point, workload, instance) cells across the shared
// ThreadPool and folds the results in a fixed sequential order, so the
// statistical output is bit-identical whatever the thread count (or shard
// partition) — CI asserts this. Per-run records are streamed to an opt-in
// sink instead of being retained, so peak memory is O(cells), independent
// of the run count. Per-run wall times are recorded for the JSON perf
// baselines but deliberately kept out of the deterministic aggregates.
//
// Cells that differ only in policy-scoped axis values (e.g. the fair-share
// half-life) share a *prefix* — generated workload, constructed instance,
// baseline reference run, and the runs of every policy those axes do not
// bind. The driver plans the cross product into prefix groups and computes
// each prefix once through a bounded WorkloadCache (exp/workload_cache.h);
// caching is a pure time optimization and never changes output.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "exp/policy_registry.h"
#include "exp/workload_cache.h"
#include "strategy/deviation.h"
#include "util/stats.h"
#include "workload/assignment.h"
#include "workload/synthetic.h"

namespace fairsched::exp {

// One workload generator of a sweep. kSynthetic draws a window from the
// archive-shaped generator (Section 7.2); kUnitJobs draws the unit-size
// instances the FPRAS convergence experiment (Thm 5.6) uses; kSmallRandom
// draws the small random consortia the utilization probe (Thm 6.2) samples.
struct SweepWorkload {
  enum class Kind { kSynthetic, kUnitJobs, kSmallRandom };

  std::string name;
  Kind kind = Kind::kSynthetic;

  // kSynthetic.
  SyntheticSpec spec;
  std::uint32_t orgs = 5;
  MachineSplit split = MachineSplit::kZipf;
  double zipf_s = 1.0;

  // kUnitJobs: `orgs` organizations with 1-3 machines each.
  std::uint32_t unit_jobs_per_org = 60;

  // kSmallRandom: 2-4 orgs, 1-3 machines each, `random_jobs`..random_jobs+39
  // jobs with short durations.
  std::size_t random_jobs = 10;
};

// Materializes one instance of the workload. Deterministic given the seed.
Instance make_workload_instance(const SweepWorkload& workload, Time horizon,
                                std::uint64_t seed);

// A named parameter axis. The sweep runs the full cross product of every
// axis's values; each value is bound onto the run's workload, horizon or
// policy parameters before execution. Reporters emit one column per axis.
struct SweepAxis {
  enum class Bind {
    kOrgs,            // SweepWorkload::orgs (Fig. 10's dimension)
    kHorizon,         // per-point experiment horizon (Tables 1 vs 2)
    kZipfS,           // Zipf exponent of the machine split
    kSplit,           // machine split: 0 = zipf, 1 = uniform
    kUnitJobsPerOrg,  // SweepWorkload::unit_jobs_per_org
    kRandomJobs,      // SweepWorkload::random_jobs
    // A declared policy parameter (exp/policy_registry.h): the axis
    // rebinds `param` in every selected policy whose registry entry
    // declares a parameter bound to this axis name — e.g. "half-life"
    // rebinds every decayfairshare-derived policy, "samples" every rand.
    // Any declared numeric parameter is sweepable this way; no axis code
    // changes when a policy (or a config-defined one) adds a parameter.
    kPolicyParam,
    // Strategy axes (strategy/deviation.h): which deviation of
    // SweepSpec::deviations the deviating organization plays, which
    // organization deviates, and an optional magnitude override of the
    // deviation's parameter. All three are strategy-scoped: they leave the
    // honest workload and the baseline run untouched, so every value
    // shares one cached prefix (window + honest REF baseline).
    kStrategy,        // index into SweepSpec::deviations
    kDeviatorOrg,     // which organization deviates (org index)
    kDeviationParam,  // overrides the deviation's parameter (honest ignores)
  };

  // What the axis parameterizes, which decides what the workload/baseline
  // cache may share across its values. kWorkload axes reshape the generated
  // instance (or the horizon), so every value is a distinct cell prefix;
  // kPolicy axes only rebind policy parameters, so all their values share
  // one prefix — instance, baseline run, and the runs of every policy the
  // axis does not bind. make_axis sets the default per Bind (only
  // kPolicyParam is policy-scoped); a scenario may widen a policy axis to
  // kWorkload to opt out of sharing, but never the reverse — the driver
  // rejects a policy-scoped axis whose bind reshapes the workload, because
  // grouping such cells onto one prefix would simulate the wrong
  // consortium. kStrategy axes transform one organization's *declared* job
  // stream after the honest instance and baseline exist, so all their
  // values share one prefix (instance + baseline) but never each other's
  // policy runs; the strategy binds are the only ones that may carry this
  // scope, and they always do.
  enum class Scope { kWorkload, kPolicy, kStrategy };

  std::string name;  // reporter column name, e.g. "orgs"
  Bind bind = Bind::kOrgs;
  // kPolicyParam only: the axis name the registry declarations bind
  // (normalized spelling; PolicyRegistry::bind_axis_value matches it).
  std::string param;
  // Values must be whole numbers and labels print without a decimal point
  // (workload binds with integral fields, int-typed policy parameters).
  bool integral = false;
  Scope scope = Scope::kWorkload;
  std::vector<double> values;
  // Optional display labels, parallel to `values` (empty = derive from the
  // value). The strategy axis labels its deviation ids with their canonical
  // deviation labels ("honest", "split2", ...); the labels round-trip
  // through spec summaries so `merge` prints them without the grid.
  std::vector<std::string> value_labels;
};

// The default scope of a bind: Scope::kPolicy for kPolicyParam,
// Scope::kStrategy for the strategy binds, kWorkload for everything else.
SweepAxis::Scope default_axis_scope(SweepAxis::Bind bind);

// "workload" / "policy" / "strategy" — the spelling shared by plan
// fingerprints, spec summaries and `fairsched_exp list-axes`.
const char* axis_scope_name(SweepAxis::Scope scope);

// Builds an axis from a user-facing name: the workload axes (orgs, horizon
// (alias: duration), zipf-s, split, jobs-per-org, random-jobs), or any
// parameter axis a registered policy declares ("half-life", "samples",
// ...). Case-insensitive, '-'/'_' interchangeable. Throws
// std::invalid_argument on unknown names, listing the valid ones.
SweepAxis make_axis(const std::string& name, std::vector<double> values,
                    const PolicyRegistry& registry =
                        PolicyRegistry::global());

// The spelling fold behind make_axis (lower-case, '-'/'_' stripped), so
// "half-life", "half_life" and "HalfLife" all name the same axis. Sweep
// config keys and policy parameter keys share these spelling rules
// (exp/sweep_config, exp/policy_registry).
std::string normalize_axis_name(const std::string& name);

// True for workload binds whose bound field is integral (orgs, horizon,
// jobs-per-org, random-jobs). Policy-parameter axes take their
// integrality from the parameter declaration (SweepAxis::integral).
bool integral_axis_bind(SweepAxis::Bind bind);

// One entry per axis the harness understands — the basis of make_axis,
// `fairsched_exp list-axes`, and the axis reference in
// docs/EXPERIMENTS.md. The workload axes are fixed; one policy-parameter
// axis is appended per distinct axis name declared by the registry's
// entries (so config-defined policies surface here too).
struct AxisInfo {
  std::string name;     // canonical reporter column name
  std::string aliases;  // extra accepted spellings, comma-joined ("" = none)
  SweepAxis::Bind bind;
  std::string param;        // kPolicyParam: bound parameter axis name
  bool integral = false;    // see SweepAxis::integral
  SweepAxis::Scope scope;   // default scope (see default_axis_scope)
  std::string values_hint;  // typical range, e.g. "2:7"
  std::string description;
};
std::vector<AxisInfo> axis_catalog(const PolicyRegistry& registry =
                                       PolicyRegistry::global());

// Human/CSV label of one axis value: integral binds print as integers,
// kSplit prints "zipf"/"uniform", the rest shortest-round-trip decimal.
std::string axis_value_label(const SweepAxis& axis, double value);

// Default byte budget of the sweep workload/baseline cache (--cache-mb=256).
inline constexpr std::size_t kDefaultCacheBytes = std::size_t{256} << 20;

struct SweepSpec {
  std::string name;                   // e.g. "table1"
  std::string title;                  // human header printed by the harness
  std::string note;                   // expected-shape remark printed after
  std::vector<std::string> policies;  // PolicyRegistry names
  std::vector<SweepWorkload> workloads;
  // Extra swept dimensions beyond policies x workloads x instances. May be
  // empty (a single implicit axis point). Axis 0 varies slowest.
  std::vector<SweepAxis> axes;
  std::size_t instances = 10;   // independent windows per workload
  std::uint64_t seed = 2013;    // base seed; instances use mix_seed(seed, i)
  Time horizon = 50000;         // default; a kHorizon axis overrides it
  // Reference policy for the fairness metrics (usually "ref"); empty
  // disables them (pure utilization/perf sweeps).
  std::string baseline = "ref";
  std::size_t threads = 0;  // 0 = hardware concurrency
  // Byte budget of the workload/baseline cache (--cache-mb); 0 disables
  // caching entirely (--no-cache). Output is bit-identical either way —
  // the cache only skips recomputing deterministic prefixes.
  std::size_t cache_bytes = kDefaultCacheBytes;
  // Directory of the optional disk-backed cache tier (--cache-dir); empty
  // disables it. Persisted entries are content-keyed, so repeated and
  // sharded invocations share generated windows and baseline runs across
  // processes. Like the in-memory tier, it never changes output.
  std::string cache_dir;
  // The deviation grid of a strategic-manipulation sweep
  // (strategy/deviation.h): non-empty exactly when the spec declares a
  // "strategy" axis, whose values index this vector. The planner resolves
  // each axis point to one effective deviation; the executor runs every
  // policy against the deviating organization's transformed job stream and
  // grades the outcome against the honest baseline.
  std::vector<strategy::DeviationSpec> deviations;

  bool is_strategy() const { return !deviations.empty(); }
};

// The effective deviation / deviating organization of one axis point: the
// strategy axis value indexes `spec.deviations`, a deviation-param axis
// overrides the deviation's parameter (ignored for honest entries), and a
// deviator-org axis picks the organization (default 0). Both throw
// std::invalid_argument on out-of-range strategy ids; build_sweep_plan
// validates the same bounds up front.
strategy::DeviationSpec sweep_point_deviation(const SweepSpec& spec,
                                              std::size_t point);
OrgId sweep_point_deviator(const SweepSpec& spec, std::size_t point);

// Number of axis points: the product of all axis value counts (1 when no
// axes are declared). Throws std::invalid_argument on overflow or an axis
// with no values.
std::size_t num_axis_points(const SweepSpec& spec);

// Decodes a flat axis-point index into one value per axis (mixed radix,
// axis 0 outermost). Returns an empty vector for axis-free sweeps.
std::vector<double> axis_point_values(const SweepSpec& spec,
                                      std::size_t point);

// One (axis point, workload, policy, instance) execution.
struct RunRecord {
  // Stable global run id: (task * policies + policy) where task = (point *
  // workloads + workload) * instances + instance. Equal to the record's
  // position in the deterministic fold/stream order, and independent of
  // thread count and sharding (exp/sweep_plan.h).
  std::uint64_t run_id = 0;
  std::size_t axis_point = 0;  // flat index; decode via axis_point_values
  std::size_t workload = 0;
  std::size_t policy = 0;
  std::size_t instance = 0;
  std::uint64_t seed = 0;
  double unfairness = 0.0;    // delta_psi / p_tot vs baseline (0 if none)
  double rel_distance = 0.0;  // ||psi - psi*|| / ||psi*|| vs baseline
  double utilization = 0.0;   // resource utilization of the run's schedule
  std::int64_t work_done = 0;
  double wall_ms = 0.0;       // this run only; excluded from aggregates
  // Strategy sweeps only (all exactly 0.0 otherwise): the deviating
  // organization's true-size psi_sp and mean flow time, and the summed
  // psi_sp of the honest organizations (strategy/game.h grades deviations
  // against the honest axis point's values of these).
  double deviator_utility = 0.0;
  double deviator_flow = 0.0;
  double honest_utility = 0.0;
  // True when the run's metrics were replayed from the workload/baseline
  // cache instead of re-simulated (the values are bit-identical either
  // way). Reporters ignore it; summaries count it.
  bool replayed = false;
};

struct SweepCell {
  StatsAccumulator unfairness;
  StatsAccumulator rel_distance;
  StatsAccumulator utilization;
  // Strategy sweeps only (exactly-zero samples otherwise; shard artifacts
  // carry these states only for strategy specs, keeping existing artifacts
  // byte-identical).
  StatsAccumulator deviator_utility;
  StatsAccumulator deviator_flow;
  StatsAccumulator honest_utility;
  std::int64_t work_done = 0;  // summed over the cell's runs
  double wall_ms = 0.0;
};

struct SweepResult {
  std::size_t axis_points = 1;
  // Flat cell array indexed [(axis_point * workloads + workload) * policies
  // + policy], aggregated in the deterministic fold order: axis point, then
  // workload, then instance, then policy.
  std::vector<SweepCell> cells;
  double baseline_wall_ms = 0.0;
  double total_wall_ms = 0.0;  // sum of per-run walls, not elapsed time
  double elapsed_ms = 0.0;     // wall clock of the whole driver run

  // Workload/baseline cache accounting (all zero when the cache was
  // disabled). prefix_groups is the number of distinct cell prefixes per
  // (workload, instance) — axis points merge into one group when they
  // differ only in policy-scoped axis values. replayed_runs counts records
  // copied from a cached prefix instead of re-simulated.
  bool cache_enabled = false;
  CacheStats cache;
  std::size_t prefix_groups = 1;
  std::uint64_t replayed_runs = 0;

  // How many shard executions produced this result: 1 for an in-process
  // run, N for a multi-process run or a `merge` of N partial artifacts.
  // When > 1, `cache` holds the component-wise totals and the per-shard
  // vectors (index == shard index) keep the individual breakdowns for the
  // summary lines.
  std::size_t shards = 1;
  std::vector<CacheStats> per_shard_cache;
  std::vector<std::uint64_t> per_shard_replayed;

  const SweepCell& cell(const SweepSpec& spec, std::size_t axis_point,
                        std::size_t workload, std::size_t policy) const;
};

class SweepDriver {
 public:
  explicit SweepDriver(const PolicyRegistry& registry =
                           PolicyRegistry::global())
      : registry_(registry) {}

  using Progress = std::function<void(const std::string& message)>;
  // Streaming per-run consumer, invoked in the deterministic fold order
  // (axis point, workload, instance, policy) regardless of thread count.
  // Records are not retained by the driver; a sink that needs them later
  // must copy. Exceptions thrown by the sink abort the sweep.
  using RecordSink = std::function<void(const RunRecord&)>;

  // Validates every policy name and axis up front, executes the sweep, and
  // streams records through `sink` while folding them into the per-cell
  // aggregates. Throws std::invalid_argument on unknown policies, malformed
  // axes or empty dimensions.
  SweepResult run(const SweepSpec& spec, Progress progress = nullptr,
                  RecordSink sink = nullptr) const;

 private:
  const PolicyRegistry& registry_;
};

}  // namespace fairsched::exp
