#pragma once

// Declarative experiment sweeps.
//
// A sweep is data: (policy set) x (workload generators) x (seeds) x
// (horizon). The SweepDriver executes the cross product by sharding
// independent (workload, instance) cells across the shared ThreadPool and
// re-aggregates in a fixed sequential order, so the statistical output is
// bit-identical whatever the thread count — CI asserts this. Per-run wall
// times are recorded for the JSON perf baselines but deliberately kept out
// of the deterministic aggregates.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "exp/policy_registry.h"
#include "util/stats.h"
#include "workload/assignment.h"
#include "workload/synthetic.h"

namespace fairsched::exp {

// One workload generator of a sweep. kSynthetic draws a window from the
// archive-shaped generator (Section 7.2); kUnitJobs draws the unit-size
// instances the FPRAS convergence experiment (Thm 5.6) uses; kSmallRandom
// draws the small random consortia the utilization probe (Thm 6.2) samples.
struct SweepWorkload {
  enum class Kind { kSynthetic, kUnitJobs, kSmallRandom };

  std::string name;
  Kind kind = Kind::kSynthetic;

  // kSynthetic.
  SyntheticSpec spec;
  std::uint32_t orgs = 5;
  MachineSplit split = MachineSplit::kZipf;
  double zipf_s = 1.0;

  // kUnitJobs: `orgs` organizations with 1-3 machines each.
  std::uint32_t unit_jobs_per_org = 60;

  // kSmallRandom: 2-4 orgs, 1-3 machines each, `random_jobs`..random_jobs+39
  // jobs with short durations.
  std::size_t random_jobs = 10;
};

// Materializes one instance of the workload. Deterministic given the seed.
Instance make_workload_instance(const SweepWorkload& workload, Time horizon,
                                std::uint64_t seed);

struct SweepSpec {
  std::string name;                   // e.g. "table1"
  std::string title;                  // human header printed by the harness
  std::string note;                   // expected-shape remark printed after
  std::vector<std::string> policies;  // PolicyRegistry names
  std::vector<SweepWorkload> workloads;
  std::size_t instances = 10;   // independent windows per workload
  std::uint64_t seed = 2013;    // base seed; runs use mix_seed(seed, index)
  Time horizon = 50000;
  // Reference policy for the fairness metrics (usually "ref"); empty
  // disables them (pure utilization/perf sweeps).
  std::string baseline = "ref";
  std::size_t threads = 0;  // 0 = hardware concurrency
};

// One (workload, policy, instance) execution.
struct RunRecord {
  std::size_t workload = 0;
  std::size_t policy = 0;
  std::size_t instance = 0;
  std::uint64_t seed = 0;
  double unfairness = 0.0;    // delta_psi / p_tot vs baseline (0 if none)
  double rel_distance = 0.0;  // ||psi - psi*|| / ||psi*|| vs baseline
  double utilization = 0.0;   // resource utilization of the run's schedule
  std::int64_t work_done = 0;
  double wall_ms = 0.0;       // this run only; excluded from aggregates
};

struct SweepCell {
  StatsAccumulator unfairness;
  StatsAccumulator rel_distance;
  StatsAccumulator utilization;
  double wall_ms = 0.0;
};

struct SweepResult {
  // workload-major, then instance, then policy — the deterministic order the
  // aggregates are folded in.
  std::vector<RunRecord> records;
  // cells[workload][policy], aggregated sequentially from `records`.
  std::vector<std::vector<SweepCell>> cells;
  double baseline_wall_ms = 0.0;
  double total_wall_ms = 0.0;  // sum of per-run walls, not elapsed time

  const RunRecord& record(const SweepSpec& spec, std::size_t workload,
                          std::size_t instance, std::size_t policy) const;
};

class SweepDriver {
 public:
  explicit SweepDriver(const PolicyRegistry& registry =
                           PolicyRegistry::global())
      : registry_(registry) {}

  using Progress = std::function<void(const std::string& message)>;

  // Validates every policy name, executes the sweep, and aggregates.
  // Throws std::invalid_argument on unknown policies or empty dimensions.
  SweepResult run(const SweepSpec& spec, Progress progress = nullptr) const;

 private:
  const PolicyRegistry& registry_;
};

}  // namespace fairsched::exp
