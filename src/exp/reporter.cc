#include "exp/reporter.h"

#include <cstdio>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/table.h"

namespace fairsched::exp {

namespace {

// One label per axis for a flat axis-point index.
std::vector<std::string> axis_labels(const SweepSpec& spec,
                                     std::size_t point) {
  const std::vector<double> values = axis_point_values(spec, point);
  std::vector<std::string> labels;
  labels.reserve(values.size());
  for (std::size_t j = 0; j < values.size(); ++j) {
    labels.push_back(axis_value_label(spec.axes[j], values[j]));
  }
  return labels;
}

}  // namespace

std::string CsvReporter::format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void CsvReporter::report(const SweepSpec& spec, const SweepResult& result) {
  CsvWriter csv(out_);
  std::vector<std::string> header{"sweep"};
  for (const SweepAxis& axis : spec.axes) header.push_back(axis.name);
  for (const char* column :
       {"workload", "policy", "instances", "unfairness_mean",
        "unfairness_stdev", "unfairness_min", "unfairness_max",
        "rel_distance_mean", "utilization_mean", "work_done_total"}) {
    header.push_back(column);
  }
  // Strategy sweeps append the manipulation-grading columns; every other
  // sweep's CSV bytes are unchanged.
  if (spec.is_strategy()) {
    for (const char* column : {"deviator_utility_mean", "deviator_flow_mean",
                               "honest_utility_mean"}) {
      header.push_back(column);
    }
  }
  csv.write_row(header);
  for (std::size_t a = 0; a < result.axis_points; ++a) {
    const std::vector<std::string> labels = axis_labels(spec, a);
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      for (std::size_t p = 0; p < spec.policies.size(); ++p) {
        const SweepCell& cell = result.cell(spec, a, w, p);
        std::vector<std::string> row{spec.name};
        row.insert(row.end(), labels.begin(), labels.end());
        row.push_back(spec.workloads[w].name);
        row.push_back(spec.policies[p]);
        row.push_back(std::to_string(cell.unfairness.count()));
        row.push_back(format(cell.unfairness.mean()));
        row.push_back(format(cell.unfairness.stdev()));
        row.push_back(format(cell.unfairness.min()));
        row.push_back(format(cell.unfairness.max()));
        row.push_back(format(cell.rel_distance.mean()));
        row.push_back(format(cell.utilization.mean()));
        row.push_back(std::to_string(cell.work_done));
        if (spec.is_strategy()) {
          row.push_back(format(cell.deviator_utility.mean()));
          row.push_back(format(cell.deviator_flow.mean()));
          row.push_back(format(cell.honest_utility.mean()));
        }
        csv.write_row(row);
      }
    }
  }
}

CsvRecordSink::CsvRecordSink(std::ostream& out, const SweepSpec& spec)
    : csv_(out), spec_(spec) {
  std::vector<std::string> header{"sweep"};
  for (const SweepAxis& axis : spec_.axes) header.push_back(axis.name);
  for (const char* column :
       {"workload", "policy", "instance", "seed", "unfairness",
        "rel_distance", "utilization", "work_done"}) {
    header.push_back(column);
  }
  if (spec_.is_strategy()) {
    for (const char* column :
         {"deviator_utility", "deviator_flow", "honest_utility"}) {
      header.push_back(column);
    }
  }
  csv_.write_row(header);
}

void CsvRecordSink::write(const RunRecord& record) {
  std::vector<std::string> row{spec_.name};
  for (const std::string& label : axis_labels(spec_, record.axis_point)) {
    row.push_back(label);
  }
  row.push_back(spec_.workloads[record.workload].name);
  row.push_back(spec_.policies[record.policy]);
  row.push_back(std::to_string(record.instance));
  row.push_back(std::to_string(record.seed));
  row.push_back(CsvReporter::format(record.unfairness));
  row.push_back(CsvReporter::format(record.rel_distance));
  row.push_back(CsvReporter::format(record.utilization));
  row.push_back(std::to_string(record.work_done));
  if (spec_.is_strategy()) {
    row.push_back(CsvReporter::format(record.deviator_utility));
    row.push_back(CsvReporter::format(record.deviator_flow));
    row.push_back(CsvReporter::format(record.honest_utility));
  }
  csv_.write_row(row);
}

void JsonReporter::report(const SweepSpec& spec, const SweepResult& result) {
  auto num = [](double v) { return CsvReporter::format(v); };
  out_ << "{\n";
  out_ << "  \"sweep\": \"" << json_escape(spec.name) << "\",\n";
  out_ << "  \"horizon\": " << spec.horizon << ",\n";
  out_ << "  \"instances\": " << spec.instances << ",\n";
  out_ << "  \"seed\": " << spec.seed << ",\n";
  out_ << "  \"baseline\": \"" << json_escape(spec.baseline) << "\",\n";
  out_ << "  \"axes\": [";
  for (std::size_t j = 0; j < spec.axes.size(); ++j) {
    if (j) out_ << ", ";
    out_ << '"' << json_escape(spec.axes[j].name) << '"';
  }
  out_ << "],\n";
  out_ << "  \"runs\": "
       << result.axis_points * spec.workloads.size() * spec.instances *
              spec.policies.size()
       << ",\n";
  out_ << "  \"baseline_wall_ms\": " << num(result.baseline_wall_ms) << ",\n";
  out_ << "  \"total_wall_ms\": " << num(result.total_wall_ms) << ",\n";
  out_ << "  \"elapsed_ms\": " << num(result.elapsed_ms) << ",\n";
  // `shards` and the disk_* counters are additive schema: absent before
  // the planner/executor split, so scripts/compare_bench.py and older
  // tooling keep working against both generations of BENCH files.
  out_ << "  \"shards\": " << result.shards << ",\n";
  out_ << "  \"cache\": {\"enabled\": "
       << (result.cache_enabled ? "true" : "false")
       << ", \"hits\": " << result.cache.hits
       << ", \"misses\": " << result.cache.misses
       << ", \"evictions\": " << result.cache.evictions
       << ", \"hit_rate\": " << num(result.cache.hit_rate())
       << ", \"replayed_runs\": " << result.replayed_runs
       << ", \"prefix_groups\": " << result.prefix_groups
       << ", \"peak_bytes\": " << result.cache.peak_bytes
       << ", \"disk_hits\": " << result.cache.disk_hits
       << ", \"disk_misses\": " << result.cache.disk_misses
       << ", \"disk_writes\": " << result.cache.disk_writes << "},\n";
  out_ << "  \"cells\": [\n";
  bool first = true;
  for (std::size_t a = 0; a < result.axis_points; ++a) {
    const std::vector<std::string> labels = axis_labels(spec, a);
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      for (std::size_t p = 0; p < spec.policies.size(); ++p) {
        const SweepCell& cell = result.cell(spec, a, w, p);
        if (!first) out_ << ",\n";
        first = false;
        out_ << "    {";
        for (std::size_t j = 0; j < labels.size(); ++j) {
          out_ << '"' << json_escape(spec.axes[j].name) << "\": \""
               << json_escape(labels[j]) << "\", ";
        }
        out_ << "\"workload\": \"" << json_escape(spec.workloads[w].name)
             << "\", \"policy\": \"" << json_escape(spec.policies[p]) << "\""
             << ", \"count\": " << cell.unfairness.count()
             << ", \"unfairness_mean\": " << num(cell.unfairness.mean())
             << ", \"unfairness_stdev\": " << num(cell.unfairness.stdev())
             << ", \"rel_distance_mean\": " << num(cell.rel_distance.mean())
             << ", \"utilization_mean\": " << num(cell.utilization.mean());
        // Additive schema, strategy sweeps only (compare_bench.py and
        // older tooling read both generations).
        if (spec.is_strategy()) {
          out_ << ", \"deviator_utility_mean\": "
               << num(cell.deviator_utility.mean())
               << ", \"deviator_flow_mean\": "
               << num(cell.deviator_flow.mean())
               << ", \"honest_utility_mean\": "
               << num(cell.honest_utility.mean());
        }
        out_ << ", \"wall_ms\": " << num(cell.wall_ms) << "}";
      }
    }
  }
  out_ << "\n  ]\n}\n";
}

void TableReporter::report(const SweepSpec& spec, const SweepResult& result) {
  std::vector<std::string> header;
  for (const SweepAxis& axis : spec.axes) header.push_back(axis.name);
  header.push_back("Policy");
  for (const SweepWorkload& workload : spec.workloads) {
    header.push_back(workload.name + " Avg");
    header.push_back(workload.name + " St.dev");
  }
  AsciiTable table(header);
  for (std::size_t a = 0; a < result.axis_points; ++a) {
    const std::vector<std::string> labels = axis_labels(spec, a);
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      std::vector<std::string> row = labels;
      row.push_back(spec.policies[p]);
      for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        const StatsAccumulator& acc = result.cell(spec, a, w, p).unfairness;
        row.push_back(AsciiTable::format_double(acc.mean(), 2));
        row.push_back(AsciiTable::format_double(acc.stdev(), 2));
      }
      table.add_row(std::move(row));
    }
  }
  out_ << table.to_string();
}

}  // namespace fairsched::exp
