#include "exp/reporter.h"

#include <cstdio>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/table.h"

namespace fairsched::exp {

namespace {

// Escapes a string for use inside a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string CsvReporter::format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void CsvReporter::report(const SweepSpec& spec, const SweepResult& result) {
  CsvWriter csv(out_);
  csv.write_row({"sweep", "workload", "policy", "instances",
                 "unfairness_mean", "unfairness_stdev", "unfairness_min",
                 "unfairness_max", "rel_distance_mean", "utilization_mean",
                 "work_done_total"});
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const SweepCell& cell = result.cells[w][p];
      std::int64_t work = 0;
      for (std::size_t i = 0; i < spec.instances; ++i) {
        work += result.record(spec, w, i, p).work_done;
      }
      csv.write_row({spec.name, spec.workloads[w].name, spec.policies[p],
                     std::to_string(cell.unfairness.count()),
                     format(cell.unfairness.mean()),
                     format(cell.unfairness.stdev()),
                     format(cell.unfairness.min()),
                     format(cell.unfairness.max()),
                     format(cell.rel_distance.mean()),
                     format(cell.utilization.mean()), std::to_string(work)});
    }
  }
  if (per_run_) {
    csv.write_row({"run", "workload", "policy", "instance", "seed",
                   "unfairness", "rel_distance", "utilization", "work_done"});
    for (const RunRecord& r : result.records) {
      csv.write_row({"run", spec.workloads[r.workload].name,
                     spec.policies[r.policy], std::to_string(r.instance),
                     std::to_string(r.seed), format(r.unfairness),
                     format(r.rel_distance), format(r.utilization),
                     std::to_string(r.work_done)});
    }
  }
}

void JsonReporter::report(const SweepSpec& spec, const SweepResult& result) {
  auto num = [](double v) { return CsvReporter::format(v); };
  out_ << "{\n";
  out_ << "  \"sweep\": \"" << json_escape(spec.name) << "\",\n";
  out_ << "  \"horizon\": " << spec.horizon << ",\n";
  out_ << "  \"instances\": " << spec.instances << ",\n";
  out_ << "  \"seed\": " << spec.seed << ",\n";
  out_ << "  \"baseline\": \"" << json_escape(spec.baseline) << "\",\n";
  out_ << "  \"baseline_wall_ms\": " << num(result.baseline_wall_ms) << ",\n";
  out_ << "  \"total_wall_ms\": " << num(result.total_wall_ms) << ",\n";
  out_ << "  \"cells\": [\n";
  bool first = true;
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const SweepCell& cell = result.cells[w][p];
      if (!first) out_ << ",\n";
      first = false;
      out_ << "    {\"workload\": \"" << json_escape(spec.workloads[w].name)
           << "\", \"policy\": \"" << json_escape(spec.policies[p]) << "\""
           << ", \"count\": " << cell.unfairness.count()
           << ", \"unfairness_mean\": " << num(cell.unfairness.mean())
           << ", \"unfairness_stdev\": " << num(cell.unfairness.stdev())
           << ", \"rel_distance_mean\": " << num(cell.rel_distance.mean())
           << ", \"utilization_mean\": " << num(cell.utilization.mean())
           << ", \"wall_ms\": " << num(cell.wall_ms) << "}";
    }
  }
  out_ << "\n  ]\n}\n";
}

void TableReporter::report(const SweepSpec& spec, const SweepResult& result) {
  std::vector<std::string> header{"Policy"};
  for (const SweepWorkload& workload : spec.workloads) {
    header.push_back(workload.name + " Avg");
    header.push_back(workload.name + " St.dev");
  }
  AsciiTable table(header);
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    std::vector<std::string> row{spec.policies[p]};
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      const StatsAccumulator& acc = result.cells[w][p].unfairness;
      row.push_back(AsciiTable::format_double(acc.mean(), 2));
      row.push_back(AsciiTable::format_double(acc.stdev(), 2));
    }
    table.add_row(std::move(row));
  }
  out_ << table.to_string();
}

}  // namespace fairsched::exp
