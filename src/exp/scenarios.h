#pragma once

// The paper's experiments as data over the sweep driver. Each scenario
// builds a SweepSpec (policies x workloads x seeds x horizon), runs it, and
// reports through the pluggable reporters. The bench/ binaries and the
// fairsched_exp subcommands are both thin shells over these entry points.

#include <cstdint>
#include <string>

#include "core/types.h"
#include "exp/sweep.h"
#include "util/cli.h"
#include "workload/assignment.h"

namespace fairsched::exp {

struct ScenarioOptions {
  std::size_t instances = 0;  // 0 = scenario default
  Time duration = 0;          // 0 = scenario default
  std::uint32_t orgs = 5;
  std::uint64_t seed = 2013;
  // Machine down-scaling of the big archives. 0 = scenario default (16,
  // or 64 under --smoke); an explicit value always wins, smoke or not.
  double scale = 0.0;
  std::size_t threads = 0;
  bool smoke = false;  // tiny instance counts + BENCH_<name>.json baseline
  MachineSplit split = MachineSplit::kZipf;
  double zipf_s = 1.0;
  std::string csv_path;   // "" = none, "-" = stdout
  std::string json_path;  // "" = none (smoke emits BENCH_<name>.json)
  bool per_run_csv = false;
  std::uint32_t jobs_per_org = 0;  // rand-convergence; 0 = scenario default

  // `custom` subcommand.
  std::string policies;  // comma-separated registry names
  std::string workload;  // lpc | pik | ricc | whale | all | unit | smallrandom
};

// Parses the harness-wide flags (--instances, --duration, --orgs, --seed,
// --scale, --threads, --split, --zipf-s, --smoke, --csv, --json, --per-run,
// --policies, --workload).
ScenarioOptions scenario_options_from_flags(const Flags& flags);

// Tables 1-2: unfairness delta_psi / p_tot of the polynomial algorithms
// against REF over the four archive-shaped workloads. `which` is "table1"
// (duration 5*10^4) or "table2" (duration 5*10^5).
SweepSpec make_table_sweep(const std::string& which,
                           const ScenarioOptions& options);

// Thm 5.6 / FPRAS: RAND's distance to REF as the sample count N grows, on
// unit jobs.
SweepSpec make_rand_convergence_sweep(const ScenarioOptions& options);

// Thm 6.2 random probe: utilization of greedy policies on small random
// consortia (the adversarial 3/4-tightness family is checked separately by
// run_utilization_scenario).
SweepSpec make_utilization_sweep(const ScenarioOptions& options);

// Free-form sweep from --policies / --workload.
SweepSpec make_custom_sweep(const ScenarioOptions& options);

// Runs a sweep and reports: ASCII table on stdout, optional CSV
// (options.csv_path), JSON perf baseline (options.json_path, defaulted to
// BENCH_<sweep>.json under --smoke). Returns a process exit code.
int run_sweep_scenario(const SweepSpec& spec, const ScenarioOptions& options);

// Figure 7 + Thm 6.2: prints the adversarial 3/4-utilization family, then
// runs the random-instance sweep and checks the worst pairwise greedy
// utilization ratio stays >= 0.75. Nonzero exit on violation.
int run_utilization_scenario(const ScenarioOptions& options);

// Runs make_rand_convergence_sweep and prints the per-N distance table plus
// the Hoeffding sample bounds of Thm 5.6.
int run_rand_convergence_scenario(const ScenarioOptions& options);

}  // namespace fairsched::exp
