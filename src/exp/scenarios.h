#pragma once

// The paper's experiments as data over the sweep driver. Each scenario
// builds a SweepSpec (policies x workloads x seeds x parameter axes), runs
// it, and reports through the pluggable reporters. The bench/ binaries and
// the fairsched_exp subcommands are both thin shells over these entry
// points.

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "exp/sweep.h"
#include "util/cli.h"
#include "workload/assignment.h"

namespace fairsched::exp {

struct ScenarioOptions {
  std::size_t instances = 0;  // 0 = scenario default
  Time duration = 0;          // 0 = scenario default
  std::uint32_t orgs = 5;
  std::uint64_t seed = 2013;
  // Machine down-scaling of the big archives. 0 = scenario default (16,
  // or 64 under --smoke); an explicit value always wins, smoke or not.
  double scale = 0.0;
  std::size_t threads = 0;
  bool smoke = false;  // tiny instance counts + BENCH_<name>.json baseline
  // Workload/baseline cache budget: --cache-mb (default: the library's
  // kDefaultCacheBytes) and the --no-cache escape hatch. cache_bytes()
  // folds both into the SweepSpec field (0 = disabled). Purely a time
  // optimization: output is bit-identical with the cache on or off.
  std::size_t cache_mb = kDefaultCacheBytes >> 20;
  bool no_cache = false;
  std::size_t cache_bytes() const {
    return no_cache ? 0 : cache_mb * (std::size_t{1} << 20);
  }
  // Disk-backed cache tier (--cache-dir): persists generated windows and
  // baseline runs across processes, so repeated invocations and the
  // shards of a multi-process sweep share them. Empty = off; requires the
  // in-memory cache (--no-cache disables both).
  std::string cache_dir;

  // Planner/executor split (docs/ARCHITECTURE.md). --shard=i/N executes
  // only shard i of the plan's N-way partition (by prefix family, so
  // cache locality survives); --partial-out writes the shard's result as
  // a versioned artifact for `fairsched_exp merge`; --processes=N forks N
  // worker subprocesses, one per shard, and merges their artifacts
  // in-process — output stays bit-identical to a single-process run.
  std::string shard;        // "" = whole run
  std::string partial_out;  // "" = report normally
  std::size_t processes = 0;  // 0/1 = in-process execution

  // How `fairsched_exp` was invoked, for the multi-process executor's
  // self-re-invocation: the resolved program path and every original
  // argv token after it (subcommand included). Filled by exp_main.
  std::string program;
  std::vector<std::string> raw_args;
  MachineSplit split = MachineSplit::kZipf;
  double zipf_s = 1.0;
  std::string csv_path;   // "" = none, "-" = stdout (cell aggregates)
  std::string json_path;  // "" = none (smoke emits BENCH_<name>.json)
  // Streaming per-run CSV sink: "" = none, "-" = stdout, else a file path.
  // Rows are written as runs are folded, so memory stays O(cells).
  std::string stream_records_path;
  std::uint32_t jobs_per_org = 0;  // rand-convergence; 0 = scenario default

  // Axis overrides, e.g. "orgs=2:7;zipf-s=0.5,1". Empty keeps each
  // scenario's default axes ("custom" then has none).
  std::string axes;
  // `custom` subcommand.
  std::string policies;     // comma-separated registry names
  std::string workload;     // see workload_catalog()
  std::string config_path;  // sweep config file (see exp/sweep_config.h)

  // `fig10` subcommand: bounds of the default organizations axis.
  std::uint32_t min_orgs = 0;  // 0 = scenario default
  std::uint32_t max_orgs = 0;  // 0 = scenario default

  // `strategy` subcommand (src/strategy, Thm 4.1). --deviations is a
  // comma-separated list of deviation labels / kind:param entries (see
  // strategy/deviation.h); the honest reference is always prepended as
  // grid id 0. Empty = the default grid. --deviator-orgs turns the
  // deviating organization into an axis; empty = organization 0.
  // --check-thm41 machine-checks the Theorem 4.1 contrast after the
  // manipulation-gain report (nonzero exit on violation), with
  // --thm41-tolerance percentage points of psi_sp slack.
  std::string deviations;
  std::string deviator_orgs;
  bool check_thm41 = false;
  double thm41_tolerance = 2.0;

  // `serve` / `replay` subcommands (src/serve, docs/ARCHITECTURE.md).
  // --source: "synthetic" (open-loop generator), "stdin"/"-", or a trace
  // file path. --policy: any policy-shaped registry name (config-defined
  // entries included via --config). --duration doubles as the serve
  // horizon (0 = drain), --orgs/--seed/--zipf-s parameterize the
  // synthetic source.
  std::string source = "synthetic";
  std::string policy = "fairshare";
  std::string decisions_path;     // decision stream: "" = none, "-" = stdout
  std::string record_trace_path;  // echo consumed events as a trace file
  std::uint64_t stats_interval = 0;   // arrivals between stats lines
  std::uint64_t serve_events = 0;     // synthetic arrivals; 0 = default
  double arrival_rate = 0.0;          // synthetic rate; 0 = default
  std::uint32_t machines_per_org = 1;
  bool orgs_explicit = false;  // --orgs given (serve smoke picks 10^5 else)

  // `dispatch` subcommand (src/dist, docs/DISTRIBUTED.md). --workers is a
  // comma-separated list of `local` / `ssh:HOST` entries, each with an
  // optional `*N` multiplier; --hosts adds one entry per line of a host
  // file. --sweep names the scenario the workers rebuild (any shardable
  // sweep subcommand; default custom).
  std::string workers_spec;           // "" = the local*2 default
  std::string hosts_path;             // host file; entries add to --workers
  std::string ssh_command = "ssh";    // --ssh-cmd (CI: scripts/fake_ssh.py)
  std::string remote_program;         // "" = same path as this binary
  std::string sweep = "custom";
  std::size_t dispatch_shards = 0;    // --shards; 0 = one per worker
  std::size_t worker_threads = 0;     // 0 = local budget / worker count
  // --worker-threads was given explicitly. Without it, remote workers get
  // request.threads = 0 ("use your own hardware concurrency") and a loud
  // warning — dividing the *local* budget across remote hosts is the
  // classic footgun.
  bool worker_threads_explicit = false;
  std::size_t timeout_ms = 0;         // per-shard attempt timeout; 0 = none
  std::size_t retries = 2;            // extra attempts per shard
  std::size_t backoff_ms = 250;       // exponential retry backoff base
  std::size_t backoff_cap_ms = 5000;  // backoff ceiling
  std::string artifact_dir = "dispatch-artifacts";
  std::string dispatch_log_path;      // "" = <artifact-dir>/dispatch.log.jsonl
  bool resume_dispatch = false;       // --resume
  bool dry_run = false;               // --dry-run: print the assignment plan
  // --persistent-workers: protocol-v2 sessions — one long-lived
  // `shard-worker --session` per worker serves every shard, keeping its
  // WorkloadCache warm across shards (docs/DISTRIBUTED.md).
  bool persistent_workers = false;
  bool speculate = false;          // --speculate: straggler re-execution
  double speculate_factor = 2.0;   // --speculate-factor (p50 multiplier)
  // --dispatch-bench: time spawn-per-attempt vs persistent sessions over
  // --bench-repeats repeats of the same dispatch and write the
  // BENCH_dispatch.json record instead of the normal reports.
  bool dispatch_bench = false;
  std::size_t bench_repeats = 3;
};

// Parses the harness-wide flags (--instances, --duration, --orgs, --seed,
// --scale, --threads, --split, --zipf-s, --smoke, --csv, --json,
// --stream-records, --axes, --config, --policies, --workload, --min-orgs,
// --max-orgs, --jobs-per-org, --cache-mb, --no-cache, --cache-dir,
// --shard, --partial-out, --processes).
ScenarioOptions scenario_options_from_flags(const Flags& flags);

// The workload kinds the `custom` subcommand / sweep configs accept, with
// one-line descriptions (printed by `fairsched_exp list-workloads`).
struct WorkloadInfo {
  std::string name;
  std::string description;
};
const std::vector<WorkloadInfo>& workload_catalog();

// Tables 1-2: unfairness delta_psi / p_tot of the polynomial algorithms
// against REF over the four archive-shaped workloads. `which` is "table1"
// (duration 5*10^4) or "table2" (duration 5*10^5).
SweepSpec make_table_sweep(const std::string& which,
                           const ScenarioOptions& options);

// Thm 5.6 / FPRAS: RAND's distance to REF as the sample count N grows, on
// unit jobs.
SweepSpec make_rand_convergence_sweep(const ScenarioOptions& options);

// Thm 6.2 random probe: utilization of greedy policies on small random
// consortia (the adversarial 3/4-tightness family is checked separately by
// run_utilization_scenario).
SweepSpec make_utilization_sweep(const ScenarioOptions& options);

// Fig. 10: unfairness vs the number of organizations on LPC-EGEE, as an
// `orgs` axis (paper: 2..10; default stops at 7 — REF grows ~3^k).
SweepSpec make_fig10_sweep(const ScenarioOptions& options);

// The Table 1 -> Table 2 transition as a series: unfairness vs the
// experiment horizon on LPC-EGEE, as a `horizon` axis.
SweepSpec make_horizon_growth_sweep(const ScenarioOptions& options);

// Fair-share memory ablation: decayed-usage fair share across a
// `half-life` axis, bracketed by the memoryless/infinite-memory extremes
// and the DirectContr / Random yardsticks.
SweepSpec make_fairshare_decay_sweep(const ScenarioOptions& options);

// Free-form sweep from --policies / --workload / --axes.
SweepSpec make_custom_sweep(const ScenarioOptions& options);

// Theorem 4.1 manipulation sweep: one organization deviates (split /
// merge / delay / misreport, strategy/deviation.h) while the policies
// schedule the declared workload; the strategy axis plays the grid and
// every deviation of a cell shares the honest window + REF baseline
// through the workload cache. Reported through
// strategy::print_strategy_report (gain vs honest + best response).
SweepSpec make_strategy_sweep(const ScenarioOptions& options);

// The strategy dimensions alone: fills spec.deviations from
// options.deviations (default grid when empty; the honest reference is
// always grid id 0), appends the `strategy` axis with human-readable
// value labels, and the `deviator-org` axis when options.deviator_orgs
// is non-empty. Shared by make_strategy_sweep and the sweep-config
// [strategy] block.
void apply_strategy_axes(SweepSpec& spec, const ScenarioOptions& options);

// The spec for any shardable sweep subcommand by name — table1/table2,
// fig10, horizon-growth, fairshare-decay, strategy, and custom
// (--config included).
// This is the scenario selector shared by exp_main, `dispatch --sweep=`
// and the shard-worker's spec rebuild; scenarios that post-process per-run
// data (utilization, rand-convergence, ref-scaling) are rejected because
// they cannot be partitioned into mergeable shards.
SweepSpec make_scenario_sweep(const std::string& command,
                              const ScenarioOptions& options);

// Drops `--name=value`, `--name value` and bare `--name` occurrences of
// the given flags from a raw argv tail — used to rebuild worker command
// lines / dispatch requests without the orchestration flags the
// executor or dispatcher re-appends itself.
std::vector<std::string> drop_flag_tokens(
    const std::vector<std::string>& args,
    const std::vector<std::string>& names);

// REF's running-time scaling (Prop. 3.4 / Cor. 3.5: FPT in the number of
// organizations k, ~3^k per decision, polynomial in the jobs): two pure
// perf sweeps over the `ref` policy on LPC-EGEE — one along an `orgs`
// axis at a fixed horizon, one along a `horizon` axis at fixed orgs.
// Replaces the standalone bench_ref_scaling binary.
std::vector<SweepSpec> make_ref_scaling_sweeps(const ScenarioOptions& options);

// The default "Custom sweep: ..." header for `spec`; sweep configs call it
// again after overriding dimensions so the header stays truthful.
std::string custom_sweep_title(const SweepSpec& spec);

// Runs a sweep and reports: ASCII table on stdout, optional CSV
// (options.csv_path), streaming per-run CSV (options.stream_records_path),
// JSON perf baseline (options.json_path, defaulted to BENCH_<sweep>.json
// under --smoke). Returns a process exit code.
int run_sweep_scenario(const SweepSpec& spec, const ScenarioOptions& options);

// Figure 7 + Thm 6.2: prints the adversarial 3/4-utilization family, then
// runs the random-instance sweep and checks the worst pairwise greedy
// utilization ratio stays >= 0.75. Nonzero exit on violation.
int run_utilization_scenario(const ScenarioOptions& options);

// Runs make_rand_convergence_sweep and prints the per-N distance table plus
// the Hoeffding sample bounds of Thm 5.6.
int run_rand_convergence_scenario(const ScenarioOptions& options);

// Runs both ref-scaling sweeps and prints the wall-time-per-run tables
// (the quantity the old Google-benchmark binary measured).
int run_ref_scaling_scenario(const ScenarioOptions& options);

// `fairsched_exp strategyproof`: the Section 4 ablation table (one
// organization splits/merges/delays its workload under FCFS; psi_sp vs
// mean-flow change per manipulation). --duration is the horizon (default
// 600), --instances the trial count (default 20).
int run_strategyproof_scenario(const ScenarioOptions& options);

// `fairsched_exp merge`: loads the shard partial artifacts at `paths`,
// folds them (exp/sweep_artifact.h) and reports exactly like the
// equivalent whole run — ASCII table, per-shard + total cache-stats
// lines, --csv / --json. The merged CSV is byte-identical to the
// unsharded run's.
int run_merge_scenario(const std::vector<std::string>& paths,
                       const ScenarioOptions& options);

// `fairsched_exp plan`: builds the sweep like `custom` would, then prints
// the plan JSON (exp/sweep_plan.h) instead of executing anything.
int run_plan_scenario(const SweepSpec& spec, const ScenarioOptions& options);

// `fairsched_exp serve`: the online scheduler session (src/serve). Feeds
// the --source event stream through a resident ServeSession under
// --policy, emitting periodic `serve-stats:` lines on stderr, the
// decision stream to --decisions, and the final report (human summary on
// stdout; --json or --smoke write the BENCH_serve.json document).
int run_serve_scenario(const ScenarioOptions& options);

// `fairsched_exp replay`: the batch half of the differential contract.
// Materializes the --source trace into an Instance, runs --policy through
// the batch engine, and writes the decision stream to --decisions
// (default stdout). `diff` against the serve stream must be empty for
// every deterministic policy — CI enforces it.
int run_replay_scenario(const ScenarioOptions& options);

// `fairsched_exp dispatch`: the distributed sweep dispatcher (src/dist,
// docs/DISTRIBUTED.md). Builds the --sweep scenario's plan, schedules its
// shards onto the --workers/--hosts transports with work-stealing,
// per-shard timeouts and capped-backoff retry, persists validated shard
// artifacts under --artifact-dir (reused by --resume), and reports the
// merged result exactly like the equivalent single-host whole run —
// byte-identical --csv/--json at any worker count or failure schedule.
// --dry-run prints the shard -> worker assignment plan as JSON instead.
int run_dispatch_scenario(const ScenarioOptions& options);

// `fairsched_exp shard-worker`: the receiving end of the dispatch wire
// protocol (dist/protocol.h). One-shot (v1): reads one DispatchRequest
// from stdin, rebuilds the sweep spec from the request's args (writing an
// embedded config to a scratch file when present), refuses on fingerprint
// mismatch, executes its shard in-process, and writes the framed shard
// artifact to stdout. With `session` (v2, `--session`): announces itself
// with a session hello, then serves request after request over the same
// stdin/stdout connection until goodbye/EOF, keeping a retained
// WorkloadCache warm across requests with equal plan fingerprints; each
// artifact frame carries a cache-counter stat footer.
int run_shard_worker_scenario(bool session);

}  // namespace fairsched::exp
