#include "exp/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exp/executor.h"
#include "exp/reporter.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_config.h"
#include "exp/sweep_plan.h"
#include "metrics/utility.h"
#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "sim/engine.h"
#include "strategy/game.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace fairsched::exp {

namespace {

// Smoke mode shrinks every dimension so CI exercises the full matrix in
// seconds: 2 windows per cell, short horizons, 1/64-scale platforms.
constexpr std::size_t kSmokeInstances = 2;
// Long enough that the scaled-down platforms saturate and the policies
// separate (all-zero unfairness would make the CI signal vacuous), short
// enough that the whole matrix runs in well under a minute on 2 cores.
constexpr Time kSmokeTableDuration = 10000;
constexpr double kSmokeScale = 64.0;

std::vector<std::string> table_policy_names() {
  return {"roundrobin", "rand15",      "directcontr",
          "fairshare",  "utfairshare", "currfairshare"};
}

// When the machine-readable stream is stdout ("-"), every human-facing
// line (title, progress, ASCII table, notes) moves to stderr so the CSV or
// JSON on stdout stays parseable.
bool machine_stdout(const ScenarioOptions& options) {
  return options.csv_path == "-" || options.json_path == "-" ||
         options.stream_records_path == "-";
}

std::FILE* human_file(const ScenarioOptions& options) {
  return machine_stdout(options) ? stderr : stdout;
}

std::ostream& human_stream(const ScenarioOptions& options) {
  return machine_stdout(options) ? std::cerr : std::cout;
}

// Emits the JSON perf baseline ("-" = stdout; --smoke defaults to
// BENCH_<sweep>.json). Returns a nonzero exit code on I/O failure.
int emit_json_baseline(const SweepSpec& spec, const SweepResult& result,
                       const ScenarioOptions& options) {
  std::string json_path = options.json_path;
  if (json_path.empty() && options.smoke) {
    json_path = "BENCH_" + spec.name + ".json";
  }
  if (json_path.empty()) return 0;
  if (json_path == "-") {
    JsonReporter json(std::cout);
    json.report(spec, result);
    return 0;
  }
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open JSON output: %s\n", json_path.c_str());
    return 2;
  }
  JsonReporter json(out);
  json.report(spec, result);
  std::fprintf(human_file(options), "wrote perf baseline: %s\n",
               json_path.c_str());
  return 0;
}

// Emits the cell-aggregate CSV ("-" = stdout). Returns a nonzero exit
// code on I/O failure, 0 otherwise (including when --csv is unset).
int emit_csv_output(const SweepSpec& spec, const SweepResult& result,
                    const ScenarioOptions& options) {
  if (options.csv_path.empty()) return 0;
  if (options.csv_path == "-") {
    CsvReporter csv(std::cout);
    csv.report(spec, result);
    return 0;
  }
  std::ofstream out(options.csv_path);
  if (!out) {
    std::fprintf(stderr, "cannot open CSV output: %s\n",
                 options.csv_path.c_str());
    return 2;
  }
  CsvReporter csv(out);
  csv.report(spec, result);
  std::fprintf(human_file(options), "wrote CSV: %s\n",
               options.csv_path.c_str());
  return 0;
}

std::vector<SweepWorkload> archive_workloads(const ScenarioOptions& options,
                                             double scale) {
  std::vector<SweepWorkload> workloads;
  for (const SyntheticSpec& spec : default_presets(scale)) {
    SweepWorkload w;
    w.name = spec.name;
    w.kind = SweepWorkload::Kind::kSynthetic;
    w.spec = spec;
    w.orgs = options.orgs;
    w.split = options.split;
    w.zipf_s = options.zipf_s;
    workloads.push_back(std::move(w));
  }
  return workloads;
}

SweepWorkload lpc_workload(const ScenarioOptions& options) {
  SweepWorkload w;
  w.name = preset_lpc_egee().name;
  w.kind = SweepWorkload::Kind::kSynthetic;
  w.spec = preset_lpc_egee();
  w.orgs = options.orgs;
  w.split = options.split;
  w.zipf_s = options.zipf_s;
  return w;
}

// An explicit --axes flag replaces a scenario's default axes wholesale.
void apply_axes_override(SweepSpec& spec, const ScenarioOptions& options) {
  if (!options.axes.empty()) spec.axes = parse_axes_spec(options.axes);
}

// The execution knobs every scenario forwards verbatim: seeding, thread
// count, and the workload/baseline cache budget and disk tier.
void apply_execution_options(SweepSpec& spec,
                             const ScenarioOptions& options) {
  spec.seed = options.seed;
  spec.threads = options.threads;
  spec.cache_bytes = options.cache_bytes();
  spec.cache_dir = options.cache_dir;
}

// One grep-friendly cache-stats line. `label` distinguishes the per-shard
// breakdown of a merged result ("[shard 0/3]") from the totals ("").
void print_cache_stats_line(const CacheStats& cache,
                            std::uint64_t replayed_runs,
                            std::size_t prefix_groups,
                            const std::string& label, std::FILE* human) {
  std::fprintf(
      human,
      "cache-stats%s: hits=%llu misses=%llu evictions=%llu hit-rate=%.3f "
      "replayed-runs=%llu prefix-groups=%zu peak-bytes=%zu",
      label.c_str(), static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions), cache.hit_rate(),
      static_cast<unsigned long long>(replayed_runs), prefix_groups,
      cache.peak_bytes);
  // Disk-tier counters only when the tier saw traffic, so the line stays
  // unchanged (and CI greps stay valid) for memory-only runs.
  if (cache.disk_hits + cache.disk_misses + cache.disk_writes > 0) {
    std::fprintf(human,
                 " disk-hits=%llu disk-misses=%llu disk-writes=%llu",
                 static_cast<unsigned long long>(cache.disk_hits),
                 static_cast<unsigned long long>(cache.disk_misses),
                 static_cast<unsigned long long>(cache.disk_writes));
  }
  std::fprintf(human, "\n");
}

// The workload/baseline-cache accounting printed after a sweep's summary
// table (CI greps hits= on the half-life smoke sweep). A merged or
// multi-process result prints one line per shard, then the totals.
// Skipped when the cache was disabled (--no-cache / --cache-mb=0).
void print_cache_stats(const SweepResult& result, std::FILE* human) {
  if (!result.cache_enabled) return;
  if (result.shards > 1 &&
      result.per_shard_cache.size() == result.shards) {
    for (std::size_t s = 0; s < result.shards; ++s) {
      print_cache_stats_line(
          result.per_shard_cache[s], result.per_shard_replayed[s],
          result.prefix_groups,
          "[shard " + std::to_string(s) + "/" +
              std::to_string(result.shards) + "]",
          human);
    }
  }
  print_cache_stats_line(result.cache, result.replayed_runs,
                         result.prefix_groups, "", human);
}

// The utilization and rand-convergence scenarios post-process per-run
// data under a single-axis-point assumption (greedy extremes per
// instance, the per-N convergence table); extra axes would silently
// corrupt or discard results, so they are rejected instead.
void reject_axes(const char* scenario, const ScenarioOptions& options) {
  if (!options.axes.empty()) {
    throw std::invalid_argument(std::string(scenario) +
                                " does not support --axes; use `custom` "
                                "for free-form axis sweeps");
  }
}

// Scenarios that post-process per-run data (or run several sweeps) cannot
// be partitioned into mergeable shards; reject the sharding flags loudly
// instead of producing a partial analysis.
void reject_sharding(const char* scenario, const ScenarioOptions& options) {
  if (!options.shard.empty() || !options.partial_out.empty() ||
      options.processes > 1) {
    throw std::invalid_argument(
        std::string(scenario) +
        " does not support --shard/--partial-out/--processes; only plain "
        "sweep scenarios (and `custom`) can be sharded");
  }
}

}  // namespace

std::vector<std::string> drop_flag_tokens(
    const std::vector<std::string>& args,
    const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    bool dropped = false;
    for (const std::string& name : names) {
      const std::string bare = "--" + name;
      if (token == bare) {
        // `--name value` consumes the value token too (mirrors Flags).
        if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) ++i;
        dropped = true;
        break;
      }
      if (token.rfind(bare + "=", 0) == 0) {
        dropped = true;
        break;
      }
    }
    if (!dropped) out.push_back(token);
  }
  return out;
}

namespace {

// The command a multi-process sweep's workers run: the same program and
// arguments, minus the orchestration flags (the executor's workers are
// `shard-worker` protocol peers now — dist/transport.h — so sharding is
// carried by the request, not flags) and the reporting flags (a worker's
// only output is its artifact; the parent reports the merge).
std::vector<std::string> worker_command(const ScenarioOptions& options) {
  if (options.program.empty()) {
    throw std::invalid_argument(
        "--processes needs the harness's own command line; run through "
        "fairsched_exp (or use --shard workers and `merge` manually)");
  }
  std::vector<std::string> command{options.program};
  const std::vector<std::string> kept = drop_flag_tokens(
      options.raw_args, {"processes", "shard", "partial-out", "csv",
                         "json", "stream-records"});
  command.insert(command.end(), kept.begin(), kept.end());
  return command;
}

// The --stream-records sink: an owning CSV writer over a file or stdout.
// Records arrive in the deterministic fold order, so the emitted file is
// bit-identical across thread counts.
struct StreamRecords {
  std::ofstream file;
  std::unique_ptr<CsvRecordSink> csv;
};

// Opens options.stream_records_path for `spec`. Returns a nonzero exit
// code on I/O failure, 0 otherwise (including when streaming is off).
int open_stream_records(const SweepSpec& spec, const ScenarioOptions& options,
                        StreamRecords& stream) {
  if (options.stream_records_path.empty()) return 0;
  std::ostream* out = &std::cout;
  if (options.stream_records_path != "-") {
    stream.file.open(options.stream_records_path);
    if (!stream.file) {
      std::fprintf(stderr, "cannot open per-run CSV output: %s\n",
                   options.stream_records_path.c_str());
      return 2;
    }
    out = &stream.file;
  }
  stream.csv = std::make_unique<CsvRecordSink>(*out, spec);
  return 0;
}

}  // namespace

ScenarioOptions scenario_options_from_flags(const Flags& flags) {
  ScenarioOptions options;
  auto non_negative = [&flags](const char* name) {
    const std::int64_t value = flags.get_int(name, 0);
    if (value < 0) {
      throw std::invalid_argument(std::string("--") + name +
                                  " must be non-negative");
    }
    return value;
  };
  options.instances = static_cast<std::size_t>(non_negative("instances"));
  options.duration = non_negative("duration");
  const std::int64_t orgs = flags.get_int("orgs", 5);
  if (orgs < 1 || orgs > 4294967295) {
    throw std::invalid_argument("--orgs must be in [1, 2^32-1]");
  }
  options.orgs = static_cast<std::uint32_t>(orgs);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2013));
  options.scale = flags.get_double("scale", 0.0);
  if (flags.has("scale") && options.scale <= 0.0) {
    throw std::invalid_argument("--scale must be positive");
  }
  options.threads = static_cast<std::size_t>(non_negative("threads"));
  options.smoke = flags.get_bool("smoke", false);
  // --cache-mb=0 and --no-cache both disable the workload/baseline cache.
  const std::int64_t cache_mb =
      flags.get_int("cache-mb", static_cast<std::int64_t>(options.cache_mb));
  if (cache_mb < 0) {
    throw std::invalid_argument("--cache-mb must be non-negative");
  }
  options.cache_mb = static_cast<std::size_t>(cache_mb);
  options.no_cache = flags.get_bool("no-cache", false);
  options.cache_dir = flags.get_string("cache-dir", "");
  options.shard = flags.get_string("shard", "");
  // Validate the spec now so a malformed --shard fails before any
  // compute, with parse_shard_spec's message.
  parse_shard_spec(options.shard);
  options.partial_out = flags.get_string("partial-out", "");
  options.processes = static_cast<std::size_t>(non_negative("processes"));
  options.zipf_s = flags.get_double("zipf-s", 1.0);
  options.csv_path = flags.get_string("csv", "");
  options.json_path = flags.get_string("json", "");
  options.stream_records_path = flags.get_string("stream-records", "");
  options.axes = flags.get_string("axes", "");
  options.policies = flags.get_string("policies", "");
  options.workload = flags.get_string("workload", "all");
  options.config_path = flags.get_string("config", "");
  const std::int64_t jobs_per_org = flags.get_int("jobs-per-org", 0);
  if (jobs_per_org < 0 || jobs_per_org > 4294967295) {
    throw std::invalid_argument("--jobs-per-org must be in [0, 2^32-1]");
  }
  options.jobs_per_org = static_cast<std::uint32_t>(jobs_per_org);
  options.min_orgs = static_cast<std::uint32_t>(non_negative("min-orgs"));
  options.max_orgs = static_cast<std::uint32_t>(non_negative("max-orgs"));
  options.deviations = flags.get_string("deviations", "");
  options.deviator_orgs = flags.get_string("deviator-orgs", "");
  options.check_thm41 = flags.get_bool("check-thm41", false);
  options.thm41_tolerance = flags.get_double("thm41-tolerance", 2.0);
  if (options.thm41_tolerance < 0.0) {
    throw std::invalid_argument("--thm41-tolerance must be non-negative");
  }
  options.source = flags.get_string("source", "synthetic");
  options.policy = flags.get_string("policy", "fairshare");
  options.decisions_path = flags.get_string("decisions", "");
  options.record_trace_path = flags.get_string("record-trace", "");
  options.stats_interval =
      static_cast<std::uint64_t>(non_negative("stats-interval"));
  options.serve_events =
      static_cast<std::uint64_t>(non_negative("serve-events"));
  options.arrival_rate = flags.get_double("arrival-rate", 0.0);
  if (flags.has("arrival-rate") && !(options.arrival_rate > 0.0)) {
    throw std::invalid_argument("--arrival-rate must be positive");
  }
  const std::int64_t machines_per_org = flags.get_int("machines-per-org", 1);
  if (machines_per_org < 1 || machines_per_org > 4294967295) {
    throw std::invalid_argument("--machines-per-org must be in [1, 2^32-1]");
  }
  options.machines_per_org = static_cast<std::uint32_t>(machines_per_org);
  options.orgs_explicit = flags.has("orgs");
  options.workers_spec = flags.get_string("workers", "");
  options.hosts_path = flags.get_string("hosts", "");
  options.ssh_command = flags.get_string("ssh-cmd", "ssh");
  options.remote_program = flags.get_string("remote-program", "");
  options.sweep = flags.get_string("sweep", "custom");
  options.dispatch_shards = static_cast<std::size_t>(non_negative("shards"));
  options.worker_threads =
      static_cast<std::size_t>(non_negative("worker-threads"));
  options.worker_threads_explicit = flags.has("worker-threads");
  options.timeout_ms = static_cast<std::size_t>(non_negative("timeout-ms"));
  const std::int64_t retries = flags.get_int("retries", 2);
  if (retries < 0) {
    throw std::invalid_argument("--retries must be non-negative");
  }
  options.retries = static_cast<std::size_t>(retries);
  const std::int64_t backoff_ms = flags.get_int("backoff-ms", 250);
  if (backoff_ms < 0) {
    throw std::invalid_argument("--backoff-ms must be non-negative");
  }
  options.backoff_ms = static_cast<std::size_t>(backoff_ms);
  const std::int64_t backoff_cap_ms = flags.get_int("backoff-cap-ms", 5000);
  if (backoff_cap_ms < 0) {
    throw std::invalid_argument("--backoff-cap-ms must be non-negative");
  }
  options.backoff_cap_ms = static_cast<std::size_t>(backoff_cap_ms);
  options.artifact_dir =
      flags.get_string("artifact-dir", "dispatch-artifacts");
  options.dispatch_log_path = flags.get_string("dispatch-log", "");
  options.resume_dispatch = flags.get_bool("resume", false);
  options.dry_run = flags.get_bool("dry-run", false);
  options.persistent_workers = flags.get_bool("persistent-workers", false);
  options.speculate = flags.get_bool("speculate", false);
  options.speculate_factor = flags.get_double("speculate-factor", 2.0);
  if (options.speculate_factor <= 0.0) {
    throw std::invalid_argument("--speculate-factor must be positive");
  }
  options.dispatch_bench = flags.get_bool("dispatch-bench", false);
  const std::int64_t bench_repeats = flags.get_int("bench-repeats", 3);
  if (bench_repeats < 1) {
    throw std::invalid_argument("--bench-repeats must be >= 1");
  }
  options.bench_repeats = static_cast<std::size_t>(bench_repeats);
  const std::string split = flags.get_string("split", "zipf");
  if (split == "zipf") {
    options.split = MachineSplit::kZipf;
  } else if (split == "uniform") {
    options.split = MachineSplit::kUniform;
  } else {
    throw std::invalid_argument("--split must be zipf or uniform");
  }
  // At most one machine-readable stream may claim stdout, or their
  // different schemas would interleave into one unparseable file.
  const int to_stdout = (options.csv_path == "-") +
                        (options.json_path == "-") +
                        (options.stream_records_path == "-");
  if (to_stdout > 1) {
    throw std::invalid_argument(
        "at most one of --csv, --json, --stream-records may be '-'");
  }
  return options;
}

const std::vector<WorkloadInfo>& workload_catalog() {
  static const std::vector<WorkloadInfo> catalog = {
      {"all", "the four archive-shaped synthetic workloads below"},
      {"lpc", "LPC-EGEE shape: 70 CPUs, 56 users (Section 7.2)"},
      {"pik", "PIK-IPLEX shape: 2560 CPUs, 225 users (scaled by --scale)"},
      {"ricc", "RICC shape: 8192 CPUs, 176 users (scaled by --scale)"},
      {"whale", "SHARCNET-Whale shape: 3072 CPUs, 154 users (scaled)"},
      {"unit", "unit-size jobs, --jobs-per-org per organization (Thm 5.6)"},
      {"smallrandom", "small random consortia, 2-4 orgs (Thm 6.2 probe)"},
  };
  return catalog;
}

SweepSpec make_table_sweep(const std::string& which,
                           const ScenarioOptions& options) {
  const bool table2 = which == "table2";
  if (!table2 && which != "table1") {
    throw std::invalid_argument("make_table_sweep: expected table1 or table2");
  }
  SweepSpec spec;
  spec.name = which;
  spec.policies = table_policy_names();
  apply_execution_options(spec, options);
  spec.baseline = "ref";
  if (options.smoke) {
    spec.horizon = options.duration ? options.duration : kSmokeTableDuration;
    spec.instances = options.instances ? options.instances : kSmokeInstances;
  } else {
    spec.horizon = options.duration ? options.duration
                                    : (table2 ? Time{500000} : Time{50000});
    spec.instances =
        options.instances ? options.instances : (table2 ? 3 : 10);
  }
  const double scale = options.scale > 0.0
                           ? options.scale
                           : (options.smoke ? kSmokeScale : 16.0);
  spec.workloads = archive_workloads(options, scale);
  apply_axes_override(spec, options);
  char title[256];
  std::snprintf(title, sizeof(title),
                "%s: avg unjustified delay (delta_psi / p_tot), duration "
                "%lld, %zu instance(s), %u orgs, scale 1/%.0f",
                table2 ? "Table 2" : "Table 1",
                static_cast<long long>(spec.horizon), spec.instances,
                options.orgs, scale);
  spec.title = title;
  spec.note = table2
                  ? "Expected shape (paper Table 2): same ordering as Table 1 "
                    "with larger absolute values — unfairness grows with the "
                    "horizon."
                  : "Expected shape (paper Table 1): RoundRobin worst by far; "
                    "Rand/DirectContr best; FairShare between; PIK near zero; "
                    "RICC largest.";
  return spec;
}

SweepSpec make_rand_convergence_sweep(const ScenarioOptions& options) {
  reject_axes("rand-convergence", options);
  reject_sharding("rand-convergence", options);
  SweepSpec spec;
  spec.name = "rand-convergence";
  spec.baseline = "ref";
  apply_execution_options(spec, options);
  spec.horizon = options.duration ? options.duration : 150;
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? kSmokeInstances : 5);
  const std::vector<std::size_t> samples =
      options.smoke ? std::vector<std::size_t>{1, 5, 15}
                    : std::vector<std::size_t>{1, 2, 5, 15, 75, 200, 600};
  for (std::size_t n : samples) {
    spec.policies.push_back("rand" + std::to_string(n));
  }
  SweepWorkload w;
  w.name = "unit-jobs";
  w.kind = SweepWorkload::Kind::kUnitJobs;
  w.orgs = options.orgs;
  // 60 jobs/org keeps the platforms contended even in smoke mode; fewer
  // jobs leave RAND exactly on REF and the convergence signal vanishes.
  w.unit_jobs_per_org = options.jobs_per_org ? options.jobs_per_org : 60;
  spec.workloads.push_back(std::move(w));
  char title[256];
  std::snprintf(title, sizeof(title),
                "RAND convergence (Thm 5.6 / FPRAS): unit jobs, %u orgs, %u "
                "jobs/org, horizon %lld, %zu trial(s) per N",
                options.orgs, spec.workloads[0].unit_jobs_per_org,
                static_cast<long long>(spec.horizon), spec.instances);
  spec.title = title;
  spec.note =
      "Expected shape: the relative distance decreases monotonically-ish "
      "with N and is already small at the paper's N = 15.";
  return spec;
}

SweepSpec make_utilization_sweep(const ScenarioOptions& options) {
  reject_axes("utilization", options);
  reject_sharding("utilization", options);
  SweepSpec spec;
  spec.name = "utilization";
  spec.baseline = "";  // pure utilization sweep, no fairness reference
  apply_execution_options(spec, options);
  spec.horizon = options.duration ? options.duration : 60;
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? 24 : 200);
  spec.policies = {"fcfs", "roundrobin", "fairshare", "random",
                   "directcontr"};
  SweepWorkload w;
  w.name = "small-random";
  w.kind = SweepWorkload::Kind::kSmallRandom;
  spec.workloads.push_back(std::move(w));
  char title[256];
  std::snprintf(title, sizeof(title),
                "Greedy utilization probe (Thm 6.2): %zu random consortia, "
                "horizon %lld",
                spec.instances, static_cast<long long>(spec.horizon));
  spec.title = title;
  return spec;
}

SweepSpec make_fig10_sweep(const ScenarioOptions& options) {
  SweepSpec spec;
  spec.name = "fig10";
  spec.policies = table_policy_names();
  spec.baseline = "ref";
  apply_execution_options(spec, options);
  spec.horizon = options.duration ? options.duration
                                  : (options.smoke ? kSmokeTableDuration
                                                   : Time{25000});
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? kSmokeInstances : 20);
  spec.workloads.push_back(lpc_workload(options));
  const std::uint32_t min_orgs = options.min_orgs ? options.min_orgs : 2;
  // REF's cost grows ~3^k with the organization count, so the default stops
  // at 7 (4 under --smoke); the paper's full figure is --max-orgs=10.
  const std::uint32_t max_orgs =
      options.max_orgs ? options.max_orgs : (options.smoke ? 4 : 7);
  if (max_orgs < min_orgs) {
    throw std::invalid_argument("--max-orgs must be >= --min-orgs");
  }
  std::vector<double> orgs;
  for (std::uint32_t k = min_orgs; k <= max_orgs; ++k) {
    orgs.push_back(static_cast<double>(k));
  }
  spec.axes.push_back(make_axis("orgs", std::move(orgs)));
  apply_axes_override(spec, options);
  char title[256];
  std::snprintf(title, sizeof(title),
                "Figure 10: delta_psi / p_tot vs number of organizations "
                "(%s, duration %lld, %zu instance(s) per point)",
                spec.workloads[0].name.c_str(),
                static_cast<long long>(spec.horizon), spec.instances);
  spec.title = title;
  spec.note =
      "Expected shape (paper Fig. 10): every series grows with the number "
      "of organizations; RoundRobin steepest, Rand/DirectContr flattest.";
  return spec;
}

SweepSpec make_horizon_growth_sweep(const ScenarioOptions& options) {
  if (options.duration != 0) {
    throw std::invalid_argument(
        "horizon-growth sweeps the horizon as an axis; use "
        "--axes=\"horizon=v1,v2,...\" instead of --duration");
  }
  SweepSpec spec;
  spec.name = "horizon-growth";
  spec.policies = {"roundrobin", "rand15", "directcontr", "fairshare"};
  spec.baseline = "ref";
  apply_execution_options(spec, options);
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? kSmokeInstances : 5);
  spec.workloads.push_back(lpc_workload(options));
  const std::vector<double> horizons =
      options.smoke
          ? std::vector<double>{2500, 5000, 10000}
          : std::vector<double>{12500, 25000, 50000, 100000, 200000, 400000};
  spec.horizon = static_cast<Time>(horizons.front());
  spec.axes.push_back(make_axis("horizon", horizons));
  apply_axes_override(spec, options);
  char title[256];
  std::snprintf(title, sizeof(title),
                "Unfairness vs horizon (%s, %zu instance(s) per point, %u "
                "orgs)",
                spec.workloads[0].name.c_str(), spec.instances, options.orgs);
  spec.title = title;
  spec.note =
      "Expected shape (paper Tables 1 vs 2): every series grows with the "
      "horizon; RoundRobin fastest, Rand slowest.";
  return spec;
}

SweepSpec make_fairshare_decay_sweep(const ScenarioOptions& options) {
  SweepSpec spec;
  spec.name = "fairshare-decay";
  // The half-life axis binds onto decayfairshare; the other policies are
  // the memoryless/infinite-memory extremes and the Shapley-aware /
  // no-policy yardsticks, repeated per axis point as a visual baseline.
  spec.policies = {"currfairshare", "decayfairshare", "fairshare",
                   "directcontr", "random"};
  spec.baseline = "ref";
  apply_execution_options(spec, options);
  spec.horizon = options.duration ? options.duration
                                  : (options.smoke ? kSmokeTableDuration
                                                   : Time{50000});
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? kSmokeInstances : 10);
  spec.workloads.push_back(lpc_workload(options));
  // Smoke keeps the full four-point axis: it is the CI perf-regression
  // workload for the prefix cache, and the cached/uncached wall-time ratio
  // scales with the number of half-life values sharing one prefix.
  const std::vector<double> half_lives = {500, 2500, 10000, 50000};
  spec.axes.push_back(make_axis("half-life", half_lives));
  apply_axes_override(spec, options);
  char title[256];
  std::snprintf(title, sizeof(title),
                "Fair-share memory ablation on %s: delta_psi / p_tot, "
                "duration %lld, %zu instance(s), %u orgs",
                spec.workloads[0].name.c_str(),
                static_cast<long long>(spec.horizon), spec.instances,
                options.orgs);
  spec.title = title;
  spec.note =
      "Reading: the memoryless (currfairshare) and infinite-memory "
      "(fairshare) extremes bracket the decayed variants; none matches the "
      "contribution-aware DirectContr, reinforcing the paper's conclusion "
      "that static/usage-based shares cannot substitute for measuring "
      "organizations' actual impact.";
  return spec;
}

SweepSpec make_custom_sweep(const ScenarioOptions& options) {
  SweepSpec spec;
  spec.name = "custom";
  apply_execution_options(spec, options);
  spec.horizon = options.duration
                     ? options.duration
                     : (options.smoke ? kSmokeTableDuration : Time{50000});
  spec.instances = options.instances ? options.instances
                                     : (options.smoke ? kSmokeInstances : 10);
  spec.baseline = "ref";
  if (options.policies.empty()) {
    spec.policies = table_policy_names();
  } else {
    for (const PolicySpec& algorithm : parse_policy_list(options.policies)) {
      spec.policies.push_back(canonical_policy_name(algorithm));
    }
  }
  const double scale = options.scale > 0.0
                           ? options.scale
                           : (options.smoke ? kSmokeScale : 16.0);
  const std::string& which = options.workload;
  auto add_synthetic = [&](const SyntheticSpec& preset) {
    SweepWorkload w;
    w.name = preset.name;
    w.kind = SweepWorkload::Kind::kSynthetic;
    w.spec = preset;
    w.orgs = options.orgs;
    w.split = options.split;
    w.zipf_s = options.zipf_s;
    spec.workloads.push_back(std::move(w));
  };
  if (which == "all" || which.empty()) {
    spec.workloads = archive_workloads(options, scale);
  } else if (which == "lpc") {
    add_synthetic(preset_lpc_egee());
  } else if (which == "pik") {
    add_synthetic(preset_pik_iplex(scale));
  } else if (which == "ricc") {
    add_synthetic(preset_ricc(scale));
  } else if (which == "whale") {
    add_synthetic(preset_sharcnet_whale(scale));
  } else if (which == "unit") {
    SweepWorkload w;
    w.name = "unit-jobs";
    w.kind = SweepWorkload::Kind::kUnitJobs;
    w.orgs = options.orgs;
    w.unit_jobs_per_org = options.jobs_per_org ? options.jobs_per_org : 60;
    spec.workloads.push_back(std::move(w));
  } else if (which == "smallrandom") {
    SweepWorkload w;
    w.name = "small-random";
    w.kind = SweepWorkload::Kind::kSmallRandom;
    spec.workloads.push_back(std::move(w));
  } else {
    std::string known;
    for (const WorkloadInfo& info : workload_catalog()) {
      if (!known.empty()) known += "|";
      known += info.name;
    }
    throw std::invalid_argument("--workload must be " + known + ", got '" +
                                which + "'");
  }
  apply_axes_override(spec, options);
  spec.title = custom_sweep_title(spec);
  return spec;
}

namespace {

// Comma-separated list helper for the strategy flags; empty tokens are
// rejected so a trailing comma fails loudly instead of silently.
std::vector<std::string> split_commas(const std::string& text,
                                      const char* flag) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string token = text.substr(start, end - start);
    // Trim surrounding spaces so "split:2, merge:2" parses.
    while (!token.empty() && token.front() == ' ') token.erase(0, 1);
    while (!token.empty() && token.back() == ' ') token.pop_back();
    if (token.empty()) {
      throw std::invalid_argument(std::string("--") + flag +
                                  " has an empty entry");
    }
    tokens.push_back(std::move(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tokens;
}

}  // namespace

void apply_strategy_axes(SweepSpec& spec, const ScenarioOptions& options) {
  // The deviation grid: honest is always id 0 (the manipulation-gain
  // reference the planner requires); --deviations replaces the rest.
  if (options.deviations.empty()) {
    spec.deviations = strategy::default_deviation_grid();
  } else {
    spec.deviations.clear();
    spec.deviations.push_back(strategy::DeviationSpec{});
    for (const std::string& token :
         split_commas(options.deviations, "deviations")) {
      spec.deviations.push_back(strategy::parse_deviation(token));
    }
  }
  std::vector<double> grid_ids;
  std::vector<std::string> grid_labels;
  for (std::size_t i = 0; i < spec.deviations.size(); ++i) {
    grid_ids.push_back(static_cast<double>(i));
    grid_labels.push_back(strategy::deviation_label(spec.deviations[i]));
  }
  SweepAxis grid_axis = make_axis("strategy", std::move(grid_ids));
  grid_axis.value_labels = std::move(grid_labels);
  spec.axes.push_back(std::move(grid_axis));

  // --deviator-orgs turns the deviating organization into a second axis;
  // without it organization 0 deviates (the planner's default).
  if (!options.deviator_orgs.empty()) {
    std::vector<double> orgs;
    for (const std::string& token :
         split_commas(options.deviator_orgs, "deviator-orgs")) {
      std::size_t used = 0;
      const long value = std::stol(token, &used);
      if (used != token.size() || value < 0) {
        throw std::invalid_argument(
            "--deviator-orgs entries must be non-negative organization "
            "indices, got '" + token + "'");
      }
      orgs.push_back(static_cast<double>(value));
    }
    spec.axes.push_back(make_axis("deviator-org", std::move(orgs)));
  }
}

SweepSpec make_strategy_sweep(const ScenarioOptions& options) {
  SweepSpec spec;
  spec.name = "strategy";
  // Policies spanning the grading contrast: fcfs grades jobs by arrival
  // (flow-sensitive, manipulable); the fair-share family and DirectContr
  // are the paper's deployable candidates.
  spec.policies = {"fcfs",        "roundrobin",    "fairshare",
                   "utfairshare", "currfairshare", "directcontr"};
  spec.baseline = "ref";
  apply_execution_options(spec, options);
  spec.horizon = options.duration ? options.duration
                                  : (options.smoke ? kSmokeTableDuration
                                                   : Time{20000});
  // Four smoke instances, not the usual two: the per-deviation gains the
  // Thm 4.1 check averages are scheduling-noisy, and two windows are not
  // enough to keep the share-graded means inside tolerance.
  spec.instances =
      options.instances ? options.instances : (options.smoke ? 4 : 5);
  // A deliberately contended platform: on an underloaded consortium a
  // deviation soaks idle machines, which rewards any manipulation under
  // any policy and drowns the Theorem 4.1 contrast. Scaling the LPC
  // processor count down (default 1/4) keeps the platform saturated so a
  // deviator's extra slots must come out of the shared capacity the
  // policies arbitrate. --scale overrides.
  SweepWorkload contended = lpc_workload(options);
  const double scale = options.scale > 0.0 ? options.scale : 4.0;
  contended.spec.total_machines = std::max<std::uint32_t>(
      options.orgs,
      static_cast<std::uint32_t>(
          static_cast<double>(contended.spec.total_machines) / scale));
  spec.workloads.push_back(std::move(contended));
  apply_strategy_axes(spec, options);
  apply_axes_override(spec, options);

  char title[256];
  std::snprintf(title, sizeof(title),
                "Strategic deviations (Thm 4.1): %zu deviation(s) x %zu "
                "policies on %s, duration %lld, %zu instance(s), %u orgs",
                spec.deviations.size(), spec.policies.size(),
                spec.workloads[0].name.c_str(),
                static_cast<long long>(spec.horizon), spec.instances,
                options.orgs);
  spec.title = title;
  spec.note =
      "Reading (paper Thm 4.1 / Prop 4.2): grading by the psi_sp utility "
      "leaves ~zero gain under split/merge/delay — the measure is "
      "resistant to workload manipulation — while flow-time grading "
      "rewards splitting, so flow-graded schedulers invite it.";
  return spec;
}

SweepSpec make_scenario_sweep(const std::string& command,
                              const ScenarioOptions& options) {
  if (command == "table1" || command == "table2") {
    return make_table_sweep(command, options);
  }
  if (command == "fig10") return make_fig10_sweep(options);
  if (command == "horizon-growth") return make_horizon_growth_sweep(options);
  if (command == "fairshare-decay") {
    return make_fairshare_decay_sweep(options);
  }
  if (command == "strategy") return make_strategy_sweep(options);
  if (command == "custom") {
    return options.config_path.empty()
               ? make_custom_sweep(options)
               : load_sweep_config_file(options.config_path, options);
  }
  throw std::invalid_argument(
      "'" + command +
      "' is not a shardable sweep scenario; expected table1, table2, "
      "fig10, horizon-growth, fairshare-decay, strategy or custom");
}

std::vector<SweepSpec> make_ref_scaling_sweeps(
    const ScenarioOptions& options) {
  reject_axes("ref-scaling", options);
  reject_sharding("ref-scaling", options);
  std::vector<SweepSpec> sweeps;

  // Sweep 1: REF's cost vs the number of organizations at a fixed
  // horizon — the exponential (~3^k) FPT parameter of Prop. 3.4.
  {
    SweepSpec spec;
    spec.name = "ref-scaling-orgs";
    spec.policies = {"ref"};
    spec.baseline = "";  // REF is the subject here, not the reference
    apply_execution_options(spec, options);
    spec.horizon = options.duration ? options.duration
                                    : (options.smoke ? Time{500} : Time{2000});
    spec.instances =
        options.instances ? options.instances : (options.smoke ? 1 : 3);
    spec.workloads.push_back(lpc_workload(options));
    const std::uint32_t min_orgs = options.min_orgs ? options.min_orgs : 2;
    const std::uint32_t max_orgs =
        options.max_orgs ? options.max_orgs : (options.smoke ? 4 : 8);
    if (max_orgs < min_orgs) {
      throw std::invalid_argument("--max-orgs must be >= --min-orgs");
    }
    std::vector<double> orgs;
    for (std::uint32_t k = min_orgs; k <= max_orgs; ++k) {
      orgs.push_back(static_cast<double>(k));
    }
    spec.axes.push_back(make_axis("orgs", std::move(orgs)));
    char title[256];
    std::snprintf(title, sizeof(title),
                  "REF scaling vs organizations (Prop. 3.4): %s, duration "
                  "%lld, %zu instance(s) per point",
                  spec.workloads[0].name.c_str(),
                  static_cast<long long>(spec.horizon), spec.instances);
    spec.title = title;
    spec.note =
        "Expected shape (Prop. 3.4 / Cor. 3.5): per-run wall time grows "
        "roughly 3x per added organization (FPT in k).";
    sweeps.push_back(std::move(spec));
  }

  // Sweep 2: REF's cost vs the window length at a fixed consortium — the
  // polynomial part of the FPT claim (runtime ~linear in the jobs).
  {
    SweepSpec spec;
    spec.name = "ref-scaling-jobs";
    spec.policies = {"ref"};
    spec.baseline = "";
    apply_execution_options(spec, options);
    spec.instances =
        options.instances ? options.instances : (options.smoke ? 1 : 3);
    spec.workloads.push_back(lpc_workload(options));
    const std::vector<double> horizons =
        options.smoke ? std::vector<double>{250, 500, 1000}
                      : std::vector<double>{1000, 2000, 4000, 8000};
    spec.horizon = static_cast<Time>(horizons.front());
    spec.axes.push_back(make_axis("horizon", horizons));
    char title[256];
    std::snprintf(title, sizeof(title),
                  "REF scaling vs window length (Cor. 3.5): %s, %u orgs, "
                  "%zu instance(s) per point",
                  spec.workloads[0].name.c_str(), options.orgs,
                  spec.instances);
    spec.title = title;
    spec.note =
        "Expected shape: per-run wall time grows ~linearly (times log "
        "factors) with the horizon/job count.";
    sweeps.push_back(std::move(spec));
  }
  return sweeps;
}

std::string custom_sweep_title(const SweepSpec& spec) {
  char title[256];
  std::snprintf(title, sizeof(title),
                "Custom sweep: %zu policies x %zu workload(s) x %zu axis "
                "point(s), duration %lld, %zu instance(s)",
                spec.policies.size(), spec.workloads.size(),
                num_axis_points(spec), static_cast<long long>(spec.horizon),
                spec.instances);
  return title;
}

int run_sweep_scenario(const SweepSpec& spec,
                       const ScenarioOptions& options) {
  const SweepShard shard = parse_shard_spec(options.shard);
  if (options.partial_out == "-") {
    throw std::invalid_argument("--partial-out must be a file path");
  }
  if (options.processes > 1) {
    if (!shard.whole()) {
      throw std::invalid_argument(
          "--processes and --shard are mutually exclusive: --processes "
          "partitions the whole sweep itself");
    }
    if (!options.partial_out.empty()) {
      throw std::invalid_argument(
          "--processes merges its workers' artifacts in-process; use "
          "--shard workers for explicit --partial-out files");
    }
    if (!options.stream_records_path.empty()) {
      throw std::invalid_argument(
          "--stream-records does not cross process boundaries; run the "
          "shards explicitly (--shard=i/N --stream-records=...) and keep "
          "their per-shard streams");
    }
  }
  const bool worker = !options.partial_out.empty();
  if (worker &&
      (!options.csv_path.empty() || !options.json_path.empty())) {
    // Cell aggregates belong to the merged whole; per-run records are
    // inherently per-shard, so --stream-records stays valid on a worker.
    throw std::invalid_argument(
        "--partial-out writes only the shard artifact; put --csv/--json "
        "on the `merge` invocation instead");
  }

  std::FILE* human = human_file(options);
  if (!worker && !spec.title.empty()) {
    std::fprintf(human, "%s\n", spec.title.c_str());
  }

  StreamRecords stream;
  if (const int rc = open_stream_records(spec, options, stream)) return rc;
  Executor::RecordSink sink;
  if (stream.csv) {
    sink = [&stream](const RunRecord& record) { stream.csv->write(record); };
  }
  Executor::Progress progress;
  if (!worker) {
    progress = [human](const std::string& message) {
      std::fprintf(human, "  finished %s\n", message.c_str());
      std::fflush(human);
    };
  }

  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(), shard);
  SweepResult result;
  if (options.processes > 1) {
    MultiProcessExecutor executor(worker_command(options),
                                  options.processes);
    result = executor.execute(plan, progress, nullptr);
  } else {
    ThreadPoolExecutor executor;
    result = executor.execute(plan, progress, sink);
  }

  if (worker) {
    // A shard worker reports nothing itself: its whole output is the
    // artifact (plus one stderr breadcrumb), and `merge` does the rest.
    std::ofstream out(options.partial_out);
    if (!out) {
      std::fprintf(stderr, "cannot open shard artifact output: %s\n",
                   options.partial_out.c_str());
      return 2;
    }
    write_shard_artifact(out, plan, result);
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "failed writing shard artifact: %s\n",
                   options.partial_out.c_str());
      return 2;
    }
    if (stream.file.is_open()) {
      std::fprintf(stderr, "shard %zu/%zu: wrote per-run CSV: %s\n",
                   shard.index, shard.count,
                   options.stream_records_path.c_str());
    }
    std::fprintf(stderr, "shard %zu/%zu: wrote %s (%zu of %zu tasks)\n",
                 shard.index, shard.count, options.partial_out.c_str(),
                 plan.shard_tasks.size(), plan.num_tasks);
    return 0;
  }

  if (stream.file.is_open()) {
    std::fprintf(human, "wrote per-run CSV: %s\n",
                 options.stream_records_path.c_str());
  }

  TableReporter table(human_stream(options));
  table.report(spec, result);
  print_cache_stats(result, human);
  if (!shard.whole()) {
    std::fprintf(human,
                 "note: partial result of shard %zu/%zu — cells owned by "
                 "other shards read as zero (write --partial-out files "
                 "and `merge` them for the full sweep)\n",
                 shard.index, shard.count);
  }
  // The manipulation-gain report needs every cell, so a partial shard
  // skips it — `merge` prints it over the folded whole instead.
  int thm41_rc = 0;
  if (spec.is_strategy() && shard.whole()) {
    strategy::print_strategy_report(spec, result, human_stream(options));
    if (options.check_thm41) {
      thm41_rc = strategy::check_theorem41(spec, result,
                                           options.thm41_tolerance,
                                           human_stream(options))
                     ? 1
                     : 0;
    }
  }
  if (!spec.note.empty()) std::fprintf(human, "\n%s\n", spec.note.c_str());

  if (const int rc = emit_csv_output(spec, result, options)) return rc;
  if (const int rc = emit_json_baseline(spec, result, options)) return rc;
  return thm41_rc;
}

namespace {

// Engine-core microbenchmark behind `ref-scaling --smoke`: one REF run on
// the largest-orgs point of the orgs sweep (bit-identical instance — same
// workload binding and seed derivation as the sweep's own cell), reporting
// the incremental engine's throughput. Event and decision counts are
// deterministic for the fixed smoke configuration, so the perf gate
// (scripts/compare_bench.py) compares them exactly — a change means the
// engine's event stream or decision sequence changed, which the
// equivalence contract forbids — while the wall-clock rates are gated only
// with generous slack.
int emit_ref_engine_microbench(const SweepSpec& orgs_spec,
                               double ref_wall_ms_per_run,
                               const ScenarioOptions& options) {
  const std::uint32_t largest_orgs = static_cast<std::uint32_t>(
      orgs_spec.axes[0].values.back());
  SweepWorkload workload = orgs_spec.workloads[0];
  workload.orgs = largest_orgs;
  const Time horizon = orgs_spec.horizon;
  const Instance inst = make_workload_instance(
      workload, horizon, mix_seed(orgs_spec.seed, 0));

  const auto t0 = std::chrono::steady_clock::now();
  RefScheduler ref(inst);
  ref.run(horizon);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // Totals across all 2^k - 1 coalition engines — the work the unified
  // event stream actually drove.
  std::uint64_t events = 0;
  std::uint64_t decisions = 0;
  const Coalition grand = Coalition::grand(inst.num_orgs());
  for (Coalition::Mask mask = 1; mask <= grand.mask(); ++mask) {
    const Engine& engine = ref.engine(Coalition(mask));
    events += engine.events_processed();
    decisions += engine.decisions_made();
  }
  const double secs = wall_ms / 1000.0;

  std::FILE* human = human_file(options);
  std::fprintf(human,
               "engine microbench (orgs=%u, horizon=%lld): %llu events, "
               "%llu decisions in %.2f ms (%.0f events/s, %.0f "
               "decisions/s)\n",
               largest_orgs, static_cast<long long>(horizon),
               static_cast<unsigned long long>(events),
               static_cast<unsigned long long>(decisions), wall_ms,
               secs > 0 ? static_cast<double>(events) / secs : 0.0,
               secs > 0 ? static_cast<double>(decisions) / secs : 0.0);
  if (!options.smoke) return 0;

  const std::string path = "BENCH_ref-scaling.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open JSON output: %s\n", path.c_str());
    return 2;
  }
  out << "{\n";
  out << "  \"sweep\": \"ref-scaling\",\n";
  out << "  \"largest_orgs\": " << largest_orgs << ",\n";
  out << "  \"horizon\": " << horizon << ",\n";
  out << "  \"ref_wall_ms_per_run\": " << json_exact_double(ref_wall_ms_per_run)
      << ",\n";
  out << "  \"engine\": {\n";
  out << "    \"events\": " << events << ",\n";
  out << "    \"decisions\": " << decisions << ",\n";
  out << "    \"wall_ms\": " << json_exact_double(wall_ms) << ",\n";
  out << "    \"events_per_sec\": "
      << json_exact_double(secs > 0 ? static_cast<double>(events) / secs : 0.0)
      << ",\n";
  out << "    \"decisions_per_sec\": "
      << json_exact_double(
             secs > 0 ? static_cast<double>(decisions) / secs : 0.0)
      << "\n";
  out << "  }\n";
  out << "}\n";
  std::fprintf(human, "wrote perf baseline: %s\n", path.c_str());
  return 0;
}

}  // namespace

int run_ref_scaling_scenario(const ScenarioOptions& options) {
  if (!options.csv_path.empty() || !options.json_path.empty() ||
      !options.stream_records_path.empty()) {
    throw std::invalid_argument(
        "ref-scaling runs two sweeps, so --csv/--json/--stream-records "
        "are ambiguous; --smoke still writes one BENCH_ref-scaling-*.json "
        "per sweep");
  }
  const std::vector<SweepSpec> sweeps = make_ref_scaling_sweeps(options);
  std::FILE* human = human_file(options);
  double largest_orgs_wall_ms_per_run = 0.0;
  for (const SweepSpec& spec : sweeps) {
    std::fprintf(human, "%s\n", spec.title.c_str());
    SweepDriver driver;
    const SweepResult result = driver.run(spec);
    // The subject is REF's running time, so the summary is the wall-time
    // column the generic unfairness table would bury.
    AsciiTable table(
        {spec.axes[0].name, "runs", "wall ms/run", "work done"});
    for (std::size_t a = 0; a < result.axis_points; ++a) {
      const SweepCell& cell = result.cell(spec, a, 0, 0);
      const std::size_t runs = cell.utilization.count();
      const double per_run =
          runs ? cell.wall_ms / static_cast<double>(runs) : 0.0;
      if (spec.name == "ref-scaling-orgs" && a + 1 == result.axis_points) {
        largest_orgs_wall_ms_per_run = per_run;
      }
      table.add_row(
          {axis_value_label(spec.axes[0], axis_point_values(spec, a)[0]),
           std::to_string(runs), AsciiTable::format_double(per_run, 2),
           std::to_string(cell.work_done)});
    }
    std::fputs(table.to_string().c_str(), human);
    print_cache_stats(result, human);
    if (const int rc = emit_json_baseline(spec, result, options)) return rc;
    std::fprintf(human, "\n%s\n\n", spec.note.c_str());
  }
  return emit_ref_engine_microbench(sweeps[0], largest_orgs_wall_ms_per_run,
                                    options);
}

int run_merge_scenario(const std::vector<std::string>& paths,
                       const ScenarioOptions& options) {
  if (paths.empty()) {
    throw std::invalid_argument(
        "merge needs shard artifact paths: fairsched_exp merge "
        "shard-0.json shard-1.json ...");
  }
  if (!options.stream_records_path.empty()) {
    throw std::invalid_argument(
        "merge folds cell aggregates; per-run records live in the shards' "
        "own --stream-records files");
  }
  reject_sharding("merge", options);

  std::vector<ShardArtifact> artifacts;
  artifacts.reserve(paths.size());
  for (const std::string& path : paths) {
    artifacts.push_back(load_shard_artifact(path));
  }
  const MergedSweep merged = merge_shard_artifacts(std::move(artifacts));
  const SweepSpec& spec = merged.spec;
  const SweepResult& result = merged.result;

  std::FILE* human = human_file(options);
  if (!spec.title.empty()) std::fprintf(human, "%s\n", spec.title.c_str());
  std::fprintf(human, "merged %zu shard artifact(s)\n", result.shards);

  TableReporter table(human_stream(options));
  table.report(spec, result);
  print_cache_stats(result, human);
  // Merged strategy shards report exactly like the equivalent whole run:
  // the gain report derives from the folded cell aggregates alone.
  int thm41_rc = 0;
  if (spec.is_strategy()) {
    strategy::print_strategy_report(spec, result, human_stream(options));
    if (options.check_thm41) {
      thm41_rc = strategy::check_theorem41(spec, result,
                                           options.thm41_tolerance,
                                           human_stream(options))
                     ? 1
                     : 0;
    }
  }
  if (!spec.note.empty()) std::fprintf(human, "\n%s\n", spec.note.c_str());

  if (const int rc = emit_csv_output(spec, result, options)) return rc;
  if (const int rc = emit_json_baseline(spec, result, options)) return rc;
  return thm41_rc;
}

int run_plan_scenario(const SweepSpec& spec,
                      const ScenarioOptions& options) {
  if (!options.partial_out.empty() || options.processes > 1) {
    throw std::invalid_argument(
        "plan only prints the sweep plan; --partial-out/--processes "
        "belong on the executing invocation");
  }
  const SweepPlan plan = build_sweep_plan(spec, PolicyRegistry::global(),
                                          parse_shard_spec(options.shard));
  write_plan_json(std::cout, plan);
  return 0;
}

namespace {

// Prefers one organization's jobs unconditionally; used to realize the
// short-jobs-first / long-jobs-first extremes of the Figure 7 example.
class PriorityPolicy final : public Policy {
 public:
  explicit PriorityPolicy(OrgId preferred) : preferred_(preferred) {}
  OrgId select(const PolicyView& view) override {
    if (view.waiting(preferred_) > 0) return preferred_;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) > 0) return u;
    }
    throw std::logic_error("no waiting job");
  }

 private:
  OrgId preferred_;
};

// m short jobs (size p) for O1, m/2 long jobs (size 2p) for O2, m machines,
// all released at 0; horizon 2p. Short-first wastes m/2 machines over the
// second half: utilization (m*p + (m/2)*p) / (m*2p) = 3/4.
Instance adversarial(std::uint32_t m, Time p) {
  InstanceBuilder b;
  const OrgId o1 = b.add_org("short", m / 2);
  const OrgId o2 = b.add_org("long", m - m / 2);
  for (std::uint32_t i = 0; i < m; ++i) b.add_job(o1, 0, p);
  for (std::uint32_t i = 0; i < m / 2; ++i) b.add_job(o2, 0, 2 * p);
  return std::move(b).build();
}

double run_priority(const Instance& inst, OrgId pref, Time horizon) {
  Engine e(inst);
  PriorityPolicy policy(pref);
  e.run(policy, horizon);
  return resource_utilization(inst, e.schedule(), horizon);
}

}  // namespace

int run_utilization_scenario(const ScenarioOptions& options) {
  // Built first so option validation (e.g. the --axes rejection) fails
  // before any output.
  const SweepSpec spec = make_utilization_sweep(options);
  std::FILE* human = human_file(options);
  // --- Part 1: Figure 7 ----------------------------------------------------
  std::fprintf(human, "Figure 7: greedy resource utilization example (T = 6)\n");
  {
    const Instance inst = adversarial(4, 3);
    const double good = run_priority(inst, 1, 6);
    const double bad = run_priority(inst, 0, 6);
    std::fprintf(human, "  long-jobs-first greedy : %.0f%% utilization\n",
                 good * 100.0);
    std::fprintf(human, "  short-jobs-first greedy: %.0f%% utilization\n",
                 bad * 100.0);
    std::fprintf(human, "  ratio: %.4f (paper: 0.75 exactly)\n\n", bad / good);
  }

  // --- Part 2: adversarial family ------------------------------------------
  std::fprintf(human, "Adversarial family (Thm 6.2 tightness): ratio vs m\n");
  AsciiTable family({"machines", "p", "short-first", "long-first", "ratio"});
  for (std::uint32_t m : {4u, 8u, 16u, 64u, 256u}) {
    for (Time p : {3, 10, 100}) {
      const Instance inst = adversarial(m, p);
      const double good = run_priority(inst, 1, 2 * p);
      const double bad = run_priority(inst, 0, 2 * p);
      family.add_row({std::to_string(m), std::to_string(p),
                      AsciiTable::format_double(bad, 4),
                      AsciiTable::format_double(good, 4),
                      AsciiTable::format_double(bad / good, 4)});
    }
  }
  std::fputs(family.to_string().c_str(), human);

  // --- Part 3: random instances through the sweep driver --------------------
  std::fprintf(human, "\n%s\n", spec.title.c_str());

  // The per-run utilizations and seeds are consumed from the streaming
  // sink (the driver retains only cell aggregates); O(instances) here is
  // this scenario's own working set, not the driver's.
  std::vector<std::vector<double>> utils(
      spec.instances, std::vector<double>(spec.policies.size(), 0.0));
  std::vector<std::uint64_t> seeds(spec.instances, 0);
  StreamRecords stream;
  if (const int rc = open_stream_records(spec, options, stream)) return rc;
  SweepDriver::RecordSink sink = [&](const RunRecord& record) {
    utils[record.instance][record.policy] = record.utilization;
    seeds[record.instance] = record.seed;
    if (stream.csv) stream.csv->write(record);
  };

  SweepDriver driver;
  const SweepResult result = driver.run(spec, nullptr, sink);

  double worst = 1.0;
  std::size_t below = 0;
  for (std::size_t i = 0; i < spec.instances; ++i) {
    double lo = 1.0, hi = 0.0;
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const double util = utils[i][p];
      lo = std::min(lo, util);
      hi = std::max(hi, util);
    }
    // The registry policies are comparatively tame; the priority extremes
    // (one per organization, regenerated from the run's recorded seed) are
    // the greedy schedules that approach the 3/4 bound.
    const std::uint64_t seed = seeds[i];
    const Instance inst =
        make_workload_instance(spec.workloads[0], spec.horizon, seed);
    for (OrgId pref = 0; pref < inst.num_orgs(); ++pref) {
      const double util = run_priority(inst, pref, spec.horizon);
      lo = std::min(lo, util);
      hi = std::max(hi, util);
    }
    if (hi > 0.0) {
      const double ratio = lo / hi;
      worst = std::min(worst, ratio);
      if (ratio < 0.75) ++below;
    }
    // Re-probe the same instance at a randomized horizon (20-79, as the
    // pre-harness bench did): a violation that only shows when the horizon
    // truncates mid-job would be invisible at the sweep's fixed horizon.
    Rng rng(mix_seed(seed, 0x6b2));
    const Time horizon = 20 + static_cast<Time>(rng.uniform_u64(60));
    lo = 1.0;
    hi = 0.0;
    for (OrgId pref = 0; pref < inst.num_orgs(); ++pref) {
      const double util = run_priority(inst, pref, horizon);
      lo = std::min(lo, util);
      hi = std::max(hi, util);
    }
    for (const char* alg : {"fcfs", "roundrobin", "fairshare"}) {
      const RunResult r =
          PolicyRegistry::global().run(inst, alg, horizon, seed);
      const double util = resource_utilization(inst, r.schedule, horizon);
      lo = std::min(lo, util);
      hi = std::max(hi, util);
    }
    if (hi > 0.0) {
      const double ratio = lo / hi;
      worst = std::min(worst, ratio);
      if (ratio < 0.75) ++below;
    }
  }
  std::fprintf(human,
               "  worst pairwise greedy ratio: %.4f  (violations of 0.75: "
               "%zu; Thm 6.2 guarantees >= 0.75)\n",
               worst, below);
  print_cache_stats(result, human);

  const int json_rc = emit_json_baseline(spec, result, options);
  if (below > 0) return 1;
  return json_rc;
}

int run_rand_convergence_scenario(const ScenarioOptions& options) {
  const SweepSpec spec = make_rand_convergence_sweep(options);
  std::FILE* human = human_file(options);
  std::fprintf(human, "%s\n\n", spec.title.c_str());

  StreamRecords stream;
  if (const int rc = open_stream_records(spec, options, stream)) return rc;
  SweepDriver::RecordSink sink;
  if (stream.csv) {
    sink = [&stream](const RunRecord& record) { stream.csv->write(record); };
  }

  SweepDriver driver;
  const SweepResult result = driver.run(spec, nullptr, sink);

  AsciiTable table({"N (samples)", "rel. distance avg", "rel. distance max"});
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    const StatsAccumulator& acc = result.cell(spec, 0, 0, p).rel_distance;
    table.add_row({spec.policies[p].substr(4),
                   AsciiTable::format_double(acc.mean(), 5),
                   AsciiTable::format_double(acc.max(), 5)});
  }
  std::fputs(table.to_string().c_str(), human);

  std::fprintf(human,
               "\nHoeffding sample bounds N = ceil(k^2/eps^2 ln(k/(1-l))):\n");
  AsciiTable bounds({"k", "eps", "lambda", "N"});
  for (std::uint32_t kk : {3u, 5u, 10u}) {
    for (double eps : {0.5, 0.1}) {
      for (double lambda : {0.9, 0.99}) {
        bounds.add_row(
            {std::to_string(kk), AsciiTable::format_double(eps, 2),
             AsciiTable::format_double(lambda, 2),
             std::to_string(rand_theorem_samples(kk, eps, lambda))});
      }
    }
  }
  std::fputs(bounds.to_string().c_str(), human);
  print_cache_stats(result, human);
  std::fprintf(human, "\n%s\n", spec.note.c_str());

  return emit_json_baseline(spec, result, options);
}

}  // namespace fairsched::exp
