// fairsched_exp — unified experiment harness CLI.
//
// One binary drives every sweep of the paper's evaluation:
//
//   fairsched_exp table1            Table 1 (duration 5*10^4)
//   fairsched_exp table2            Table 2 (duration 5*10^5)
//   fairsched_exp utilization       Figure 7 + Thm 6.2 utilization probe
//   fairsched_exp rand-convergence  Thm 5.6 FPRAS convergence
//   fairsched_exp fig10             Figure 10: unfairness vs #organizations
//   fairsched_exp horizon-growth    unfairness vs horizon (Table 1 -> 2)
//   fairsched_exp fairshare-decay   fair-share half-life ablation
//   fairsched_exp strategy          Thm 4.1 manipulation sweep: one org
//                                   plays a deviation grid (src/strategy)
//                                   against every policy; reports per-
//                                   policy manipulation gain and best
//                                   responses. --deviations=split:2,...
//                                   --deviator-orgs=0,1 --check-thm41
//                                   --thm41-tolerance=PCT
//   fairsched_exp strategyproof     Section 4 ablation table: psi_sp vs
//                                   mean-flow change under split/merge/
//                                   delay (FCFS, fixed background org)
//   fairsched_exp ref-scaling       REF wall time vs orgs / window length
//   fairsched_exp custom            free-form sweep (--policies/--workload/
//                                   --axes, or --config=FILE)
//   fairsched_exp plan              print the sweep plan (same flags as
//                                   custom) without executing anything
//   fairsched_exp merge A B ...     fold shard --partial-out artifacts
//   fairsched_exp dispatch          run a sweep's shards on worker hosts
//                                   (src/dist, docs/DISTRIBUTED.md):
//                                   --sweep=NAME --workers=local*4,ssh:h1
//                                   --hosts=FILE --ssh-cmd=CMD --shards=N
//                                   --timeout-ms=T --retries=R
//                                   --artifact-dir=DIR --resume --dry-run
//   fairsched_exp shard-worker      protocol peer of dispatch: reads one
//                                   dispatch request on stdin, writes the
//                                   shard artifact frame on stdout;
//                                   --session serves many requests over
//                                   one connection (protocol v2), keeping
//                                   its workload cache warm across shards
//   fairsched_exp serve             online scheduler session over an event
//                                   stream (src/serve): --source=
//                                   synthetic|stdin|FILE, --policy=NAME,
//                                   --stats-interval=N (stderr stats),
//                                   --decisions=FILE|-, --record-trace=F,
//                                   --serve-events=N --arrival-rate=X
//                                   --machines-per-org=N; --duration is
//                                   the horizon (0 = drain), --smoke the
//                                   CI/bench config (BENCH_serve.json)
//   fairsched_exp replay            batch replay of a trace: same flags;
//                                   its decision stream must byte-match
//                                   serve's for any deterministic policy
//   fairsched_exp list-policies     registered PolicyRegistry names
//                                   (--json: machine-readable catalog with
//                                   declared parameters/ranges/defaults)
//   fairsched_exp list-workloads    workload kinds `custom` accepts
//   fairsched_exp list-axes         sweep axes with scopes and ranges
//                                   (--config=FILE includes its [policy]
//                                   blocks' parameter axes)
//
// Common flags (also settable as FAIRSCHED_* env vars, see util/cli.h):
//   --instances=N --duration=T --orgs=K --seed=S --scale=X --threads=N
//   --split=zipf|uniform --zipf-s=S --csv=FILE|- --json=FILE|-
//   --stream-records=FILE|-   stream one CSV row per run (O(cells) memory)
//   --axes="name=v1,v2;..."   override a scenario's sweep axes
//   --smoke   tiny instance counts for CI; emits BENCH_<sweep>.json
//   --cache-mb=N --no-cache   workload/baseline cache budget (default 256
//                             MB); output is bit-identical either way
//   --cache-dir=DIR  disk cache tier shared across processes/invocations
//
// Sharded execution (docs/ARCHITECTURE.md, docs/EXPERIMENTS.md):
//   --shard=i/N       execute only shard i of the plan's N-way partition
//   --partial-out=F   write the shard's result artifact for `merge`
//   --processes=N     fork N shard workers and merge them in-process;
//                     output is byte-identical to a single-process run
//
// `custom` extras: --policies=a,b,c (registry names, e.g.
// "fcfs,rand75,decayfairshare2000"), --workload=<kind> (see
// list-workloads), --config=FILE (declarative sweep config; file keys win
// over flags — see docs/EXPERIMENTS.md). `fig10`/`ref-scaling` extras:
// --min-orgs, --max-orgs.

#include <unistd.h>

#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "exp/policy_registry.h"
#include "exp/scenarios.h"
#include "exp/sweep_config.h"
#include "util/cli.h"

namespace {

int usage(const char* argv0) {
  std::string workloads;
  for (const fairsched::exp::WorkloadInfo& info :
       fairsched::exp::workload_catalog()) {
    if (!workloads.empty()) workloads += "|";
    workloads += info.name;
  }
  std::fprintf(
      stderr,
      "usage: %s <table1|table2|utilization|rand-convergence|fig10|"
      "horizon-growth|fairshare-decay|strategy|strategyproof|ref-scaling|"
      "custom|plan|merge|dispatch|shard-worker|serve|replay|list-policies|"
      "list-workloads|list-axes> [flags]\n"
      "common flags: --instances=N --duration=T --orgs=K --seed=S "
      "--scale=X --threads=N --split=zipf|uniform --zipf-s=S --csv=FILE|- "
      "--json=FILE|- --stream-records=FILE|- --axes=\"name=v1,v2;...\" "
      "--smoke --cache-mb=N --no-cache --cache-dir=DIR\n"
      "sharding flags: --shard=i/N --partial-out=FILE --processes=N "
      "(merge folds --partial-out artifacts; see docs/EXPERIMENTS.md)\n"
      "dispatch flags: --sweep=NAME --workers=local*N,ssh:HOST,... "
      "--hosts=FILE --ssh-cmd=CMD --remote-program=PATH --shards=N "
      "--worker-threads=N --timeout-ms=T --retries=R --backoff-ms=B "
      "--backoff-cap-ms=C --artifact-dir=DIR --dispatch-log=FILE "
      "--resume --dry-run --persistent-workers --speculate "
      "--speculate-factor=X --dispatch-bench --bench-repeats=N "
      "(see docs/DISTRIBUTED.md)\n"
      "custom/plan flags: --policies=a,b,c --workload=%s --config=FILE\n"
      "fig10/ref-scaling flags: --min-orgs=K --max-orgs=K\n"
      "strategy flags: --deviations=split:2,merge:2,... "
      "--deviator-orgs=0,1 --check-thm41 --thm41-tolerance=PCT "
      "(see docs/EXPERIMENTS.md)\n"
      "serve/replay flags: --source=synthetic|stdin|FILE --policy=NAME "
      "--decisions=FILE|- --record-trace=FILE --stats-interval=N "
      "--serve-events=N --arrival-rate=X --machines-per-org=N\n"
      "axes: see `list-axes`; values are numbers and lo:hi[:step] ranges\n",
      argv0, workloads.c_str());
  return 2;
}

// The path workers re-exec: /proc/self/exe where available (immune to
// PATH and cwd changes), the original argv[0] otherwise.
std::string self_program(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    usage(argv[0]);
    return 0;
  }

  try {
    const Flags flags(argc - 1, argv + 1);
    ScenarioOptions options = scenario_options_from_flags(flags);
    options.program = self_program(argv[0]);
    options.raw_args.assign(argv + 1, argv + argc);

    if (command == "table1" || command == "table2") {
      return run_sweep_scenario(make_table_sweep(command, options), options);
    }
    if (command == "utilization") {
      return run_utilization_scenario(options);
    }
    if (command == "rand-convergence") {
      return run_rand_convergence_scenario(options);
    }
    if (command == "fig10") {
      return run_sweep_scenario(make_fig10_sweep(options), options);
    }
    if (command == "horizon-growth") {
      return run_sweep_scenario(make_horizon_growth_sweep(options), options);
    }
    if (command == "fairshare-decay") {
      return run_sweep_scenario(make_fairshare_decay_sweep(options), options);
    }
    if (command == "strategy") {
      return run_sweep_scenario(make_strategy_sweep(options), options);
    }
    if (command == "strategyproof") {
      return run_strategyproof_scenario(options);
    }
    if (command == "ref-scaling") {
      return run_ref_scaling_scenario(options);
    }
    if (command == "custom" || command == "plan") {
      const SweepSpec spec =
          options.config_path.empty()
              ? make_custom_sweep(options)
              : load_sweep_config_file(options.config_path, options);
      return command == "plan" ? run_plan_scenario(spec, options)
                               : run_sweep_scenario(spec, options);
    }
    if (command == "merge") {
      return run_merge_scenario(flags.positional(), options);
    }
    if (command == "dispatch") {
      return run_dispatch_scenario(options);
    }
    if (command == "shard-worker") {
      return run_shard_worker_scenario(flags.get_bool("session", false));
    }
    if (command == "serve") {
      return run_serve_scenario(options);
    }
    if (command == "replay") {
      return run_replay_scenario(options);
    }
    if (command == "list-policies") {
      // --json: the machine-readable catalog (names, descriptions, and
      // every declared parameter with type/range/default and its sweep
      // axis). CI diffs this against a committed golden file.
      if (flags.get_bool("json", false)) {
        std::ostringstream out;
        PolicyRegistry::global().write_catalog_json(out);
        std::fputs(out.str().c_str(), stdout);
        return 0;
      }
      for (const auto& [name, description] :
           PolicyRegistry::global().catalog()) {
        std::printf("%-20s %s\n", name.c_str(), description.c_str());
      }
      return 0;
    }
    if (command == "list-workloads") {
      for (const WorkloadInfo& info : workload_catalog()) {
        std::printf("%-14s %s\n", info.name.c_str(),
                    info.description.c_str());
      }
      return 0;
    }
    if (command == "list-axes") {
      // --config loads its [policy NAME] blocks first, so config-defined
      // parameter axes appear in the listing too.
      if (!options.config_path.empty()) {
        load_sweep_config_file(options.config_path, options);
      }
      std::printf("%-14s %-9s %-22s %s\n", "axis", "scope", "typical range",
                  "binds");
      for (const AxisInfo& info : axis_catalog()) {
        std::string name = info.name;
        if (!info.aliases.empty()) name += " (" + info.aliases + ")";
        std::printf("%-14s %-9s %-22s %s\n", name.c_str(),
                    axis_scope_name(info.scope), info.values_hint.c_str(),
                    info.description.c_str());
      }
      return 0;
    }
    std::fprintf(stderr, "unknown subcommand: %s\n", command.c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
