// fairsched_exp — unified experiment harness CLI.
//
// One binary drives every sweep of the paper's evaluation:
//
//   fairsched_exp table1            Table 1 (duration 5*10^4)
//   fairsched_exp table2            Table 2 (duration 5*10^5)
//   fairsched_exp utilization       Figure 7 + Thm 6.2 utilization probe
//   fairsched_exp rand-convergence  Thm 5.6 FPRAS convergence
//   fairsched_exp fig10             Figure 10: unfairness vs #organizations
//   fairsched_exp horizon-growth    unfairness vs horizon (Table 1 -> 2)
//   fairsched_exp fairshare-decay   fair-share half-life ablation
//   fairsched_exp custom            free-form sweep (--policies/--workload/
//                                   --axes, or --config=FILE)
//   fairsched_exp list-policies     registered PolicyRegistry names
//   fairsched_exp list-workloads    workload kinds `custom` accepts
//
// Common flags (also settable as FAIRSCHED_* env vars, see util/cli.h):
//   --instances=N --duration=T --orgs=K --seed=S --scale=X --threads=N
//   --split=zipf|uniform --zipf-s=S --csv=FILE|- --json=FILE|-
//   --stream-records=FILE|-   stream one CSV row per run (O(cells) memory)
//   --axes="name=v1,v2;..."   override a scenario's sweep axes
//   --smoke   tiny instance counts for CI; emits BENCH_<sweep>.json
//   --cache-mb=N --no-cache   workload/baseline cache budget (default 256
//                             MB); output is bit-identical either way
//
// `custom` extras: --policies=a,b,c (registry names, e.g.
// "fcfs,rand75,decayfairshare2000"), --workload=<kind> (see
// list-workloads), --config=FILE (declarative sweep config; file keys win
// over flags — see docs/EXPERIMENTS.md). `fig10` extras: --min-orgs,
// --max-orgs.

#include <cstdio>
#include <exception>
#include <string>

#include "exp/policy_registry.h"
#include "exp/scenarios.h"
#include "exp/sweep_config.h"
#include "util/cli.h"

namespace {

int usage(const char* argv0) {
  std::string workloads;
  for (const fairsched::exp::WorkloadInfo& info :
       fairsched::exp::workload_catalog()) {
    if (!workloads.empty()) workloads += "|";
    workloads += info.name;
  }
  std::fprintf(
      stderr,
      "usage: %s <table1|table2|utilization|rand-convergence|fig10|"
      "horizon-growth|fairshare-decay|custom|list-policies|list-workloads> "
      "[flags]\n"
      "common flags: --instances=N --duration=T --orgs=K --seed=S "
      "--scale=X --threads=N --split=zipf|uniform --zipf-s=S --csv=FILE|- "
      "--json=FILE|- --stream-records=FILE|- --axes=\"name=v1,v2;...\" "
      "--smoke --cache-mb=N --no-cache\n"
      "custom flags: --policies=a,b,c --workload=%s --config=FILE\n"
      "fig10 flags: --min-orgs=K --max-orgs=K\n"
      "axes: orgs, horizon, half-life, zipf-s, split, jobs-per-org, "
      "random-jobs; values are numbers and lo:hi[:step] ranges\n",
      argv0, workloads.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    usage(argv[0]);
    return 0;
  }

  try {
    const Flags flags(argc - 1, argv + 1);
    const ScenarioOptions options = scenario_options_from_flags(flags);

    if (command == "table1" || command == "table2") {
      return run_sweep_scenario(make_table_sweep(command, options), options);
    }
    if (command == "utilization") {
      return run_utilization_scenario(options);
    }
    if (command == "rand-convergence") {
      return run_rand_convergence_scenario(options);
    }
    if (command == "fig10") {
      return run_sweep_scenario(make_fig10_sweep(options), options);
    }
    if (command == "horizon-growth") {
      return run_sweep_scenario(make_horizon_growth_sweep(options), options);
    }
    if (command == "fairshare-decay") {
      return run_sweep_scenario(make_fairshare_decay_sweep(options), options);
    }
    if (command == "custom") {
      const SweepSpec spec =
          options.config_path.empty()
              ? make_custom_sweep(options)
              : load_sweep_config_file(options.config_path, options);
      return run_sweep_scenario(spec, options);
    }
    if (command == "list-policies") {
      for (const auto& [name, description] :
           PolicyRegistry::global().catalog()) {
        std::printf("%-20s %s\n", name.c_str(), description.c_str());
      }
      return 0;
    }
    if (command == "list-workloads") {
      for (const WorkloadInfo& info : workload_catalog()) {
        std::printf("%-14s %s\n", info.name.c_str(),
                    info.description.c_str());
      }
      return 0;
    }
    std::fprintf(stderr, "unknown subcommand: %s\n", command.c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
