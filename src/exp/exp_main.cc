// fairsched_exp — unified experiment harness CLI.
//
// One binary drives every sweep of the paper's evaluation:
//
//   fairsched_exp table1            Table 1 (duration 5*10^4)
//   fairsched_exp table2            Table 2 (duration 5*10^5)
//   fairsched_exp utilization       Figure 7 + Thm 6.2 utilization probe
//   fairsched_exp rand-convergence  Thm 5.6 FPRAS convergence
//   fairsched_exp custom            free-form --policies x --workload sweep
//   fairsched_exp list-policies     registered PolicyRegistry names
//
// Common flags (also settable as FAIRSCHED_* env vars, see util/cli.h):
//   --instances=N --duration=T --orgs=K --seed=S --scale=X --threads=N
//   --split=zipf|uniform --zipf-s=S --csv=FILE|- --json=FILE|- --per-run
//   --smoke   tiny instance counts for CI; emits BENCH_<sweep>.json
//
// `custom` extras: --policies=a,b,c (registry names, e.g.
// "fcfs,rand75,decayfairshare2000") and
// --workload=all|lpc|pik|ricc|whale|unit|smallrandom.

#include <cstdio>
#include <exception>
#include <string>

#include "exp/policy_registry.h"
#include "exp/scenarios.h"
#include "util/cli.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <table1|table2|utilization|rand-convergence|custom|"
      "list-policies> [flags]\n"
      "common flags: --instances=N --duration=T --orgs=K --seed=S "
      "--scale=X --threads=N --split=zipf|uniform --csv=FILE|- "
      "--json=FILE|- --per-run --smoke\n"
      "custom flags: --policies=a,b,c --workload="
      "all|lpc|pik|ricc|whale|unit|smallrandom\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    usage(argv[0]);
    return 0;
  }

  try {
    const Flags flags(argc - 1, argv + 1);
    const ScenarioOptions options = scenario_options_from_flags(flags);

    if (command == "table1" || command == "table2") {
      return run_sweep_scenario(make_table_sweep(command, options), options);
    }
    if (command == "utilization") {
      return run_utilization_scenario(options);
    }
    if (command == "rand-convergence") {
      return run_rand_convergence_scenario(options);
    }
    if (command == "custom") {
      return run_sweep_scenario(make_custom_sweep(options), options);
    }
    if (command == "list-policies") {
      for (const std::string& name : PolicyRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    std::fprintf(stderr, "unknown subcommand: %s\n", command.c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
