#pragma once

// Declarative sweep configs: build a SweepSpec from a text file (or a CLI
// axis string) so new scenarios need no recompile. The format is one
// `key = value` per line with `#` comments; `axis <name> = <values>` lines
// add sweep axes, where <values> is a comma list of numbers and/or
// inclusive `lo:hi[:step]` ranges ("2:7" expands to 2,3,...,7).
//
// `[policy NAME]` sections define whole new named policies — a base entry
// with overridden parameter defaults, a `switch = A, B` + `switch-at = T`
// composition, or a `mix = A:w, B:w` weighted random mixture — and
// register them on the global PolicyRegistry as the file is parsed, so
// NAME is usable anywhere a built-in policy name is (the `policies` list,
// --policies, the baseline, later [policy] blocks) with its declared
// parameters sweepable as axes. See docs/EXPERIMENTS.md for the full
// reference and worked examples.

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/scenarios.h"
#include "exp/sweep.h"

namespace fairsched::exp {

// Parses a "name=v1,v2;other=lo:hi:step" axis list (';' between axes), the
// value of the --axes flag. Axis names resolve through make_axis; a kSplit
// axis also accepts the labels zipf/uniform. Throws std::invalid_argument
// on malformed input. An empty string yields no axes.
std::vector<SweepAxis> parse_axes_spec(const std::string& text);

// Parses a sweep-config stream. Scalar keys (policies, workload, instances,
// duration, orgs, seed, scale, split, zipf-s, threads, cache-mb, cache
// (on|off), jobs-per-org, name, title, note, baseline) and axis lines set
// in the file win over the command-line `defaults`; everything else falls
// back to them. `[policy NAME]` sections are registered on `registry` in
// file order (so later blocks may build on earlier ones); re-parsing the
// same file is idempotent, but built-in names cannot be redefined.
// `source` names the stream in "<source>:<line>: ..." parse errors
// (std::invalid_argument).
SweepSpec parse_sweep_config(std::istream& in, const std::string& source,
                             const ScenarioOptions& defaults,
                             PolicyRegistry& registry =
                                 PolicyRegistry::global());

// Opens `path` and parses it; throws std::invalid_argument when the file
// cannot be read.
SweepSpec load_sweep_config_file(const std::string& path,
                                 const ScenarioOptions& defaults);

}  // namespace fairsched::exp
