#include "exp/sweep_artifact.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.h"

namespace fairsched::exp {

namespace {

constexpr const char* kArtifactFormat = "fairsched-shard-partial";

std::string exact(double v) { return json_exact_double(v); }

void write_accumulator(std::ostream& out, const StatsAccumulator& acc) {
  const StatsAccumulator::State s = acc.state();
  out << '[' << s.count << ", " << exact(s.mean) << ", " << exact(s.m2)
      << ", " << exact(s.min) << ", " << exact(s.max) << ", "
      << exact(s.sum) << ']';
}

StatsAccumulator read_accumulator(const JsonValue& json) {
  const std::vector<JsonValue>& parts = json.items();
  if (parts.size() != 6) {
    throw std::invalid_argument("accumulator state needs 6 fields, got " +
                                std::to_string(parts.size()));
  }
  StatsAccumulator::State s;
  s.count = static_cast<std::size_t>(parts[0].as_uint());
  s.mean = parts[1].as_double();
  s.m2 = parts[2].as_double();
  s.min = parts[3].as_double();
  s.max = parts[4].as_double();
  s.sum = parts[5].as_double();
  return StatsAccumulator::from_state(s);
}

void write_cache_stats(std::ostream& out, const CacheStats& cache,
                       bool enabled) {
  out << "{\"enabled\": " << (enabled ? "true" : "false")
      << ", \"hits\": " << cache.hits << ", \"misses\": " << cache.misses
      << ", \"evictions\": " << cache.evictions
      << ", \"bytes_in_use\": " << cache.bytes_in_use
      << ", \"peak_bytes\": " << cache.peak_bytes
      << ", \"disk_hits\": " << cache.disk_hits
      << ", \"disk_misses\": " << cache.disk_misses
      << ", \"disk_writes\": " << cache.disk_writes << "}";
}

CacheStats read_cache_stats(const JsonValue& json) {
  CacheStats cache;
  cache.hits = json.at("hits").as_uint();
  cache.misses = json.at("misses").as_uint();
  cache.evictions = json.at("evictions").as_uint();
  cache.bytes_in_use =
      static_cast<std::size_t>(json.at("bytes_in_use").as_uint());
  cache.peak_bytes =
      static_cast<std::size_t>(json.at("peak_bytes").as_uint());
  cache.disk_hits = json.at("disk_hits").as_uint();
  cache.disk_misses = json.at("disk_misses").as_uint();
  cache.disk_writes = json.at("disk_writes").as_uint();
  return cache;
}

}  // namespace

void write_shard_artifact(std::ostream& out, const SweepPlan& plan,
                          const SweepResult& result) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(plan.fingerprint));
  out << "{\n";
  out << "  \"format\": \"" << kArtifactFormat << "\",\n";
  out << "  \"version\": " << kShardArtifactVersion << ",\n";
  out << "  \"fingerprint\": \"" << fp << "\",\n";
  out << "  \"shard\": {\"index\": " << plan.shard.index
      << ", \"count\": " << plan.shard.count << "},\n";
  out << "  \"spec\": ";
  write_spec_summary_json(out, plan.spec, "  ");
  out << ",\n";
  out << "  \"axis_points\": " << plan.num_points << ",\n";
  out << "  \"prefix_groups\": " << plan.num_groups << ",\n";
  out << "  \"replayed_runs\": " << result.replayed_runs << ",\n";
  out << "  \"cache\": ";
  write_cache_stats(out, result.cache, result.cache_enabled);
  out << ",\n";
  out << "  \"baseline_wall_ms\": " << exact(result.baseline_wall_ms)
      << ",\n";
  out << "  \"total_wall_ms\": " << exact(result.total_wall_ms) << ",\n";
  out << "  \"elapsed_ms\": " << exact(result.elapsed_ms) << ",\n";
  out << "  \"cells\": [\n";
  bool first = true;
  for (std::size_t cell = 0; cell < result.cells.size(); ++cell) {
    if (!plan.owns_cell(cell)) continue;
    const SweepCell& data = result.cells[cell];
    if (!first) out << ",\n";
    first = false;
    out << "    {\"cell\": " << cell << ", \"work_done\": "
        << data.work_done << ", \"wall_ms\": " << exact(data.wall_ms)
        << ", \"unfairness\": ";
    write_accumulator(out, data.unfairness);
    out << ", \"rel_distance\": ";
    write_accumulator(out, data.rel_distance);
    out << ", \"utilization\": ";
    write_accumulator(out, data.utilization);
    // Presence-gated on the spec: only strategy sweeps carry the
    // manipulation-grading accumulators, so non-strategy artifacts stay
    // byte-identical across the subsystem's introduction (version stays 1).
    if (plan.spec.is_strategy()) {
      out << ", \"deviator_utility\": ";
      write_accumulator(out, data.deviator_utility);
      out << ", \"deviator_flow\": ";
      write_accumulator(out, data.deviator_flow);
      out << ", \"honest_utility\": ";
      write_accumulator(out, data.honest_utility);
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

ShardArtifact parse_shard_artifact(const std::string& text,
                                   const std::string& source) {
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("shard artifact " + source + ": " + why);
  };
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  try {
    ShardArtifact artifact;
    if (doc.at("format").as_string() != kArtifactFormat) {
      fail("not a shard partial artifact (format '" +
           doc.at("format").as_string() + "')");
    }
    const std::int64_t version = doc.at("version").as_int();
    if (version != kShardArtifactVersion) {
      fail("unsupported version " + std::to_string(version) + " (this "
           "binary reads version " +
           std::to_string(kShardArtifactVersion) + ")");
    }
    const std::string& fp = doc.at("fingerprint").as_string();
    artifact.fingerprint = std::stoull(fp, nullptr, 16);
    artifact.shard.index =
        static_cast<std::size_t>(doc.at("shard").at("index").as_uint());
    artifact.shard.count =
        static_cast<std::size_t>(doc.at("shard").at("count").as_uint());
    if (artifact.shard.count == 0 ||
        artifact.shard.index >= artifact.shard.count) {
      fail("invalid shard " + std::to_string(artifact.shard.index) + "/" +
           std::to_string(artifact.shard.count));
    }
    artifact.spec = spec_from_summary_json(doc.at("spec"));

    SweepResult& result = artifact.result;
    result.axis_points =
        static_cast<std::size_t>(doc.at("axis_points").as_uint());
    if (result.axis_points != num_axis_points(artifact.spec)) {
      fail("axis_points disagrees with the embedded spec");
    }
    result.prefix_groups =
        static_cast<std::size_t>(doc.at("prefix_groups").as_uint());
    result.replayed_runs = doc.at("replayed_runs").as_uint();
    result.cache_enabled = doc.at("cache").at("enabled").as_bool();
    result.cache = read_cache_stats(doc.at("cache"));
    result.baseline_wall_ms = doc.at("baseline_wall_ms").as_double();
    result.total_wall_ms = doc.at("total_wall_ms").as_double();
    result.elapsed_ms = doc.at("elapsed_ms").as_double();

    const std::size_t num_cells = result.axis_points *
                                  artifact.spec.workloads.size() *
                                  artifact.spec.policies.size();
    result.cells.assign(num_cells, SweepCell{});
    for (const JsonValue& cell_json : doc.at("cells").items()) {
      const std::size_t cell =
          static_cast<std::size_t>(cell_json.at("cell").as_uint());
      if (cell >= num_cells) {
        fail("cell index " + std::to_string(cell) + " out of range (" +
             std::to_string(num_cells) + " cells)");
      }
      SweepCell& data = result.cells[cell];
      data.work_done = cell_json.at("work_done").as_int();
      data.wall_ms = cell_json.at("wall_ms").as_double();
      data.unfairness = read_accumulator(cell_json.at("unfairness"));
      data.rel_distance = read_accumulator(cell_json.at("rel_distance"));
      data.utilization = read_accumulator(cell_json.at("utilization"));
      if (artifact.spec.is_strategy()) {
        data.deviator_utility =
            read_accumulator(cell_json.at("deviator_utility"));
        data.deviator_flow = read_accumulator(cell_json.at("deviator_flow"));
        data.honest_utility =
            read_accumulator(cell_json.at("honest_utility"));
      }
      artifact.owned_cells.push_back(cell);
    }
    std::sort(artifact.owned_cells.begin(), artifact.owned_cells.end());
    for (std::size_t i = 1; i < artifact.owned_cells.size(); ++i) {
      if (artifact.owned_cells[i] == artifact.owned_cells[i - 1]) {
        fail("duplicate cell index " +
             std::to_string(artifact.owned_cells[i]));
      }
    }
    return artifact;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("shard artifact ", 0) == 0) throw;
    fail(what);
  }
  throw std::logic_error("unreachable");  // fail() always throws
}

ShardArtifact load_shard_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot read shard artifact: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_shard_artifact(text.str(), path);
}

std::uint64_t artifact_determinism_digest(const ShardArtifact& artifact) {
  std::ostringstream canon;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(artifact.fingerprint));
  canon << fp << '|' << artifact.shard.index << '/' << artifact.shard.count;
  for (const std::size_t cell : artifact.owned_cells) {
    const SweepCell& data = artifact.result.cells[cell];
    canon << '|' << cell << ':' << data.work_done << ':';
    write_accumulator(canon, data.unfairness);
    write_accumulator(canon, data.rel_distance);
    write_accumulator(canon, data.utilization);
    if (artifact.spec.is_strategy()) {
      write_accumulator(canon, data.deviator_utility);
      write_accumulator(canon, data.deviator_flow);
      write_accumulator(canon, data.honest_utility);
    }
  }
  const std::string text = canon.str();
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

MergedSweep merge_shard_artifacts(std::vector<ShardArtifact> shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge: no shard artifacts given");
  }
  std::sort(shards.begin(), shards.end(),
            [](const ShardArtifact& a, const ShardArtifact& b) {
              return a.shard.index < b.shard.index;
            });
  const ShardArtifact& first = shards.front();
  if (first.shard.count != shards.size()) {
    throw std::invalid_argument(
        "merge: got " + std::to_string(shards.size()) +
        " artifacts for a " + std::to_string(first.shard.count) +
        "-shard sweep");
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].fingerprint != first.fingerprint) {
      throw std::invalid_argument(
          "merge: shard artifacts come from different sweep plans "
          "(fingerprint mismatch)");
    }
    if (shards[s].shard.count != first.shard.count) {
      throw std::invalid_argument("merge: shard counts disagree");
    }
    if (shards[s].shard.index != s) {
      throw std::invalid_argument(
          "merge: duplicate or missing shard index " + std::to_string(s));
    }
    if (shards[s].result.prefix_groups != first.result.prefix_groups) {
      throw std::invalid_argument("merge: prefix group counts disagree");
    }
  }

  MergedSweep merged;
  merged.spec = first.spec;
  SweepResult& result = merged.result;
  result.axis_points = first.result.axis_points;
  result.prefix_groups = first.result.prefix_groups;
  result.cells.assign(first.result.cells.size(), SweepCell{});
  result.shards = shards.size();

  std::vector<char> covered(result.cells.size(), 0);
  for (const ShardArtifact& shard : shards) {
    for (std::size_t cell : shard.owned_cells) {
      if (covered[cell]) {
        throw std::invalid_argument(
            "merge: cell " + std::to_string(cell) +
            " appears in more than one shard artifact");
      }
      covered[cell] = 1;
      result.cells[cell] = shard.result.cells[cell];
    }
    result.baseline_wall_ms += shard.result.baseline_wall_ms;
    result.total_wall_ms += shard.result.total_wall_ms;
    result.elapsed_ms =
        std::max(result.elapsed_ms, shard.result.elapsed_ms);
    result.replayed_runs += shard.result.replayed_runs;
    result.cache_enabled |= shard.result.cache_enabled;
    result.cache.accumulate(shard.result.cache);
    result.per_shard_cache.push_back(shard.result.cache);
    result.per_shard_replayed.push_back(shard.result.replayed_runs);
  }
  for (std::size_t cell = 0; cell < covered.size(); ++cell) {
    if (!covered[cell]) {
      throw std::invalid_argument(
          "merge: cell " + std::to_string(cell) +
          " is covered by no shard artifact (incomplete set?)");
    }
  }
  return merged;
}

}  // namespace fairsched::exp
