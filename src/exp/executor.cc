#include "exp/executor.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "dist/dispatcher.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/sweep_artifact.h"
#include "exp/workload_cache.h"
#include "metrics/fairness.h"
#include "metrics/utility.h"
#include "strategy/game.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/swf.h"
#include "workload/synthetic.h"

namespace fairsched::exp {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// The policy-independent prefix of one (prefix group, workload, instance)
// cell family: the constructed instance, the baseline reference outcome,
// and the records of every policy run the whole group shares. Stored in
// the WorkloadCache; immutable once published.
struct SweepPrefix {
  Instance instance;
  std::vector<HalfUtil> baseline_utilities2;
  std::int64_t baseline_work_done = 0;
  double baseline_wall_ms = 0.0;  // reported once, by the computing task
  std::vector<RunRecord> shared_records;  // group-invariant policies, p order
};

std::size_t instance_bytes(const Instance& inst) {
  return sizeof(Instance) + inst.num_jobs() * sizeof(Job) +
         inst.total_machines() * sizeof(OrgId) +
         static_cast<std::size_t>(inst.num_orgs()) *
             (sizeof(Organization) + sizeof(std::vector<Job>) +
              sizeof(MachineId) + 32 /* name storage */);
}

std::size_t prefix_bytes(const SweepPrefix& prefix) {
  return sizeof(SweepPrefix) + instance_bytes(prefix.instance) +
         prefix.baseline_utilities2.size() * sizeof(HalfUtil) +
         prefix.shared_records.size() * sizeof(RunRecord);
}

// --- Disk tier payload codecs ----------------------------------------------
// Line-oriented exact text. The expensive results (baseline run, shared
// policy records) are persisted; the instance is NOT — it is rebuilt from
// the seed at decode time (cheap next to the exponential REF baseline),
// which keeps the payload small and the decode independent of Instance's
// in-memory layout.

std::string encode_window_payload(const SwfTrace& window) {
  std::ostringstream out;
  write_swf(out, window);
  return out.str();
}

SwfTrace decode_window_payload(const std::string& payload) {
  std::istringstream in(payload);
  return parse_swf(in);
}

std::string encode_prefix_payload(const SweepPrefix& prefix) {
  std::ostringstream out;
  out << "baseline " << prefix.baseline_utilities2.size() << ' '
      << prefix.baseline_work_done << '\n';
  for (std::size_t i = 0; i < prefix.baseline_utilities2.size(); ++i) {
    out << (i ? " " : "") << prefix.baseline_utilities2[i];
  }
  out << '\n';
  out << "records " << prefix.shared_records.size() << '\n';
  for (const RunRecord& r : prefix.shared_records) {
    out << json_exact_double(r.unfairness) << ' '
        << json_exact_double(r.rel_distance) << ' '
        << json_exact_double(r.utilization) << ' ' << r.work_done << '\n';
  }
  return out.str();
}

// Fills the baseline/record fields of `prefix` from a payload written by
// encode_prefix_payload. Throws on any shape mismatch (the cache then
// recomputes). Record indices are the decoder's to assign.
void decode_prefix_payload(const std::string& payload, SweepPrefix& prefix) {
  std::istringstream in(payload);
  std::string tag;
  std::size_t utilities = 0, records = 0;
  if (!(in >> tag >> utilities >> prefix.baseline_work_done) ||
      tag != "baseline") {
    throw std::invalid_argument("bad prefix payload: baseline header");
  }
  prefix.baseline_utilities2.resize(utilities);
  for (std::size_t i = 0; i < utilities; ++i) {
    if (!(in >> prefix.baseline_utilities2[i])) {
      throw std::invalid_argument("bad prefix payload: utilities");
    }
  }
  if (!(in >> tag >> records) || tag != "records") {
    throw std::invalid_argument("bad prefix payload: records header");
  }
  prefix.shared_records.resize(records);
  for (RunRecord& r : prefix.shared_records) {
    if (!(in >> r.unfairness >> r.rel_distance >> r.utilization >>
          r.work_done)) {
      throw std::invalid_argument("bad prefix payload: record row");
    }
  }
}

std::string window_content_key(const SyntheticSpec& s, Time horizon,
                               std::uint64_t seed) {
  // Window generation depends on the synthetic shape, horizon and seed
  // only — deliberately NOT on orgs/split/zipf-s, so consortium-reshaping
  // sweeps (e.g. Fig. 10's orgs axis) share one persisted window.
  return "window:" + synthetic_content_key(s) +
         ":horizon=" + std::to_string(horizon) +
         ":seed=" + std::to_string(seed);
}

std::string prefix_content_key(const SweepPlan& plan, std::size_t group,
                               const SweepWorkload& workload, Time horizon,
                               std::uint64_t seed) {
  // Everything the prefix value is a function of: the exact instance
  // identity (workload parameters + horizon + seed), the baseline spec,
  // and the ordered specs of the shared policy runs it embeds.
  std::string key =
      "prefix:" + workload_content_key(workload, horizon, seed) +
      ":base=" +
      (plan.has_baseline ? plan.registry->content_key(plan.baseline)
                         : std::string("none"));
  const std::size_t rep = plan.group_rep[group];
  key += ":shared=";
  for (std::size_t p = 0; p < plan.num_policies; ++p) {
    if (plan.shared_slot[group * plan.num_policies + p] == SweepPlan::kNoSlot)
      continue;
    key += plan.registry->content_key(
               plan.bound_algorithms[rep * plan.num_policies + p]) +
           ";";
  }
  return key;
}

}  // namespace

SweepResult ThreadPoolExecutor::execute(const SweepPlan& plan,
                                        Progress progress, RecordSink sink) {
  const SweepSpec& spec = plan.spec;
  const std::size_t num_workloads = plan.num_workloads;
  const std::size_t num_policies = plan.num_policies;
  const std::size_t num_local = plan.shard_tasks.size();

  const auto run_started = std::chrono::steady_clock::now();

  // Session workers pass a process-lifetime cache so prefixes stay warm
  // across requests; everyone else gets a per-run cache. With an external
  // cache the stats reported below are this call's delta, so artifacts
  // stay comparable whichever mode produced them.
  WorkloadCache local_cache(spec.cache_bytes, spec.cache_dir);
  WorkloadCache& cache = external_cache_ ? *external_cache_ : local_cache;
  const CacheStats cache_before = cache.stats();

  SweepResult result;
  result.axis_points = plan.num_points;
  result.cells.assign(plan.num_cells(), SweepCell{});
  result.cache_enabled = cache.enabled();
  result.prefix_groups = plan.num_groups;

  // Streaming ordered fold. Tasks complete in scheduling order, which is
  // thread-count dependent; a bounded reorder window buffers completed
  // tasks until every earlier task has been folded, so the fold (and the
  // sink) always observe the fixed order (axis point, workload, instance,
  // policy) restricted to this shard, and peak memory stays O(window), not
  // O(runs). A worker that races more than `window` tasks ahead of the
  // fold cursor blocks; the worker holding the cursor task never blocks
  // (its slot is always free), so the sweep cannot deadlock.
  struct TaskOutput {
    bool ready = false;
    std::vector<RunRecord> records;
    double baseline_wall = 0.0;
    std::string progress_label;
  };
  ThreadPool pool(spec.threads);
  const std::size_t window =
      std::min(std::max<std::size_t>(num_local, 1),
               std::max<std::size_t>(64, 4 * pool.size()));
  std::vector<TaskOutput> slots(window);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t cursor = 0;  // next local task index to fold
  std::exception_ptr abort_error;

  auto fold_ready_tasks = [&](std::unique_lock<std::mutex>& lock) {
    bool advanced = false;
    while (cursor < num_local && slots[cursor % window].ready) {
      TaskOutput out = std::move(slots[cursor % window]);
      slots[cursor % window] = TaskOutput{};
      ++cursor;
      advanced = true;
      for (const RunRecord& record : out.records) {
        SweepCell& cell = result.cells[(record.axis_point * num_workloads +
                                        record.workload) *
                                           num_policies +
                                       record.policy];
        cell.unfairness.add(record.unfairness);
        cell.rel_distance.add(record.rel_distance);
        cell.utilization.add(record.utilization);
        if (spec.is_strategy()) {
          cell.deviator_utility.add(record.deviator_utility);
          cell.deviator_flow.add(record.deviator_flow);
          cell.honest_utility.add(record.honest_utility);
        }
        cell.work_done += record.work_done;
        cell.wall_ms += record.wall_ms;
        result.total_wall_ms += record.wall_ms;
        result.replayed_runs += record.replayed ? 1 : 0;
        if (sink) sink(record);
      }
      result.baseline_wall_ms += out.baseline_wall;
      result.total_wall_ms += out.baseline_wall;
      if (progress) progress(out.progress_label);
    }
    if (advanced) {
      lock.unlock();
      cv.notify_all();
      lock.lock();
    }
  };

  pool.parallel_for(num_local, [&](std::size_t local) {
    try {
      const std::size_t task = plan.shard_tasks[local];
      const std::size_t a = plan.task_point(task);
      const std::size_t w = plan.task_workload(task);
      const std::size_t i = plan.task_instance(task);
      const std::size_t g = plan.group_of[a];
      const SweepWorkload& workload =
          plan.bound_workloads[a * num_workloads + w];
      const Time horizon = plan.horizons[a];
      // The seed depends only on (workload, instance), so every axis point
      // reruns the same window population: axis series are paired samples,
      // and axis-free sweeps keep their pre-axis seeding bit-for-bit. It is
      // also what lets axis points of one prefix group share cached work.
      const std::uint64_t seed = mix_seed(spec.seed, w * spec.instances + i);

      // Strategy sweeps: this point's deviation of the honest instance.
      // Derived lazily once per task (every policy of the point plays the
      // same declared stream) from the shared honest prefix — which is
      // exactly what the strategy axis scope shares across the grid.
      const bool is_strategy = spec.is_strategy();
      const strategy::DeviationSpec deviation = plan.point_deviations[a];
      const OrgId deviator = plan.point_deviators[a];
      std::shared_ptr<const Instance> declared_cache;
      auto declared_for = [&](const SweepPrefix& prefix) -> const Instance& {
        if (!is_strategy ||
            deviation.kind == strategy::DeviationSpec::Kind::kHonest) {
          return prefix.instance;
        }
        if (!declared_cache) {
          declared_cache = std::make_shared<const Instance>(
              strategy::apply_deviation(prefix.instance, deviator,
                                        deviation));
        }
        return *declared_cache;
      };

      // One policy execution against a prefix's instance/baseline. Group-
      // invariant policies have equal bound specs at every point of the
      // group, so a record computed here is bit-identical wherever in the
      // group it is replayed (axis_point is patched by the consumer).
      auto run_policy = [&](const SweepPrefix& prefix, std::size_t p) {
        const auto t0 = std::chrono::steady_clock::now();
        // The registry seam: every policy runs behind the one Algorithm
        // interface, whatever its shape (engine policy, REF, RAND, or a
        // config-defined composition). Strategy sweeps schedule the
        // *declared* instance; the honest prefix instance stays the
        // metrics' ground truth.
        const Instance& exec_instance = declared_for(prefix);
        RunResult r =
            plan.registry
                ->instantiate(plan.bound_algorithms[a * num_policies + p])
                ->run(exec_instance, horizon, seed);
        RunRecord record;
        record.axis_point = a;
        record.workload = w;
        record.policy = p;
        record.instance = i;
        record.seed = seed;
        record.wall_ms = elapsed_ms(t0);
        record.work_done = r.work_done;
        record.utilization =
            resource_utilization(exec_instance, r.schedule, horizon);
        if (is_strategy) {
          // Grades the schedule against true job sizes and corrects the
          // deviator's utility in r.utilities2 (misreport), so the
          // fairness metrics below compare true outcomes.
          const strategy::StrategyOutcome outcome =
              strategy::evaluate_deviation(prefix.instance, exec_instance,
                                           deviator, deviation, r.schedule,
                                           horizon, r.utilities2);
          record.deviator_utility = outcome.deviator_utility;
          record.deviator_flow = outcome.deviator_flow;
          record.honest_utility = outcome.honest_utility;
        }
        if (plan.has_baseline) {
          record.unfairness =
              unfairness_ratio(r.utilities2, prefix.baseline_utilities2,
                               prefix.baseline_work_done);
          record.rel_distance =
              relative_distance(r.utilities2, prefix.baseline_utilities2);
        }
        return record;
      };

      // Instance construction, shared by the prefix compute and the
      // disk-tier decode. Synthetic generation routes through the shared-
      // window sub-cache when a second prefix family will ask for the
      // window in this shard (families differing in consortium shape but
      // not horizon), or when the disk tier can persist it for other
      // processes.
      auto make_instance = [&]() -> Instance {
        const std::size_t planned_uses = plan.window_uses.at({w, horizon});
        if (workload.kind == SweepWorkload::Kind::kSynthetic &&
            cache.enabled() &&
            (planned_uses > 1 || cache.disk_enabled())) {
          const std::string window_key = "w|" + std::to_string(w) + "|" +
                                         std::to_string(i) + "|" +
                                         std::to_string(horizon);
          WorkloadCache::DiskCodec codec;
          codec.content_key = window_content_key(workload.spec, horizon,
                                                 seed);
          codec.encode = [](const std::shared_ptr<const void>& value) {
            return encode_window_payload(
                *std::static_pointer_cast<const SwfTrace>(value));
          };
          codec.decode = [](const std::string& payload) {
            auto trace = std::make_shared<const SwfTrace>(
                decode_window_payload(payload));
            return WorkloadCache::Computed{trace, window_bytes(*trace)};
          };
          const auto window = std::static_pointer_cast<const SwfTrace>(
              cache.get_or_compute(
                  window_key, planned_uses,
                  [&]() {
                    auto trace = std::make_shared<const SwfTrace>(
                        generate_window(workload.spec, horizon, seed));
                    return WorkloadCache::Computed{trace,
                                                   window_bytes(*trace)};
                  },
                  nullptr, &codec));
          return assign_synthetic_window(workload.spec, *window,
                                         workload.orgs, workload.split,
                                         workload.zipf_s, seed);
        }
        return make_workload_instance(workload, horizon, seed);
      };

      // The policy-independent prefix: instance, baseline run, group-
      // invariant policy runs. Computed by the first task of the prefix
      // group to get here; the cache latches the rest until it is ready.
      auto compute_prefix = [&]() -> WorkloadCache::Computed {
        auto entry = std::make_shared<SweepPrefix>();
        entry->instance = make_instance();
        if (plan.has_baseline) {
          const auto t0 = std::chrono::steady_clock::now();
          RunResult ref = plan.registry->instantiate(plan.baseline)
                              ->run(entry->instance, horizon, seed);
          entry->baseline_wall_ms = elapsed_ms(t0);
          entry->baseline_utilities2 = std::move(ref.utilities2);
          entry->baseline_work_done = ref.work_done;
        }
        for (std::size_t p = 0; p < num_policies; ++p) {
          if (plan.shared_slot[g * num_policies + p] == SweepPlan::kNoSlot) {
            continue;
          }
          entry->shared_records.push_back(run_policy(*entry, p));
        }
        return {entry, prefix_bytes(*entry)};
      };

      // Disk-tier codec for the whole prefix: the persisted payload holds
      // the baseline outcome and shared record metrics; the instance is
      // rebuilt from the seed at decode (cheap next to REF).
      WorkloadCache::DiskCodec prefix_codec;
      prefix_codec.content_key =
          prefix_content_key(plan, g, workload, horizon, seed);
      prefix_codec.encode = [](const std::shared_ptr<const void>& value) {
        return encode_prefix_payload(
            *std::static_pointer_cast<const SweepPrefix>(value));
      };
      prefix_codec.decode =
          [&](const std::string& payload) -> WorkloadCache::Computed {
        auto entry = std::make_shared<SweepPrefix>();
        decode_prefix_payload(payload, *entry);
        entry->instance = make_instance();
        if (plan.has_baseline &&
            entry->baseline_utilities2.size() !=
                entry->instance.num_orgs()) {
          throw std::invalid_argument("prefix payload shape mismatch");
        }
        std::size_t slot = 0;
        for (std::size_t p = 0; p < num_policies; ++p) {
          if (plan.shared_slot[g * num_policies + p] == SweepPlan::kNoSlot) {
            continue;
          }
          if (slot >= entry->shared_records.size()) {
            throw std::invalid_argument("prefix payload shape mismatch");
          }
          RunRecord& record = entry->shared_records[slot++];
          record.axis_point = a;
          record.workload = w;
          record.policy = p;
          record.instance = i;
          record.seed = seed;
          record.wall_ms = 0.0;  // nothing was simulated here
        }
        if (slot != entry->shared_records.size()) {
          throw std::invalid_argument("prefix payload shape mismatch");
        }
        return {entry, prefix_bytes(*entry)};
      };

      bool computed_here = true;
      const std::string prefix_key = "p|" + std::to_string(g) + "|" +
                                     std::to_string(w) + "|" +
                                     std::to_string(i);
      const auto prefix = std::static_pointer_cast<const SweepPrefix>(
          cache.get_or_compute(prefix_key, plan.group_size[g],
                               compute_prefix, &computed_here,
                               &prefix_codec));

      TaskOutput out;
      out.records.resize(num_policies);
      out.baseline_wall = computed_here ? prefix->baseline_wall_ms : 0.0;
      for (std::size_t p = 0; p < num_policies; ++p) {
        const std::size_t slot = plan.shared_slot[g * num_policies + p];
        if (slot != SweepPlan::kNoSlot) {
          RunRecord record = prefix->shared_records[slot];
          record.axis_point = a;  // any group member may have computed it
          if (!computed_here) {
            record.wall_ms = 0.0;  // walls stay with the task that paid them
            record.replayed = true;
          }
          out.records[p] = record;
        } else {
          out.records[p] = run_policy(*prefix, p);
        }
        out.records[p].run_id = plan.run_id(task, p);
      }
      out.progress_label = workload.name + " #" + std::to_string(i);
      out.ready = true;

      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return abort_error != nullptr || local < cursor + window;
      });
      if (abort_error) std::rethrow_exception(abort_error);
      slots[local % window] = std::move(out);
      fold_ready_tasks(lock);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!abort_error) abort_error = std::current_exception();
      }
      cv.notify_all();
      throw;
    }
  });

  result.cache = cache.stats();
  if (external_cache_) {
    // Counters become this run's delta; the byte gauges stay absolute
    // (they describe the live cache, not this run).
    result.cache.hits -= cache_before.hits;
    result.cache.misses -= cache_before.misses;
    result.cache.evictions -= cache_before.evictions;
    result.cache.disk_hits -= cache_before.disk_hits;
    result.cache.disk_misses -= cache_before.disk_misses;
    result.cache.disk_writes -= cache_before.disk_writes;
  }
  result.elapsed_ms = elapsed_ms(run_started);
  return result;
}

MultiProcessExecutor::MultiProcessExecutor(
    std::vector<std::string> worker_command, std::size_t processes)
    : worker_command_(std::move(worker_command)), processes_(processes) {
  if (worker_command_.empty()) {
    throw std::invalid_argument(
        "MultiProcessExecutor: empty worker command");
  }
  if (processes_ < 2) {
    throw std::invalid_argument(
        "MultiProcessExecutor: need at least 2 processes (use "
        "ThreadPoolExecutor for in-process runs)");
  }
}

SweepResult MultiProcessExecutor::execute(const SweepPlan& plan,
                                          Progress progress,
                                          RecordSink sink) {
  if (sink) {
    throw std::invalid_argument(
        "multi-process sweeps do not support per-run record sinks "
        "(--stream-records); run shards explicitly and keep their streams");
  }
  if (!plan.shard.whole()) {
    throw std::invalid_argument(
        "multi-process execution partitions the whole plan; it cannot run "
        "an already-sharded one");
  }

  if (worker_command_.size() < 2) {
    throw std::invalid_argument(
        "multi-process execution needs the sweep subcommand in its worker "
        "command (program + subcommand + flags)");
  }

  const auto run_started = std::chrono::steady_clock::now();

  namespace fs = std::filesystem;
  static std::atomic<std::uint64_t> scratch_seq{0};
  const fs::path scratch =
      fs::temp_directory_path() /
      ("fairsched-mp-" + std::to_string(::getpid()) + "-" +
       std::to_string(scratch_seq.fetch_add(1)));
  fs::create_directories(scratch);
  struct ScratchGuard {
    fs::path dir;
    ~ScratchGuard() {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  } guard{scratch};

  // Split the parent's thread budget across the workers: --threads (or
  // the hardware concurrency it defaults to) is the machine's budget, and
  // N workers each running a full-size pool would oversubscribe it N-fold
  // and run *slower* than one process.
  const std::size_t thread_budget =
      plan.spec.threads ? plan.spec.threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());

  // One local shard-worker transport per shard, driven by the shared
  // dispatcher (dist/dispatcher.h). Sharding travels in the request, so
  // inherited FAIRSCHED_* environment variables cannot recurse: the
  // worker rebuilds the spec from these args alone, overrides its thread
  // count from the request, and refuses on fingerprint mismatch. One
  // attempt per shard keeps the historical fail-fast contract — a local
  // worker that dies signals a bug, not a flaky network.
  dist::DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  request.threads = std::max<std::size_t>(1, thread_budget / processes_);
  request.args.assign(worker_command_.begin() + 1, worker_command_.end());

  std::vector<std::unique_ptr<dist::WorkerTransport>> transports;
  transports.reserve(processes_);
  for (std::size_t s = 0; s < processes_; ++s) {
    transports.push_back(std::make_unique<dist::LocalProcessTransport>(
        "local#" + std::to_string(s), worker_command_[0]));
  }

  dist::DispatchOptions options;
  options.shard_count = processes_;
  options.max_attempts = 1;
  options.artifact_dir = scratch.string();
  dist::Dispatcher dispatcher(std::move(transports), options);
  MergedSweep merged = dispatcher.run(plan, request, progress);
  merged.result.elapsed_ms = elapsed_ms(run_started);
  return std::move(merged.result);
}

}  // namespace fairsched::exp
