#pragma once

// String-keyed registry of the scheduling algorithms the experiment harness
// can run. Scenarios name policies as data ("roundrobin", "rand75",
// "decayfairshare2000"); the registry resolves a name to the AlgorithmSpec
// that sched/runner.* executes. Registering here is what makes a policy
// reachable from fairsched_exp, the bench configs, and CSV/JSON scenario
// files without touching driver code.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sched/runner.h"

namespace fairsched::exp {

// Builds the spec for a policy name. For parameterized entries the full
// (lower-cased) name is passed so the factory can parse its suffix, e.g.
// "rand75" -> 75 samples.
using PolicyFactory = std::function<AlgorithmSpec(const std::string& name)>;

class PolicyRegistry {
 public:
  // The process-wide registry, pre-seeded with every algorithm of the paper
  // plus the repo's extensions: fcfs, roundrobin, random, directcontr,
  // fairshare, utfairshare, currfairshare, ref, rand[N],
  // decayfairshare[HALF_LIFE].
  static PolicyRegistry& global();

  // Registers `key` (lower-case). A parameterized entry also matches
  // key+<number> names ("rand" matches "rand75"); `fractional` additionally
  // allows one decimal point in the number ("decayfairshare2500.5").
  // `description` is the one-liner `fairsched_exp list-policies` prints.
  // `bound_axes` declares which sweep axes rebind this policy's parameters
  // per axis point (axis names as make_axis accepts them, e.g. "half-life");
  // the sweep engine uses the declarations to reject inert policy-bound
  // axes and to decide which runs its workload/baseline cache may share
  // across axis points. Re-registering a key replaces the previous entry.
  void register_policy(const std::string& key, PolicyFactory factory,
                       bool parameterized = false, bool fractional = false,
                       std::string description = "",
                       std::vector<std::string> bound_axes = {});

  // Resolves a name (case-insensitive) to a spec. Throws
  // std::invalid_argument naming the known policies when nothing matches,
  // or describing the parameter when its value is out of range.
  AlgorithmSpec make(const std::string& name) const;

  // True when `name` resolves to a registered entry with a well-formed
  // parameter suffix. make(name) can still reject the parameter's *value*
  // (e.g. an absurdly large sample count overflowing its integer type).
  bool contains(const std::string& name) const;

  // Sorted registered keys (base names, without parameter suffixes).
  std::vector<std::string> names() const;

  // One (key, description) pair per registered entry, sorted by key.
  // Parameterized keys are reported with a "[N]" suffix.
  std::vector<std::pair<std::string, std::string>> catalog() const;

  // The axes `name`'s entry declared as binding its parameters (empty when
  // the policy declares none, or when `name` is unknown — resolve-time
  // errors stay make()'s job).
  std::vector<std::string> bound_axes(const std::string& name) const;

 private:
  struct Entry {
    PolicyFactory factory;
    bool parameterized = false;
    bool fractional = false;  // parameter may contain one decimal point
    std::string description;
    std::vector<std::string> bound_axes;
  };
  const Entry* find_entry(const std::string& lower) const;

  std::map<std::string, Entry> entries_;
};

// Canonical registry name of a spec, such that
// PolicyRegistry::global().make(canonical_policy_name(s)) round-trips:
// "rand15", "decayfairshare5000", "fairshare", ... Note: decay half-lives
// are printed with 6 fractional digits, so a half-life that is not exactly
// representable that way is quantized by the spec -> name -> spec trip.
std::string canonical_policy_name(const AlgorithmSpec& spec);

// Splits a comma-separated policy list and resolves each name through the
// registry. Throws on the first unknown name.
std::vector<AlgorithmSpec> parse_policy_list(const std::string& csv,
                                             const PolicyRegistry& registry =
                                                 PolicyRegistry::global());

}  // namespace fairsched::exp
