#pragma once

// The open policy API: a string-keyed registry of self-describing
// scheduling algorithms.
//
// Scenarios name policies as data ("roundrobin", "rand75",
// "decayfairshare2000", "myswitch(switch-at=5000)"); the registry owns the
// whole name grammar, resolves a name to a PolicySpec (sched/policy_spec.h)
// and instantiates a runnable Algorithm (sched/algorithm.h) from a spec.
// Registering here is what makes a policy reachable from fairsched_exp,
// the bench configs, and CSV/JSON scenario files without touching driver
// code — and `[policy NAME]` blocks in sweep-config files
// (exp/sweep_config.h) register whole new entries at config-load time, so
// new policies need no recompile at all.
//
// Every entry is self-describing: it declares its parameters (type, range,
// default, description) and, per parameter, the sweep-axis name that
// rebinds it across axis points. The sweep engine derives axis bindings
// from these declarations — any declared numeric parameter is
// automatically sweepable as an axis (exp/sweep.h) — and the workload/
// baseline cache and plan fingerprints key on the registry's canonical
// content strings, so equal specs always share cached runs.
//
// Name grammar (case-insensitive):
//   base                          all parameters at their defaults
//   base<number>                  legacy numeric suffix ("rand75",
//                                 "decayfairshare2000"); binds the entry's
//                                 declared suffix parameter
//   base(key=value, ...)          any declared parameter by name
// canonical_name() prints the unique canonical form of a spec (the suffix
// form where the entry declares one, bracket form for everything else);
// it is used uniformly for display names, CSV/JSON policy columns, plan
// fingerprints and cache keys.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sched/algorithm.h"
#include "sched/policy_spec.h"

namespace fairsched::exp {

// One declared parameter of a registry entry.
struct ParamDecl {
  std::string key;  // canonical display spelling, e.g. "half-life"
  PolicyParam::Type type = PolicyParam::Type::kReal;
  double min_value = std::numeric_limits<double>::lowest();
  double max_value = std::numeric_limits<double>::max();
  bool min_exclusive = false;  // e.g. half-life > 0
  PolicyParam default_value;
  std::string description;
  // Sweep-axis name that rebinds this parameter per axis point; empty
  // means the parameter key itself is the axis name.
  std::string axis;
  std::string axis_hint;  // typical values shown by `list-axes`

  std::string axis_name() const { return axis.empty() ? key : axis; }
  // Human form of the accepted range, e.g. "> 0", ">= 1".
  std::string range_text() const;
  // Whether `v` satisfies the range (inclusive/exclusive bounds).
  bool in_range(double v) const;
};

class PolicyRegistry {
 public:
  // Instantiates a runnable Algorithm from a resolved spec.
  using AlgorithmFactory =
      std::function<std::unique_ptr<Algorithm>(const PolicySpec& spec)>;
  // Builds the engine Policy for one run; only policy-shaped entries have
  // one (REF/RAND produce whole schedules and leave it null).
  using PolicyFactory = std::function<std::unique_ptr<Policy>(
      const PolicySpec& spec, std::uint64_t seed)>;

  static constexpr std::size_t kNoSuffix = static_cast<std::size_t>(-1);

  struct Definition {
    std::string description;
    std::vector<ParamDecl> params;
    // Index into `params` of the parameter the legacy numeric-suffix
    // grammar binds ("rand75" -> samples); kNoSuffix disables the form.
    std::size_t suffix_param = kNoSuffix;
    // A policy-shaped entry sets `policy` (and optionally engine_options,
    // e.g. DirectContr's random machine pick); instantiate() wraps them in
    // a PolicyAlgorithm. Whole-schedule entries set `algorithm` instead.
    PolicyFactory policy;
    EngineOptions engine_options;
    AlgorithmFactory algorithm;
    // Content identity of the *implementation* behind this entry; empty
    // defaults to "builtin:<key>". Config-defined entries embed their full
    // definition (base content, composition structure) so two processes
    // loading different definitions of one name can never agree on a plan
    // fingerprint or share a cache entry.
    std::string content;
    bool config_defined = false;
  };

  // The process-wide registry, pre-seeded with every algorithm of the
  // paper plus the repo's extensions: fcfs, roundrobin, random,
  // directcontr, fairshare, utfairshare, currfairshare, ref, rand[N],
  // decayfairshare[HALF_LIFE].
  static PolicyRegistry& global();

  // Registers `key` (lower-cased). Validates the definition: exactly one
  // of policy/algorithm set, unique parameter keys, a suffix parameter
  // index in range, and axis names that do not shadow the workload axes
  // (orgs, horizon, ...). Re-registering a key replaces the previous
  // entry; built-in names may not be replaced by config-defined ones.
  void register_policy(const std::string& key, Definition definition);

  // Resolves a name through the grammar above to a fully-populated spec
  // (every declared parameter present, defaults filled). Throws
  // std::invalid_argument naming the known policies when the base matches
  // nothing, with a did-you-mean suggestion when a bracket parameter key
  // is unknown, or describing the parameter when a value is malformed or
  // out of range.
  PolicySpec make(const std::string& name) const;

  // True when `name` resolves to a registered entry with well-formed
  // parameter syntax. make(name) can still reject a parameter's *value*
  // (out of range, or overflowing its integer type).
  bool contains(const std::string& name) const;

  // Instantiates the runnable algorithm for a spec (range-checking the
  // parameters again — specs are data and may not have come from make()).
  std::unique_ptr<Algorithm> instantiate(const PolicySpec& spec) const;

  // Builds the engine Policy for a policy-shaped spec; throws
  // std::invalid_argument for whole-schedule entries (REF/RAND).
  std::unique_ptr<Policy> make_policy(const PolicySpec& spec,
                                      std::uint64_t seed = 0) const;
  // By-name convenience: make_policy(make(name), seed).
  std::unique_ptr<Policy> make_policy(const std::string& name,
                                      std::uint64_t seed = 0) const {
    return make_policy(make(name), seed);
  }
  bool policy_shaped(const std::string& base) const;

  // One-call convenience over make() + instantiate(): resolves `name`
  // through the grammar and runs the algorithm on `inst` until `horizon`.
  // `seed` feeds the algorithm's internal randomness; deterministic
  // algorithms ignore it.
  RunResult run(const Instance& inst, const std::string& name, Time horizon,
                std::uint64_t seed) const {
    return instantiate(make(name))->run(inst, horizon, seed);
  }

  // The unique canonical name of a spec (see the grammar note above);
  // make(canonical_name(s)) == s for any spec make() produced.
  std::string canonical_name(const PolicySpec& spec) const;

  // Canonical content string for fingerprints and the content-addressed
  // cache tier: the entry's implementation identity plus every parameter
  // value. Equal specs => equal keys; distinct definitions => distinct
  // keys even when their names collide across processes.
  std::string content_key(const PolicySpec& spec) const;

  // Sorted registered keys (base names, without parameter suffixes).
  std::vector<std::string> names() const;

  // One (key, description) pair per entry, sorted by key; entries with a
  // suffix parameter are reported as "key[N]".
  std::vector<std::pair<std::string, std::string>> catalog() const;

  // Machine-readable catalog (`list-policies --json`): names,
  // descriptions, kinds, and declared parameters with types, ranges,
  // defaults and axis bindings. Deterministic output (sorted by key).
  void write_catalog_json(std::ostream& out) const;

  // The entry registered under exactly `base` (lower-case), or nullptr.
  const Definition* find(const std::string& base) const;

  // The declared parameter of `base` that sweep axis `axis` rebinds, or
  // nullptr when the entry does not declare one (or `base` is unknown).
  const ParamDecl* param_for_axis(const std::string& base,
                                  const std::string& axis) const;

  // Rebinds the parameter `axis` binds in `spec` to `value` (converted to
  // the declared type); no-op when the spec's entry does not declare the
  // axis. The caller validates the value against the declaration first
  // (exp/sweep_plan.cc does, with the axis named in the error).
  void bind_axis_value(PolicySpec& spec, const std::string& axis,
                       double value) const;

  // Every distinct parameter-bound sweep axis across the registered
  // entries, for `list-axes` and exp/sweep.h's make_axis.
  struct ParamAxis {
    std::string name;  // axis name, declaration spelling
    PolicyParam::Type type = PolicyParam::Type::kReal;
    std::string hint;
    std::string description;
    std::vector<std::string> policies;  // declaring entries, sorted
  };
  std::vector<ParamAxis> param_axes() const;

 private:
  struct Resolved {
    const Definition* definition = nullptr;
    std::string base;
    // Raw key=value assignments (canonical decl keys) awaiting binding.
    std::vector<std::pair<const ParamDecl*, std::string>> assignments;
  };
  // Grammar-level resolution; throws on shape errors, leaves value
  // conversion/range checks to bind_resolved.
  Resolved resolve(const std::string& name) const;
  PolicySpec bind_resolved(const Resolved& resolved,
                           const std::string& original) const;

  std::map<std::string, Definition> entries_;
};

// A `[policy NAME]` block from a sweep-config file: a new named policy
// derived from a base plus parameter overrides, or a simple composition
// (switch between two bases at a time, weighted random mixture). Parsed
// by exp/sweep_config.cc; registered through register_config_policy.
struct ConfigPolicyDef {
  std::string name;
  std::string description;  // optional; a default is derived

  // Exactly one of the three shapes:
  std::string base;  // `base = NAME` + overrides
  std::vector<std::pair<std::string, std::string>> overrides;  // raw k=v

  std::vector<std::string> switch_policies;  // `switch = A, B`
  std::string switch_at;                     // required with `switch`

  std::vector<std::pair<std::string, double>> mixture;  // `mix = A:w, ...`
};

// Validates `def` (shape, resolvable bases, policy-shaped composition
// members, parseable overrides) and registers it on `registry`, which must
// outlive the entry. Throws std::invalid_argument with a message naming
// the policy block on any error.
void register_config_policy(PolicyRegistry& registry,
                            const ConfigPolicyDef& def);

// Canonical registry name of a spec (PolicyRegistry::canonical_name on the
// global registry by default), such that registry.make(name) round-trips.
std::string canonical_policy_name(const PolicySpec& spec,
                                  const PolicyRegistry& registry =
                                      PolicyRegistry::global());

// Splits a comma-separated policy list and resolves each name through the
// registry. Throws on the first unknown name.
std::vector<PolicySpec> parse_policy_list(const std::string& csv,
                                          const PolicyRegistry& registry =
                                              PolicyRegistry::global());

}  // namespace fairsched::exp
