#include "exp/workload_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/rng.h"

namespace fairsched::exp {

namespace {

// Disk file header: magic + format version on the first line, the full
// content key on the second. Bump the version whenever a payload encoding
// changes — old files then validate as stale and are recomputed, never
// misdecoded.
constexpr const char* kDiskMagic = "fairsched-cache 1";

}  // namespace

double CacheStats::hit_rate() const {
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

void CacheStats::accumulate(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  bytes_in_use += other.bytes_in_use;
  peak_bytes += other.peak_bytes;
  disk_hits += other.disk_hits;
  disk_misses += other.disk_misses;
  disk_writes += other.disk_writes;
}

WorkloadCache::WorkloadCache(std::size_t max_bytes, std::string disk_dir,
                             bool retain)
    : max_bytes_(max_bytes), disk_dir_(std::move(disk_dir)),
      retain_(retain) {
  if (disk_enabled()) {
    // Create the tier's directory eagerly so a bad --cache-dir (e.g. a
    // path through a file) fails the run up front, not on the first store.
    std::filesystem::create_directories(disk_dir_);
  }
}

std::string WorkloadCache::disk_file_name(const std::string& content_key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fs-%016llx.cache",
                static_cast<unsigned long long>(hash_fnv1a64(content_key)));
  return buf;
}

bool WorkloadCache::disk_load(const DiskCodec& codec, Computed* out) {
  const std::filesystem::path path =
      std::filesystem::path(disk_dir_) / disk_file_name(codec.content_key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string magic, key;
  if (!std::getline(in, magic) || magic != kDiskMagic) return false;
  if (!std::getline(in, key) || key != codec.content_key) {
    // A hash collision or a stale key layout: leave the file to its owner
    // and recompute.
    return false;
  }
  std::ostringstream payload;
  payload << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  try {
    *out = codec.decode(payload.str());
  } catch (...) {
    // Damaged payload (truncated write from a crashed process, manual
    // edit): degrade to a recompute.
    return false;
  }
  return out->value != nullptr;
}

void WorkloadCache::disk_store(const DiskCodec& codec,
                               const Computed& computed) {
  const std::filesystem::path path =
      std::filesystem::path(disk_dir_) / disk_file_name(codec.content_key);
  // Unique temporary per writer (pid + sequence), then an atomic rename:
  // a reader never observes a partially written file, and racing writers
  // (other shards computing the same prefix) overwrite each other with
  // identical bytes.
  static std::atomic<std::uint64_t> tmp_seq{0};
  std::error_code ec;
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable tier: silently skip persisting
    out << kDiskMagic << '\n' << codec.content_key << '\n';
    out << codec.encode(computed.value);
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_writes;
}

WorkloadCache::Computed WorkloadCache::produce(const ComputeFn& compute,
                                               const DiskCodec* codec,
                                               bool* from_disk) {
  *from_disk = false;
  const bool disk = codec != nullptr && disk_enabled();
  if (disk) {
    Computed loaded;
    if (disk_load(*codec, &loaded)) {
      *from_disk = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_hits;
      return loaded;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_misses;
    }
  }
  Computed computed = compute();
  if (disk) disk_store(*codec, computed);
  return computed;
}

void WorkloadCache::retire_locked(
    std::map<std::string, Entry>::iterator it) {
  stats_.bytes_in_use -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void WorkloadCache::evict_over_budget_locked() {
  while (stats_.bytes_in_use > max_bytes_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.front());
    retire_locked(victim);
    ++stats_.evictions;
  }
}

std::shared_ptr<const void> WorkloadCache::get_or_compute(
    const std::string& key, std::size_t uses, const ComputeFn& compute,
    bool* computed_here, const DiskCodec* codec) {
  if (computed_here) *computed_here = true;
  if (!enabled()) return compute().value;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // we compute
    Entry& entry = it->second;
    if (!entry.ready) {
      // Another task is computing this key; wait for it. If that compute
      // throws (entry vanishes) or the entry is evicted before we reacquire
      // the lock, loop and become the computer ourselves.
      ready_cv_.wait(lock);
      continue;
    }
    ++stats_.hits;
    if (computed_here) *computed_here = false;
    std::shared_ptr<const void> value = entry.value;
    if (!retain_ && ++consumed_[key] >= uses) {
      retire_locked(it);
      consumed_.erase(key);
    } else {
      lru_.splice(lru_.end(), lru_, entry.lru_pos);
    }
    return value;
  }

  ++stats_.misses;
  bool from_disk = false;
  if (!retain_ && uses <= 1) {
    // Nobody else will ever ask: compute without storing (or latching —
    // distinct single-use keys cannot collide). The disk tier still
    // applies: a future *process* may ask even when this plan will not.
    lock.unlock();
    const Computed computed = produce(compute, codec, &from_disk);
    if (from_disk && computed_here) *computed_here = false;
    return computed.value;
  }
  entries_[key] = Entry{};  // pending: ready == false latches waiters
  lock.unlock();

  Computed computed;
  try {
    computed = produce(compute, codec, &from_disk);
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    lock.unlock();
    ready_cv_.notify_all();
    throw;
  }
  if (from_disk && computed_here) *computed_here = false;

  lock.lock();
  if (!retain_ && ++consumed_[key] >= uses) {
    // Every planned use is already consumed (this compute was a re-miss
    // after an eviction and we are the last consumer): nothing left to
    // share, so do not store.
    entries_.erase(key);
    consumed_.erase(key);
  } else {
    Entry& entry = entries_[key];
    entry.value = computed.value;
    entry.bytes = computed.bytes;
    entry.ready = true;
    entry.lru_pos = lru_.insert(lru_.end(), key);
    stats_.bytes_in_use += computed.bytes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
    evict_over_budget_locked();
  }
  lock.unlock();
  ready_cv_.notify_all();
  return computed.value;
}

CacheStats WorkloadCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fairsched::exp
