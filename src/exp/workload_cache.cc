#include "exp/workload_cache.h"

#include <algorithm>
#include <utility>

namespace fairsched::exp {

double CacheStats::hit_rate() const {
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

void WorkloadCache::retire_locked(
    std::map<std::string, Entry>::iterator it) {
  stats_.bytes_in_use -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void WorkloadCache::evict_over_budget_locked() {
  while (stats_.bytes_in_use > max_bytes_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.front());
    retire_locked(victim);
    ++stats_.evictions;
  }
}

std::shared_ptr<const void> WorkloadCache::get_or_compute(
    const std::string& key, std::size_t uses, const ComputeFn& compute,
    bool* computed_here) {
  if (computed_here) *computed_here = true;
  if (!enabled()) return compute().value;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // we compute
    Entry& entry = it->second;
    if (!entry.ready) {
      // Another task is computing this key; wait for it. If that compute
      // throws (entry vanishes) or the entry is evicted before we reacquire
      // the lock, loop and become the computer ourselves.
      ready_cv_.wait(lock);
      continue;
    }
    ++stats_.hits;
    if (computed_here) *computed_here = false;
    std::shared_ptr<const void> value = entry.value;
    if (++consumed_[key] >= uses) {
      retire_locked(it);
      consumed_.erase(key);
    } else {
      lru_.splice(lru_.end(), lru_, entry.lru_pos);
    }
    return value;
  }

  ++stats_.misses;
  if (uses <= 1) {
    // Nobody else will ever ask: compute without storing (or latching —
    // distinct single-use keys cannot collide).
    lock.unlock();
    return compute().value;
  }
  entries_[key] = Entry{};  // pending: ready == false latches waiters
  lock.unlock();

  Computed computed;
  try {
    computed = compute();
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    lock.unlock();
    ready_cv_.notify_all();
    throw;
  }

  lock.lock();
  if (++consumed_[key] >= uses) {
    // Every planned use is already consumed (this compute was a re-miss
    // after an eviction and we are the last consumer): nothing left to
    // share, so do not store.
    entries_.erase(key);
    consumed_.erase(key);
  } else {
    Entry& entry = entries_[key];
    entry.value = computed.value;
    entry.bytes = computed.bytes;
    entry.ready = true;
    entry.lru_pos = lru_.insert(lru_.end(), key);
    stats_.bytes_in_use += computed.bytes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
    evict_over_budget_locked();
  }
  lock.unlock();
  ready_cv_.notify_all();
  return computed.value;
}

CacheStats WorkloadCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fairsched::exp
