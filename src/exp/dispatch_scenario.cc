// `fairsched_exp dispatch` and `fairsched_exp shard-worker` — the CLI
// shell over the distributed dispatcher (src/dist, docs/DISTRIBUTED.md).
//
// dispatch builds the sweep exactly like the single-host subcommand
// would, then hands the whole-run plan to dist::Dispatcher with one
// transport per --workers/--hosts entry. The request each worker receives
// carries the original argv (minus orchestration/reporting/dispatch
// flags) so the worker rebuilds the identical spec; a --config file's
// bytes ride along in the request, so remote hosts need no shared
// filesystem. shard-worker is the other end of that protocol.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "dist/dispatcher.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/executor.h"
#include "exp/reporter.h"
#include "exp/scenarios.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"
#include "util/cli.h"

namespace fairsched::exp {

namespace {

// One --workers/--hosts entry, parsed but not yet constructed: dry runs
// need the worker names without exec-able transports.
struct WorkerSpec {
  bool local = true;
  std::string host;  // ssh target when !local
  std::string name;  // display name ("local#0", "ssh:hostb#2")
};

void append_worker_entry(const std::string& entry, const std::string& where,
                         std::vector<WorkerSpec>& specs) {
  std::string base = entry;
  std::size_t count = 1;
  const std::size_t star = entry.rfind('*');
  if (star != std::string::npos) {
    base = trim_whitespace(entry.substr(0, star));
    const std::string multiplier = trim_whitespace(entry.substr(star + 1));
    try {
      std::size_t consumed = 0;
      count = std::stoul(multiplier, &consumed);
      if (consumed != multiplier.size() || count == 0) {
        throw std::invalid_argument(multiplier);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("worker entry '" + entry + "' (" + where +
                                  "): the *N multiplier must be a positive "
                                  "integer");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    WorkerSpec spec;
    if (base == "local") {
      spec.local = true;
    } else if (base.rfind("ssh:", 0) == 0 && base.size() > 4) {
      spec.local = false;
      spec.host = base.substr(4);
    } else {
      throw std::invalid_argument(
          "worker entry '" + entry + "' (" + where +
          ") must be `local` or `ssh:HOST`, optionally with a *N "
          "multiplier");
    }
    specs.push_back(std::move(spec));
  }
}

// --workers entries first, then the --hosts file (one entry per line,
// `#` comments); defaults to local*2 when both are empty. Names get a
// global #index suffix so duplicated entries stay distinguishable in the
// dispatch log.
std::vector<WorkerSpec> parse_worker_specs(const ScenarioOptions& options) {
  std::vector<WorkerSpec> specs;
  for (const std::string& entry : split_and_trim(options.workers_spec, ',')) {
    append_worker_entry(entry, "--workers", specs);
  }
  if (!options.hosts_path.empty()) {
    std::ifstream hosts(options.hosts_path);
    if (!hosts) {
      throw std::invalid_argument("cannot open --hosts file: " +
                                  options.hosts_path);
    }
    std::string line;
    while (std::getline(hosts, line)) {
      const std::size_t comment = line.find('#');
      if (comment != std::string::npos) line = line.substr(0, comment);
      line = trim_whitespace(line);
      if (line.empty()) continue;
      append_worker_entry(line, options.hosts_path, specs);
    }
  }
  if (specs.empty()) {
    for (const std::string& entry : {"local", "local"}) {
      append_worker_entry(entry, "default", specs);
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = (specs[i].local ? "local" : "ssh:" + specs[i].host) +
                    "#" + std::to_string(i);
  }
  return specs;
}

std::vector<std::unique_ptr<dist::WorkerTransport>> build_transports(
    const std::vector<WorkerSpec>& specs, const ScenarioOptions& options) {
  if (options.program.empty()) {
    throw std::invalid_argument(
        "dispatch needs the harness's own binary path for its workers; "
        "run through fairsched_exp");
  }
  const std::vector<std::string> ssh_command =
      split_and_trim(options.ssh_command, ' ');
  const std::string remote_program = options.remote_program.empty()
                                         ? options.program
                                         : options.remote_program;
  std::vector<std::unique_ptr<dist::WorkerTransport>> transports;
  transports.reserve(specs.size());
  for (const WorkerSpec& spec : specs) {
    if (spec.local) {
      transports.push_back(std::make_unique<dist::LocalProcessTransport>(
          spec.name, options.program));
    } else {
      transports.push_back(std::make_unique<dist::SshTransport>(
          spec.name, ssh_command, spec.host, remote_program));
    }
  }
  return transports;
}

// The request every attempt shares: the original argv with the
// orchestration, reporting and dispatch-layer flags stripped (each is
// either re-derived per attempt or meaningless on a worker), the
// subcommand swapped for --sweep's scenario, and the --config file's
// bytes embedded for hosts without the file.
dist::DispatchRequest build_dispatch_request(const ScenarioOptions& options,
                                             const SweepPlan& plan,
                                             std::size_t worker_count) {
  dist::DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  if (options.worker_threads) {
    request.threads = options.worker_threads;
  } else {
    // Local-first default: split this host's thread budget across the
    // workers, exactly like --processes does. Genuinely remote fleets
    // should set --worker-threads (or 0 threads per host is never
    // picked: at least 1).
    const std::size_t budget =
        options.threads ? options.threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
    request.threads = std::max<std::size_t>(1, budget / worker_count);
  }
  request.args.push_back(options.sweep);
  std::vector<std::string> tail;
  if (!options.raw_args.empty()) {
    tail.assign(options.raw_args.begin() + 1, options.raw_args.end());
  }
  tail = drop_flag_tokens(
      tail, {"processes", "shard", "partial-out", "csv", "json",
             "stream-records", "threads", "config", "workers", "hosts",
             "ssh-cmd", "remote-program", "sweep", "shards",
             "worker-threads", "timeout-ms", "retries", "backoff-ms",
             "backoff-cap-ms", "artifact-dir", "dispatch-log", "resume",
             "dry-run"});
  request.args.insert(request.args.end(), tail.begin(), tail.end());
  if (!options.config_path.empty()) {
    std::ifstream config(options.config_path, std::ios::binary);
    if (!config) {
      throw std::invalid_argument("cannot read --config file to embed: " +
                                  options.config_path);
    }
    std::ostringstream content;
    content << config.rdbuf();
    request.config_content = content.str();
    request.config_name =
        std::filesystem::path(options.config_path).filename().string();
  }
  return request;
}

}  // namespace

int run_dispatch_scenario(const ScenarioOptions& options) {
  if (!options.shard.empty() || !options.partial_out.empty() ||
      options.processes > 1) {
    throw std::invalid_argument(
        "dispatch does its own sharding; --shard/--partial-out/--processes "
        "belong to single-host execution");
  }
  if (!options.stream_records_path.empty()) {
    throw std::invalid_argument(
        "--stream-records does not cross host boundaries; run shards "
        "explicitly (--shard=i/N) to keep per-shard streams");
  }

  const SweepSpec spec = make_scenario_sweep(options.sweep, options);
  const SweepPlan plan = build_sweep_plan(spec, PolicyRegistry::global());
  const std::vector<WorkerSpec> specs = parse_worker_specs(options);
  const std::size_t shard_count =
      options.dispatch_shards ? options.dispatch_shards : specs.size();

  if (options.dry_run) {
    std::vector<std::string> names;
    names.reserve(specs.size());
    for (const WorkerSpec& spec_entry : specs) {
      names.push_back(spec_entry.name);
    }
    dist::write_dispatch_plan_json(std::cout, plan, shard_count, names);
    return 0;
  }

  const bool machine_stdout = options.csv_path == "-" ||
                              options.json_path == "-";
  std::FILE* human = machine_stdout ? stderr : stdout;
  if (!spec.title.empty()) std::fprintf(human, "%s\n", spec.title.c_str());
  std::fprintf(human, "dispatching %zu shard(s) over %zu worker(s)\n",
               shard_count, specs.size());

  dist::DispatchOptions dispatch_options;
  dispatch_options.shard_count = shard_count;
  dispatch_options.shard_timeout =
      std::chrono::milliseconds(options.timeout_ms);
  dispatch_options.max_attempts = options.retries + 1;
  dispatch_options.backoff = std::chrono::milliseconds(options.backoff_ms);
  dispatch_options.backoff_cap =
      std::chrono::milliseconds(options.backoff_cap_ms);
  dispatch_options.artifact_dir = options.artifact_dir;
  dispatch_options.resume = options.resume_dispatch;

  std::filesystem::create_directories(options.artifact_dir);
  const std::string log_path =
      options.dispatch_log_path.empty()
          ? options.artifact_dir + "/dispatch.log.jsonl"
          : options.dispatch_log_path;
  // Append: a --resume invocation extends the first run's log, so the
  // whole history of a recovered dispatch reads as one file.
  std::ofstream log_file(log_path, std::ios::app);
  if (!log_file) {
    std::fprintf(stderr, "cannot open dispatch log: %s\n", log_path.c_str());
    return 2;
  }
  dist::DispatchLog log(log_file);

  const dist::DispatchRequest request =
      build_dispatch_request(options, plan, specs.size());
  dist::Dispatcher dispatcher(build_transports(specs, options),
                              dispatch_options, &log);
  const MergedSweep merged = dispatcher.run(
      plan, request, [human](const std::string& message) {
        std::fprintf(human, "  finished %s\n", message.c_str());
        std::fflush(human);
      });
  const dist::DispatchStats& stats = dispatcher.stats();
  std::fprintf(human,
               "dispatch done: %zu shard(s), %zu attempt(s), %zu "
               "failure(s), %zu resumed, %zu quarantined; log: %s\n",
               stats.shard_count, stats.attempts, stats.failed_attempts,
               stats.resumed, stats.quarantined, log_path.c_str());

  const SweepResult& result = merged.result;
  TableReporter table(machine_stdout ? std::cerr : std::cout);
  table.report(merged.spec, result);
  if (!spec.note.empty()) std::fprintf(human, "\n%s\n", spec.note.c_str());

  if (!options.csv_path.empty()) {
    if (options.csv_path == "-") {
      CsvReporter csv(std::cout);
      csv.report(merged.spec, result);
    } else {
      std::ofstream out(options.csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot open CSV output: %s\n",
                     options.csv_path.c_str());
        return 2;
      }
      CsvReporter csv(out);
      csv.report(merged.spec, result);
      std::fprintf(human, "wrote CSV: %s\n", options.csv_path.c_str());
    }
  }
  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      JsonReporter json(std::cout);
      json.report(merged.spec, result);
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open JSON output: %s\n",
                     options.json_path.c_str());
        return 2;
      }
      JsonReporter json(out);
      json.report(merged.spec, result);
      std::fprintf(human, "wrote perf baseline: %s\n",
                   options.json_path.c_str());
    }
  }
  return 0;
}

namespace {

// Scratch directory for a worker's embedded config, removed on exit.
struct WorkerScratch {
  std::filesystem::path dir;
  ~WorkerScratch() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

std::string sanitize_filename(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? "sweep.config" : out;
}

}  // namespace

int run_shard_worker_scenario() {
  dist::DispatchRequest request = dist::read_dispatch_request(std::cin);

  WorkerScratch scratch;
  if (!request.config_content.empty() || !request.config_name.empty()) {
    scratch.dir = std::filesystem::temp_directory_path() /
                  ("fairsched-worker-" + std::to_string(::getpid()));
    std::filesystem::create_directories(scratch.dir);
    const std::filesystem::path config_path =
        scratch.dir / sanitize_filename(request.config_name);
    std::ofstream out(config_path, std::ios::binary);
    out.write(request.config_content.data(),
              static_cast<std::streamsize>(request.config_content.size()));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("shard-worker: cannot write embedded config "
                               "to " +
                               config_path.string());
    }
    request.args.push_back("--config=" + config_path.string());
  }

  const std::string command = request.args.front();
  // Flags skips argv[0] (the program slot); the subcommand fills it.
  std::vector<const char*> argv;
  argv.reserve(request.args.size());
  for (const std::string& arg : request.args) argv.push_back(arg.c_str());
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  ScenarioOptions options = scenario_options_from_flags(flags);

  SweepSpec spec = make_scenario_sweep(command, options);
  // The dispatcher owns the thread budget; the request's value beats both
  // the spec default and any FAIRSCHED_THREADS in this host's environment.
  spec.threads = request.threads;

  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(),
                       SweepShard{request.shard, request.shard_count});
  if (plan.fingerprint != request.fingerprint) {
    // The dispatch-determinism contract's front door: a worker whose
    // rebuilt plan differs (version skew, stray FAIRSCHED_* env var,
    // different registry) must refuse before spending any compute —
    // its artifact could never merge anyway.
    throw std::runtime_error(
        "shard-worker: rebuilt plan fingerprint does not match the "
        "request; this worker would compute a different sweep (check for "
        "binary version skew or FAIRSCHED_* environment overrides)");
  }

  ThreadPoolExecutor executor;
  const SweepResult result = executor.execute(plan);

  std::ostringstream artifact;
  write_shard_artifact(artifact, plan, result);
  dist::write_artifact_frame(std::cout, request.shard, request.shard_count,
                             artifact.str());
  std::cout.flush();
  if (!std::cout.good()) {
    std::fprintf(stderr, "shard-worker: failed writing artifact frame\n");
    return 2;
  }
  std::fprintf(stderr, "shard-worker: shard %zu/%zu done (%zu of %zu "
                       "tasks)\n",
               request.shard, request.shard_count, plan.shard_tasks.size(),
               plan.num_tasks);
  return 0;
}

}  // namespace fairsched::exp
