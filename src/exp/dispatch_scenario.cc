// `fairsched_exp dispatch` and `fairsched_exp shard-worker` — the CLI
// shell over the distributed dispatcher (src/dist, docs/DISTRIBUTED.md).
//
// dispatch builds the sweep exactly like the single-host subcommand
// would, then hands the whole-run plan to dist::Dispatcher with one
// transport per --workers/--hosts entry. The request each worker receives
// carries the original argv (minus orchestration/reporting/dispatch
// flags) so the worker rebuilds the identical spec; a --config file's
// bytes ride along in the request, so remote hosts need no shared
// filesystem. shard-worker is the other end of that protocol.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "dist/dispatcher.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/executor.h"
#include "exp/reporter.h"
#include "exp/scenarios.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"
#include "exp/workload_cache.h"
#include "strategy/game.h"
#include "util/cli.h"

namespace fairsched::exp {

namespace {

// One --workers/--hosts entry, parsed but not yet constructed: dry runs
// need the worker names without exec-able transports.
struct WorkerSpec {
  bool local = true;
  std::string host;  // ssh target when !local
  std::string name;  // display name ("local#0", "ssh:hostb#2")
};

void append_worker_entry(const std::string& entry, const std::string& where,
                         std::vector<WorkerSpec>& specs) {
  std::string base = entry;
  std::size_t count = 1;
  const std::size_t star = entry.rfind('*');
  if (star != std::string::npos) {
    base = trim_whitespace(entry.substr(0, star));
    const std::string multiplier = trim_whitespace(entry.substr(star + 1));
    try {
      std::size_t consumed = 0;
      count = std::stoul(multiplier, &consumed);
      if (consumed != multiplier.size() || count == 0) {
        throw std::invalid_argument(multiplier);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("worker entry '" + entry + "' (" + where +
                                  "): the *N multiplier must be a positive "
                                  "integer");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    WorkerSpec spec;
    if (base == "local") {
      spec.local = true;
    } else if (base.rfind("ssh:", 0) == 0 && base.size() > 4) {
      spec.local = false;
      spec.host = base.substr(4);
    } else {
      throw std::invalid_argument(
          "worker entry '" + entry + "' (" + where +
          ") must be `local` or `ssh:HOST`, optionally with a *N "
          "multiplier");
    }
    specs.push_back(std::move(spec));
  }
}

// --workers entries first, then the --hosts file (one entry per line,
// `#` comments); defaults to local*2 when both are empty. Names get a
// global #index suffix so duplicated entries stay distinguishable in the
// dispatch log.
std::vector<WorkerSpec> parse_worker_specs(const ScenarioOptions& options) {
  std::vector<WorkerSpec> specs;
  for (const std::string& entry : split_and_trim(options.workers_spec, ',')) {
    append_worker_entry(entry, "--workers", specs);
  }
  if (!options.hosts_path.empty()) {
    std::ifstream hosts(options.hosts_path);
    if (!hosts) {
      throw std::invalid_argument("cannot open --hosts file: " +
                                  options.hosts_path);
    }
    std::string line;
    while (std::getline(hosts, line)) {
      const std::size_t comment = line.find('#');
      if (comment != std::string::npos) line = line.substr(0, comment);
      line = trim_whitespace(line);
      if (line.empty()) continue;
      append_worker_entry(line, options.hosts_path, specs);
    }
  }
  if (specs.empty()) {
    append_worker_entry("local", "default", specs);
    append_worker_entry("local", "default", specs);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = (specs[i].local ? "local" : "ssh:" + specs[i].host) +
                    "#" + std::to_string(i);
  }
  return specs;
}

std::vector<std::unique_ptr<dist::WorkerTransport>> build_transports(
    const std::vector<WorkerSpec>& specs, const ScenarioOptions& options,
    dist::DispatchLog* log) {
  if (options.program.empty()) {
    throw std::invalid_argument(
        "dispatch needs the harness's own binary path for its workers; "
        "run through fairsched_exp");
  }
  const std::vector<std::string> ssh_command =
      split_and_trim(options.ssh_command, ' ');
  const std::string remote_program = options.remote_program.empty()
                                         ? options.program
                                         : options.remote_program;
  std::vector<std::unique_ptr<dist::WorkerTransport>> transports;
  transports.reserve(specs.size());
  for (const WorkerSpec& spec : specs) {
    std::unique_ptr<dist::WorkerTransport> transport;
    if (options.persistent_workers) {
      std::vector<std::string> session_argv;
      std::vector<std::string> fallback_argv;
      if (spec.local) {
        session_argv = {options.program, "shard-worker", "--session"};
        fallback_argv = {options.program, "shard-worker"};
      } else {
        session_argv = ssh_command;
        session_argv.insert(session_argv.end(),
                            {spec.host, remote_program, "shard-worker",
                             "--session"});
        fallback_argv = ssh_command;
        fallback_argv.insert(fallback_argv.end(),
                             {spec.host, remote_program, "shard-worker"});
      }
      transport = std::make_unique<dist::PersistentTransport>(
          spec.name, std::move(session_argv), std::move(fallback_argv), log);
    } else if (spec.local) {
      transport = std::make_unique<dist::LocalProcessTransport>(
          spec.name, options.program);
    } else {
      transport = std::make_unique<dist::SshTransport>(
          spec.name, ssh_command, spec.host, remote_program);
    }
    if (!spec.local && !options.worker_threads_explicit) {
      // Remote thread-budget fix: without --worker-threads the request
      // would carry a share of the *local* host's budget; send 0 instead,
      // which the worker resolves to its own hardware concurrency
      // (dist/protocol.h).
      transport->set_thread_override(0);
    }
    transports.push_back(std::move(transport));
  }
  return transports;
}

// The request every attempt shares: the original argv with the
// orchestration, reporting and dispatch-layer flags stripped (each is
// either re-derived per attempt or meaningless on a worker), the
// subcommand swapped for --sweep's scenario, and the --config file's
// bytes embedded for hosts without the file.
dist::DispatchRequest build_dispatch_request(const ScenarioOptions& options,
                                             const SweepPlan& plan,
                                             std::size_t worker_count) {
  dist::DispatchRequest request;
  request.fingerprint = plan.fingerprint;
  if (options.worker_threads) {
    request.threads = options.worker_threads;
  } else {
    // Local-first default: split this host's thread budget across the
    // workers, exactly like --processes does. Genuinely remote fleets
    // should set --worker-threads (or 0 threads per host is never
    // picked: at least 1).
    const std::size_t budget =
        options.threads ? options.threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
    request.threads = std::max<std::size_t>(1, budget / worker_count);
  }
  request.args.push_back(options.sweep);
  std::vector<std::string> tail;
  if (!options.raw_args.empty()) {
    tail.assign(options.raw_args.begin() + 1, options.raw_args.end());
  }
  tail = drop_flag_tokens(
      tail, {"processes", "shard", "partial-out", "csv", "json",
             "stream-records", "threads", "config", "workers", "hosts",
             "ssh-cmd", "remote-program", "sweep", "shards",
             "worker-threads", "timeout-ms", "retries", "backoff-ms",
             "backoff-cap-ms", "artifact-dir", "dispatch-log", "resume",
             "dry-run", "persistent-workers", "speculate",
             "speculate-factor", "dispatch-bench", "bench-repeats"});
  request.args.insert(request.args.end(), tail.begin(), tail.end());
  if (!options.config_path.empty()) {
    std::ifstream config(options.config_path, std::ios::binary);
    if (!config) {
      throw std::invalid_argument("cannot read --config file to embed: " +
                                  options.config_path);
    }
    std::ostringstream content;
    content << config.rdbuf();
    request.config_content = content.str();
    request.config_name =
        std::filesystem::path(options.config_path).filename().string();
  }
  return request;
}

void print_worker_summaries(const dist::Dispatcher& dispatcher,
                            std::FILE* human) {
  for (const auto& worker : dispatcher.workers()) {
    const std::string line = worker->summary();
    if (!line.empty()) {
      std::fprintf(human, "  worker %s: %s\n", worker->name().c_str(),
                   line.c_str());
    }
  }
}

// --dispatch-bench: run the identical dispatch --bench-repeats times in
// spawn-per-attempt mode, then again over one set of persistent sessions
// (the Dispatcher is reused, so sessions — and their caches — stay warm
// across repeats), assert the two modes' CSVs are byte-identical, and
// write the BENCH_dispatch.json record CI gates against
// bench/baselines/dispatch.json. Repeat 1 of session mode is the cold
// session (spawn + first plan parse); repeats 2+ are fully warm.
int run_dispatch_bench(const ScenarioOptions& options, const SweepPlan& plan,
                       const std::vector<WorkerSpec>& specs,
                       const dist::DispatchOptions& dispatch_options,
                       const dist::DispatchRequest& request,
                       dist::DispatchLog* log, std::FILE* human) {
  const std::size_t repeats = std::max<std::size_t>(2, options.bench_repeats);
  auto csv_of = [](const MergedSweep& merged) {
    std::ostringstream out;
    CsvReporter csv(out);
    csv.report(merged.spec, merged.result);
    return out.str();
  };
  auto elapsed_ms = [](std::chrono::steady_clock::time_point since) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
  };
  // Mean over repeats 2..R — the warm measurement for either mode.
  auto warm_mean = [](const std::vector<double>& walls) {
    double sum = 0.0;
    for (std::size_t i = 1; i < walls.size(); ++i) sum += walls[i];
    return sum / static_cast<double>(walls.size() - 1);
  };

  std::vector<double> spawn_ms;
  std::string spawn_csv;
  {
    ScenarioOptions mode = options;
    mode.persistent_workers = false;
    dist::Dispatcher dispatcher(build_transports(specs, mode, log),
                                dispatch_options, log);
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto started = std::chrono::steady_clock::now();
      const MergedSweep merged = dispatcher.run(plan, request);
      spawn_ms.push_back(elapsed_ms(started));
      if (r == 0) spawn_csv = csv_of(merged);
      std::fprintf(human, "  spawn   repeat %zu/%zu: %.1f ms\n", r + 1,
                   repeats, spawn_ms.back());
      std::fflush(human);
    }
  }

  std::vector<double> session_ms;
  std::string session_csv;
  dist::PersistentTransport::SessionStats session_totals;
  {
    ScenarioOptions mode = options;
    mode.persistent_workers = true;
    dist::Dispatcher dispatcher(build_transports(specs, mode, log),
                                dispatch_options, log);
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto started = std::chrono::steady_clock::now();
      const MergedSweep merged = dispatcher.run(plan, request);
      session_ms.push_back(elapsed_ms(started));
      if (r == 0) session_csv = csv_of(merged);
      std::fprintf(human, "  session repeat %zu/%zu: %.1f ms\n", r + 1,
                   repeats, session_ms.back());
      std::fflush(human);
    }
    for (const auto& worker : dispatcher.workers()) {
      const auto* persistent =
          dynamic_cast<const dist::PersistentTransport*>(worker.get());
      if (persistent == nullptr) continue;
      const dist::PersistentTransport::SessionStats stats =
          persistent->session_stats();
      session_totals.opens += stats.opens;
      session_totals.served += stats.served;
      session_totals.fallback += stats.fallback;
      session_totals.cache_hits += stats.cache_hits;
      session_totals.cache_misses += stats.cache_misses;
      session_totals.disk_hits += stats.disk_hits;
      session_totals.replayed += stats.replayed;
    }
    print_worker_summaries(dispatcher, human);
  }

  if (spawn_csv != session_csv) {
    throw std::runtime_error(
        "--dispatch-bench: the persistent-session CSV differs from the "
        "spawn-per-attempt CSV — the dispatch-determinism contract is "
        "broken");
  }

  const double spawn_warm = warm_mean(spawn_ms);
  const double session_warm = warm_mean(session_ms);
  const double warm_speedup =
      session_warm > 0.0 ? spawn_warm / session_warm : 0.0;
  std::fprintf(human,
               "dispatch bench: spawn warm %.1f ms, session warm %.1f ms "
               "(cold %.1f ms), warm speedup %.2fx, %zu session(s) served "
               "%zu shard(s)\n",
               spawn_warm, session_warm, session_ms.front(), warm_speedup,
               session_totals.opens, session_totals.served);

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"dispatch\",\n";
  json << "  \"sweep\": \"" << options.sweep << "\",\n";
  json << "  \"workers\": " << specs.size() << ",\n";
  json << "  \"shards\": " << dispatch_options.shard_count << ",\n";
  json << "  \"repeats\": " << repeats << ",\n";
  auto write_walls = [&json](const char* key,
                             const std::vector<double>& walls) {
    json << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < walls.size(); ++i) {
      if (i) json << ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", walls[i]);
      json << buf;
    }
    json << "],\n";
  };
  write_walls("spawn_ms", spawn_ms);
  write_walls("session_ms", session_ms);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", spawn_warm);
  json << "  \"spawn_warm_ms\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", session_ms.front());
  json << "  \"session_cold_ms\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", session_warm);
  json << "  \"session_warm_ms\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", warm_speedup);
  json << "  \"warm_speedup\": " << buf << ",\n";
  json << "  \"session_opens\": " << session_totals.opens << ",\n";
  json << "  \"session_served\": " << session_totals.served << ",\n";
  json << "  \"session_fallback\": " << session_totals.fallback << ",\n";
  json << "  \"cache_hits\": " << session_totals.cache_hits << ",\n";
  json << "  \"cache_misses\": " << session_totals.cache_misses << ",\n";
  json << "  \"disk_hits\": " << session_totals.disk_hits << ",\n";
  json << "  \"replayed\": " << session_totals.replayed << ",\n";
  json << "  \"csv_identical\": true\n";
  json << "}\n";

  const std::string json_path =
      options.json_path.empty() ? "BENCH_dispatch.json" : options.json_path;
  if (json_path == "-") {
    std::fputs(json.str().c_str(), stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open bench output: %s\n",
                   json_path.c_str());
      return 2;
    }
    out << json.str();
    std::fprintf(human, "wrote dispatch bench record: %s\n",
                 json_path.c_str());
  }
  return 0;
}

}  // namespace

int run_dispatch_scenario(const ScenarioOptions& options) {
  if (!options.shard.empty() || !options.partial_out.empty() ||
      options.processes > 1) {
    throw std::invalid_argument(
        "dispatch does its own sharding; --shard/--partial-out/--processes "
        "belong to single-host execution");
  }
  if (!options.stream_records_path.empty()) {
    throw std::invalid_argument(
        "--stream-records does not cross host boundaries; run shards "
        "explicitly (--shard=i/N) to keep per-shard streams");
  }

  const SweepSpec spec = make_scenario_sweep(options.sweep, options);
  const SweepPlan plan = build_sweep_plan(spec, PolicyRegistry::global());
  const std::vector<WorkerSpec> specs = parse_worker_specs(options);
  const std::size_t shard_count =
      options.dispatch_shards ? options.dispatch_shards : specs.size();

  if (options.dry_run) {
    std::vector<std::string> names;
    names.reserve(specs.size());
    for (const WorkerSpec& spec_entry : specs) {
      names.push_back(spec_entry.name);
    }
    dist::write_dispatch_plan_json(std::cout, plan, shard_count, names);
    return 0;
  }

  const bool machine_stdout = options.csv_path == "-" ||
                              options.json_path == "-";
  std::FILE* human = machine_stdout ? stderr : stdout;
  if (!spec.title.empty()) std::fprintf(human, "%s\n", spec.title.c_str());
  std::fprintf(human,
               "dispatching %zu shard(s) over %zu worker(s)%s%s\n",
               shard_count, specs.size(),
               options.persistent_workers ? " [persistent sessions]" : "",
               options.speculate ? " [speculative re-execution]" : "");

  bool any_remote = false;
  for (const WorkerSpec& spec_entry : specs) {
    if (!spec_entry.local) any_remote = true;
  }
  if (any_remote && !options.worker_threads_explicit) {
    // The remote thread-budget footgun: without --worker-threads the
    // request's thread count is the *local* budget divided by the worker
    // count, which is meaningless on another host. build_transports
    // already overrides remote requests to threads=0 (worker hardware
    // concurrency); say so loudly.
    std::fprintf(stderr,
                 "warning: remote workers without --worker-threads — each "
                 "remote worker will use its own hardware concurrency "
                 "instead of a share of this host's budget; pass "
                 "--worker-threads=N to pin remote parallelism\n");
  }

  dist::DispatchOptions dispatch_options;
  dispatch_options.shard_count = shard_count;
  dispatch_options.shard_timeout =
      std::chrono::milliseconds(options.timeout_ms);
  dispatch_options.max_attempts = options.retries + 1;
  dispatch_options.backoff = std::chrono::milliseconds(options.backoff_ms);
  dispatch_options.backoff_cap =
      std::chrono::milliseconds(options.backoff_cap_ms);
  dispatch_options.artifact_dir = options.artifact_dir;
  dispatch_options.resume = options.resume_dispatch;
  dispatch_options.speculate = options.speculate;
  dispatch_options.speculate_factor = options.speculate_factor;
  if (options.dispatch_bench && options.resume_dispatch) {
    throw std::invalid_argument(
        "--dispatch-bench re-runs the same dispatch repeatedly; --resume "
        "would reuse the first repeat's artifacts and time nothing");
  }

  std::filesystem::create_directories(options.artifact_dir);
  const std::string log_path =
      options.dispatch_log_path.empty()
          ? options.artifact_dir + "/dispatch.log.jsonl"
          : options.dispatch_log_path;
  // Append: a --resume invocation extends the first run's log, so the
  // whole history of a recovered dispatch reads as one file.
  std::ofstream log_file(log_path, std::ios::app);
  if (!log_file) {
    std::fprintf(stderr, "cannot open dispatch log: %s\n", log_path.c_str());
    return 2;
  }
  dist::DispatchLog log(log_file);

  const dist::DispatchRequest request =
      build_dispatch_request(options, plan, specs.size());
  if (options.dispatch_bench) {
    return run_dispatch_bench(options, plan, specs, dispatch_options,
                              request, &log, human);
  }
  dist::Dispatcher dispatcher(build_transports(specs, options, &log),
                              dispatch_options, &log);
  const MergedSweep merged = dispatcher.run(
      plan, request, [human](const std::string& message) {
        std::fprintf(human, "  finished %s\n", message.c_str());
        std::fflush(human);
      });
  const dist::DispatchStats& stats = dispatcher.stats();
  std::fprintf(human,
               "dispatch done: %zu shard(s), %zu attempt(s), %zu "
               "failure(s), %zu resumed, %zu quarantined; log: %s\n",
               stats.shard_count, stats.attempts, stats.failed_attempts,
               stats.resumed, stats.quarantined, log_path.c_str());
  if (options.speculate) {
    std::fprintf(human,
                 "  speculation: %zu duplicate attempt(s), %zu finished "
                 "second (digest-identical), %zu canceled\n",
                 stats.speculative, stats.duplicate_losses,
                 stats.duplicate_canceled);
  }
  print_worker_summaries(dispatcher, human);

  const SweepResult& result = merged.result;
  TableReporter table(machine_stdout ? std::cerr : std::cout);
  table.report(merged.spec, result);
  // Strategy sweeps report manipulation gain over the merged cells —
  // byte-identical to the single-host run's report, since both derive
  // from (spec, cell aggregates) alone.
  int thm41_rc = 0;
  if (merged.spec.is_strategy()) {
    strategy::print_strategy_report(merged.spec, result,
                                    machine_stdout ? std::cerr : std::cout);
    if (options.check_thm41) {
      thm41_rc = strategy::check_theorem41(
                     merged.spec, result, options.thm41_tolerance,
                     machine_stdout ? std::cerr : std::cout)
                     ? 1
                     : 0;
    }
  }
  if (!spec.note.empty()) std::fprintf(human, "\n%s\n", spec.note.c_str());

  if (!options.csv_path.empty()) {
    if (options.csv_path == "-") {
      CsvReporter csv(std::cout);
      csv.report(merged.spec, result);
    } else {
      std::ofstream out(options.csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot open CSV output: %s\n",
                     options.csv_path.c_str());
        return 2;
      }
      CsvReporter csv(out);
      csv.report(merged.spec, result);
      std::fprintf(human, "wrote CSV: %s\n", options.csv_path.c_str());
    }
  }
  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      JsonReporter json(std::cout);
      json.report(merged.spec, result);
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open JSON output: %s\n",
                     options.json_path.c_str());
        return 2;
      }
      JsonReporter json(out);
      json.report(merged.spec, result);
      std::fprintf(human, "wrote perf baseline: %s\n",
                   options.json_path.c_str());
    }
  }
  return thm41_rc;
}

namespace {

// Scratch directory for a worker's embedded config, removed on exit.
struct WorkerScratch {
  std::filesystem::path dir;
  ~WorkerScratch() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

std::string sanitize_filename(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? "sweep.config" : out;
}

// The session worker's process-lifetime cache and the identity it was
// built for. In-memory cache keys are plan-positional ("p|g|w|i"), so the
// cache is only reusable across requests whose plans fingerprint equal;
// any identity change rebuilds it from scratch.
struct SessionCache {
  std::unique_ptr<WorkloadCache> cache;
  std::uint64_t fingerprint = 0;
  std::size_t bytes = 0;
  std::string dir;
};

// One dispatch request, shared by the one-shot (v1) and session (v2)
// worker paths: rebuild the spec from the request args, refuse on
// fingerprint mismatch, execute the shard, frame the artifact to stdout.
// Returns false when stdout failed (the session must end — the
// dispatcher's framing is broken).
bool serve_dispatch_request(const dist::DispatchRequest& request_in,
                            SessionCache* session, std::size_t sequence) {
  dist::DispatchRequest request = request_in;
  WorkerScratch scratch;
  if (!request.config_content.empty() || !request.config_name.empty()) {
    scratch.dir = std::filesystem::temp_directory_path() /
                  ("fairsched-worker-" + std::to_string(::getpid()) + "-" +
                   std::to_string(sequence));
    std::filesystem::create_directories(scratch.dir);
    const std::filesystem::path config_path =
        scratch.dir / sanitize_filename(request.config_name);
    std::ofstream out(config_path, std::ios::binary);
    out.write(request.config_content.data(),
              static_cast<std::streamsize>(request.config_content.size()));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("shard-worker: cannot write embedded config "
                               "to " +
                               config_path.string());
    }
    request.args.push_back("--config=" + config_path.string());
  }

  const std::string command = request.args.front();
  // Flags skips argv[0] (the program slot); the subcommand fills it.
  std::vector<const char*> argv;
  argv.reserve(request.args.size());
  for (const std::string& arg : request.args) argv.push_back(arg.c_str());
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  ScenarioOptions options = scenario_options_from_flags(flags);

  SweepSpec spec = make_scenario_sweep(command, options);
  // The dispatcher owns the thread budget; the request's value beats both
  // the spec default and any FAIRSCHED_THREADS in this host's
  // environment. 0 = this worker's own hardware concurrency
  // (dist/protocol.h) — the remote-fleet default.
  spec.threads = request.threads;

  const SweepPlan plan =
      build_sweep_plan(spec, PolicyRegistry::global(),
                       SweepShard{request.shard, request.shard_count});
  if (plan.fingerprint != request.fingerprint) {
    // The dispatch-determinism contract's front door: a worker whose
    // rebuilt plan differs (version skew, stray FAIRSCHED_* env var,
    // different registry) must refuse before spending any compute —
    // its artifact could never merge anyway.
    throw std::runtime_error(
        "shard-worker: rebuilt plan fingerprint does not match the "
        "request; this worker would compute a different sweep (check for "
        "binary version skew or FAIRSCHED_* environment overrides)");
  }

  SweepResult result;
  if (session) {
    if (!session->cache || session->fingerprint != plan.fingerprint ||
        session->bytes != spec.cache_bytes ||
        session->dir != spec.cache_dir) {
      session->cache = std::make_unique<WorkloadCache>(
          spec.cache_bytes, spec.cache_dir, /*retain=*/true);
      session->fingerprint = plan.fingerprint;
      session->bytes = spec.cache_bytes;
      session->dir = spec.cache_dir;
    }
    ThreadPoolExecutor executor(session->cache.get());
    result = executor.execute(plan);
  } else {
    ThreadPoolExecutor executor;
    result = executor.execute(plan);
  }

  std::ostringstream artifact;
  write_shard_artifact(artifact, plan, result);
  if (session) {
    // The stat footer feeds the dispatcher's per-worker session summary.
    // Counters are this call's delta (exp/executor.h), so the artifact
    // stays comparable to a per-run-cache worker's.
    const std::vector<std::pair<std::string, std::uint64_t>> stats = {
        {"cache_hits", result.cache.hits},
        {"cache_misses", result.cache.misses},
        {"disk_hits", result.cache.disk_hits},
        {"replayed", result.replayed_runs},
    };
    dist::write_session_artifact_frame(std::cout, request.shard,
                                       request.shard_count, artifact.str(),
                                       stats);
  } else {
    dist::write_artifact_frame(std::cout, request.shard,
                               request.shard_count, artifact.str());
  }
  std::cout.flush();
  if (!std::cout.good()) {
    std::fprintf(stderr, "shard-worker: failed writing artifact frame\n");
    return false;
  }
  std::fprintf(stderr, "shard-worker: shard %zu/%zu done (%zu of %zu "
                       "tasks)\n",
               request.shard, request.shard_count, plan.shard_tasks.size(),
               plan.num_tasks);
  return true;
}

}  // namespace

int run_shard_worker_scenario(bool session) {
  if (!session) {
    const dist::DispatchRequest request =
        dist::read_dispatch_request(std::cin);
    return serve_dispatch_request(request, nullptr, 0) ? 0 : 2;
  }

  // Protocol v2: announce the session (the hello doubles as the version
  // handshake and carries this host's hardware concurrency for the
  // dispatcher's remote thread-budget default), then serve request after
  // request over the same connection. The workload cache outlives
  // requests, so later shards of the same plan re-serve each other's
  // prefixes instead of recomputing them.
  dist::SessionHello hello;
  hello.threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  dist::write_session_hello(std::cout, hello);
  std::cout.flush();
  if (!std::cout.good()) {
    std::fprintf(stderr, "shard-worker: failed writing session hello\n");
    return 2;
  }

  SessionCache cache;
  std::size_t served = 0;
  while (true) {
    dist::DispatchRequest request;
    switch (dist::read_session_command(std::cin, &request)) {
      case dist::SessionCommand::kGoodbye:
        std::fprintf(stderr,
                     "shard-worker: session goodbye after %zu shard(s)\n",
                     served);
        return 0;
      case dist::SessionCommand::kEof:
        // The dispatcher hung up (done, or tearing this session down).
        std::fprintf(stderr,
                     "shard-worker: session eof after %zu shard(s)\n",
                     served);
        return 0;
      case dist::SessionCommand::kRequest:
        break;
    }
    if (!serve_dispatch_request(request, &cache, served)) return 2;
    ++served;
  }
}

}  // namespace fairsched::exp
