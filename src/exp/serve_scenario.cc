// The `serve` and `replay` subcommands of fairsched_exp — the CLI shell
// over src/serve (see serve/session.h for the loop and the differential
// replay contract these two sides enforce together).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/policy_registry.h"
#include "exp/scenarios.h"
#include "exp/sweep_config.h"
#include "serve/event_source.h"
#include "serve/live_instance.h"
#include "serve/session.h"
#include "sim/policy.h"

namespace fairsched::exp {

namespace {

using serve::EventSource;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServeSession;
using serve::SyntheticEventSource;
using serve::SyntheticServeSpec;
using serve::TraceEventSource;

// Synthetic defaults: --smoke is the CI/bench configuration (10^5
// resident organizations, 2*10^5 arrivals at an overloading rate so a
// backlog actually forms); the bare default is a laptop-sized session.
SyntheticServeSpec synthetic_spec(const ScenarioOptions& options) {
  SyntheticServeSpec spec;
  spec.orgs = options.orgs_explicit ? options.orgs
              : options.smoke      ? 100000
                                   : 100;
  spec.machines_per_org = options.machines_per_org;
  spec.events = options.serve_events != 0 ? options.serve_events
                : options.smoke          ? 200000
                                         : 10000;
  // Demand = rate * E[lognormal(3,1)] ~ rate * 33 unit parts per time
  // unit; the smoke default oversubscribes 10^5 machines ~1.7x.
  spec.arrival_rate = options.arrival_rate > 0.0 ? options.arrival_rate
                      : options.smoke           ? 5000.0
                                                : 10.0;
  spec.zipf_s = options.zipf_s;
  spec.seed = options.seed;
  return spec;
}

// Builds the event source named by --source. The istream behind a trace
// source must outlive it, so the file stream is handed back too.
struct SourceHandle {
  std::unique_ptr<std::ifstream> file;
  std::unique_ptr<EventSource> source;
  std::string label;  // for the report
};

SourceHandle open_source(const ScenarioOptions& options) {
  SourceHandle handle;
  if (options.source == "synthetic") {
    handle.source =
        std::make_unique<SyntheticEventSource>(synthetic_spec(options));
    handle.label = "synthetic";
    return handle;
  }
  if (options.source == "stdin" || options.source == "-") {
    handle.source = std::make_unique<TraceEventSource>(std::cin, "stdin");
    handle.label = "stdin";
    return handle;
  }
  handle.file = std::make_unique<std::ifstream>(options.source);
  if (!*handle.file) {
    throw std::invalid_argument("cannot open trace file: " + options.source);
  }
  handle.source =
      std::make_unique<TraceEventSource>(*handle.file, options.source);
  handle.label = options.source;
  return handle;
}

// Resolves --policy (after --config registered any config-defined
// entries) and rejects the shapes serve mode cannot drive: whole-schedule
// algorithms (REF/RAND) re-plan globally instead of deciding per event,
// and kRandomFree entries (DIRECTCONTR) need the legacy presorted-release
// engine structures.
std::unique_ptr<Policy> make_serve_policy(const ScenarioOptions& options,
                                          std::string* canonical) {
  if (!options.config_path.empty()) {
    load_sweep_config_file(options.config_path, options);  // registers
  }
  PolicyRegistry& registry = PolicyRegistry::global();
  const PolicySpec spec = registry.make(options.policy);
  const PolicyRegistry::Definition* definition = registry.find(spec.base);
  if (!definition->policy) {
    throw std::invalid_argument(
        "policy '" + options.policy +
        "' builds whole schedules (REF/RAND); serve mode drives "
        "policy-shaped entries only");
  }
  if (definition->engine_options.machine_pick != MachinePick::kFirstFree) {
    throw std::invalid_argument(
        "policy '" + options.policy +
        "' needs the random-free machine pick, which serve mode does not "
        "support");
  }
  *canonical = registry.canonical_name(spec);
  return registry.make_policy(spec, options.seed);
}

// Opens a --decisions / --record-trace sink ("" = none, "-" = stdout).
struct SinkHandle {
  std::unique_ptr<std::ofstream> file;
  std::ostream* stream = nullptr;
};

SinkHandle open_sink(const std::string& path, const char* what) {
  SinkHandle handle;
  if (path.empty()) return handle;
  if (path == "-") {
    handle.stream = &std::cout;
    return handle;
  }
  handle.file = std::make_unique<std::ofstream>(path);
  if (!*handle.file) {
    throw std::invalid_argument(std::string("cannot open ") + what +
                                " output: " + path);
  }
  handle.stream = handle.file.get();
  return handle;
}

int write_report(const ScenarioOptions& options, const ServeReport& report,
                 const std::string& policy, const std::string& source) {
  std::string json_path = options.json_path;
  if (json_path.empty() && options.smoke) json_path = "BENCH_serve.json";
  if (json_path.empty()) return 0;
  if (json_path == "-") {
    serve::write_report_json(std::cout, report, policy, source);
    return 0;
  }
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open JSON output: %s\n", json_path.c_str());
    return 2;
  }
  serve::write_report_json(out, report, policy, source);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int run_serve_scenario(const ScenarioOptions& options) {
  std::string canonical;
  std::unique_ptr<Policy> policy = make_serve_policy(options, &canonical);
  SourceHandle source = open_source(options);
  SinkHandle decisions = open_sink(options.decisions_path, "decision");
  SinkHandle record = open_sink(options.record_trace_path, "trace");

  ServeOptions serve_options;
  serve_options.horizon = options.duration;
  serve_options.stats_interval = options.stats_interval;
  serve_options.stats = &std::cerr;  // decision/report streams own stdout
  serve_options.decisions = decisions.stream;
  serve_options.record_trace = record.stream;

  ServeSession session(source.source->machines(), std::move(policy),
                       serve_options);
  session.run(*source.source);

  const ServeReport& report = session.report();
  const bool stdout_taken =
      options.decisions_path == "-" || options.json_path == "-";
  if (!stdout_taken) {
    std::ostringstream summary;
    serve::write_report_json(summary, report, canonical, source.label);
    std::fputs(summary.str().c_str(), stdout);
  }
  return write_report(options, report, canonical, source.label);
}

int run_replay_scenario(const ScenarioOptions& options) {
  std::string canonical;
  std::unique_ptr<Policy> policy = make_serve_policy(options, &canonical);
  SourceHandle source = open_source(options);
  const Instance inst = serve::materialize_trace(*source.source);

  // Default the decision stream to stdout: replay exists to produce the
  // batch side of a `diff`.
  const std::string decisions_path =
      options.decisions_path.empty() ? "-" : options.decisions_path;
  SinkHandle decisions = open_sink(decisions_path, "decision");

  const std::uint64_t count =
      serve::replay_batch(inst, *policy, options.duration, decisions.stream);
  std::fprintf(stderr, "replayed %llu decisions over %u orgs, %zu jobs\n",
               static_cast<unsigned long long>(count), inst.num_orgs(),
               inst.num_jobs());
  return 0;
}

}  // namespace fairsched::exp
