#include "exp/sweep_config.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string>

#include "util/cli.h"

namespace fairsched::exp {

namespace {

constexpr std::size_t kMaxRangeValues = 100000;

std::string trim(const std::string& s) { return trim_whitespace(s); }

double parse_number(const std::string& token) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("expected a number, got '" + token + "'");
  }
  if (pos != token.size()) {
    throw std::invalid_argument("expected a number, got '" + token + "'");
  }
  return value;
}

std::int64_t parse_integer(const std::string& token) {
  const double value = parse_number(token);
  // Range-check before the round-trip cast: double -> int64 overflow is
  // undefined behavior.
  constexpr double kIntLimit = 9.0e18;
  if (!(value > -kIntLimit && value < kIntLimit)) {
    throw std::invalid_argument("expected an integer, got '" + token + "'");
  }
  const auto integral = static_cast<std::int64_t>(value);
  if (value != static_cast<double>(integral)) {
    throw std::invalid_argument("expected an integer, got '" + token + "'");
  }
  return integral;
}

// One token of an axis value list: a number, a split label, or an
// inclusive lo:hi[:step] range. Axis names resolve through the registry
// that also receives the file's [policy NAME] blocks, so config-declared
// parameter axes work whatever registry the caller supplied.
void append_axis_token(const SweepAxis& axis, const std::string& token,
                       std::vector<double>& values) {
  if (axis.bind == SweepAxis::Bind::kSplit) {
    if (token == "zipf") {
      values.push_back(0.0);
      return;
    }
    if (token == "uniform") {
      values.push_back(1.0);
      return;
    }
  }
  if (token.find(':') == std::string::npos) {
    values.push_back(parse_number(token));
    return;
  }
  // split_and_trim drops empty tokens, so catch empty fields ("2::8",
  // ":2", "2:") explicitly — they are typos, not step-1 ranges.
  const std::vector<std::string> parts = split_and_trim(token, ':');
  if (parts.size() < 2 || parts.size() > 3 || token.front() == ':' ||
      token.back() == ':' || token.find("::") != std::string::npos) {
    throw std::invalid_argument("malformed range '" + token +
                                "' (want lo:hi or lo:hi:step)");
  }
  const double lo = parse_number(parts[0]);
  const double hi = parse_number(parts[1]);
  const double step = parts.size() == 3 ? parse_number(parts[2]) : 1.0;
  if (!(step > 0)) {
    throw std::invalid_argument("range step must be positive in '" + token +
                                "' (ranges expand ascending; list values "
                                "explicitly for descending order)");
  }
  if (hi < lo) {
    throw std::invalid_argument("descending range '" + token +
                                "' (hi < lo): ranges expand ascending; "
                                "list the values explicitly instead");
  }
  // Index-based expansion (lo + i*step, never v += step): accumulation
  // drift would otherwise drop the documented-inclusive endpoint of long
  // fractional ranges. Relative slack snaps a nearly-integral span to the
  // endpoint.
  const double span = (hi - lo) / step;
  const double rounded = std::round(span);
  const bool lands_on_hi =
      std::abs(span - rounded) <= 1e-6 * std::max(1.0, std::abs(rounded));
  const double steps_d = lands_on_hi ? rounded : std::floor(span);
  if (steps_d + 1 > static_cast<double>(kMaxRangeValues)) {
    throw std::invalid_argument("range '" + token + "' expands to more "
                                "than " +
                                std::to_string(kMaxRangeValues) + " values");
  }
  const auto steps = static_cast<std::size_t>(steps_d);
  for (std::size_t i = 0; i <= steps; ++i) {
    values.push_back(i == steps && lands_on_hi ? hi : lo + i * step);
  }
}

SweepAxis parse_axis(const std::string& name, const std::string& value,
                     const PolicyRegistry& registry =
                         PolicyRegistry::global()) {
  SweepAxis axis = make_axis(name, {}, registry);
  const std::vector<std::string> tokens = split_and_trim(value, ',');
  if (tokens.empty()) {
    throw std::invalid_argument("axis '" + name + "' has no values");
  }
  for (const std::string& token : tokens) {
    append_axis_token(axis, token, axis.values);
  }
  return axis;
}

}  // namespace

std::vector<SweepAxis> parse_axes_spec(const std::string& text) {
  std::vector<SweepAxis> axes;
  for (const std::string& part : split_and_trim(text, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("malformed axis spec '" + part +
                                  "' (want name=v1,v2,...)");
    }
    axes.push_back(parse_axis(trim(part.substr(0, eq)),
                              trim(part.substr(eq + 1))));
  }
  return axes;
}

SweepSpec parse_sweep_config(std::istream& in, const std::string& source,
                             const ScenarioOptions& defaults,
                             PolicyRegistry& registry) {
  ScenarioOptions options = defaults;
  std::vector<SweepAxis> axes;
  bool axes_in_file = false;
  std::string name, title, note, baseline;
  bool has_name = false, has_title = false, has_note = false,
       has_baseline = false;

  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument(source + ":" + std::to_string(lineno) +
                                ": " + why);
  };

  // Axis lines, parsed only after every [policy NAME] block is
  // registered so policy-parameter axes resolve regardless of file order.
  struct AxisLine {
    int lineno = 0;
    std::string name;
    std::string value;
  };
  std::vector<AxisLine> axis_lines;

  // `[strategy]` section: the manipulation-sweep dimensions (deviation
  // grid + deviating organizations). Its presence alone opts the sweep
  // into strategy mode with the default grid.
  bool in_strategy_block = false;
  bool strategy_in_file = false;

  // `[policy NAME]` section state. Blocks register as they end (the next
  // section header or EOF), in file order, so later blocks and the
  // `policies` list can reference earlier names.
  bool in_policy_block = false;
  ConfigPolicyDef block;
  int block_line = 0;
  std::vector<std::string> defined_names;
  auto finish_policy_block = [&]() -> void {
    if (!in_policy_block) return;
    in_policy_block = false;
    try {
      register_config_policy(registry, block);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(source + ":" +
                                  std::to_string(block_line) + ": " +
                                  e.what());
    }
    defined_names.push_back(block.name);
    block = ConfigPolicyDef{};
  };

  while (std::getline(in, line)) {
    ++lineno;
    line = trim(line.substr(0, line.find('#')));
    if (line.empty()) continue;

    if (line.front() == '[') {
      finish_policy_block();
      in_strategy_block = false;
      if (line.back() != ']') fail("section header missing ']'");
      const std::vector<std::string> header =
          split_and_trim(line.substr(1, line.size() - 2), ' ');
      if (header.size() == 1 && header[0] == "sweep") {
        continue;  // back to top-level keys after a [policy] block
      }
      if (header.size() == 1 && header[0] == "strategy") {
        in_strategy_block = true;
        strategy_in_file = true;
        continue;
      }
      if (header.size() != 2 || header[0] != "policy") {
        fail("unknown section '" + line +
             "' (want [policy NAME], [strategy] or [sweep])");
      }
      in_policy_block = true;
      block = ConfigPolicyDef{};
      block.name = header[1];
      block_line = lineno;
      for (const std::string& existing : defined_names) {
        if (existing == block.name) {
          fail("duplicate [policy " + block.name + "] section");
        }
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail("expected 'key = value', got '" + line + "'");
    }
    std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (in_strategy_block) {
      const std::string normalized = normalize_axis_name(key);
      if (normalized == "deviations") {
        options.deviations = value;
      } else if (normalized == "deviatororgs") {
        options.deviator_orgs = value;
      } else {
        fail("unknown [strategy] key '" + key +
             "'; known keys: deviations, deviator-orgs");
      }
      continue;
    }

    if (in_policy_block) {
      const std::string normalized = normalize_axis_name(key);
      if (normalized == "base") {
        block.base = value;
      } else if (normalized == "description") {
        block.description = value;
      } else if (normalized == "switch") {
        block.switch_policies = split_and_trim(value, ',');
      } else if (normalized == "switchat") {
        block.switch_at = value;
      } else if (normalized == "mix") {
        for (const std::string& part : split_and_trim(value, ',')) {
          const std::size_t colon = part.rfind(':');
          if (colon == std::string::npos) {
            fail("mix entry '" + part + "' needs a ':WEIGHT' suffix");
          }
          double weight = 0.0;
          try {
            weight = parse_number(trim(part.substr(colon + 1)));
          } catch (const std::invalid_argument& e) {
            fail(e.what());
          }
          block.mixture.emplace_back(trim(part.substr(0, colon)), weight);
        }
      } else {
        // Any other key is a parameter override of the block's base;
        // validity is checked at registration, with did-you-mean.
        block.overrides.emplace_back(key, value);
      }
      continue;
    }

    try {
      if (key.rfind("axis ", 0) == 0 || key.rfind("axis\t", 0) == 0) {
        // Deferred until EOF: an axis may name a parameter a later
        // [policy NAME] block declares, whatever the file order.
        axis_lines.push_back({lineno, trim(key.substr(5)), value});
        axes_in_file = true;
        continue;
      }
      // Config keys follow the same spelling rules as axis names.
      const std::string normalized = normalize_axis_name(key);
      if (normalized == "name") {
        name = value;
        has_name = true;
      } else if (normalized == "title") {
        title = value;
        has_title = true;
      } else if (normalized == "note") {
        note = value;
        has_note = true;
      } else if (normalized == "baseline") {
        baseline = value == "none" ? "" : value;
        has_baseline = true;
      } else if (normalized == "policies") {
        options.policies = value;
      } else if (normalized == "workload") {
        options.workload = value;
      } else if (normalized == "instances") {
        const std::int64_t v = parse_integer(value);
        if (v < 1) fail("instances must be >= 1");
        options.instances = static_cast<std::size_t>(v);
      } else if (normalized == "duration" || normalized == "horizon") {
        const std::int64_t v = parse_integer(value);
        if (v < 1) fail("duration must be >= 1");
        options.duration = static_cast<Time>(v);
      } else if (normalized == "orgs") {
        const std::int64_t v = parse_integer(value);
        if (v < 1 || v > 4294967295) fail("orgs must be in [1, 2^32-1]");
        options.orgs = static_cast<std::uint32_t>(v);
      } else if (normalized == "seed") {
        options.seed = static_cast<std::uint64_t>(parse_integer(value));
      } else if (normalized == "scale") {
        const double v = parse_number(value);
        if (!(v > 0)) fail("scale must be positive");
        options.scale = v;
      } else if (normalized == "split") {
        if (value == "zipf") {
          options.split = MachineSplit::kZipf;
        } else if (value == "uniform") {
          options.split = MachineSplit::kUniform;
        } else {
          fail("split must be zipf or uniform, got '" + value + "'");
        }
      } else if (normalized == "zipfs") {
        options.zipf_s = parse_number(value);
      } else if (normalized == "threads") {
        const std::int64_t v = parse_integer(value);
        if (v < 0) fail("threads must be non-negative");
        options.threads = static_cast<std::size_t>(v);
      } else if (normalized == "cachemb") {
        const std::int64_t v = parse_integer(value);
        if (v < 0) fail("cache-mb must be non-negative");
        options.cache_mb = static_cast<std::size_t>(v);
        // cache-mb sizes the budget; only 0 is also a disable. A positive
        // value must not silently override an explicit --no-cache — the
        // `cache = on` key is the deliberate re-enable.
        if (v == 0) options.no_cache = true;
      } else if (normalized == "cache") {
        if (value == "on") {
          options.no_cache = false;
        } else if (value == "off") {
          options.no_cache = true;
        } else {
          fail("cache must be on or off, got '" + value + "'");
        }
      } else if (normalized == "jobsperorg") {
        const std::int64_t v = parse_integer(value);
        if (v < 1 || v > 4294967295) {
          fail("jobs-per-org must be in [1, 2^32-1]");
        }
        options.jobs_per_org = static_cast<std::uint32_t>(v);
      } else {
        fail("unknown key '" + key +
             "'; known keys: name, title, note, baseline, policies, "
             "workload, instances, duration, orgs, seed, scale, split, "
             "zipf-s, threads, cache-mb, cache, jobs-per-org, axis <name>");
      }
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      // Errors from the helpers lack the <source>:<line> prefix; fail()'s
      // own exceptions already carry it.
      if (what.rfind(source + ":", 0) == 0) throw;
      fail(what);
    }
  }
  finish_policy_block();

  for (const AxisLine& axis_line : axis_lines) {
    lineno = axis_line.lineno;
    try {
      const SweepAxis axis =
          parse_axis(axis_line.name, axis_line.value, registry);
      for (const SweepAxis& existing : axes) {
        if (existing.name == axis.name) {
          fail("duplicate axis '" + axis.name + "'");
        }
      }
      axes.push_back(axis);
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      if (what.rfind(source + ":", 0) == 0) throw;
      fail(what);
    }
  }

  SweepSpec spec;
  try {
    spec = make_custom_sweep(options);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(source + ": " + e.what());
  }
  if (axes_in_file) spec.axes = axes;
  // [strategy] dimensions append after the file's own axes, so explicit
  // axis lines and the strategy grid compose.
  if (strategy_in_file) {
    try {
      apply_strategy_axes(spec, options);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(source + ": " + e.what());
    }
  }
  if (has_name) spec.name = name;
  // The default title was composed before the file's axes were applied;
  // recompute it unless the file supplies its own.
  spec.title = has_title ? title : custom_sweep_title(spec);
  if (has_note) spec.note = note;
  if (has_baseline) spec.baseline = baseline;
  return spec;
}

SweepSpec load_sweep_config_file(const std::string& path,
                                 const ScenarioOptions& defaults) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read sweep config: " + path);
  }
  return parse_sweep_config(in, path, defaults);
}

}  // namespace fairsched::exp
