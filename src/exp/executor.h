#pragma once

// The execution layer of the sweep engine: everything below a SweepPlan.
//
// An Executor turns a plan (exp/sweep_plan.h) into a SweepResult. Two
// implementations:
//
//   * ThreadPoolExecutor — in-process: shards the plan's owned tasks over
//     the shared ThreadPool and folds records through a bounded reorder
//     window in the fixed deterministic order (axis point, workload,
//     instance, policy), so output is bit-identical whatever the thread
//     count. Policy-independent prefixes flow through the WorkloadCache,
//     including its optional disk tier (spec.cache_dir).
//
//   * MultiProcessExecutor — runs one `fairsched_exp shard-worker`
//     subprocess per shard through the distributed dispatcher
//     (dist/dispatcher.h) with local process transports, and folds the
//     shard artifacts (exp/sweep_artifact.h) in plan order. The merged
//     result is bit-identical to a whole single-process run: each
//     per-cell aggregate is computed entirely within one shard, in the
//     same relative fold order a whole run would use.
//
// SweepDriver (exp/sweep.h) is the convenience facade over
// build_sweep_plan + ThreadPoolExecutor for whole in-process runs.

#include <functional>
#include <string>
#include <vector>

#include "exp/sweep_plan.h"

namespace fairsched::exp {

class Executor {
 public:
  using Progress = std::function<void(const std::string& message)>;
  // Streaming per-run consumer, invoked in the deterministic fold order
  // restricted to the plan's shard. Records are not retained by the
  // executor; a sink that needs them later must copy.
  using RecordSink = std::function<void(const RunRecord&)>;

  virtual ~Executor() = default;

  // Executes the plan's owned tasks and returns the aggregate result
  // (cells the shard does not own stay empty). Throws on execution
  // failures; plans are validated at build time.
  virtual SweepResult execute(const SweepPlan& plan,
                              Progress progress = nullptr,
                              RecordSink sink = nullptr) = 0;
};

class WorkloadCache;

class ThreadPoolExecutor final : public Executor {
 public:
  ThreadPoolExecutor() = default;

  // Session mode (exp/dispatch_scenario.cc): `cache` is an externally
  // owned, process-lifetime WorkloadCache reused across execute() calls,
  // so a persistent shard-worker keeps prefixes warm between requests.
  // The cache should be retain-mode (planned use counts span one plan,
  // not a session) and must only be shared across plans with equal
  // fingerprints — in-memory keys are plan-positional. result.cache then
  // reports this call's *delta*, keeping artifacts comparable to a
  // per-run cache.
  explicit ThreadPoolExecutor(WorkloadCache* cache) : external_cache_(cache) {}

  SweepResult execute(const SweepPlan& plan, Progress progress = nullptr,
                      RecordSink sink = nullptr) override;

 private:
  WorkloadCache* external_cache_ = nullptr;
};

class MultiProcessExecutor final : public Executor {
 public:
  // `worker_command` is the argv that reproduces the caller's sweep (the
  // harness binary, then the subcommand and flags). The executor sends it
  // — minus the program — to `fairsched_exp shard-worker` subprocesses as
  // a dispatch request (dist/protocol.h): sharding and the per-worker
  // thread budget travel in the request rather than as flags, so
  // inherited FAIRSCHED_* env vars can neither recurse nor skew the
  // rebuilt plan (the worker refuses on fingerprint mismatch). The
  // plan's thread budget (spec.threads, or the hardware concurrency it
  // defaults to) is divided across the workers, not multiplied by them.
  MultiProcessExecutor(std::vector<std::string> worker_command,
                       std::size_t processes);

  // Spawns the workers, waits, merges their artifacts. The plan must be a
  // whole-run plan (shard {0, 1}); per-run sinks are not supported across
  // process boundaries (--stream-records within a shard still is) and a
  // non-null `sink` is rejected. Throws std::runtime_error when a worker
  // exits nonzero or its artifact does not match the plan's fingerprint.
  SweepResult execute(const SweepPlan& plan, Progress progress = nullptr,
                      RecordSink sink = nullptr) override;

 private:
  std::vector<std::string> worker_command_;
  std::size_t processes_;
};

}  // namespace fairsched::exp
