// `fairsched_exp strategyproof` — the Section 4 ablation table (Theorem
// 4.1): why the scheduler must grade organizations by the strategy-proof
// utility psi_sp rather than flow time.
//
// One organization manipulates its workload (splits every job into unit
// pieces, merges job pairs, delays releases) against a fixed background
// organization under the same greedy rule, and the table shows how each
// metric moves. The transforms and grading live in src/strategy — this is
// a thin shell over play_deviation_grid; the full policy-by-policy
// manipulation sweep is the `strategy` subcommand.

#include <cstdio>
#include <vector>

#include "core/instance.h"
#include "exp/scenarios.h"
#include "strategy/game.h"
#include "util/rng.h"
#include "util/table.h"

namespace fairsched::exp {

namespace {

struct JobSpec {
  Time release;
  Time processing;
};

// Baseline workload of the manipulating organization.
std::vector<JobSpec> honest_jobs(Rng& rng, std::size_t count) {
  std::vector<JobSpec> out;
  Time t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<Time>(rng.uniform_u64(12));
    out.push_back({t, 2 + static_cast<Time>(rng.uniform_u64(8))});
  }
  return out;
}

// The manipulator's honest jobs against a fixed background organization
// (seeded per trial, FCFS rule for neutrality — same construction the
// pre-harness bench used, so the table reproduces).
Instance make_trial_instance(const std::vector<JobSpec>& manip_jobs,
                             std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const OrgId manip = b.add_org("manipulator", 1);
  const OrgId other = b.add_org("background", 1);
  for (const JobSpec& j : manip_jobs) b.add_job(manip, j.release, j.processing);
  Time t = 0;
  for (int i = 0; i < 60; ++i) {
    t += static_cast<Time>(rng.uniform_u64(10));
    b.add_job(other, t, 1 + static_cast<Time>(rng.uniform_u64(6)));
  }
  return std::move(b).build();
}

}  // namespace

int run_strategyproof_scenario(const ScenarioOptions& options) {
  const Time horizon = options.duration ? options.duration : 600;
  const std::size_t trials = options.instances ? options.instances : 20;
  using Kind = strategy::DeviationSpec::Kind;
  const std::vector<strategy::DeviationSpec> grid = {
      {Kind::kHonest, 0},
      {Kind::kSplit, 0},
      {Kind::kMerge, 2},
      {Kind::kDelay, 20},
  };

  std::printf(
      "Strategy-proofness ablation (Thm 4.1): metric change when one "
      "organization manipulates its workload (%zu trials)\n\n",
      trials);

  std::vector<double> dpsi(grid.size(), 0.0);
  std::vector<double> dflow(grid.size(), 0.0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(900 + trial);
    const Instance inst = make_trial_instance(honest_jobs(rng, 25), trial);
    const std::vector<strategy::DeviationOutcome> outcomes =
        strategy::play_deviation_grid(inst, 0, grid, "fcfs", horizon, 1);
    const strategy::StrategyOutcome& base = outcomes[0].outcome;
    auto pct = [](double now, double before) {
      return before == 0.0 ? 0.0 : (now - before) / before * 100.0;
    };
    for (std::size_t i = 1; i < grid.size(); ++i) {
      dpsi[i] += pct(outcomes[i].outcome.deviator_utility,
                     base.deviator_utility);
      dflow[i] += pct(outcomes[i].outcome.deviator_flow, base.deviator_flow);
    }
  }

  const double n = static_cast<double>(trials);
  AsciiTable table({"manipulation", "psi_sp change %", "mean flow change %"});
  table.add_row({"split into unit jobs", AsciiTable::format_double(dpsi[1] / n, 2),
                 AsciiTable::format_double(dflow[1] / n, 2)});
  table.add_row({"merge job pairs", AsciiTable::format_double(dpsi[2] / n, 2),
                 AsciiTable::format_double(dflow[2] / n, 2)});
  table.add_row({"delay releases by 20",
                 AsciiTable::format_double(dpsi[3] / n, 2), "n/a"});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape: psi_sp barely moves under split/merge (only via\n"
      "changed scheduling opportunities) and never improves under delay,\n"
      "while mean flow time swings strongly — a flow-time-graded system\n"
      "invites workload manipulation, which motivates psi_sp (Thm 4.1).\n");
  return 0;
}

}  // namespace fairsched::exp
