#include "metrics/trajectory.h"

#include <stdexcept>

#include "metrics/fairness.h"
#include "metrics/utility.h"

namespace fairsched {

std::vector<TrajectoryPoint> utility_trajectory(
    const Instance& inst, const Schedule& schedule,
    const std::vector<Time>& sample_times) {
  std::vector<TrajectoryPoint> out;
  out.reserve(sample_times.size());
  Time prev = kNoTime;
  for (Time t : sample_times) {
    if (prev != kNoTime && t < prev) {
      throw std::invalid_argument(
          "utility_trajectory: sample times must be ascending");
    }
    prev = t;
    out.push_back(TrajectoryPoint{t, sp_half_utilities(inst, schedule, t)});
  }
  return out;
}

std::vector<Time> even_sample_times(Time horizon, std::size_t points) {
  if (horizon <= 0 || points == 0) {
    throw std::invalid_argument("even_sample_times: invalid arguments");
  }
  std::vector<Time> out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    out.push_back(static_cast<Time>(
        static_cast<double>(horizon) * static_cast<double>(i) /
        static_cast<double>(points)));
  }
  out.back() = horizon;
  return out;
}

std::vector<double> unfairness_trajectory(
    const Instance& inst, const Schedule& schedule, const Schedule& reference,
    const std::vector<Time>& sample_times) {
  std::vector<double> out;
  out.reserve(sample_times.size());
  for (Time t : sample_times) {
    const std::vector<HalfUtil> psi = sp_half_utilities(inst, schedule, t);
    const std::vector<HalfUtil> ref = sp_half_utilities(inst, reference, t);
    const std::int64_t work = completed_work(inst, reference, t);
    out.push_back(unfairness_ratio(psi, ref, work));
  }
  return out;
}

}  // namespace fairsched
