#pragma once

// Time-series views of a schedule's utilities and fairness.
//
// The paper evaluates fairness at a single horizon t_end; Definition 3.1,
// however, demands fairness at *every* time moment ("we want to avoid the
// case in which an organization is disfavored in one, possibly long, time
// period and then favored in the next one"). These helpers sample psi_sp
// and the unfairness ratio along the whole horizon so that fairness debt
// can be seen accumulating (or being repaid) over time — used by the
// fairness_audit example and the trajectory tests.

#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"

namespace fairsched {

struct TrajectoryPoint {
  Time t = 0;
  std::vector<HalfUtil> psi2;  // 2*psi_sp per organization at t
};

// psi_sp utilities of `schedule` sampled at the given (ascending) times.
std::vector<TrajectoryPoint> utility_trajectory(
    const Instance& inst, const Schedule& schedule,
    const std::vector<Time>& sample_times);

// Evenly spaced sample times: `points` samples over (0, horizon], always
// including the horizon itself.
std::vector<Time> even_sample_times(Time horizon, std::size_t points);

// The paper's unfairness ratio delta_psi(t) / p_tot(t) of `schedule`
// against `reference` at each sample time (p_tot measured on the reference
// schedule; 0 where the reference has completed no work yet).
std::vector<double> unfairness_trajectory(
    const Instance& inst, const Schedule& schedule, const Schedule& reference,
    const std::vector<Time>& sample_times);

}  // namespace fairsched
