#pragma once

// Fairness metrics comparing an algorithm's utility vector against the
// reference fair vector (REF's utilities, Definition 3.1/5.2 and Section 7.2).
//
// The paper's headline experimental measure is
//
//     delta_psi / p_tot
//
// where delta_psi = || psi - psi* ||_Manhattan and p_tot is the number of
// completed unit-size job parts in the fair schedule. Delaying one unit part
// by one time moment lowers its owner's psi_sp by exactly one, so the ratio
// reads as the average unjustified delay (or speed-up) per unit of work.

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace fairsched {

// Manhattan distance between two half-utility vectors, in half-units.
HalfUtil manhattan_half_distance(const std::vector<HalfUtil>& a,
                                 const std::vector<HalfUtil>& b);

// The paper's fairness ratio delta_psi / p_tot (in time units per unit of
// work). `reference_work` is p_tot of the fair schedule; returns 0 when it
// is 0 (empty window).
double unfairness_ratio(const std::vector<HalfUtil>& utilities,
                        const std::vector<HalfUtil>& reference,
                        std::int64_t reference_work);

// Relative Manhattan distance ||psi - psi*|| / ||psi*|| used by the
// alpha-approximation definition (Definition 5.2).
double relative_distance(const std::vector<HalfUtil>& utilities,
                         const std::vector<HalfUtil>& reference);

// Per-organization signed report (psi - psi*) / 2 in time units, useful for
// diagnosing who is favored / disfavored.
struct OrgFairnessReport {
  OrgId org;
  double utility;           // psi in time units
  double reference;         // psi* in time units
  double advantage;         // psi - psi* in time units (positive = favored)
};

std::vector<OrgFairnessReport> per_org_report(
    const std::vector<HalfUtil>& utilities,
    const std::vector<HalfUtil>& reference);

}  // namespace fairsched
