#include "metrics/fairness.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace fairsched {

HalfUtil manhattan_half_distance(const std::vector<HalfUtil>& a,
                                 const std::vector<HalfUtil>& b) {
  assert(a.size() == b.size());
  HalfUtil total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += std::llabs(a[i] - b[i]);
  }
  return total;
}

double unfairness_ratio(const std::vector<HalfUtil>& utilities,
                        const std::vector<HalfUtil>& reference,
                        std::int64_t reference_work) {
  if (reference_work <= 0) return 0.0;
  const HalfUtil dist = manhattan_half_distance(utilities, reference);
  return static_cast<double>(dist) / 2.0 / static_cast<double>(reference_work);
}

double relative_distance(const std::vector<HalfUtil>& utilities,
                         const std::vector<HalfUtil>& reference) {
  HalfUtil norm = 0;
  for (HalfUtil r : reference) norm += std::llabs(r);
  if (norm == 0) return 0.0;
  return static_cast<double>(manhattan_half_distance(utilities, reference)) /
         static_cast<double>(norm);
}

std::vector<OrgFairnessReport> per_org_report(
    const std::vector<HalfUtil>& utilities,
    const std::vector<HalfUtil>& reference) {
  assert(utilities.size() == reference.size());
  std::vector<OrgFairnessReport> out;
  out.reserve(utilities.size());
  for (std::size_t u = 0; u < utilities.size(); ++u) {
    out.push_back(OrgFairnessReport{
        static_cast<OrgId>(u), static_cast<double>(utilities[u]) / 2.0,
        static_cast<double>(reference[u]) / 2.0,
        static_cast<double>(utilities[u] - reference[u]) / 2.0});
  }
  return out;
}

}  // namespace fairsched
