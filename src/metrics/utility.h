#pragma once

// Utility functions over schedules.
//
// The central one is the paper's strategy-proof utility psi_sp (Eq. 3):
//
//   psi_sp(sigma, t) = sum over placed jobs (s, p), s <= t, of
//       min(p, t - s) * ( t - (s + min(s + p - 1, t - 1)) / 2 )
//
// Interpretation: a job of length p is p unit tasks started at consecutive
// time moments; a unit task occupying slot i (i.e. interval [i, i+1))
// contributes (t - i) to the utility at time t. psi_sp is the unique utility
// (up to affine constants, Theorem 4.1) satisfying task anonymity in start
// times, task anonymity in task count, and strategy-resistance under
// merge/split.
//
// To keep arithmetic exact we work in *half-units*: HalfUtil = 2 * psi.
// All library code compares utilities in half-units; convert to double
// time-unit values only for reporting.
//
// Classic scheduling objectives (flow time, turnaround, makespan, tardiness,
// utilization) are provided for comparison experiments and for the
// strategy-proofness ablation (bench_strategyproof).

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"

namespace fairsched {

// --- psi_sp ---------------------------------------------------------------

// 2 * psi_sp contribution of one placed job (start s, processing p) at time
// t. Zero when s >= t (nothing executed yet). Exact integer arithmetic.
HalfUtil sp_job_half_utility(Time start, Time processing, Time t);

// 2 * psi_sp of organization `org` in `schedule` at time t.
HalfUtil sp_org_half_utility(const Instance& inst, const Schedule& schedule,
                             OrgId org, Time t);

// Vector of 2 * psi_sp per organization.
std::vector<HalfUtil> sp_half_utilities(const Instance& inst,
                                        const Schedule& schedule, Time t);

// 2 * v(sigma, t): the coalition value = sum over organizations.
HalfUtil sp_half_value(const Instance& inst, const Schedule& schedule, Time t);

inline double half_to_double(HalfUtil h) {
  return static_cast<double>(h) / 2.0;
}

// Brute-force reference: enumerates unit parts one by one. O(total work).
// Used by tests to validate the closed form.
HalfUtil sp_job_half_utility_bruteforce(Time start, Time processing, Time t);

// --- classic objectives -----------------------------------------------------

// Total flow time of jobs *completed* by time t: sum of (completion -
// release). Jobs not completed by t are ignored (non-clairvoyant model).
std::int64_t total_flow_time(const Instance& inst, const Schedule& schedule,
                             Time t);

// Flow time restricted to one organization's jobs.
std::int64_t org_flow_time(const Instance& inst, const Schedule& schedule,
                           OrgId org, Time t);

// Total turnaround (completion - release) + waiting decomposition helper:
// sum of (start - release) over jobs started by t.
std::int64_t total_wait_time(const Instance& inst, const Schedule& schedule,
                             Time t);

// Makespan: latest completion among jobs completed by t (0 if none).
Time makespan(const Instance& inst, const Schedule& schedule, Time t);

// Total tardiness against per-job due dates = release + due_offset.
std::int64_t total_tardiness(const Instance& inst, const Schedule& schedule,
                             Time t, Time due_offset);

// Number of completed unit-size parts by time t (the paper's p_tot when
// applied to the reference schedule): sum over placed jobs of min(p, t - s).
std::int64_t completed_work(const Instance& inst, const Schedule& schedule,
                            Time t);

// Resource utilization in [0, 1]: completed_work / (machines * t).
double resource_utilization(const Instance& inst, const Schedule& schedule,
                            Time t);

}  // namespace fairsched
