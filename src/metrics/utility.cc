#include "metrics/utility.h"

#include <algorithm>

namespace fairsched {

HalfUtil sp_job_half_utility(Time start, Time processing, Time t) {
  if (start >= t) return 0;
  const Time executed = std::min<Time>(processing, t - start);
  // Last occupied slot counted at time t: min(start + p - 1, t - 1).
  const Time last_slot = std::min<Time>(start + processing - 1, t - 1);
  // 2 * executed * (t - (start + last_slot)/2) = executed * (2t - start -
  // last_slot). Exact in integers.
  return executed * (2 * t - start - last_slot);
}

HalfUtil sp_job_half_utility_bruteforce(Time start, Time processing, Time t) {
  HalfUtil total = 0;
  for (Time slot = start; slot < start + processing && slot <= t - 1; ++slot) {
    total += 2 * (t - slot);
  }
  return total;
}

HalfUtil sp_org_half_utility(const Instance& inst, const Schedule& schedule,
                             OrgId org, Time t) {
  HalfUtil total = 0;
  const auto jobs = inst.jobs_of(org);
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    if (auto s = schedule.start_of(org, i)) {
      total += sp_job_half_utility(*s, jobs[i].processing, t);
    }
  }
  return total;
}

std::vector<HalfUtil> sp_half_utilities(const Instance& inst,
                                        const Schedule& schedule, Time t) {
  std::vector<HalfUtil> out(inst.num_orgs(), 0);
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    out[u] = sp_org_half_utility(inst, schedule, u, t);
  }
  return out;
}

HalfUtil sp_half_value(const Instance& inst, const Schedule& schedule,
                       Time t) {
  HalfUtil total = 0;
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    total += sp_org_half_utility(inst, schedule, u, t);
  }
  return total;
}

std::int64_t total_flow_time(const Instance& inst, const Schedule& schedule,
                             Time t) {
  std::int64_t total = 0;
  for (const Placement& p : schedule.placements()) {
    const Job& job = inst.job(p.org, p.index);
    const Time completion = p.start + job.processing;
    if (completion <= t) total += completion - job.release;
  }
  return total;
}

std::int64_t org_flow_time(const Instance& inst, const Schedule& schedule,
                           OrgId org, Time t) {
  std::int64_t total = 0;
  for (const Placement& p : schedule.placements()) {
    if (p.org != org) continue;
    const Job& job = inst.job(p.org, p.index);
    const Time completion = p.start + job.processing;
    if (completion <= t) total += completion - job.release;
  }
  return total;
}

std::int64_t total_wait_time(const Instance& inst, const Schedule& schedule,
                             Time t) {
  std::int64_t total = 0;
  for (const Placement& p : schedule.placements()) {
    if (p.start <= t) total += p.start - inst.job(p.org, p.index).release;
  }
  return total;
}

Time makespan(const Instance& inst, const Schedule& schedule, Time t) {
  Time latest = 0;
  for (const Placement& p : schedule.placements()) {
    const Time completion = p.start + inst.job(p.org, p.index).processing;
    if (completion <= t) latest = std::max(latest, completion);
  }
  return latest;
}

std::int64_t total_tardiness(const Instance& inst, const Schedule& schedule,
                             Time t, Time due_offset) {
  std::int64_t total = 0;
  for (const Placement& p : schedule.placements()) {
    const Job& job = inst.job(p.org, p.index);
    const Time completion = p.start + job.processing;
    if (completion <= t) {
      total += std::max<Time>(0, completion - (job.release + due_offset));
    }
  }
  return total;
}

std::int64_t completed_work(const Instance& inst, const Schedule& schedule,
                            Time t) {
  std::int64_t total = 0;
  for (const Placement& p : schedule.placements()) {
    if (p.start >= t) continue;
    total += std::min<Time>(inst.job(p.org, p.index).processing, t - p.start);
  }
  return total;
}

double resource_utilization(const Instance& inst, const Schedule& schedule,
                            Time t) {
  if (t <= 0 || inst.total_machines() == 0) return 0.0;
  return static_cast<double>(completed_work(inst, schedule, t)) /
         (static_cast<double>(inst.total_machines()) *
          static_cast<double>(t));
}

}  // namespace fairsched
