#pragma once

// Shapley value computation for cooperative games over up to 31 players.
//
// The paper defines the ideally fair utility division as the Shapley value
// of the game whose characteristic function v(C) is the total
// strategy-proof utility of coalition C's fair schedule (Section 3).
// This module provides:
//
//  * exact computation via the subset formula (Eq. 1),
//  * exact computation via the permutation formula (Eq. 2) — used in tests
//    to cross-validate the two forms,
//  * Monte-Carlo permutation sampling with the Hoeffding sample bound of
//    Theorem 5.6 (the analysis backing Algorithm RAND),
//  * axiom checkers (efficiency, symmetry, additivity, dummy) used by the
//    property-test suite.
//
// Characteristic functions are arbitrary callables Coalition -> double.
// Values are doubles; scheduling code that needs exact integer utilities
// keeps them in half-units and converts at the boundary.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/coalition.h"
#include "core/types.h"
#include "util/rng.h"

namespace fairsched {

using CharacteristicFn = std::function<double(Coalition)>;

// Exact Shapley value of every player via Eq. 1. O(2^k * k) evaluations of
// `v` are avoided by tabulating v over all subsets first (2^k evaluations).
std::vector<double> shapley_exact(std::uint32_t k, const CharacteristicFn& v);

// Exact Shapley value via the permutation form (Eq. 2): averages marginal
// contributions over all k! orders. O(k! * k); only for tests with small k.
std::vector<double> shapley_by_permutations(std::uint32_t k,
                                            const CharacteristicFn& v);

// Monte-Carlo estimate over `samples` random permutations (the estimator of
// Algorithm RAND / Liben-Nowell et al.). Deterministic given the seed.
std::vector<double> shapley_sampled(std::uint32_t k, const CharacteristicFn& v,
                                    std::size_t samples, std::uint64_t seed);

// Stratified Monte-Carlo estimate: the Shapley value is the average over
// coalition sizes s = 0..k-1 of the expected marginal contribution to a
// uniformly random size-s subset of the other players. Sampling each
// stratum separately (samples_per_stratum draws per size) removes the
// between-stratum variance of plain permutation sampling — a strict
// improvement whenever marginals depend strongly on coalition size, as they
// do in the scheduling game (machines saturate). Total evaluations:
// k * samples_per_stratum * 2 per player.
std::vector<double> shapley_stratified(std::uint32_t k,
                                       const CharacteristicFn& v,
                                       std::size_t samples_per_stratum,
                                       std::uint64_t seed);

// Hoeffding sample bound of Theorem 5.6: with N >= k^2/eps^2 * ln(k/(1-lambda))
// permutations, with probability >= lambda every |phi_est - phi| is within
// (eps / k) * v(grand).
std::size_t rand_sample_bound(std::uint32_t k, double epsilon, double lambda);

// --- axiom checkers (for property tests) -----------------------------------

// Efficiency: sum phi_u = v(grand). Returns the absolute error.
double efficiency_error(std::uint32_t k, const CharacteristicFn& v,
                        const std::vector<double>& phi);

// Symmetry: players a and b are interchangeable in v
// (v(C + a) == v(C + b) for all C excluding both) => phi_a == phi_b.
// Returns nullopt when the premise fails (players not symmetric in v).
std::optional<double> symmetry_gap(std::uint32_t k, const CharacteristicFn& v,
                                   OrgId a, OrgId b,
                                   const std::vector<double>& phi);

// Dummy: if v(C + u) == v(C) for every C, phi_u should be 0. Returns nullopt
// when u is not a dummy player.
std::optional<double> dummy_error(std::uint32_t k, const CharacteristicFn& v,
                                  OrgId u, const std::vector<double>& phi);

// Whether the game is supermodular (convex):
// v(C + u) - v(C) is nondecreasing in C for every u. The scheduling game is
// *not* supermodular (Prop. 5.5); tests rely on this checker.
bool is_supermodular(std::uint32_t k, const CharacteristicFn& v,
                     double tolerance = 1e-9);

}  // namespace fairsched
