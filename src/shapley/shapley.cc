#include "shapley/shapley.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fairsched {

namespace {

std::vector<double> tabulate(std::uint32_t k, const CharacteristicFn& v) {
  if (k == 0 || k > Coalition::kMaxOrgs) {
    throw std::invalid_argument("shapley: k out of range");
  }
  const std::size_t n = std::size_t{1} << k;
  std::vector<double> table(n);
  for (std::size_t mask = 0; mask < n; ++mask) {
    table[mask] = v(Coalition(static_cast<Coalition::Mask>(mask)));
  }
  return table;
}

}  // namespace

std::vector<double> shapley_exact(std::uint32_t k, const CharacteristicFn& v) {
  const std::vector<double> table = tabulate(k, v);
  const ShapleyWeights weights(k);
  std::vector<double> phi(k, 0.0);
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t mask = 1; mask < n; ++mask) {
    const Coalition c(static_cast<Coalition::Mask>(mask));
    const double w = weights.weight(c.size());
    for (OrgId u = 0; u < k; ++u) {
      if (!c.contains(u)) continue;
      const std::size_t without = mask & ~(std::size_t{1} << u);
      phi[u] += w * (table[mask] - table[without]);
    }
  }
  return phi;
}

std::vector<double> shapley_by_permutations(std::uint32_t k,
                                            const CharacteristicFn& v) {
  const std::vector<double> table = tabulate(k, v);
  std::vector<OrgId> order(k);
  for (OrgId u = 0; u < k; ++u) order[u] = u;
  std::vector<double> phi(k, 0.0);
  std::size_t count = 0;
  do {
    Coalition::Mask mask = 0;
    for (OrgId u : order) {
      const Coalition::Mask with_u = mask | (Coalition::Mask{1} << u);
      phi[u] += table[with_u] - table[mask];
      mask = with_u;
    }
    ++count;
  } while (std::next_permutation(order.begin(), order.end()));
  for (double& p : phi) p /= static_cast<double>(count);
  return phi;
}

std::vector<double> shapley_sampled(std::uint32_t k, const CharacteristicFn& v,
                                    std::size_t samples, std::uint64_t seed) {
  if (k == 0 || k > Coalition::kMaxOrgs) {
    throw std::invalid_argument("shapley_sampled: k out of range");
  }
  if (samples == 0) {
    throw std::invalid_argument("shapley_sampled: need at least one sample");
  }
  Rng rng(seed);
  std::vector<double> phi(k, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::vector<std::uint32_t> order = rng.permutation(k);
    Coalition::Mask mask = 0;
    double prev = v(Coalition(mask));
    for (OrgId u : order) {
      mask |= Coalition::Mask{1} << u;
      const double with_u = v(Coalition(mask));
      phi[u] += with_u - prev;
      prev = with_u;
    }
  }
  for (double& p : phi) p /= static_cast<double>(samples);
  return phi;
}

std::vector<double> shapley_stratified(std::uint32_t k,
                                       const CharacteristicFn& v,
                                       std::size_t samples_per_stratum,
                                       std::uint64_t seed) {
  if (k == 0 || k > Coalition::kMaxOrgs) {
    throw std::invalid_argument("shapley_stratified: k out of range");
  }
  if (samples_per_stratum == 0) {
    throw std::invalid_argument("shapley_stratified: need samples");
  }
  Rng rng(seed);
  std::vector<double> phi(k, 0.0);
  std::vector<OrgId> others;
  others.reserve(k - 1);
  for (OrgId u = 0; u < k; ++u) {
    others.clear();
    for (OrgId w = 0; w < k; ++w) {
      if (w != u) others.push_back(w);
    }
    double total = 0.0;
    for (std::uint32_t s = 0; s < k; ++s) {
      double stratum = 0.0;
      for (std::size_t i = 0; i < samples_per_stratum; ++i) {
        // Uniform size-s subset of the others via a partial Fisher-Yates.
        for (std::uint32_t j = 0; j < s; ++j) {
          const std::size_t pick =
              j + static_cast<std::size_t>(
                      rng.uniform_u64(others.size() - j));
          std::swap(others[j], others[pick]);
        }
        Coalition::Mask mask = 0;
        for (std::uint32_t j = 0; j < s; ++j) {
          mask |= Coalition::Mask{1} << others[j];
        }
        const double without = v(Coalition(mask));
        const double with_u =
            v(Coalition(mask | (Coalition::Mask{1} << u)));
        stratum += with_u - without;
      }
      total += stratum / static_cast<double>(samples_per_stratum);
    }
    phi[u] = total / static_cast<double>(k);
  }
  return phi;
}

std::size_t rand_sample_bound(std::uint32_t k, double epsilon, double lambda) {
  if (epsilon <= 0.0 || lambda <= 0.0 || lambda >= 1.0) {
    throw std::invalid_argument("rand_sample_bound: invalid parameters");
  }
  const double kd = static_cast<double>(k);
  const double n = kd * kd / (epsilon * epsilon) * std::log(kd / (1.0 - lambda));
  return static_cast<std::size_t>(std::ceil(std::max(1.0, n)));
}

double efficiency_error(std::uint32_t k, const CharacteristicFn& v,
                        const std::vector<double>& phi) {
  double sum = 0.0;
  for (double p : phi) sum += p;
  return std::abs(sum - v(Coalition::grand(k)));
}

std::optional<double> symmetry_gap(std::uint32_t k, const CharacteristicFn& v,
                                   OrgId a, OrgId b,
                                   const std::vector<double>& phi) {
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t mask = 0; mask < n; ++mask) {
    const Coalition c(static_cast<Coalition::Mask>(mask));
    if (c.contains(a) || c.contains(b)) continue;
    if (std::abs(v(c.with(a)) - v(c.with(b))) > 1e-9) return std::nullopt;
  }
  return std::abs(phi[a] - phi[b]);
}

std::optional<double> dummy_error(std::uint32_t k, const CharacteristicFn& v,
                                  OrgId u, const std::vector<double>& phi) {
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t mask = 0; mask < n; ++mask) {
    const Coalition c(static_cast<Coalition::Mask>(mask));
    if (c.contains(u)) continue;
    if (std::abs(v(c.with(u)) - v(c)) > 1e-9) return std::nullopt;
  }
  return std::abs(phi[u]);
}

bool is_supermodular(std::uint32_t k, const CharacteristicFn& v,
                     double tolerance) {
  // v is supermodular iff for all C and players u, w not in C:
  // v(C + u + w) - v(C + w) >= v(C + u) - v(C).
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t mask = 0; mask < n; ++mask) {
    const Coalition c(static_cast<Coalition::Mask>(mask));
    for (OrgId u = 0; u < k; ++u) {
      if (c.contains(u)) continue;
      for (OrgId w = 0; w < k; ++w) {
        if (w == u || c.contains(w)) continue;
        const double lhs = v(c.with(w).with(u)) - v(c.with(w));
        const double rhs = v(c.with(u)) - v(c);
        if (lhs + tolerance < rhs) return false;
      }
    }
  }
  return true;
}

}  // namespace fairsched
