#include "related/related.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace fairsched::related {

RelatedEngine::RelatedEngine(const Instance& inst,
                             std::vector<std::uint32_t> speeds,
                             SpeedPick pick)
    : inst_(&inst),
      pick_(pick),
      released_(inst.num_orgs(), 0),
      started_(inst.num_orgs(), 0),
      running_(inst.num_orgs(), 0),
      work_done_(inst.num_orgs(), 0),
      psi2_(inst.num_orgs(), 0),
      starts_(inst.num_orgs()) {
  if (speeds.size() != inst.total_machines()) {
    throw std::invalid_argument(
        "RelatedEngine: one speed per machine required");
  }
  machines_.resize(speeds.size());
  for (MachineId m = 0; m < speeds.size(); ++m) {
    if (speeds[m] == 0) {
      throw std::invalid_argument("RelatedEngine: speeds must be >= 1");
    }
    machines_[m].speed = speeds[m];
    capacity_ += speeds[m];
  }
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    starts_[u].assign(inst.jobs_of(u).size(), kNoTime);
    for (const Job& j : inst.jobs_of(u)) {
      releases_.push_back(Release{j.release, u});
    }
  }
  std::stable_sort(releases_.begin(), releases_.end(),
                   [](const Release& a, const Release& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.org < b.org;
                   });
}

std::int64_t RelatedEngine::total_work_done() const {
  std::int64_t total = 0;
  for (std::int64_t w : work_done_) total += w;
  return total;
}

double RelatedEngine::utilization() const {
  if (now_ <= 0 || capacity_ == 0) return 0.0;
  return static_cast<double>(total_work_done()) /
         (static_cast<double>(capacity_) * static_cast<double>(now_));
}

Time RelatedEngine::start_of(OrgId u, std::uint32_t index) const {
  return starts_[u][index];
}

MachineId RelatedEngine::pick_machine() const {
  MachineId best = kNoMachine;
  for (MachineId m = 0; m < machines_.size(); ++m) {
    if (machines_[m].busy) continue;
    if (best == kNoMachine) {
      best = m;
      continue;
    }
    switch (pick_) {
      case SpeedPick::kFastestFree:
        if (machines_[m].speed > machines_[best].speed) best = m;
        break;
      case SpeedPick::kSlowestFree:
        if (machines_[m].speed < machines_[best].speed) best = m;
        break;
      case SpeedPick::kFirstFree:
        break;  // lowest id already held
    }
  }
  return best;
}

void RelatedEngine::run(const Selector& select, Time horizon) {
  if (ran_) throw std::logic_error("RelatedEngine::run called twice");
  ran_ = true;

  std::uint32_t waiting_total = 0;
  std::uint32_t busy_machines = 0;

  auto fast_forward_psi = [&](Time to) {
    // Nothing executes between now_ and `to`; old units gain value.
    if (to <= now_) return;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      psi2_[u] += 2 * work_done_[u] * (to - now_);
    }
    now_ = to;
  };

  while (now_ < horizon) {
    // Fast-forward across fully idle stretches.
    if (busy_machines == 0 && waiting_total == 0) {
      if (release_ptr_ >= releases_.size()) {
        fast_forward_psi(horizon);
        break;
      }
      fast_forward_psi(std::min(horizon, releases_[release_ptr_].time));
      if (now_ >= horizon) break;
    }

    // Admit releases due at or before now_.
    while (release_ptr_ < releases_.size() &&
           releases_[release_ptr_].time <= now_) {
      released_[releases_[release_ptr_].org]++;
      waiting_total++;
      release_ptr_++;
    }

    // Greedy scheduling of free machines.
    while (busy_machines < machines_.size() && waiting_total > 0) {
      const OrgId u = select(*this);
      if (u >= inst_->num_orgs() || waiting(u) == 0) {
        throw std::logic_error(
            "RelatedEngine: selector returned an org with no waiting job");
      }
      const MachineId m = pick_machine();
      MachineState& machine = machines_[m];
      const std::uint32_t index = started_[u]++;
      waiting_total--;
      machine.busy = true;
      machine.org = u;
      machine.job_index = index;
      machine.remaining = inst_->job(u, index).processing;
      starts_[u][index] = now_;
      running_[u]++;
      busy_machines++;
    }

    // Execute one time step [now_, now_ + 1).
    for (MachineState& machine : machines_) {
      if (!machine.busy) continue;
      const Time units =
          std::min<Time>(machine.speed, machine.remaining);
      work_done_[machine.org] += units;
      machine.remaining -= units;
      if (machine.remaining == 0) {
        machine.busy = false;
        running_[machine.org]--;
        busy_machines--;
      }
    }
    // psi2(t+1) = psi2(t) + 2 * C(t+1): every executed unit (old and new)
    // gains one time unit of value.
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      psi2_[u] += 2 * work_done_[u];
    }
    now_++;
  }
}

RelatedEngine::Selector fcfs_selector() {
  return [](const RelatedEngine& e) {
    OrgId best = kNoOrg;
    Time best_release = kTimeInfinity;
    for (OrgId u = 0; u < e.num_orgs(); ++u) {
      if (e.waiting(u) == 0) continue;
      const Time r = e.front_release(u);
      if (best == kNoOrg || r < best_release) {
        best = u;
        best_release = r;
      }
    }
    return best;
  };
}

RelatedEngine::Selector priority_selector(OrgId preferred) {
  return [preferred](const RelatedEngine& e) {
    if (e.waiting(preferred) > 0) return preferred;
    for (OrgId u = 0; u < e.num_orgs(); ++u) {
      if (e.waiting(u) > 0) return u;
    }
    return kNoOrg;
  };
}

RelatedEngine::Selector round_robin_selector() {
  auto cursor = std::make_shared<OrgId>(0);
  return [cursor](const RelatedEngine& e) {
    for (std::uint32_t step = 0; step < e.num_orgs(); ++step) {
      const OrgId u = (*cursor + step) % e.num_orgs();
      if (e.waiting(u) > 0) {
        *cursor = (u + 1) % e.num_orgs();
        return u;
      }
    }
    return kNoOrg;
  };
}

}  // namespace fairsched::related
