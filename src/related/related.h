#pragma once

// Related (uniform-speed) machines extension.
//
// The paper proves the 3/4 utilization bound for *identical* machines
// (Theorem 6.2) and leaves related machines as an open question, suspecting
// "the loss of efficiency might be significant". This module provides an
// exact time-stepped simulator for machines with integer speeds so that the
// question can be probed empirically: bench_related_machines demonstrates
// that with related machines the greedy utilization ratio is NOT bounded by
// any constant — it degrades with the speed ratio (the machine *choice*,
// irrelevant for identical machines, becomes decisive).
//
// Model: machine j has integer speed s_j >= 1 and processes s_j units of
// its job per time step. A job of size p completes after its accumulated
// units reach p (the final step may be partial: the machine still occupies
// the whole slot, but only the remaining units count as executed work —
// work accounting stays conservative). Greedy, non-preemptive, FIFO per
// organization, exactly like the core model.
//
// The strategy-proof utility generalizes unchanged: every executed unit in
// slot i is worth (t - i) at time t; the simulator accrues 2*psi exactly.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace fairsched::related {

// Which free machine receives the next job. On identical machines this is
// irrelevant; on related machines it decides the efficiency.
enum class SpeedPick { kFastestFree, kSlowestFree, kFirstFree };

class RelatedEngine {
 public:
  // `speeds` has one entry per global machine id of `inst`; all >= 1.
  RelatedEngine(const Instance& inst, std::vector<std::uint32_t> speeds,
                SpeedPick pick);

  // Selection callback: called when at least one machine is free and at
  // least one organization has a waiting job; must return an organization
  // with waiting(u) > 0.
  using Selector = std::function<OrgId(const RelatedEngine&)>;

  // Runs the time-stepped simulation until `horizon`.
  void run(const Selector& select, Time horizon);

  // --- state / results -----------------------------------------------------
  Time now() const { return now_; }
  std::uint32_t num_orgs() const { return inst_->num_orgs(); }
  std::uint32_t waiting(OrgId u) const { return released_[u] - started_[u]; }
  Time front_release(OrgId u) const {
    return inst_->job(u, started_[u]).release;
  }
  std::uint32_t running(OrgId u) const { return running_[u]; }

  std::int64_t work_done(OrgId u) const { return work_done_[u]; }
  std::int64_t total_work_done() const;
  HalfUtil psi2(OrgId u) const { return psi2_[u]; }

  // Utilization relative to the platform's aggregate speed capacity:
  // executed units / (sum of speeds * t).
  double utilization() const;

  // Total speed capacity of the platform.
  std::int64_t capacity_per_step() const { return capacity_; }

  // Start time of job (org, index), or kNoTime if never started.
  Time start_of(OrgId u, std::uint32_t index) const;

 private:
  struct MachineState {
    std::uint32_t speed = 1;
    bool busy = false;
    OrgId org = kNoOrg;
    std::uint32_t job_index = 0;
    Time remaining = 0;  // units of the job still to execute
  };

  MachineId pick_machine() const;

  const Instance* inst_;
  SpeedPick pick_;
  std::vector<MachineState> machines_;
  std::int64_t capacity_ = 0;

  std::vector<std::uint32_t> released_;
  std::vector<std::uint32_t> started_;
  std::vector<std::uint32_t> running_;
  std::vector<std::int64_t> work_done_;
  std::vector<HalfUtil> psi2_;
  std::vector<std::vector<Time>> starts_;

  // Releases sorted by time (pointer-driven, as in the event engine).
  struct Release {
    Time time;
    OrgId org;
  };
  std::vector<Release> releases_;
  std::size_t release_ptr_ = 0;

  Time now_ = 0;
  bool ran_ = false;
};

// Ready-made selectors.
RelatedEngine::Selector fcfs_selector();
RelatedEngine::Selector priority_selector(OrgId preferred);
RelatedEngine::Selector round_robin_selector();

}  // namespace fairsched::related
