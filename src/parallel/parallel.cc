#include "parallel/parallel.h"

#include <algorithm>
#include <stdexcept>

namespace fairsched::par {

OrgId ParallelInstance::add_org(std::uint32_t machines) {
  if (finalized_) throw std::logic_error("add_org after finalize");
  machines_.push_back(machines);
  jobs_.emplace_back();
  total_machines_ += machines;
  return static_cast<OrgId>(machines_.size() - 1);
}

void ParallelInstance::add_job(OrgId org, Time release, Time processing,
                               std::uint32_t width) {
  if (finalized_) throw std::logic_error("add_job after finalize");
  if (org >= machines_.size()) throw std::out_of_range("unknown org");
  if (release < 0 || processing <= 0 || width == 0) {
    throw std::invalid_argument("add_job: invalid job parameters");
  }
  jobs_[org].push_back(ParallelJob{org, 0, release, processing, width});
}

void ParallelInstance::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (OrgId u = 0; u < machines_.size(); ++u) {
    auto& jobs = jobs_[u];
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const ParallelJob& a, const ParallelJob& b) {
                       return a.release < b.release;
                     });
    for (std::uint32_t i = 0; i < jobs.size(); ++i) {
      jobs[i].index = i;
      total_work_ +=
          jobs[i].processing * static_cast<std::int64_t>(jobs[i].width);
    }
  }
}

ParallelEngine::ParallelEngine(const ParallelInstance& inst,
                               QueueDiscipline discipline)
    : inst_(&inst),
      discipline_(discipline),
      released_(inst.num_orgs(), 0),
      started_(inst.num_orgs(), 0),
      completed_(inst.num_orgs(), 0),
      work_done_(inst.num_orgs(), 0),
      psi2_(inst.num_orgs(), 0),
      starts_(inst.num_orgs()) {
  if (!inst.finalized_) {
    throw std::logic_error("ParallelEngine: instance not finalized");
  }
  free_machines_ = inst.total_machines();
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    starts_[u].assign(inst.jobs_of(u).size(), kNoTime);
    for (const ParallelJob& j : inst.jobs_of(u)) {
      if (j.width > inst.total_machines()) {
        throw std::invalid_argument(
            "ParallelEngine: job wider than the platform");
      }
      releases_.push_back(Release{j.release, u});
    }
  }
  std::stable_sort(releases_.begin(), releases_.end(),
                   [](const Release& a, const Release& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.org < b.org;
                   });
}

std::int64_t ParallelEngine::total_work_done() const {
  std::int64_t total = 0;
  for (std::int64_t w : work_done_) total += w;
  return total;
}

double ParallelEngine::utilization() const {
  if (now_ <= 0 || inst_->total_machines() == 0) return 0.0;
  return static_cast<double>(total_work_done()) /
         (static_cast<double>(inst_->total_machines()) *
          static_cast<double>(now_));
}

Time ParallelEngine::start_of(OrgId u, std::uint32_t index) const {
  return starts_[u][index];
}

bool ParallelEngine::try_starts() {
  bool any = false;
  for (;;) {
    // Candidate front jobs: released, FIFO-next of their organization.
    OrgId chosen = kNoOrg;
    Time chosen_release = kTimeInfinity;
    bool head_blocked = false;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (started_[u] >= released_[u]) continue;  // nothing waiting
      const ParallelJob& job = inst_->jobs_of(u)[started_[u]];
      const bool fits = job.width <= free_machines_;
      if (discipline_ == QueueDiscipline::kStrictFifo) {
        // Strict global FIFO: the earliest-released front job must go
        // first; if it does not fit, nobody starts.
        if (job.release < chosen_release ||
            (job.release == chosen_release && chosen == kNoOrg)) {
          chosen = u;
          chosen_release = job.release;
          head_blocked = !fits;
        }
      } else {
        // Backfill: earliest-released among the *fitting* front jobs.
        if (fits && job.release < chosen_release) {
          chosen = u;
          chosen_release = job.release;
        }
      }
    }
    if (chosen == kNoOrg) return any;
    if (discipline_ == QueueDiscipline::kStrictFifo && head_blocked) {
      return any;  // the head waits for machines to drain
    }
    const ParallelJob& job = inst_->jobs_of(chosen)[started_[chosen]];
    if (job.width > free_machines_) return any;  // backfill: nothing fits
    started_[chosen]++;
    waiting_total_--;
    free_machines_ -= job.width;
    starts_[chosen][job.index] = now_;
    running_.push_back(RunningJob{chosen, job.index, job.width,
                                  job.processing});
    any = true;
  }
}

void ParallelEngine::run(Time horizon) {
  if (ran_) throw std::logic_error("ParallelEngine::run called twice");
  ran_ = true;

  auto fast_forward_psi = [&](Time to) {
    if (to <= now_) return;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      psi2_[u] += 2 * work_done_[u] * (to - now_);
    }
    now_ = to;
  };

  while (now_ < horizon) {
    if (running_.empty() && waiting_total_ == 0) {
      if (release_ptr_ >= releases_.size()) {
        fast_forward_psi(horizon);
        break;
      }
      fast_forward_psi(std::min(horizon, releases_[release_ptr_].time));
      if (now_ >= horizon) break;
    }
    while (release_ptr_ < releases_.size() &&
           releases_[release_ptr_].time <= now_) {
      released_[releases_[release_ptr_].org]++;
      waiting_total_++;
      release_ptr_++;
    }
    try_starts();

    // Execute one step [now_, now_ + 1).
    for (std::size_t i = 0; i < running_.size();) {
      RunningJob& job = running_[i];
      work_done_[job.org] += job.width;
      job.remaining--;
      if (job.remaining == 0) {
        free_machines_ += job.width;
        completed_[job.org]++;
        running_[i] = running_.back();
        running_.pop_back();
      } else {
        ++i;
      }
    }
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      psi2_[u] += 2 * work_done_[u];
    }
    now_++;
  }
}

}  // namespace fairsched::par
