#pragma once

// Rigid parallel jobs extension.
//
// The paper treats sequential jobs and notes that the fair scheduling
// approach "is also applicable for parallel jobs", but that "the loss of
// the global efficiency of an arbitrary greedy algorithm can be higher"
// than the 25% of Theorem 6.2 — left as future work. This module provides
// an exact time-stepped simulator for *rigid* jobs (a job needs `width`
// processors simultaneously for its whole duration) so the conjecture can
// be probed (bench_parallel_jobs).
//
// With rigid jobs the greedy notion itself splits in two:
//   * kStrictFifo — the globally earliest-released front job is served
//     strictly in order; while a wide job waits for enough processors to
//     drain, narrower jobs behind it cannot jump ahead. Not greedy in the
//     paper's sense: machines idle while released work exists.
//   * kBackfill — any organization whose front job fits may start
//     (per-organization FIFO is still honored). Greedy in the paper's
//     sense, but wide jobs can be starved.
// The gap between the two is exactly the fragmentation loss that does not
// exist for sequential jobs; bench_parallel_jobs quantifies it.
//
// Utility accounting generalizes psi_sp verbatim: a width-w job executes w
// unit parts per time step; a unit in slot i is worth (t - i) at time t.

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace fairsched::par {

struct ParallelJob {
  OrgId org = kNoOrg;
  std::uint32_t index = 0;  // FIFO position within the organization
  Time release = 0;
  Time processing = 1;
  std::uint32_t width = 1;  // processors required simultaneously
};

class ParallelInstance {
 public:
  OrgId add_org(std::uint32_t machines);
  // Jobs must satisfy width >= 1 and width <= total machines at run time.
  void add_job(OrgId org, Time release, Time processing, std::uint32_t width);
  // Sorts each organization's jobs by release (stable) and freezes.
  void finalize();

  std::uint32_t num_orgs() const {
    return static_cast<std::uint32_t>(machines_.size());
  }
  std::uint32_t machines_of(OrgId u) const { return machines_[u]; }
  std::uint32_t total_machines() const { return total_machines_; }
  const std::vector<ParallelJob>& jobs_of(OrgId u) const { return jobs_[u]; }
  std::int64_t total_work() const { return total_work_; }

 private:
  std::vector<std::uint32_t> machines_;
  std::vector<std::vector<ParallelJob>> jobs_;
  std::uint32_t total_machines_ = 0;
  std::int64_t total_work_ = 0;
  bool finalized_ = false;

  friend class ParallelEngine;
};

enum class QueueDiscipline { kStrictFifo, kBackfill };

class ParallelEngine {
 public:
  ParallelEngine(const ParallelInstance& inst, QueueDiscipline discipline);

  void run(Time horizon);

  Time now() const { return now_; }
  std::int64_t work_done(OrgId u) const { return work_done_[u]; }
  std::int64_t total_work_done() const;
  HalfUtil psi2(OrgId u) const { return psi2_[u]; }
  double utilization() const;
  Time start_of(OrgId u, std::uint32_t index) const;
  // Completed job count per organization.
  std::uint32_t completed(OrgId u) const { return completed_[u]; }

 private:
  struct RunningJob {
    OrgId org;
    std::uint32_t index;
    std::uint32_t width;
    Time remaining;
  };

  // Starts every startable front job per the discipline; returns true if
  // any start happened (loop until quiescent).
  bool try_starts();

  const ParallelInstance* inst_;
  QueueDiscipline discipline_;

  std::vector<std::uint32_t> released_;
  std::vector<std::uint32_t> started_;
  std::vector<std::uint32_t> completed_;
  std::vector<std::int64_t> work_done_;
  std::vector<HalfUtil> psi2_;
  std::vector<std::vector<Time>> starts_;
  std::vector<RunningJob> running_;
  std::uint32_t free_machines_ = 0;
  std::uint32_t waiting_total_ = 0;

  struct Release {
    Time time;
    OrgId org;
  };
  std::vector<Release> releases_;
  std::size_t release_ptr_ = 0;

  Time now_ = 0;
  bool ran_ = false;
};

}  // namespace fairsched::par
