#pragma once

// Scheduling policy interface.
//
// The engine calls Policy::select whenever at least one machine is free and
// at least one released job is waiting (the greedy invariant: some job must
// then be started). The policy answers with the organization whose
// front-of-queue job should start; the engine starts that organization's
// next FIFO job.
//
// Non-clairvoyance is enforced by the interface: PolicyView exposes queue
// lengths, run counts and accumulated performance accounting, but never the
// processing time of a waiting or running job. Policies learn a job's length
// only by observing its completion (through the accounting deltas), exactly
// as the paper's model prescribes.

#include <cstdint>

#include "core/types.h"

namespace fairsched {

class Engine;
class Instance;

// Read-only, non-clairvoyant window into the engine state.
class PolicyView {
 public:
  explicit PolicyView(const Engine& engine) : engine_(engine) {}

  Time now() const;
  std::uint32_t num_orgs() const;
  bool active(OrgId u) const;

  // Queue state.
  std::uint32_t waiting(OrgId u) const;   // released, not yet started
  // Release time of u's front waiting job (release times of released jobs
  // are public knowledge; only processing times are hidden). Precondition:
  // waiting(u) > 0.
  Time front_release(OrgId u) const;
  std::uint32_t running(OrgId u) const;   // started, not yet completed
  std::uint32_t completed(OrgId u) const;
  std::uint32_t free_machines() const;
  std::uint32_t machines_of(OrgId u) const;
  double share(OrgId u) const;  // machine share within the active coalition

  // Accounting at now() — all quantities refer to *elapsed* execution only.
  HalfUtil psi2(OrgId u) const;          // 2*psi_sp of u's jobs
  HalfUtil contrib_psi2(OrgId u) const;  // 2*psi_sp-value of parts run on u's machines
  std::int64_t work_done(OrgId u) const;     // unit parts of u's jobs executed
  std::int64_t contrib_work(OrgId u) const;  // unit parts executed on u's machines

 private:
  const Engine& engine_;
};

class Policy {
 public:
  virtual ~Policy() = default;

  // Called once before the simulation starts.
  virtual void reset(const PolicyView& /*view*/) {}

  // Picks the organization whose front job to start. Only called when
  // view.free_machines() > 0 and some organization has waiting(u) > 0; must
  // return an organization with waiting(u) > 0.
  virtual OrgId select(const PolicyView& view) = 0;

  // Notification after a job start (default: ignore).
  virtual void on_start(const PolicyView& /*view*/, OrgId /*org*/,
                        std::uint32_t /*index*/, MachineId /*machine*/) {}
};

}  // namespace fairsched
