#pragma once

// Scheduling policy interface.
//
// The engine calls Policy::select whenever at least one machine is free and
// at least one released job is waiting (the greedy invariant: some job must
// then be started). The policy answers with the organization whose
// front-of-queue job should start; the engine starts that organization's
// next FIFO job.
//
// Non-clairvoyance is enforced by the interface: PolicyView exposes queue
// lengths, run counts and accumulated performance accounting, but never the
// processing time of a waiting or running job. Policies learn a job's length
// only by observing its completion (through the accounting deltas), exactly
// as the paper's model prescribes.
//
// --- Push-based lifecycle --------------------------------------------------
//
// select() alone makes every decision O(num_orgs) (a full rescan); the
// engine therefore *pushes* state changes to the policy it drives so that
// policies can maintain per-organization priority keys incrementally and
// answer select() as an O(log num_orgs) argmin. While a policy is attached
// (Engine::run attaches automatically; manual drivers may call
// Engine::attach), the engine delivers, in event order:
//
//   reset(view)                    once, before the first event;
//   on_advance(view, dt)           the clock moved forward by dt; state
//                                  visible through `view` is already at the
//                                  new time;
//   on_release(view, u)            a job of u was released (after the
//                                  waiting count was incremented);
//   on_complete(view, u, m)        a job of u completed on machine m (after
//                                  the accounting was updated and m freed);
//   on_start(view, u, index, m)    u's job `index` started on m — delivered
//                                  by the run loop, immediately after the
//                                  policy's own select() answer was applied.
//
// All notification virtuals are default no-ops: a pre-existing policy that
// only overrides select(view) still compiles and behaves exactly as before
// — the scan-based select IS the adapter path, and it remains the supported
// interface for out-of-tree policies (see docs/ARCHITECTURE.md for the
// deprecation policy). Incremental policies must tolerate drivers that
// never attach: PolicyView::state_version() counts every engine state
// change, so a mirror can detect missed notifications and rebuild itself
// from the view (sched/org_index.h packages that pattern).

#include <cstdint>

#include "core/types.h"

namespace fairsched {

class Engine;
class Instance;

// Read-only, non-clairvoyant window into the engine state.
class PolicyView {
 public:
  explicit PolicyView(const Engine& engine) : engine_(engine) {}

  Time now() const;
  std::uint32_t num_orgs() const;
  bool active(OrgId u) const;

  // Queue state.
  std::uint32_t waiting(OrgId u) const;   // released, not yet started
  // Release time of u's front waiting job (release times of released jobs
  // are public knowledge; only processing times are hidden). Precondition:
  // waiting(u) > 0.
  Time front_release(OrgId u) const;
  std::uint32_t running(OrgId u) const;   // started, not yet completed
  std::uint32_t completed(OrgId u) const;
  std::uint32_t free_machines() const;
  std::uint32_t machines_of(OrgId u) const;
  // Of u's machines, how many currently execute a job (any owner's).
  std::uint32_t busy_machines(OrgId u) const;
  // Owner of machine m (ownership is static, public knowledge).
  OrgId machine_owner(MachineId m) const;
  double share(OrgId u) const;  // machine share within the active coalition

  // Accounting at now() — all quantities refer to *elapsed* execution only.
  HalfUtil psi2(OrgId u) const;          // 2*psi_sp of u's jobs
  HalfUtil contrib_psi2(OrgId u) const;  // 2*psi_sp-value of parts run on u's machines
  std::int64_t work_done(OrgId u) const;     // unit parts of u's jobs executed
  std::int64_t contrib_work(OrgId u) const;  // unit parts executed on u's machines

  // Monotone counter of engine state changes (events processed + jobs
  // started). A policy mirroring engine state incrementally compares this
  // against the version it last synchronized at to detect state changes it
  // was not notified of (drivers that step the engine without attaching).
  std::uint64_t state_version() const;

 private:
  const Engine& engine_;
};

class Policy {
 public:
  virtual ~Policy() = default;

  // Called once before the simulation starts.
  virtual void reset(const PolicyView& /*view*/) {}

  // Picks the organization whose front job to start. Only called when
  // view.free_machines() > 0 and some organization has waiting(u) > 0; must
  // return an organization with waiting(u) > 0.
  virtual OrgId select(const PolicyView& view) = 0;

  // Notification after a job start (default: ignore).
  virtual void on_start(const PolicyView& /*view*/, OrgId /*org*/,
                        std::uint32_t /*index*/, MachineId /*machine*/) {}

  // Push notifications (defaults: ignore — scan-only policies need none of
  // these). Delivered only while the policy is attached to the engine; see
  // the lifecycle note above.
  virtual void on_release(const PolicyView& /*view*/, OrgId /*org*/) {}
  virtual void on_complete(const PolicyView& /*view*/, OrgId /*org*/,
                           MachineId /*machine*/) {}
  virtual void on_advance(const PolicyView& /*view*/, Time /*dt*/) {}
};

}  // namespace fairsched
