#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fairsched {

Engine::Engine(const Instance& inst, Coalition active, EngineOptions options)
    : inst_(&inst),
      active_(active),
      options_(options),
      rng_(options.seed),
      released_(inst.num_orgs(), 0),
      started_(inst.num_orgs(), 0),
      completed_(inst.num_orgs(), 0),
      accounts_(inst.num_orgs()),
      schedule_(inst.num_orgs()) {
  const bool unified = options_.machine_pick == MachinePick::kFirstFree;
  if (options_.external_releases) {
    if (!unified) {
      throw std::invalid_argument(
          "external_releases requires MachinePick::kFirstFree (the legacy "
          "kRandomFree structures presort all releases at construction)");
    }
    injected_.assign(inst.num_orgs(), 0);
  }
  std::size_t release_count = 0;
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    if (!active_.contains(u)) continue;
    const auto jobs = inst.jobs_of(u);
    release_count += jobs.size();
    if (options_.external_releases) {
      // The workload is fed through inject_release; nothing to preload.
    } else if (unified) {
      // Streamed releases: the calendar holds only each organization's
      // earliest un-admitted release (advance_to pushes the successor when
      // one is consumed), so the live population stays at ~(member orgs +
      // running jobs) instead of the whole workload. Per-org job lists are
      // release-sorted, so the global minimum release is always present and
      // the drain order equals the full-preload order.
      if (!jobs.empty()) {
        events_.push(
            EngineEvent{jobs[0].release, EventKind::kRelease, u, 0, kNoMachine});
      }
    } else {
      for (std::uint32_t i = 0; i < jobs.size(); ++i) {
        releases_.push_back(Release{jobs[i].release, u});
      }
    }
    total_machines_ += inst.machines_of(u);
  }
  schedule_.reserve(release_count);
  if (!unified) {
    // Legacy order: by time, ties by org (per-org job lists are already
    // release-sorted, so stable sort keeps index order within an org).
    std::stable_sort(releases_.begin(), releases_.end(),
                     [](const Release& a, const Release& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.org < b.org;
                     });
  }
  // All machines of member organizations start free.
  if (unified) free_set_.init(inst.total_machines());
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    if (!active_.contains(u)) continue;
    for (MachineId m = inst.machine_begin(u); m < inst.machine_end(u); ++m) {
      if (unified) {
        free_set_.insert(m);
      } else {
        free_list_.push_back(m);
      }
    }
  }
  free_machines_ = total_machines_;
}

Engine::Engine(const Instance& inst, EngineOptions options)
    : Engine(inst, Coalition::grand(inst.num_orgs()), options) {}

double Engine::share(OrgId u) const {
  if (total_machines_ == 0 || !active_.contains(u)) return 0.0;
  return static_cast<double>(inst_->machines_of(u)) /
         static_cast<double>(total_machines_);
}

Time Engine::next_event() const {
  if (options_.machine_pick == MachinePick::kFirstFree) {
    return events_.empty() ? kTimeInfinity : events_.top().time;
  }
  Time t = kTimeInfinity;
  if (release_ptr_ < releases_.size()) {
    t = std::min(t, releases_[release_ptr_].time);
  }
  if (!completions_.empty()) t = std::min(t, completions_.top().time);
  return t;
}

void Engine::lazy_accrue(OrgId u) const {
  OrgAccount& acc = accounts_[u];
  const Time delta = now_ - acc.accrued_at;
  if (delta <= 0) return;
  acc.accrued_at = now_;
  if (acc.running_jobs > 0 || acc.work_done > 0) {
    // Own-job utility: old units each gain delta; each running job adds
    // delta fresh units worth (delta + delta-1 + ... + 1) at time now_.
    acc.psi2 += 2 * acc.work_done * delta +
                static_cast<HalfUtil>(acc.running_jobs) * delta * (delta + 1);
    acc.work_done += static_cast<std::int64_t>(acc.running_jobs) * delta;
  }
  if (acc.busy_machines > 0 || acc.contrib_work > 0) {
    acc.contrib_psi2 +=
        2 * acc.contrib_work * delta +
        static_cast<HalfUtil>(acc.busy_machines) * delta * (delta + 1);
    acc.contrib_work += static_cast<std::int64_t>(acc.busy_machines) * delta;
  }
}

void Engine::fold_aggregate() {
  if (agg_at_ == now_) return;
  agg_psi2_ = value2();
  agg_work_ = total_work_done();
  agg_at_ = now_;
  sync_mirror();
}

void Engine::advance_clock(Time t) {
  if (t <= now_) return;
  const Time dt = t - now_;
  now_ = t;
  if (listener_ != nullptr) {
    PolicyView view(*this);
    listener_->on_advance(view, dt);
  }
}

void Engine::apply_completion(Time t, OrgId org, MachineId machine) {
  assert(t == now_);
  (void)t;
  lazy_accrue(org);
  const OrgId owner = inst_->machine_owner(machine);
  lazy_accrue(owner);
  fold_aggregate();
  OrgAccount& acc = accounts_[org];
  assert(acc.running_jobs > 0);
  acc.running_jobs--;
  assert(accounts_[owner].busy_machines > 0);
  accounts_[owner].busy_machines--;
  agg_running_--;
  sync_mirror();
  completed_[org]++;
  if (options_.machine_pick == MachinePick::kFirstFree) {
    free_set_.insert(machine);
    // The applied completion is the earliest pending one (event_before
    // refines time), so it is the top of the time heap.
    assert(!completion_times_.empty() && completion_times_.top() == t);
    completion_times_.pop();
  } else {
    free_list_.push_back(machine);
  }
  free_machines_++;
  events_processed_++;
  if (listener_ != nullptr) {
    PolicyView view(*this);
    listener_->on_complete(view, org, machine);
  }
}

void Engine::apply_release(OrgId org) {
  released_[org]++;
  waiting_total_++;
  events_processed_++;
  if (listener_ != nullptr) {
    PolicyView view(*this);
    listener_->on_release(view, org);
  }
}

void Engine::advance_to(Time t) {
  assert(t >= now_);
  if (options_.machine_pick == MachinePick::kFirstFree) {
    // Unified stream: events due at or before t in event_before order.
    while (!events_.empty() && events_.top().time <= t) {
      const EngineEvent e = events_.pop();
      advance_clock(e.time);
      if (e.kind == EventKind::kCompletion) {
        apply_completion(e.time, e.org, e.machine);
      } else {
        apply_release(e.org);
        // Stream in the organization's next release (see the constructor).
        // In external-releases mode the driver injects every release
        // itself, so nothing is streamed here.
        if (!options_.external_releases) {
          const auto jobs = inst_->jobs_of(e.org);
          const std::uint32_t next_i = e.index + 1;
          if (next_i < jobs.size()) {
            events_.push(EngineEvent{jobs[next_i].release,
                                     EventKind::kRelease, e.org, next_i,
                                     kNoMachine});
          }
        }
      }
    }
    advance_clock(t);
    return;
  }
  // Legacy kRandomFree order (see the engine.h tie-break note): all due
  // completions in the heap's time-only order — their sequence feeds the
  // random machine draw — then all due releases. Releases are pure
  // bookkeeping (no accrual, no machine state), so processing them after
  // later-timed completions is state-equivalent to interleaving.
  while (!completions_.empty() && completions_.top().time <= t) {
    const Completion c = completions_.top();
    completions_.pop();
    advance_clock(c.time);
    apply_completion(c.time, c.org, c.machine);
  }
  advance_clock(t);
  while (release_ptr_ < releases_.size() &&
         releases_[release_ptr_].time <= t) {
    apply_release(releases_[release_ptr_].org);
    release_ptr_++;
  }
}

Time Engine::inject_release(OrgId u) {
  if (!options_.external_releases) {
    throw std::logic_error(
        "inject_release: engine was not built with external_releases");
  }
  if (!active_.contains(u)) {
    throw std::logic_error(
        "inject_release: organization is not in the active coalition");
  }
  const std::uint32_t index = injected_[u];
  if (index >= inst_->jobs_of(u).size()) {
    throw std::logic_error(
        "inject_release: no un-injected job (append to the instance "
        "first)");
  }
  const Job& job = inst_->job(u, index);
  if (job.release < now_) {
    throw std::logic_error(
        "inject_release: release is in the engine's past (events must be "
        "fed in nondecreasing time order)");
  }
  injected_[u]++;
  events_.push(
      EngineEvent{job.release, EventKind::kRelease, u, index, kNoMachine});
  return job.release;
}

MachineId Engine::pick_machine() {
  if (options_.machine_pick == MachinePick::kFirstFree) {
    return free_set_.pop_min();
  }
  const std::size_t i =
      static_cast<std::size_t>(rng_.uniform_u64(free_list_.size()));
  const MachineId m = free_list_[i];
  free_list_[i] = free_list_.back();
  free_list_.pop_back();
  return m;
}

MachineId Engine::start_front(OrgId u) {
  if (!active_.contains(u) || waiting(u) == 0) {
    throw std::logic_error("start_front: organization has no waiting job");
  }
  if (free_machines_ == 0) {
    throw std::logic_error("start_front: no free machine");
  }
  const std::uint32_t index = started_[u];
  const Job& job = inst_->job(u, index);
  assert(job.release <= now_);
  started_[u]++;
  waiting_total_--;
  const MachineId m = pick_machine();
  free_machines_--;
  lazy_accrue(u);
  const OrgId owner = inst_->machine_owner(m);
  lazy_accrue(owner);
  fold_aggregate();
  accounts_[u].running_jobs++;
  accounts_[owner].busy_machines++;
  agg_running_++;
  sync_mirror();
  if (options_.machine_pick == MachinePick::kFirstFree) {
    events_.push(EngineEvent{now_ + job.processing, EventKind::kCompletion, u,
                             index, m});
    completion_times_.push(now_ + job.processing);
  } else {
    completions_.push(Completion{now_ + job.processing, m, u, index});
  }
  schedule_.add(Placement{u, index, now_, m});
  decisions_++;
  return m;
}

void Engine::run(Policy& policy, Time horizon) {
  PolicyView view(*this);
  Policy* const previous = listener_;
  listener_ = &policy;
  policy.reset(view);
  for (;;) {
    // Wake only at times a decision could be required (see
    // next_decision_time); the skipped events are batch-processed by the
    // next advance_to in the exact same order, and the policy receives the
    // same notification sequence at the same view.now() timestamps.
    const Time t = next_decision_time();
    if (t == kTimeInfinity || t >= horizon) break;
    advance_to(t);
    while (needs_decision()) {
      const OrgId u = policy.select(view);
      if (u >= num_orgs() || waiting(u) == 0) {
        throw std::logic_error(
            "policy selected an organization with no waiting job");
      }
      const std::uint32_t index = started_[u];
      const MachineId m = start_front(u);
      policy.on_start(view, u, index, m);
    }
  }
  advance_to(horizon);
  listener_ = previous;
}

// --- PolicyView ------------------------------------------------------------

Time PolicyView::now() const { return engine_.now(); }
std::uint32_t PolicyView::num_orgs() const { return engine_.num_orgs(); }
bool PolicyView::active(OrgId u) const { return engine_.is_active(u); }
std::uint32_t PolicyView::waiting(OrgId u) const { return engine_.waiting(u); }
Time PolicyView::front_release(OrgId u) const {
  return engine_.front_release(u);
}
std::uint32_t PolicyView::running(OrgId u) const { return engine_.running(u); }
std::uint32_t PolicyView::completed(OrgId u) const {
  return engine_.completed(u);
}
std::uint32_t PolicyView::free_machines() const {
  return engine_.free_machines();
}
std::uint32_t PolicyView::machines_of(OrgId u) const {
  return engine_.machines_of(u);
}
std::uint32_t PolicyView::busy_machines(OrgId u) const {
  return engine_.busy_machines(u);
}
OrgId PolicyView::machine_owner(MachineId m) const {
  return engine_.instance().machine_owner(m);
}
double PolicyView::share(OrgId u) const { return engine_.share(u); }
HalfUtil PolicyView::psi2(OrgId u) const { return engine_.psi2(u); }
HalfUtil PolicyView::contrib_psi2(OrgId u) const {
  return engine_.contrib_psi2(u);
}
std::int64_t PolicyView::work_done(OrgId u) const {
  return engine_.work_done(u);
}
std::int64_t PolicyView::contrib_work(OrgId u) const {
  return engine_.contrib_work(u);
}
std::uint64_t PolicyView::state_version() const {
  return engine_.state_version();
}

}  // namespace fairsched
