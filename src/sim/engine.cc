#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fairsched {

Engine::Engine(const Instance& inst, Coalition active, EngineOptions options)
    : inst_(&inst),
      active_(active),
      options_(options),
      rng_(options.seed),
      released_(inst.num_orgs(), 0),
      started_(inst.num_orgs(), 0),
      completed_(inst.num_orgs(), 0),
      accounts_(inst.num_orgs()),
      schedule_(inst.num_orgs()) {
  // Releases of member organizations, globally sorted by time. Per-org job
  // lists are already release-sorted, so a k-way merge would do; a flat sort
  // keeps the code simple and is O(J log J) once per engine.
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    if (!active_.contains(u)) continue;
    for (const Job& j : inst.jobs_of(u)) {
      releases_.push_back(Release{j.release, u});
    }
    total_machines_ += inst.machines_of(u);
  }
  std::stable_sort(releases_.begin(), releases_.end(),
                   [](const Release& a, const Release& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.org < b.org;
                   });
  // All machines of member organizations start free.
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    if (!active_.contains(u)) continue;
    for (MachineId m = inst.machine_begin(u); m < inst.machine_end(u); ++m) {
      if (options_.machine_pick == MachinePick::kFirstFree) {
        free_heap_.push(m);
      } else {
        free_list_.push_back(m);
      }
    }
  }
  free_machines_ = total_machines_;
}

Engine::Engine(const Instance& inst, EngineOptions options)
    : Engine(inst, Coalition::grand(inst.num_orgs()), options) {}

double Engine::share(OrgId u) const {
  if (total_machines_ == 0 || !active_.contains(u)) return 0.0;
  return static_cast<double>(inst_->machines_of(u)) /
         static_cast<double>(total_machines_);
}

HalfUtil Engine::value2() const {
  HalfUtil total = 0;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) total += accounts_[u].psi2;
  return total;
}

std::int64_t Engine::total_work_done() const {
  std::int64_t total = 0;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    total += accounts_[u].work_done;
  }
  return total;
}

Time Engine::next_event() const {
  Time t = kTimeInfinity;
  if (release_ptr_ < releases_.size()) {
    t = std::min(t, releases_[release_ptr_].time);
  }
  if (!completions_.empty()) t = std::min(t, completions_.top().time);
  return t;
}

void Engine::accrue_to(Time t) {
  const Time delta = t - now_;
  if (delta <= 0) return;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    OrgAccount& acc = accounts_[u];
    if (acc.running_jobs > 0 || acc.work_done > 0) {
      // Own-job utility: old units each gain delta; each running job adds
      // delta fresh units worth (delta + delta-1 + ... + 1) at time t.
      acc.psi2 += 2 * acc.work_done * delta +
                  static_cast<HalfUtil>(acc.running_jobs) * delta * (delta + 1);
      acc.work_done += static_cast<std::int64_t>(acc.running_jobs) * delta;
    }
    if (acc.busy_machines > 0 || acc.contrib_work > 0) {
      acc.contrib_psi2 +=
          2 * acc.contrib_work * delta +
          static_cast<HalfUtil>(acc.busy_machines) * delta * (delta + 1);
      acc.contrib_work += static_cast<std::int64_t>(acc.busy_machines) * delta;
    }
  }
  now_ = t;
}

void Engine::advance_to(Time t) {
  assert(t >= now_);
  // Completions strictly before or at t, in time order, each accrued
  // piecewise so the interval after a completion no longer counts the
  // finished job as running.
  while (!completions_.empty() && completions_.top().time <= t) {
    const Completion c = completions_.top();
    completions_.pop();
    accrue_to(c.time);
    OrgAccount& acc = accounts_[c.org];
    assert(acc.running_jobs > 0);
    acc.running_jobs--;
    const OrgId owner = inst_->machine_owner(c.machine);
    assert(accounts_[owner].busy_machines > 0);
    accounts_[owner].busy_machines--;
    completed_[c.org]++;
    if (options_.machine_pick == MachinePick::kFirstFree) {
      free_heap_.push(c.machine);
    } else {
      free_list_.push_back(c.machine);
    }
    free_machines_++;
  }
  accrue_to(t);
  while (release_ptr_ < releases_.size() &&
         releases_[release_ptr_].time <= t) {
    released_[releases_[release_ptr_].org]++;
    waiting_total_++;
    release_ptr_++;
  }
}

MachineId Engine::pick_machine() {
  if (options_.machine_pick == MachinePick::kFirstFree) {
    const MachineId m = free_heap_.top();
    free_heap_.pop();
    return m;
  }
  const std::size_t i =
      static_cast<std::size_t>(rng_.uniform_u64(free_list_.size()));
  const MachineId m = free_list_[i];
  free_list_[i] = free_list_.back();
  free_list_.pop_back();
  return m;
}

MachineId Engine::start_front(OrgId u) {
  if (!active_.contains(u) || waiting(u) == 0) {
    throw std::logic_error("start_front: organization has no waiting job");
  }
  if (free_machines_ == 0) {
    throw std::logic_error("start_front: no free machine");
  }
  const std::uint32_t index = started_[u];
  const Job& job = inst_->job(u, index);
  assert(job.release <= now_);
  started_[u]++;
  waiting_total_--;
  const MachineId m = pick_machine();
  free_machines_--;
  accounts_[u].running_jobs++;
  accounts_[inst_->machine_owner(m)].busy_machines++;
  completions_.push(Completion{now_ + job.processing, m, u, index});
  schedule_.add(Placement{u, index, now_, m});
  return m;
}

void Engine::run(Policy& policy, Time horizon) {
  PolicyView view(*this);
  policy.reset(view);
  for (;;) {
    const Time t = next_event();
    if (t == kTimeInfinity || t >= horizon) break;
    advance_to(t);
    while (needs_decision()) {
      const OrgId u = policy.select(view);
      if (u >= num_orgs() || waiting(u) == 0) {
        throw std::logic_error(
            "policy selected an organization with no waiting job");
      }
      const std::uint32_t index = started_[u];
      const MachineId m = start_front(u);
      policy.on_start(view, u, index, m);
    }
  }
  advance_to(horizon);
}

// --- PolicyView ------------------------------------------------------------

Time PolicyView::now() const { return engine_.now(); }
std::uint32_t PolicyView::num_orgs() const { return engine_.num_orgs(); }
bool PolicyView::active(OrgId u) const { return engine_.is_active(u); }
std::uint32_t PolicyView::waiting(OrgId u) const { return engine_.waiting(u); }
Time PolicyView::front_release(OrgId u) const {
  return engine_.front_release(u);
}
std::uint32_t PolicyView::running(OrgId u) const { return engine_.running(u); }
std::uint32_t PolicyView::completed(OrgId u) const {
  return engine_.completed(u);
}
std::uint32_t PolicyView::free_machines() const {
  return engine_.free_machines();
}
std::uint32_t PolicyView::machines_of(OrgId u) const {
  return engine_.machines_of(u);
}
double PolicyView::share(OrgId u) const { return engine_.share(u); }
HalfUtil PolicyView::psi2(OrgId u) const { return engine_.psi2(u); }
HalfUtil PolicyView::contrib_psi2(OrgId u) const {
  return engine_.contrib_psi2(u);
}
std::int64_t PolicyView::work_done(OrgId u) const {
  return engine_.work_done(u);
}
std::int64_t PolicyView::contrib_work(OrgId u) const {
  return engine_.contrib_work(u);
}

}  // namespace fairsched
