#pragma once

// Event-driven simulator for multi-organizational greedy scheduling.
//
// The paper describes its algorithms as acting at every discrete time
// moment; since greedy algorithms only make decisions when a machine frees
// or a job arrives, the engine advances directly between such events and
// accrues the strategy-proof utility (and the machine-owner contribution
// used by DIRECTCONTR) in closed form over each event-free interval:
//
//   with C = units completed before t1 and w = jobs running throughout
//   [t1, t2):   2*psi(t2) = 2*psi(t1) + 2*C*(t2-t1) + w*(t2-t1)*(t2-t1+1)
//
// (each running job contributes one fresh unit per slot; a unit in slot i is
// worth t - i at time t). This reproduces Eq. 3 exactly — see
// tests/test_engine.cc which cross-checks against the closed form on the
// final schedule.
//
// The engine is a manually steppable state machine (advance_to /
// start_front) so that ensemble schedulers (REF drives one engine per
// subcoalition; RAND one per sampled coalition) can interleave many engines
// on one timeline. `run(policy, horizon)` is the convenience driver used by
// ordinary policies.
//
// An engine can be restricted to a coalition: only member organizations'
// machines exist and only their jobs arrive. Organization ids keep their
// global numbering so ensemble drivers can aggregate without relabeling.

#include <cstdint>
#include <queue>
#include <vector>

#include "core/coalition.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace fairsched {

// How the engine picks among free machines. Identical machines make the
// choice irrelevant for utilities, but the owner of the chosen machine
// receives the contribution credit, which DIRECTCONTR uses; the paper's
// Fig. 9 considers processors in a random order.
enum class MachinePick { kFirstFree, kRandomFree };

struct EngineOptions {
  MachinePick machine_pick = MachinePick::kFirstFree;
  std::uint64_t seed = 0;  // used only for kRandomFree
};

class Engine {
 public:
  Engine(const Instance& inst, Coalition active, EngineOptions options = {});

  // Convenience: grand coalition.
  explicit Engine(const Instance& inst, EngineOptions options = {});

  const Instance& instance() const { return *inst_; }
  Coalition active() const { return active_; }
  Time now() const { return now_; }

  // Earliest pending event (release or completion) strictly after now(), or
  // kTimeInfinity when the engine is drained.
  Time next_event() const;

  // Advances the clock to t (>= now()): accrues utilities, completes jobs
  // due at or before t, and admits releases at or before t. Does not start
  // any job.
  void advance_to(Time t);

  // True when a scheduling decision is required (free machine + waiting job).
  bool needs_decision() const {
    return free_machines_ > 0 && waiting_total_ > 0;
  }

  // Starts organization u's front FIFO job at now(); returns the machine.
  // Precondition: waiting(u) > 0 and a machine is free.
  MachineId start_front(OrgId u);

  // Runs `policy` until `horizon`: processes events in order, invoking the
  // policy at each decision point, then advances to exactly `horizon`.
  void run(Policy& policy, Time horizon);

  // --- state inspection --------------------------------------------------
  std::uint32_t num_orgs() const { return inst_->num_orgs(); }
  bool is_active(OrgId u) const { return active_.contains(u); }
  std::uint32_t waiting(OrgId u) const {
    return released_[u] - started_[u];
  }
  // Release time of u's front waiting job. Precondition: waiting(u) > 0.
  Time front_release(OrgId u) const {
    return inst_->job(u, started_[u]).release;
  }
  std::uint32_t waiting_total() const { return waiting_total_; }
  std::uint32_t running(OrgId u) const { return accounts_[u].running_jobs; }
  std::uint32_t completed(OrgId u) const { return completed_[u]; }
  std::uint32_t free_machines() const { return free_machines_; }
  std::uint32_t total_machines() const { return total_machines_; }
  std::uint32_t machines_of(OrgId u) const {
    return active_.contains(u) ? inst_->machines_of(u) : 0;
  }
  double share(OrgId u) const;

  // --- accounting at now() ------------------------------------------------
  HalfUtil psi2(OrgId u) const { return accounts_[u].psi2; }
  HalfUtil contrib_psi2(OrgId u) const { return accounts_[u].contrib_psi2; }
  std::int64_t work_done(OrgId u) const { return accounts_[u].work_done; }
  std::int64_t contrib_work(OrgId u) const {
    return accounts_[u].contrib_work;
  }
  // Coalition value 2*v = sum of member utilities.
  HalfUtil value2() const;
  // Total completed unit parts (the paper's p_tot for this schedule).
  std::int64_t total_work_done() const;

  const Schedule& schedule() const { return schedule_; }

 private:
  struct Completion {
    Time time;
    MachineId machine;
    OrgId org;
    std::uint32_t index;
    bool operator>(const Completion& other) const {
      return time > other.time;
    }
  };

  struct OrgAccount {
    std::int64_t work_done = 0;      // completed unit parts of own jobs
    HalfUtil psi2 = 0;               // 2 * psi_sp of own jobs
    std::int64_t contrib_work = 0;   // unit parts run on own machines
    HalfUtil contrib_psi2 = 0;       // 2 * value of parts run on own machines
    std::uint32_t running_jobs = 0;  // own jobs currently running
    std::uint32_t busy_machines = 0; // own machines currently busy
  };

  void accrue_to(Time t);
  MachineId pick_machine();

  const Instance* inst_;
  Coalition active_;
  EngineOptions options_;
  Rng rng_;

  // Releases of active organizations, sorted by time (ties: org then index,
  // for determinism).
  struct Release {
    Time time;
    OrgId org;
  };
  std::vector<Release> releases_;
  std::size_t release_ptr_ = 0;

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;

  // Free machines. kFirstFree keeps a min-heap (lowest id first,
  // deterministic); kRandomFree keeps a flat vector with swap-pop.
  std::priority_queue<MachineId, std::vector<MachineId>,
                      std::greater<MachineId>>
      free_heap_;
  std::vector<MachineId> free_list_;

  std::vector<std::uint32_t> released_;
  std::vector<std::uint32_t> started_;
  std::vector<std::uint32_t> completed_;
  std::vector<OrgAccount> accounts_;
  std::uint32_t waiting_total_ = 0;
  std::uint32_t free_machines_ = 0;
  std::uint32_t total_machines_ = 0;

  Time now_ = 0;
  Schedule schedule_;
};

}  // namespace fairsched
