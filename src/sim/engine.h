#pragma once

// Event-driven simulator for multi-organizational greedy scheduling.
//
// The paper describes its algorithms as acting at every discrete time
// moment; since greedy algorithms only make decisions when a machine frees
// or a job arrives, the engine advances directly between such events and
// accrues the strategy-proof utility (and the machine-owner contribution
// used by DIRECTCONTR) in closed form over each event-free interval:
//
//   with C = units completed before t1 and w = jobs running throughout
//   [t1, t2):   2*psi(t2) = 2*psi(t1) + 2*C*(t2-t1) + w*(t2-t1)*(t2-t1+1)
//
// (each running job contributes one fresh unit per slot; a unit in slot i is
// worth t - i at time t). This reproduces Eq. 3 exactly — see
// tests/test_engine.cc which cross-checks against the closed form on the
// final schedule.
//
// The closed form is linear in (C, w), so it splits exactly across
// sub-intervals and sums exactly across organizations. The engine exploits
// both: per-organization accounts accrue *lazily* (each carries its own
// `accrued_at` timestamp and is folded forward only when read or when its
// running/busy count changes), and coalition-level aggregates (value2,
// total_work_done) are O(1) closed-form reads off three running sums —
// advancing the clock costs O(1), not O(num_orgs). Both shortcuts are
// bit-exact against the eager per-event loop they replaced.
//
// --- Event queue and tie-break ---------------------------------------------
//
// Releases and completions feed one unified event stream held in a calendar
// queue (sim/calendar_queue.h) with O(1) amortized push/pop. Simultaneous
// events are ordered by the single tie-break rule defined ONCE as
// `event_before` in that header: (time, completions-before-releases, org,
// index). Deliberate exception: with MachinePick::kRandomFree the engine
// keeps the historical structures (sorted release list + time-only binary
// heap of completions). That heap's same-time pop order determines the
// order machines return to the free list, which the random machine draw
// indexes into — i.e. it is part of the published RNG stream of
// DIRECTCONTR runs and cannot change without changing results. kFirstFree
// engines (every other policy, REF, RAND — the performance-critical paths)
// use the calendar queue, where same-time completion order is unobservable:
// machines re-enter an id-ordered free set and all accounting is
// commutative within one timestamp.
//
// The engine is a manually steppable state machine (advance_to /
// start_front) so that ensemble schedulers (REF drives one engine per
// subcoalition; RAND one per sampled coalition) can interleave many engines
// on one timeline. `run(policy, horizon)` is the convenience driver used by
// ordinary policies; it attaches the policy so the push notifications of
// the incremental Policy API (sim/policy.h) are delivered. Manual drivers
// may attach a listener themselves via attach().
//
// An engine can be restricted to a coalition: only member organizations'
// machines exist and only their jobs arrive. Organization ids keep their
// global numbering so ensemble drivers can aggregate without relabeling.
//
// Engines are single-threaded objects: the const accessors fold lazy
// accruals forward through mutable state, so concurrent reads of one
// engine are not safe (the sweep executors give every run its own engine).

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/coalition.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "sim/calendar_queue.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace fairsched {

// How the engine picks among free machines. Identical machines make the
// choice irrelevant for utilities, but the owner of the chosen machine
// receives the contribution credit, which DIRECTCONTR uses; the paper's
// Fig. 9 considers processors in a random order.
enum class MachinePick { kFirstFree, kRandomFree };

struct EngineOptions {
  MachinePick machine_pick = MachinePick::kFirstFree;
  std::uint64_t seed = 0;  // used only for kRandomFree
  // Serve-mode seam (src/serve): the workload is not known at
  // construction. The engine preloads no releases; the driver grows the
  // instance's per-organization job lists (serve::LiveInstance) and feeds
  // each release through inject_release as it learns of it. Requires
  // kFirstFree (the legacy kRandomFree structures presort all releases at
  // construction). Events injected up to any time T and then drained
  // produce the exact state and event order a preloaded engine reaches at
  // T — the calendar's drain order depends only on event_before, never on
  // insertion order — which is what makes serve-vs-batch replay
  // byte-identical (tests/test_serve_replay.cc).
  bool external_releases = false;
};

class Engine {
 public:
  Engine(const Instance& inst, Coalition active, EngineOptions options = {});

  // Convenience: grand coalition.
  explicit Engine(const Instance& inst, EngineOptions options = {});

  const Instance& instance() const { return *inst_; }
  Coalition active() const { return active_; }
  Time now() const { return now_; }

  // Earliest pending event (release or completion) strictly after now(), or
  // kTimeInfinity when the engine is drained.
  Time next_event() const;

  // Earliest pending completion, or kTimeInfinity if no job is running.
  Time next_completion() const {
    if (options_.machine_pick == MachinePick::kFirstFree) {
      return completion_times_.empty() ? kTimeInfinity
                                       : completion_times_.top();
    }
    return completions_.empty() ? kTimeInfinity : completions_.top().time;
  }

  // Earliest future time at which a scheduling decision could possibly be
  // required — the wake-up granularity event-loop drivers actually need.
  // While no machine is free, releases cannot enable a decision (they only
  // grow the waiting queue), so the next opportunity is the next
  // completion; otherwise any event can. Waking at these times only and
  // batch-processing the skipped events in the next advance_to yields the
  // exact same decision sequence as waking at every event: events are
  // applied in the same `event_before` order either way, releases carry no
  // accrual, and every state a driver observes at a decision point is
  // identical.
  Time next_decision_time() const {
    return free_machines_ > 0 ? next_event() : next_completion();
  }

  // Advances the clock to t (>= now()): accrues utilities, completes jobs
  // due at or before t, and admits releases at or before t. Does not start
  // any job. Events are processed in `event_before` order (kRandomFree: see
  // the header note); the attached listener, if any, is notified per event.
  void advance_to(Time t);

  // True when a scheduling decision is required (free machine + waiting job).
  bool needs_decision() const {
    return free_machines_ > 0 && waiting_total_ > 0;
  }

  // Starts organization u's front FIFO job at now(); returns the machine.
  // Precondition: waiting(u) > 0 and a machine is free.
  MachineId start_front(OrgId u);

  // Runs `policy` until `horizon`: processes events in order, invoking the
  // policy at each decision point, then advances to exactly `horizon`.
  // Attaches `policy` for the duration, so it receives the push
  // notifications (on_release / on_complete / on_advance) of sim/policy.h.
  void run(Policy& policy, Time horizon);

  // Attaches `listener` to receive push notifications from advance_to
  // (nullptr detaches). Manual drivers stepping the engine directly can use
  // this to keep an incremental policy's mirror current; note start_front
  // does NOT synthesize on_start — the driver that decides also notifies.
  void attach(Policy* listener) { listener_ = listener; }

  // External-releases mode only: makes organization u's next un-injected
  // job (FIFO index = number of injections so far) visible to the event
  // stream. The job must already exist in the instance and its release
  // must be >= now(); drivers feed arrivals in nondecreasing time order
  // before advancing past them. Returns the injected release time.
  Time inject_release(OrgId u);
  // Releases injected so far for u (external-releases mode bookkeeping).
  std::uint32_t injected(OrgId u) const { return injected_[u]; }

  // --- state inspection --------------------------------------------------
  std::uint32_t num_orgs() const { return inst_->num_orgs(); }
  bool is_active(OrgId u) const { return active_.contains(u); }
  std::uint32_t waiting(OrgId u) const {
    return released_[u] - started_[u];
  }
  // Release time of u's front waiting job. Precondition: waiting(u) > 0.
  Time front_release(OrgId u) const {
    return inst_->job(u, started_[u]).release;
  }
  std::uint32_t waiting_total() const { return waiting_total_; }
  std::uint32_t running(OrgId u) const { return accounts_[u].running_jobs; }
  std::uint32_t completed(OrgId u) const { return completed_[u]; }
  std::uint32_t free_machines() const { return free_machines_; }
  std::uint32_t total_machines() const { return total_machines_; }
  std::uint32_t machines_of(OrgId u) const {
    return active_.contains(u) ? inst_->machines_of(u) : 0;
  }
  std::uint32_t busy_machines(OrgId u) const {
    return accounts_[u].busy_machines;
  }
  double share(OrgId u) const;

  // --- accounting at now() ------------------------------------------------
  HalfUtil psi2(OrgId u) const {
    lazy_accrue(u);
    return accounts_[u].psi2;
  }
  HalfUtil contrib_psi2(OrgId u) const {
    lazy_accrue(u);
    return accounts_[u].contrib_psi2;
  }
  std::int64_t work_done(OrgId u) const {
    lazy_accrue(u);
    return accounts_[u].work_done;
  }
  std::int64_t contrib_work(OrgId u) const {
    lazy_accrue(u);
    return accounts_[u].contrib_work;
  }
  // Coalition value 2*v = sum of member utilities. O(1): closed form over
  // the aggregate (total work, total psi2, running count) running sums.
  HalfUtil value2() const { return value2_at(now_); }
  // Coalition value at a FUTURE time t >= now() without touching the
  // engine. Only valid when the caller guarantees no pending *completion*
  // is due at or before t — then no schedule change can land in (now, t]
  // and the closed form extends exactly. Pending releases at or before t
  // are harmless: a waiting job accrues nothing, so admitting it cannot
  // move the value. REF's global (time, size) event order provides the
  // guarantee for subcoalition reads. Bit-identical to advance_to(t)
  // followed by value2() — both evaluate the same expression at d = t -
  // agg_at_.
  HalfUtil value2_at(Time t) const {
    assert(t == now_ || (t > now_ && next_completion() > t));
    const Time d = t - agg_at_;
    return agg_psi2_ + 2 * agg_work_ * d +
           static_cast<HalfUtil>(agg_running_) * d * (d + 1);
  }
  // Total completed unit parts (the paper's p_tot for this schedule). O(1).
  std::int64_t total_work_done() const {
    const Time d = now_ - agg_at_;
    return agg_work_ + static_cast<std::int64_t>(agg_running_) * d;
  }

  // The aggregate running sums behind value2_at, exact at `at`. Evaluating
  //   psi2 + 2*work*d + running*d*(d+1)   with d = t - at
  // is the identical expression value2_at computes, so a reader holding a
  // snapshot gets bit-identical values without touching the engine.
  struct AggSnapshot {
    std::int64_t work = 0;
    HalfUtil psi2 = 0;
    std::uint32_t running = 0;
    Time at = 0;
  };

  // Registers a write-through mirror of the aggregate sums (nullptr
  // detaches). The engine refreshes *slot whenever the aggregates change,
  // so ensemble drivers holding many engines (REF: one per subcoalition)
  // can read all coalition values from one flat, cache-friendly array
  // instead of chasing a pointer per engine. The slot must outlive the
  // engine or be detached first.
  void mirror_aggregate(AggSnapshot* slot) {
    agg_mirror_ = slot;
    sync_mirror();
  }

  const Schedule& schedule() const { return schedule_; }

  // --- instrumentation ----------------------------------------------------
  // Events processed (releases admitted + completions applied) so far.
  std::uint64_t events_processed() const { return events_processed_; }
  // Scheduling decisions applied (start_front calls) so far.
  std::uint64_t decisions_made() const { return decisions_; }
  // Monotone version of the observable state: bumps on every event and
  // every start. Incremental policies use it to detect missed
  // notifications (PolicyView::state_version).
  std::uint64_t state_version() const { return events_processed_ + decisions_; }

 private:
  // Legacy completion entry for the kRandomFree path (time-only order; see
  // the header note on the tie-break exception).
  struct Completion {
    Time time;
    MachineId machine;
    OrgId org;
    std::uint32_t index;
    bool operator>(const Completion& other) const {
      return time > other.time;
    }
  };

  struct OrgAccount {
    std::int64_t work_done = 0;      // completed unit parts of own jobs
    HalfUtil psi2 = 0;               // 2 * psi_sp of own jobs
    std::int64_t contrib_work = 0;   // unit parts run on own machines
    HalfUtil contrib_psi2 = 0;       // 2 * value of parts run on own machines
    std::uint32_t running_jobs = 0;  // own jobs currently running
    std::uint32_t busy_machines = 0; // own machines currently busy
    Time accrued_at = 0;             // the accounts above are exact at this time
  };

  // Folds organization u's account forward to now() (exact: the closed
  // form splits across sub-intervals). Called before any read and before
  // any running/busy count change.
  void lazy_accrue(OrgId u) const;
  // Folds the engine-level aggregate sums to now(); must be called before
  // the total running count changes.
  void fold_aggregate();
  // Refreshes the registered aggregate mirror, if any. Must run after every
  // change to the agg_* fields (fold_aggregate and the running-count
  // updates in start_front / apply_completion).
  void sync_mirror() {
    if (agg_mirror_ != nullptr) {
      *agg_mirror_ = AggSnapshot{agg_work_, agg_psi2_, agg_running_, agg_at_};
    }
  }
  // Moves the clock (monotone) and notifies the listener.
  void advance_clock(Time t);
  void apply_completion(Time t, OrgId org, MachineId machine);
  void apply_release(OrgId org);
  MachineId pick_machine();

  const Instance* inst_;
  Coalition active_;
  EngineOptions options_;
  Rng rng_;

  // Unified event stream (kFirstFree engines): releases preloaded at
  // construction, completions pushed as jobs start.
  CalendarQueue events_;
  // Pending completion times of the unified stream (duplicating the times
  // of the calendar's completion entries): O(1) next_completion() for the
  // wake-skipping of next_decision_time() and the value2_at precondition,
  // which the mixed-kind calendar cannot answer cheaply.
  std::priority_queue<Time, std::vector<Time>, std::greater<Time>>
      completion_times_;

  // Legacy kRandomFree structures (see header note). Releases of active
  // organizations sorted by (time, org); completions in a time-only heap.
  struct Release {
    Time time;
    OrgId org;
  };
  std::vector<Release> releases_;
  std::size_t release_ptr_ = 0;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;

  // Free machines, kFirstFree flavor: a bitmap over machine ids with a
  // first-possibly-set-word hint. pop_min() returns the lowest free id —
  // the same order the min-heap it replaced produced — in O(1) amortized
  // word scans instead of O(log m) heap percolation.
  class FreeMachineSet {
   public:
    void init(std::uint32_t num_machines) {
      words_.assign((num_machines + 63) / 64, 0);
      first_ = words_.size();
    }
    void insert(MachineId m) {
      const std::size_t w = m >> 6;
      words_[w] |= std::uint64_t{1} << (m & 63);
      if (w < first_) first_ = w;
    }
    // Removes and returns the lowest id. Precondition: not empty.
    MachineId pop_min() {
      while (words_[first_] == 0) ++first_;
      const int bit = __builtin_ctzll(words_[first_]);
      words_[first_] &= words_[first_] - 1;
      return static_cast<MachineId>((first_ << 6) | bit);
    }

   private:
    std::vector<std::uint64_t> words_;
    std::size_t first_ = 0;
  };
  FreeMachineSet free_set_;
  // kRandomFree flavor: flat vector with swap-pop (random draw indexes it).
  std::vector<MachineId> free_list_;

  std::vector<std::uint32_t> released_;
  std::vector<std::uint32_t> started_;
  std::vector<std::uint32_t> completed_;
  // External-releases mode: per-org count of releases handed to
  // inject_release (empty otherwise).
  std::vector<std::uint32_t> injected_;
  // mutable: const accessors fold lazy accruals forward (single-threaded;
  // see the header note).
  mutable std::vector<OrgAccount> accounts_;
  std::uint32_t waiting_total_ = 0;
  std::uint32_t free_machines_ = 0;
  std::uint32_t total_machines_ = 0;

  // Aggregate running sums behind value2()/total_work_done(), exact at
  // agg_at_.
  std::int64_t agg_work_ = 0;
  HalfUtil agg_psi2_ = 0;
  std::uint32_t agg_running_ = 0;
  Time agg_at_ = 0;
  AggSnapshot* agg_mirror_ = nullptr;

  std::uint64_t events_processed_ = 0;
  std::uint64_t decisions_ = 0;
  Policy* listener_ = nullptr;

  Time now_ = 0;
  Schedule schedule_;
};

}  // namespace fairsched
