#pragma once

// Calendar queue for the engine's unified event stream.
//
// A calendar queue (R. Brown, "Calendar queues: a fast O(1) priority queue
// implementation for the simulation event set problem", CACM 1988) hashes
// events into time buckets of a fixed width, like days on a desk calendar:
// insertion appends into the bucket of the event's "day", dequeue scans the
// current day and wraps into the next year when a bucket holds only events
// for later years. With the width kept near the average inter-event gap by
// doubling/halving the bucket count as the population grows and shrinks,
// both operations are O(1) amortized — replacing the engine's former
// sorted-release pointer + binary-heap completion queue pair with one
// structure and one ordering rule.
//
// --- Event tie-break (single source of truth) ------------------------------
//
// `event_before` below is the ONE definition of simultaneous-event order for
// the whole engine (previously implicit in two separate queue comparators):
//
//   1. time        — earlier events first;
//   2. kind        — completions before releases (matching the historical
//                    advance_to contract: machines freed at t are available
//                    to jobs arriving at t);
//   3. org         — lower organization id first;
//   4. index       — lower per-organization job index first.
//
// (time, kind, org, index) is unique per event — a job has one release and
// one completion — so the order is total and the drain sequence is fully
// deterministic regardless of insertion order; tests/test_calendar_queue.cc
// pins this. The one deliberate exception is documented in sim/engine.h:
// engines running with MachinePick::kRandomFree keep the legacy
// time-only completion heap, whose same-time pop order feeds the random
// machine draw and is therefore part of the published RNG stream.
//
// The structure itself is generic (BasicCalendarQueue): any entry type with
// a non-negative `time` field and a strict total order refining time works.
// The engine instantiates it for EngineEvent. (Note: a calendar queue wants
// a population whose times spread over many buckets — a small set of
// near-simultaneous entries degenerates into one long bucket, which is why
// REF's 2^k-coalition wake-up loop uses a tournament tree instead.)
//
// Buckets are skew heaps (top-down self-adjusting min-heaps) over all nodes
// in one pooled array recycled through a free list: pushes and pops never
// touch the allocator in steady state — the pool only grows to the peak
// number of pending events. A bucket's root is its minimum, so push and pop
// cost O(log occupancy) amortized even when the population defeats the
// bucket geometry. That matters because the bucket width cannot drop below
// one time unit: an open workload with thousands of arrivals per integer
// timestamp (the serve smoke load) piles thousands of events into a handful
// of buckets, where the sorted-list buckets this replaced paid an O(occupancy)
// insertion walk per push and the heap pays ~log2(occupancy) node visits.
// With O(1) expected occupancy the heap degenerates gracefully back to a
// couple of pointer swaps per operation. The drain order is unchanged in
// every case: the comparator is a strict total order, so the bucket minimum
// is unique and the pop sequence cannot depend on the heap's internal shape
// or the insertion order. Times must be non-negative, as everywhere in the
// simulator.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace fairsched {

// What happened at EngineEvent::time. kCompletion must order before
// kRelease (see the tie-break above); the enum values encode that.
enum class EventKind : std::uint8_t { kCompletion = 0, kRelease = 1 };

// One entry of the engine's unified event stream.
struct EngineEvent {
  Time time = 0;
  EventKind kind = EventKind::kRelease;
  OrgId org = kNoOrg;
  std::uint32_t index = 0;  // per-organization job index
  MachineId machine = kNoMachine;  // completions only

  friend bool operator==(const EngineEvent&, const EngineEvent&) = default;
};

// THE tie-break rule. Strict total order over distinct events.
constexpr bool event_before(const EngineEvent& a, const EngineEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.org != b.org) return a.org < b.org;
  return a.index < b.index;
}

// Functor form of the tie-break, the default order of BasicCalendarQueue.
struct EngineEventOrder {
  constexpr bool operator()(const EngineEvent& a, const EngineEvent& b) const {
    return event_before(a, b);
  }
};

template <typename Event, typename Order = EngineEventOrder>
class BasicCalendarQueue {
 public:
  BasicCalendarQueue() { rebuild(kMinBuckets, /*shift=*/0); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Pre-sizes the (empty) calendar for `expected` events spanning [lo, hi]:
  // one rebuild and one pool allocation up front instead of the O(log n)
  // cascade of doubling resizes a bulk preload would trigger. Purely a
  // performance hint — the drain order is the same total order regardless
  // of bucket geometry.
  void reserve(std::size_t expected, Time lo, Time hi) {
    assert(size_ == 0);
    std::size_t n = kMinBuckets;
    while (n < expected && n < kMaxBuckets) n <<= 1;
    Time width = 1;
    if (expected > 0 && hi > lo) {
      width = (hi - lo) / static_cast<Time>(expected);
      if (width < 1) width = 1;
    }
    pool_.reserve(expected);
    rebuild(n, shift_for(width));
    if (expected > 0 && lo >= 0) floor_time_ = lo;
  }

  void push(const Event& e) {
    assert(e.time >= 0);
    // Keep the dequeue scan's lower bound valid under out-of-order pushes
    // (the engine only pushes at or after the clock, but the structure
    // does not rely on that).
    if (e.time < floor_time_) floor_time_ = e.time;
    std::int32_t& head = head_[bucket_of(e.time)];
    head = merge(head, alloc_node(e));
    ++size_;
    top_valid_ = false;
    if (size_ > 2 * head_.size() && head_.size() < kMaxBuckets) {
      resize(2 * head_.size());
    }
  }

  // Minimum by the order. Precondition: !empty().
  const Event& top() const {
    assert(size_ > 0);
    if (!top_valid_) {
      locate_top();
      top_valid_ = true;
    }
    return pool_[head_[top_bucket_]].event;
  }

  Event pop() {
    (void)top();  // ensures top_bucket_ is current
    const std::int32_t node = head_[top_bucket_];
    const Event e = pool_[node].event;
    head_[top_bucket_] = merge(pool_[node].left, pool_[node].right);
    free_node(node);
    --size_;
    top_valid_ = false;
    floor_time_ = e.time;  // dequeues are nondecreasing in time
    if (4 * size_ < head_.size() && head_.size() > kMinBuckets) {
      resize(head_.size() / 2);
    }
    return e;
  }

  // Introspection for tests.
  std::size_t num_buckets() const { return head_.size(); }
  Time bucket_width() const { return Time{1} << shift_; }

 private:
  static constexpr std::size_t kMinBuckets = 4;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
  static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);
  static constexpr std::int32_t kNil = -1;

  struct Node {
    Event event;
    std::int32_t left = kNil;
    std::int32_t right = kNil;
  };

  // Bucket widths are powers of two and the bucket count is a power of two,
  // so the day hash is a shift and a mask — no integer division on the push
  // and dequeue paths.
  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t >> shift_) & (head_.size() - 1);
  }

  // Smallest shift whose width (1 << shift) is >= `width`.
  static unsigned shift_for(Time width) {
    unsigned shift = 0;
    while ((Time{1} << shift) < width) ++shift;
    return shift;
  }

  std::int32_t alloc_node(const Event& e) {
    if (free_head_ != kNil) {
      const std::int32_t n = free_head_;
      free_head_ = pool_[n].left;
      pool_[n].event = e;
      pool_[n].left = kNil;
      pool_[n].right = kNil;
      return n;
    }
    pool_.push_back(Node{e, kNil, kNil});
    return static_cast<std::int32_t>(pool_.size() - 1);
  }

  void free_node(std::int32_t n) {
    pool_[n].left = free_head_;
    free_head_ = n;
  }

  // Top-down skew-heap merge of two bucket heaps, iterative so the merge
  // path never recurses (a skew heap's single-operation path can be long
  // even though the amortized cost is O(log n)). Walks the rightmost paths:
  // the smaller root is attached, its children are swapped, and the merge
  // continues into the (pre-swap) right child.
  std::int32_t merge(std::int32_t a, std::int32_t b) {
    std::int32_t head = kNil;
    std::int32_t* link = &head;
    while (a != kNil && b != kNil) {
      if (Order{}(pool_[b].event, pool_[a].event)) std::swap(a, b);
      const std::int32_t rest = pool_[a].right;
      *link = a;
      pool_[a].right = pool_[a].left;
      link = &pool_[a].left;
      a = rest;
    }
    *link = (a != kNil) ? a : b;
    return head;
  }

  void locate_top() const {
    // One lap over the calendar starting at the current day: a bucket's
    // minimum (its head) is taken only if it falls inside the day the lap
    // assigns to that bucket; otherwise the bucket holds only later years.
    const Time start_day = floor_time_ >> shift_;
    const std::size_t n = head_.size();
    std::size_t b = static_cast<std::size_t>(start_day) & (n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t node = head_[b];
      if (node != kNil &&
          pool_[node].event.time >> shift_ ==
              start_day + static_cast<Time>(i)) {
        top_bucket_ = b;
        return;
      }
      b = (b + 1 == n) ? 0 : b + 1;
    }
    // Sparse population beyond one year: direct minimum search.
    std::size_t best = kNoBucket;
    for (std::size_t j = 0; j < n; ++j) {
      if (head_[j] == kNil) continue;
      if (best == kNoBucket ||
          Order{}(pool_[head_[j]].event, pool_[head_[best]].event)) {
        best = j;
      }
    }
    assert(best != kNoBucket);
    top_bucket_ = best;
  }

  void resize(std::size_t new_bucket_count) {
    // Re-estimate the width from the live population so occupancy returns
    // to O(1): the average gap between the earliest and latest pending
    // events, rounded up to a power of two (at least one time unit).
    // Collect the live nodes, re-point the bucket heads, and relink — no
    // allocation.
    scratch_.clear();
    Time lo = kTimeInfinity;
    Time hi = 0;
    for (const std::int32_t head : head_) {
      if (head != kNil) scratch_.push_back(head);
    }
    // scratch_ doubles as the traversal worklist: children of node i are
    // appended past i, so one forward sweep visits every live node.
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      const std::int32_t n = scratch_[i];
      if (pool_[n].left != kNil) scratch_.push_back(pool_[n].left);
      if (pool_[n].right != kNil) scratch_.push_back(pool_[n].right);
      const Time t = pool_[n].event.time;
      if (t < lo) lo = t;
      if (t > hi) hi = t;
    }
    Time width = 1;
    if (size_ > 0 && hi > lo) {
      width = (hi - lo) / static_cast<Time>(size_);
      if (width < 1) width = 1;
    }
    rebuild(new_bucket_count, shift_for(width));
    for (const std::int32_t n : scratch_) {
      pool_[n].left = kNil;
      pool_[n].right = kNil;
      std::int32_t& head = head_[bucket_of(pool_[n].event.time)];
      head = merge(head, n);
    }
  }

  void rebuild(std::size_t bucket_count, unsigned shift) {
    assert((bucket_count & (bucket_count - 1)) == 0);
    head_.assign(bucket_count, kNil);
    shift_ = shift;
    top_valid_ = false;
  }

  std::vector<Node> pool_;
  std::int32_t free_head_ = kNil;
  std::vector<std::int32_t> head_;  // per-bucket skew-heap roots
  std::vector<std::int32_t> scratch_;  // resize work list
  unsigned shift_ = 0;  // bucket width is 1 << shift_
  std::size_t size_ = 0;
  // Lower bound on every pending event's time; anchor of the dequeue lap.
  Time floor_time_ = 0;
  mutable std::size_t top_bucket_ = kNoBucket;
  mutable bool top_valid_ = false;
};

// The engine's unified event stream.
using CalendarQueue = BasicCalendarQueue<EngineEvent>;

}  // namespace fairsched
