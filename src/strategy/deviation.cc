#include "strategy/deviation.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace fairsched::strategy {

namespace {

[[noreturn]] void bad_deviation(const std::string& what) {
  throw std::invalid_argument(
      "deviation " + what +
      " (accepted: honest, splitunit, splitK (K>=2), mergeK (K>=2), "
      "delayD (D>=1), misreportP (P>=1), or the kind:param form)");
}

}  // namespace

std::string deviation_kind_name(DeviationSpec::Kind kind) {
  switch (kind) {
    case DeviationSpec::Kind::kHonest:
      return "honest";
    case DeviationSpec::Kind::kSplit:
      return "split";
    case DeviationSpec::Kind::kMerge:
      return "merge";
    case DeviationSpec::Kind::kDelay:
      return "delay";
    case DeviationSpec::Kind::kMisreport:
      return "misreport";
  }
  throw std::logic_error("unreachable deviation kind");
}

std::string deviation_label(const DeviationSpec& dev) {
  if (dev.kind == DeviationSpec::Kind::kHonest) return "honest";
  if (dev.kind == DeviationSpec::Kind::kSplit && dev.param == 0) {
    return "splitunit";
  }
  return deviation_kind_name(dev.kind) + std::to_string(dev.param);
}

DeviationSpec parse_deviation(const std::string& text) {
  DeviationSpec dev;
  std::string kind = text;
  std::string param;
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    kind = text.substr(0, colon);
    param = text.substr(colon + 1);
  } else {
    // Label form: the longest run of trailing digits is the parameter.
    std::size_t digits = text.size();
    while (digits > 0 && std::isdigit(static_cast<unsigned char>(
                             text[digits - 1]))) {
      --digits;
    }
    kind = text.substr(0, digits);
    param = text.substr(digits);
  }
  if (kind == "honest") {
    dev.kind = DeviationSpec::Kind::kHonest;
  } else if (kind == "split" || kind == "splitunit") {
    dev.kind = DeviationSpec::Kind::kSplit;
  } else if (kind == "merge") {
    dev.kind = DeviationSpec::Kind::kMerge;
  } else if (kind == "delay") {
    dev.kind = DeviationSpec::Kind::kDelay;
  } else if (kind == "misreport") {
    dev.kind = DeviationSpec::Kind::kMisreport;
  } else {
    bad_deviation("kind '" + text + "' is unknown");
  }
  if (!param.empty()) {
    if (kind == "honest" || kind == "splitunit") {
      bad_deviation("'" + text + "' does not take a parameter");
    }
    try {
      std::size_t consumed = 0;
      dev.param = std::stoll(param, &consumed);
      if (consumed != param.size()) throw std::invalid_argument(param);
    } catch (const std::exception&) {
      bad_deviation("parameter '" + param + "' in '" + text +
                    "' is not an integer");
    }
  }
  validate_deviation(dev);
  return dev;
}

void validate_deviation(const DeviationSpec& dev) {
  switch (dev.kind) {
    case DeviationSpec::Kind::kHonest:
      if (dev.param != 0) bad_deviation("honest takes no parameter");
      return;
    case DeviationSpec::Kind::kSplit:
      if (dev.param != 0 && dev.param < 2) {
        bad_deviation("split needs 0 (unit pieces) or >= 2 pieces");
      }
      return;
    case DeviationSpec::Kind::kMerge:
      if (dev.param < 2) bad_deviation("merge needs a run length >= 2");
      return;
    case DeviationSpec::Kind::kDelay:
      if (dev.param < 1) bad_deviation("delay needs a shift >= 1");
      return;
    case DeviationSpec::Kind::kMisreport:
      if (dev.param < 1) {
        bad_deviation("misreport needs a percentage >= 1");
      }
      return;
  }
  throw std::logic_error("unreachable deviation kind");
}

std::vector<Job> apply_deviation_to_jobs(std::span<const Job> jobs,
                                         const DeviationSpec& dev) {
  validate_deviation(dev);
  std::vector<Job> out;
  switch (dev.kind) {
    case DeviationSpec::Kind::kHonest:
      out.assign(jobs.begin(), jobs.end());
      return out;
    case DeviationSpec::Kind::kSplit:
      for (const Job& job : jobs) {
        const std::int64_t pieces =
            dev.param == 0
                ? job.processing
                : std::min<std::int64_t>(dev.param, job.processing);
        // Equal-as-possible piece sizes: the first `remainder` pieces get
        // one extra unit, so the pieces sum exactly to the original job.
        const Time base = job.processing / pieces;
        const Time remainder = job.processing % pieces;
        for (std::int64_t piece = 0; piece < pieces; ++piece) {
          Job part = job;
          part.processing = base + (piece < remainder ? 1 : 0);
          out.push_back(part);
        }
      }
      return out;
    case DeviationSpec::Kind::kMerge:
      for (std::size_t i = 0; i < jobs.size();) {
        const std::size_t run = std::min<std::size_t>(
            static_cast<std::size_t>(dev.param), jobs.size() - i);
        Job merged = jobs[i];
        for (std::size_t j = 1; j < run; ++j) {
          // FIFO streams are release-sorted, so the run's last release is
          // its max: the merged job appears when its latest part would.
          merged.release = std::max(merged.release, jobs[i + j].release);
          merged.processing += jobs[i + j].processing;
        }
        out.push_back(merged);
        i += run;
      }
      return out;
    case DeviationSpec::Kind::kDelay:
      for (const Job& job : jobs) {
        Job delayed = job;
        delayed.release += dev.param;
        out.push_back(delayed);
      }
      return out;
    case DeviationSpec::Kind::kMisreport:
      for (const Job& job : jobs) {
        Job declared = job;
        declared.processing =
            std::max<Time>(1, job.processing * dev.param / 100);
        out.push_back(declared);
      }
      return out;
  }
  throw std::logic_error("unreachable deviation kind");
}

Instance apply_deviation(const Instance& honest, OrgId deviator,
                         const DeviationSpec& dev) {
  if (deviator >= honest.num_orgs()) {
    throw std::invalid_argument(
        "deviator organization " + std::to_string(deviator) +
        " is out of range (instance has " +
        std::to_string(honest.num_orgs()) + " organizations)");
  }
  InstanceBuilder builder;
  for (OrgId u = 0; u < honest.num_orgs(); ++u) {
    builder.add_org(honest.org(u).name, honest.org(u).machines);
    if (u == deviator) {
      for (const Job& job : apply_deviation_to_jobs(honest.jobs_of(u), dev)) {
        builder.add_job(u, job.release, job.processing);
      }
    } else {
      for (const Job& job : honest.jobs_of(u)) {
        builder.add_job(u, job.release, job.processing);
      }
    }
  }
  return std::move(builder).build();
}

std::vector<DeviationSpec> default_deviation_grid() {
  using Kind = DeviationSpec::Kind;
  return {
      {Kind::kHonest, 0},     {Kind::kSplit, 2},      {Kind::kSplit, 0},
      {Kind::kMerge, 2},      {Kind::kMerge, 4},      {Kind::kDelay, 20},
      {Kind::kDelay, 100},    {Kind::kMisreport, 50}, {Kind::kMisreport, 200},
  };
}

}  // namespace fairsched::strategy
