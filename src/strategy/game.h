#pragma once

// The best-response layer of the strategic-deviation game (Section 4).
//
// One deviating organization plays a deviation from strategy/deviation.h
// against a policy while every other organization stays honest; the
// schedule is graded against the *true* workload:
//
//   deviator_utility  psi_sp of the deviating org over its true job sizes
//                     (for kMisreport, a declared slot of size d holding a
//                     true job of size p earns min(d, p) useful unit tasks)
//   deviator_flow     mean flow time of the org's truly-completed jobs (a
//                     misreported job completes only when d >= p, at
//                     start + p)
//   honest_utility    summed psi_sp of the honest organizations — their
//                     loss is the fairness harm the manipulation causes
//
// The paper's Theorem 4.1 contrast: graded by psi_sp, split/merge/delay
// deviations never help the deviator; graded by flow time, splitting pays.
// print_strategy_report derives manipulation gains and best responses
// purely from merged per-cell sweep aggregates, so its output is
// byte-identical whether the sweep ran whole, sharded, multi-process or
// dispatched; check_theorem41 machine-checks the contrast for CI.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "exp/policy_registry.h"
#include "exp/sweep.h"
#include "strategy/deviation.h"

namespace fairsched::strategy {

// True-size grading of one played deviation (fields documented above).
struct StrategyOutcome {
  double deviator_utility = 0.0;
  double deviator_flow = 0.0;
  double honest_utility = 0.0;
};

// Grades `schedule` (the policy's run on the declared instance) against
// the honest instance's true job sizes. `utilities2` holds the engine's
// per-org half-utilities over the declared instance on entry; on return
// the deviator's entry is corrected to its true-size utility (kMisreport
// only — every other deviation's declared stream is its true one), so the
// caller can feed it to the fairness metrics unchanged.
StrategyOutcome evaluate_deviation(const Instance& honest,
                                   const Instance& declared, OrgId deviator,
                                   const DeviationSpec& dev,
                                   const Schedule& schedule, Time horizon,
                                   std::vector<HalfUtil>& utilities2);

// One grid entry's outcome from play_deviation_grid.
struct DeviationOutcome {
  DeviationSpec dev;
  StrategyOutcome outcome;
};

// Plays every deviation of `grid` for (policy, deviator) on one honest
// instance: applies the deviation, runs the policy on the declared
// instance, grades the result. The direct-play driver behind the
// `strategyproof` ablation and the property tests; the sweep engine plays
// the same game through exp/executor.cc with cached honest prefixes.
std::vector<DeviationOutcome> play_deviation_grid(
    const Instance& honest, OrgId deviator,
    std::span<const DeviationSpec> grid, const std::string& policy,
    Time horizon, std::uint64_t seed,
    const exp::PolicyRegistry& registry = exp::PolicyRegistry::global());

// The manipulation-gain report of a finished strategy sweep: per
// (workload, slice, policy) a per-deviation table of psi_sp gain, flow
// gain and honest-org harm (all percent vs the slice's honest row), then
// a best-response summary (argmax deviation under each grading). A slice
// is one combination of non-strategy axis values — deviator-org included,
// deviation-param folded into the deviation labels. Derives everything
// from spec + merged cell aggregates (no per-run records), so shards,
// `merge`, `--processes` and dispatch print identical bytes.
void print_strategy_report(const exp::SweepSpec& spec,
                           const exp::SweepResult& result, std::ostream& out);

// Machine check of the Theorem 4.1 contrast over a finished strategy
// sweep. Three empirical claims, each graded per (workload, slice):
//
//   1. Share-graded policies resist structural manipulation: for every
//      policy whose grading follows psi_sp shares (the fairshare family
//      and directcontr), the *mean* psi_sp gain across split/merge/delay
//      deviations stays within `tolerance_pct`. The mean damps the
//      scheduling noise a single deviation row carries on small windows.
//   2. Arrival-graded scheduling invites splitting: fcfs (when present,
//      and when the grid has a split deviation) must show a strictly
//      positive best split psi_sp gain — the side of the contrast that
//      makes claim 1 meaningful.
//   3. Flow-time grading invites size under-reporting: every policy's
//      best flow gain under a kMisreport deviation with param < 100 must
//      be strictly positive (only truly-completed jobs count, so under-
//      declaring trades dropped long jobs for fast short ones).
//
// Prints one line per violation and a verdict; returns the violation
// count (0 = the contrast holds). Claims 2/3 are skipped when the grid
// lacks the deviations they need.
std::size_t check_theorem41(const exp::SweepSpec& spec,
                            const exp::SweepResult& result,
                            double tolerance_pct, std::ostream& out);

}  // namespace fairsched::strategy
