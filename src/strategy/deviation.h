#pragma once

// The closed family of strategic workload deviations (Section 4, Theorem
// 4.1): pure transforms one *deviating* organization applies to its own job
// stream while every other organization stays honest.
//
//   split k      each job becomes min(k, p) equal-as-possible pieces at the
//                same release (k = 0: unit pieces, the paper's extreme case)
//   merge k      consecutive runs of k FIFO jobs become one job (release =
//                the run's latest release, processing = the run's sum; a
//                final run shorter than 2 stays as-is)
//   delay d      every release moves d time units later
//   misreport p  the *declared* processing time becomes max(1, true*p/100)
//                while the true size is unchanged — the non-clairvoyant
//                mode: policies schedule the declared instance, metrics are
//                computed against the true sizes (strategy/game.h)
//
// Deviations are data: they ride sweep specs, plan fingerprints and config
// files as (kind, param) pairs with canonical labels ("split2", "splitunit",
// "merge2", "delay20", "misreport200", "honest").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace fairsched::strategy {

struct DeviationSpec {
  enum class Kind { kHonest, kSplit, kMerge, kDelay, kMisreport };

  Kind kind = Kind::kHonest;
  // split: pieces per job (0 = unit pieces, else >= 2); merge: run length
  // (>= 2); delay: time shift (>= 1); misreport: declared size as a
  // percentage of the true size (>= 1); honest: must be 0.
  std::int64_t param = 0;

  bool operator==(const DeviationSpec&) const = default;
};

// "honest" | "split" | "merge" | "delay" | "misreport".
std::string deviation_kind_name(DeviationSpec::Kind kind);

// Canonical display/config label: "honest", "splitunit" (split 0),
// "split2", "merge3", "delay20", "misreport200".
std::string deviation_label(const DeviationSpec& dev);

// Parses a label ("split2", "splitunit", "honest") or the explicit
// "kind:param" form ("split:2", "misreport:200"). Throws
// std::invalid_argument naming the accepted forms.
DeviationSpec parse_deviation(const std::string& text);

// Throws std::invalid_argument when the parameter is outside the kind's
// accepted range (documented on `param` above).
void validate_deviation(const DeviationSpec& dev);

// The transform on one FIFO job stream. Input jobs must be release-sorted
// (Instance guarantees this); the output is release-sorted too, with
// org/index fields left for the caller (InstanceBuilder re-derives them).
std::vector<Job> apply_deviation_to_jobs(std::span<const Job> jobs,
                                         const DeviationSpec& dev);

// Rebuilds `honest` with the deviator's job stream transformed and every
// other organization untouched. For kMisreport the result is the *declared*
// instance (same job count and FIFO order as the honest one, so job index j
// of the deviator maps 1:1 onto its true job). Throws when `deviator` is out
// of range or the deviation is invalid.
Instance apply_deviation(const Instance& honest, OrgId deviator,
                         const DeviationSpec& dev);

// The default manipulation grid swept by `fairsched_exp strategy`: honest
// first (the gain reference), then split/merge/delay/misreport at two
// magnitudes each.
std::vector<DeviationSpec> default_deviation_grid();

}  // namespace fairsched::strategy
