#include "strategy/game.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "metrics/utility.h"
#include "util/table.h"

namespace fairsched::strategy {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Percent change of `delta` against `base`; 0 when the base vanishes (an
// empty honest reference cannot be improved upon by any percentage).
double pct(double delta, double base) {
  return base == 0.0 ? 0.0 : 100.0 * delta / base;
}

std::string fmt(double v) { return AsciiTable::format_double(v, 3); }

// Deviations that keep the honest job count and FIFO order, so the
// deviator's job index j maps 1:1 onto its honest (true) job.
bool index_mapped(DeviationSpec::Kind kind) {
  return kind == DeviationSpec::Kind::kHonest ||
         kind == DeviationSpec::Kind::kDelay ||
         kind == DeviationSpec::Kind::kMisreport;
}

}  // namespace

StrategyOutcome evaluate_deviation(const Instance& honest,
                                   const Instance& declared, OrgId deviator,
                                   const DeviationSpec& dev,
                                   const Schedule& schedule, Time horizon,
                                   std::vector<HalfUtil>& utilities2) {
  const bool misreport = dev.kind == DeviationSpec::Kind::kMisreport;
  if (misreport) {
    // The engine credited the declared sizes; the deviator's true earnings
    // are the useful unit tasks: min(declared, true) per started job.
    HalfUtil capped = 0;
    for (const Placement& p : schedule.placements()) {
      if (p.org != deviator) continue;
      const Time d = declared.job(deviator, p.index).processing;
      const Time t = honest.job(deviator, p.index).processing;
      capped += sp_job_half_utility(p.start, std::min(d, t), horizon);
    }
    utilities2[deviator] = capped;
  }

  StrategyOutcome out;
  out.deviator_utility = half_to_double(utilities2[deviator]);
  HalfUtil honest_sum = 0;
  for (OrgId u = 0; u < honest.num_orgs(); ++u) {
    if (u != deviator) honest_sum += utilities2[u];
  }
  out.honest_utility = half_to_double(honest_sum);

  // Mean flow of the deviator's truly-completed jobs. Index-mapped
  // deviations are graded against the honest release (a delayed job was
  // wanted when the honest stream released it); split/merge streams *are*
  // the true jobs, so their declared release is the reference.
  std::int64_t flow_sum = 0;
  std::int64_t completed = 0;
  for (const Placement& p : schedule.placements()) {
    if (p.org != deviator) continue;
    Time true_processing = declared.job(deviator, p.index).processing;
    Time release = declared.job(deviator, p.index).release;
    if (index_mapped(dev.kind)) {
      const Job& true_job = honest.job(deviator, p.index);
      release = true_job.release;
      if (misreport) {
        // An under-declared slot frees the machine before the job is done:
        // it never completes. An over-declared one completes at start +
        // true size (the machine then idles on the phantom remainder).
        if (true_processing < true_job.processing) continue;
        true_processing = true_job.processing;
      }
    }
    const Time completion = p.start + true_processing;
    if (completion > horizon) continue;
    flow_sum += completion - release;
    ++completed;
  }
  out.deviator_flow =
      completed ? static_cast<double>(flow_sum) / completed : 0.0;
  return out;
}

std::vector<DeviationOutcome> play_deviation_grid(
    const Instance& honest, OrgId deviator,
    std::span<const DeviationSpec> grid, const std::string& policy,
    Time horizon, std::uint64_t seed, const exp::PolicyRegistry& registry) {
  std::vector<DeviationOutcome> outcomes;
  outcomes.reserve(grid.size());
  for (const DeviationSpec& dev : grid) {
    const Instance declared =
        dev.kind == DeviationSpec::Kind::kHonest
            ? honest
            : apply_deviation(honest, deviator, dev);
    RunResult r = registry.run(declared, policy, horizon, seed);
    DeviationOutcome outcome;
    outcome.dev = dev;
    outcome.outcome = evaluate_deviation(honest, declared, deviator, dev,
                                         r.schedule, horizon, r.utilities2);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

namespace {

// One slice of a strategy sweep: a combination of every non-strategy,
// non-deviation-param axis value (deviator-org included), holding the
// points that vary only in the played deviation. `points` is ascending, so
// iteration order — and the printed report — is independent of how the
// sweep was executed.
struct StrategySlice {
  std::vector<double> key;
  std::string label;  // ", axis=value" suffix for the header
  std::size_t honest_point = kNone;
  // (deviation label, axis point), first point per distinct label,
  // honest excluded.
  std::vector<std::pair<std::string, std::size_t>> deviations;
};

std::vector<StrategySlice> slice_points(const exp::SweepSpec& spec,
                                        std::size_t axis_points) {
  std::vector<StrategySlice> slices;
  for (std::size_t a = 0; a < axis_points; ++a) {
    const std::vector<double> values = exp::axis_point_values(spec, a);
    std::vector<double> key;
    std::string label;
    for (std::size_t j = 0; j < spec.axes.size(); ++j) {
      const exp::SweepAxis& axis = spec.axes[j];
      if (axis.bind == exp::SweepAxis::Bind::kStrategy ||
          axis.bind == exp::SweepAxis::Bind::kDeviationParam) {
        continue;
      }
      key.push_back(values[j]);
      label +=
          ", " + axis.name + "=" + exp::axis_value_label(axis, values[j]);
    }
    StrategySlice* slice = nullptr;
    for (StrategySlice& existing : slices) {
      if (existing.key == key) {
        slice = &existing;
        break;
      }
    }
    if (!slice) {
      slices.push_back({std::move(key), std::move(label), kNone, {}});
      slice = &slices.back();
    }
    const DeviationSpec dev = exp::sweep_point_deviation(spec, a);
    if (dev.kind == DeviationSpec::Kind::kHonest) {
      if (slice->honest_point == kNone) slice->honest_point = a;
      continue;
    }
    const std::string dev_label = deviation_label(dev);
    bool seen = false;
    for (const auto& [label_seen, point] : slice->deviations) {
      seen |= label_seen == dev_label;
    }
    if (!seen) slice->deviations.emplace_back(dev_label, a);
  }
  return slices;
}

struct Gains {
  double psi = 0.0;
  double flow = 0.0;
  double harm = 0.0;
  bool flow_valid = false;  // false when nothing truly completed
};

Gains cell_gains(const exp::SweepCell& honest_cell,
                 const exp::SweepCell& dev_cell) {
  Gains g;
  const double h_psi = honest_cell.deviator_utility.mean();
  const double h_flow = honest_cell.deviator_flow.mean();
  const double h_others = honest_cell.honest_utility.mean();
  g.psi = pct(dev_cell.deviator_utility.mean() - h_psi, h_psi);
  const double d_flow = dev_cell.deviator_flow.mean();
  g.flow_valid = d_flow != 0.0 && h_flow != 0.0;
  if (g.flow_valid) g.flow = pct(h_flow - d_flow, h_flow);
  g.harm = pct(h_others - dev_cell.honest_utility.mean(), h_others);
  return g;
}

}  // namespace

void print_strategy_report(const exp::SweepSpec& spec,
                           const exp::SweepResult& result,
                           std::ostream& out) {
  if (!spec.is_strategy()) return;
  const std::size_t num_workloads = spec.workloads.size();
  const std::size_t num_policies = spec.policies.size();
  const std::vector<StrategySlice> slices =
      slice_points(spec, result.axis_points);

  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (const StrategySlice& slice : slices) {
      out << "\nmanipulation gain vs honest, workload "
          << spec.workloads[w].name << slice.label << "\n";
      if (slice.honest_point == kNone || slice.deviations.empty()) {
        out << "  (no honest reference or no deviations; nothing to "
               "grade)\n";
        continue;
      }
      AsciiTable detail({"policy", "deviation", "psi_sp gain %",
                         "flow gain %", "honest harm %"});
      AsciiTable best({"policy", "best dev (psi_sp)", "psi_sp gain %",
                       "best dev (flow)", "flow gain %", "honest harm %"});
      for (std::size_t p = 0; p < num_policies; ++p) {
        if (p) detail.add_separator();
        const exp::SweepCell& honest_cell =
            result.cell(spec, slice.honest_point, w, p);
        std::size_t best_psi = kNone, best_flow = kNone;
        Gains best_psi_gains, best_flow_gains;
        for (std::size_t d = 0; d < slice.deviations.size(); ++d) {
          const auto& [dev_label, point] = slice.deviations[d];
          const Gains g =
              cell_gains(honest_cell, result.cell(spec, point, w, p));
          detail.add_row({spec.policies[p], dev_label, fmt(g.psi),
                          g.flow_valid ? fmt(g.flow) : "n/a",
                          fmt(g.harm)});
          if (best_psi == kNone || g.psi > best_psi_gains.psi) {
            best_psi = d;
            best_psi_gains = g;
          }
          if (g.flow_valid &&
              (best_flow == kNone || g.flow > best_flow_gains.flow)) {
            best_flow = d;
            best_flow_gains = g;
          }
        }
        best.add_row(
            {spec.policies[p],
             best_psi == kNone ? "n/a" : slice.deviations[best_psi].first,
             best_psi == kNone ? "n/a" : fmt(best_psi_gains.psi),
             best_flow == kNone ? "n/a" : slice.deviations[best_flow].first,
             best_flow == kNone ? "n/a" : fmt(best_flow_gains.flow),
             best_flow == kNone ? "n/a" : fmt(best_flow_gains.harm)});
      }
      out << detail.to_string();
      out << "\nbest response per policy (flow-best row carries its "
             "honest-org harm)\n";
      out << best.to_string();
    }
  }
}

namespace {

// Policies whose grading follows psi_sp shares, for which Theorem 4.1
// promises structural manipulation stays unprofitable: the fairshare
// family (fairshare, utfairshare, currfairshare, decayfairshare*) and the
// direct-contribution rule. fcfs and roundrobin grade by arrival/turn
// order and legitimately reward splitting or merging — they are the other
// side of the contrast, not violations of it.
bool share_graded(const std::string& policy) {
  return policy == "directcontr" ||
         policy.find("fairshare") != std::string::npos;
}

}  // namespace

std::size_t check_theorem41(const exp::SweepSpec& spec,
                            const exp::SweepResult& result,
                            double tolerance_pct, std::ostream& out) {
  if (!spec.is_strategy()) {
    out << "theorem 4.1 check: not a strategy sweep\n";
    return 1;
  }
  const std::size_t num_workloads = spec.workloads.size();
  const std::size_t num_policies = spec.policies.size();
  const std::vector<StrategySlice> slices =
      slice_points(spec, result.axis_points);

  std::size_t violations = 0;
  for (std::size_t p = 0; p < num_policies; ++p) {
    const std::string& policy = spec.policies[p];
    for (std::size_t w = 0; w < num_workloads; ++w) {
      for (const StrategySlice& slice : slices) {
        if (slice.honest_point == kNone) continue;
        const exp::SweepCell& honest_cell =
            result.cell(spec, slice.honest_point, w, p);
        const std::string where =
            "workload " + spec.workloads[w].name + slice.label;

        // Slice aggregates: the mean psi_sp gain over the structural
        // deviations (split/merge/delay — single rows are scheduling-
        // noisy, the mean is the robust signal), the best psi_sp gain
        // over splits, and the best flow gain over under-reports.
        double structural_sum = 0.0;
        std::size_t structural_count = 0;
        double best_split_psi = 0.0;
        bool any_split = false;
        double best_underreport_flow = 0.0;
        bool any_underreport = false;
        for (const auto& [dev_label, point] : slice.deviations) {
          const DeviationSpec dev = exp::sweep_point_deviation(spec, point);
          const Gains g =
              cell_gains(honest_cell, result.cell(spec, point, w, p));
          if (dev.kind == DeviationSpec::Kind::kSplit ||
              dev.kind == DeviationSpec::Kind::kMerge ||
              dev.kind == DeviationSpec::Kind::kDelay) {
            structural_sum += g.psi;
            ++structural_count;
          }
          if (dev.kind == DeviationSpec::Kind::kSplit) {
            best_split_psi =
                any_split ? std::max(best_split_psi, g.psi) : g.psi;
            any_split = true;
          }
          if (dev.kind == DeviationSpec::Kind::kMisreport &&
              dev.param < 100 && g.flow_valid) {
            best_underreport_flow =
                any_underreport ? std::max(best_underreport_flow, g.flow)
                                : g.flow;
            any_underreport = true;
          }
        }

        // Claim 1: share-graded policies resist structural manipulation.
        if (share_graded(policy) && structural_count > 0) {
          const double mean_psi =
              structural_sum / static_cast<double>(structural_count);
          if (mean_psi > tolerance_pct) {
            out << "theorem 4.1 VIOLATION: share-graded policy " << policy
                << " gains " << fmt(mean_psi)
                << "% mean psi_sp across split/merge/delay on " << where
                << " (tolerance " << fmt(tolerance_pct) << "%)\n";
            ++violations;
          }
        }
        // Claim 2: arrival-graded fcfs must reward splitting.
        if (policy == "fcfs" && any_split && best_split_psi <= 0.0) {
          out << "theorem 4.1 VIOLATION: arrival-graded fcfs shows no "
                 "positive psi_sp gain under any split deviation on "
              << where << " (best " << fmt(best_split_psi)
              << "%) — the contrast side is missing\n";
          ++violations;
        }
        // Claim 3: flow grading invites under-reporting, everywhere.
        if (any_underreport && best_underreport_flow <= 0.0) {
          out << "theorem 4.1 VIOLATION: policy " << policy
              << " shows no positive flow-time gain under size "
                 "under-reporting on "
              << where << " (best " << fmt(best_underreport_flow)
              << "%)\n";
          ++violations;
        }
      }
    }
  }
  out << "theorem 4.1 check: "
      << (violations == 0 ? "OK"
                          : std::to_string(violations) + " violation(s)")
      << " (share-graded psi_sp resists split/merge/delay within "
      << fmt(tolerance_pct)
      << "%; fcfs rewards splitting; flow grading rewards "
         "under-reporting)\n";
  return violations;
}

}  // namespace fairsched::strategy
